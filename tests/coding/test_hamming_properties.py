"""Property-based tests for the SECDED extended Hamming code.

The SECDED guarantee the ARQ+ECC datapath relies on (Section II):

* any single-bit corruption of a codeword is *corrected* — the decoder
  returns the original data;
* any double-bit corruption is *detected* — never silently miscorrected
  into consumable data.

These are exactly the properties hypothesis can quantify over: random
payloads at several widths, with exhaustive flip positions at small
width and sampled positions at the paper's 128-bit flit width.
"""

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.coding.hamming import DecodeStatus, SecdedCode

#: Paper-relevant widths: example width, non-power-of-two, a common bus
#: width, and the Table II 128-bit flit.
WIDTHS = (8, 11, 32, 64, 128)

CODES = {width: SecdedCode(width) for width in WIDTHS}


def data_strategy(width):
    return st.integers(min_value=0, max_value=(1 << width) - 1)


@st.composite
def data_and_positions(draw, width, n_positions):
    code = CODES[width]
    data = draw(data_strategy(width))
    positions = draw(
        st.lists(
            st.integers(0, code.codeword_bits - 1),
            min_size=n_positions, max_size=n_positions, unique=True,
        )
    )
    return data, positions


class TestRoundTrip:
    @pytest.mark.parametrize("width", WIDTHS)
    @given(data=st.data())
    @settings(deadline=None)
    def test_clean_roundtrip(self, width, data):
        code = CODES[width]
        payload = data.draw(data_strategy(width))
        result = code.decode(code.encode(payload))
        assert result.status is DecodeStatus.CLEAN
        assert result.data == payload


class TestSingleBitFlips:
    @given(data=data_strategy(8))
    @settings(deadline=None)
    def test_all_single_flips_corrected_exhaustively(self, data):
        """8-bit code: every one of the 13 codeword positions, always."""
        code = CODES[8]
        codeword = code.encode(data)
        for position in range(code.codeword_bits):
            result = code.decode(codeword ^ (1 << position))
            assert result.status is DecodeStatus.CORRECTED
            assert result.data == data
            assert result.ok

    @pytest.mark.parametrize("width", (11, 32, 64, 128))
    @given(data=st.data())
    @settings(deadline=None)
    def test_single_flips_corrected_sampled(self, width, data):
        code = CODES[width]
        payload, (position,) = data.draw(data_and_positions(width, 1))
        result = code.decode(code.encode(payload) ^ (1 << position))
        assert result.status is DecodeStatus.CORRECTED
        assert result.data == payload


class TestDoubleBitFlips:
    @given(data=data_strategy(8))
    @settings(deadline=None, max_examples=25)
    def test_all_double_flips_detected_exhaustively(self, data):
        """8-bit code: all C(13, 2) position pairs — detected, never
        miscorrected into an ok result."""
        code = CODES[8]
        codeword = code.encode(data)
        for i in range(code.codeword_bits):
            for j in range(i + 1, code.codeword_bits):
                result = code.decode(codeword ^ (1 << i) ^ (1 << j))
                assert result.status is DecodeStatus.DETECTED
                assert not result.ok

    @pytest.mark.parametrize("width", (11, 32, 64, 128))
    @given(data=st.data())
    @settings(deadline=None)
    def test_double_flips_detected_sampled(self, width, data):
        code = CODES[width]
        payload, (i, j) = data.draw(data_and_positions(width, 2))
        result = code.decode(code.encode(payload) ^ (1 << i) ^ (1 << j))
        assert result.status is DecodeStatus.DETECTED
        assert not result.ok
