"""Unit and property tests for the ARQ retransmission buffer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import AckKind, AckMessage, ArqError, RetransmissionBuffer


class TestBasics:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RetransmissionBuffer(0)

    def test_push_returns_monotonic_sequence(self):
        buf = RetransmissionBuffer(8)
        seqs = [buf.push(f"flit{i}") for i in range(5)]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 5

    def test_len_and_occupancy(self):
        buf = RetransmissionBuffer(4)
        assert buf.is_empty and buf.occupancy == 0.0
        buf.push("a")
        buf.push("b")
        assert len(buf) == 2
        assert buf.occupancy == 0.5

    def test_overflow_raises(self):
        buf = RetransmissionBuffer(2)
        buf.push("a")
        buf.push("b")
        assert buf.is_full
        with pytest.raises(ArqError):
            buf.push("c")


class TestAckNack:
    def test_ack_releases_entry(self):
        buf = RetransmissionBuffer(4)
        seq = buf.push("flit")
        assert buf.ack(seq) == "flit"
        assert buf.is_empty
        assert buf.total_acked == 1

    def test_nack_keeps_entry(self):
        buf = RetransmissionBuffer(4)
        seq = buf.push("flit")
        assert buf.nack(seq) == "flit"
        assert len(buf) == 1  # still buffered for a later ACK
        assert buf.total_nacked == 1

    def test_nack_then_ack(self):
        buf = RetransmissionBuffer(4)
        seq = buf.push("flit")
        buf.nack(seq)
        buf.nack(seq)  # corrupted again
        assert buf.ack(seq) == "flit"
        assert buf.is_empty

    def test_unknown_seq_raises(self):
        buf = RetransmissionBuffer(4)
        with pytest.raises(ArqError):
            buf.ack(99)
        with pytest.raises(ArqError):
            buf.nack(99)

    def test_handle_dispatches_on_kind(self):
        buf = RetransmissionBuffer(4)
        seq = buf.push("x")
        retransmit, item = buf.handle(AckMessage(seq, AckKind.NACK))
        assert retransmit and item == "x"
        retransmit, item = buf.handle(AckMessage(seq, AckKind.ACK))
        assert not retransmit and item == "x"

    def test_flush_empties(self):
        buf = RetransmissionBuffer(4)
        buf.push("a")
        buf.push("b")
        buf.flush()
        assert buf.is_empty

    def test_peek_does_not_consume(self):
        buf = RetransmissionBuffer(4)
        seq = buf.push("a")
        assert buf.peek(seq) == "a"
        assert buf.peek(seq + 1) is None
        assert len(buf) == 1


class TestIteration:
    def test_iteration_is_insertion_order(self):
        buf = RetransmissionBuffer(8)
        items = [f"f{i}" for i in range(5)]
        seqs = [buf.push(item) for item in items]
        assert [(s, i) for s, i in buf] == list(zip(seqs, items))

    def test_order_preserved_after_middle_ack(self):
        buf = RetransmissionBuffer(8)
        s0, s1, s2 = buf.push("a"), buf.push("b"), buf.push("c")
        buf.ack(s1)
        assert [s for s, _ in buf] == [s0, s2]


@settings(max_examples=100)
@given(ops=st.lists(st.sampled_from(["push", "ack", "nack"]), max_size=60))
def test_property_conservation(ops):
    """pushed == acked + pending regardless of the operation sequence."""
    buf = RetransmissionBuffer(16)
    pending = []
    for op in ops:
        if op == "push" and not buf.is_full:
            pending.append(buf.push(object()))
        elif op == "ack" and pending:
            buf.ack(pending.pop(0))
        elif op == "nack" and pending:
            buf.nack(pending[0])
    assert buf.total_pushed == buf.total_acked + len(buf)
    assert sorted(s for s, _ in buf) == sorted(pending)
