"""Unit and property tests for the CRC implementation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import CRC


class TestConstruction:
    def test_standard_widths(self):
        assert CRC.crc8().width == 8
        assert CRC.crc16().width == 16
        assert CRC.crc32().width == 32

    def test_rejects_narrow_width(self):
        with pytest.raises(ValueError):
            CRC(poly=0x3, width=4)

    def test_rejects_out_of_range_poly(self):
        with pytest.raises(ValueError):
            CRC(poly=1 << 16, width=16)
        with pytest.raises(ValueError):
            CRC(poly=0, width=16)


class TestCompute:
    def test_known_crc32_value(self):
        # CRC-32 (init 0, no reflection, no final xor) of the byte 0x00 is 0.
        crc = CRC.crc32()
        assert crc.compute(0, 8) == 0

    def test_deterministic(self):
        crc = CRC.crc16()
        assert crc.compute(0xDEADBEEF, 32) == crc.compute(0xDEADBEEF, 32)

    def test_verify_roundtrip(self):
        crc = CRC.crc16()
        check = crc.compute(0x1234_5678, 32)
        assert crc.verify(0x1234_5678, 32, check)

    def test_rejects_negative_payload(self):
        with pytest.raises(ValueError):
            CRC.crc8().compute(-1, 8)

    def test_rejects_oversized_payload(self):
        with pytest.raises(ValueError):
            CRC.crc8().compute(1 << 9, 8)

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            CRC.crc8().compute(0, 0)

    def test_different_payloads_usually_differ(self):
        crc = CRC.crc16()
        checks = {crc.compute(v, 16) for v in range(256)}
        # 256 distinct 16-bit payloads should not collapse onto few CRCs.
        assert len(checks) > 200


class TestErrorDetection:
    @pytest.mark.parametrize("bit", [0, 1, 7, 31, 63, 127])
    def test_single_bit_flip_detected(self, bit):
        crc = CRC.crc16()
        payload, bits = 0x0123_4567_89AB_CDEF_0123_4567_89AB_CDEF, 128
        check = crc.compute(payload, bits)
        assert not crc.verify(payload ^ (1 << bit), bits, check)

    def test_burst_error_within_width_detected(self):
        # CRC-16 detects all burst errors of length <= 16.
        crc = CRC.crc16()
        payload, bits = 0xAAAA_BBBB_CCCC_DDDD, 64
        check = crc.compute(payload, bits)
        for start in range(0, 48, 7):
            burst = 0x9DF3 << start  # arbitrary 16-bit burst pattern
            assert not crc.verify(payload ^ burst, bits, check)

    def test_detects_helper_matches_verify(self):
        crc = CRC.crc8()
        payload, bits = 0xF0F0, 16
        check = crc.compute(payload, bits)
        for mask in (0x1, 0x81, 0xFFFF):
            detected = not crc.verify(payload ^ mask, bits, check)
            assert crc.detects(mask, bits) == detected

    def test_zero_error_mask_not_detected(self):
        assert not CRC.crc16().detects(0, 32)


@settings(max_examples=200)
@given(payload=st.integers(min_value=0, max_value=(1 << 128) - 1))
def test_property_roundtrip_128bit(payload):
    """Any 128-bit payload (the paper's flit width) verifies clean."""
    crc = CRC.crc16()
    assert crc.verify(payload, 128, crc.compute(payload, 128))


@settings(max_examples=200)
@given(
    payload=st.integers(min_value=0, max_value=(1 << 64) - 1),
    bit=st.integers(min_value=0, max_value=63),
)
def test_property_single_flip_always_detected(payload, bit):
    """CRC with any standard polynomial detects every single-bit error."""
    crc = CRC.crc16()
    check = crc.compute(payload, 64)
    assert not crc.verify(payload ^ (1 << bit), 64, check)


@settings(max_examples=100)
@given(
    payload=st.integers(min_value=0, max_value=(1 << 64) - 1),
    a=st.integers(min_value=0, max_value=63),
    b=st.integers(min_value=0, max_value=63),
)
def test_property_double_flip_detected_crc16(payload, a, b):
    """CRC-16-CCITT detects all double-bit errors at these block lengths."""
    if a == b:
        return
    crc = CRC.crc16()
    check = crc.compute(payload, 64)
    assert not crc.verify(payload ^ (1 << a) ^ (1 << b), 64, check)
