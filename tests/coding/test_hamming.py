"""Unit and property tests for the SECDED Hamming code."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import DecodeStatus, SecdedCode


class TestGeometry:
    @pytest.mark.parametrize(
        "data_bits,expected_codeword",
        [
            (4, 8),     # Hamming(7,4) + overall parity = (8,4)
            (8, 13),    # (12,8) + parity
            (64, 72),   # classic (72,64) DRAM SECDED
            (128, 137), # the paper's 128-bit flit payload
        ],
    )
    def test_codeword_width(self, data_bits, expected_codeword):
        assert SecdedCode(data_bits).codeword_bits == expected_codeword

    def test_overhead_and_rate(self):
        code = SecdedCode(64)
        assert code.overhead_bits == 8
        assert abs(code.code_rate - 64 / 72) < 1e-12

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            SecdedCode(0)


class TestEncodeDecode:
    def test_clean_roundtrip(self):
        code = SecdedCode(16)
        for data in (0, 1, 0xFFFF, 0xA5A5, 0x1234):
            result = code.decode(code.encode(data))
            assert result.status is DecodeStatus.CLEAN
            assert result.data == data
            assert result.ok

    def test_encode_rejects_oversized(self):
        with pytest.raises(ValueError):
            SecdedCode(8).encode(256)

    def test_decode_rejects_oversized(self):
        code = SecdedCode(8)
        with pytest.raises(ValueError):
            code.decode(1 << code.codeword_bits)

    def test_all_single_bit_errors_corrected(self):
        code = SecdedCode(16)
        data = 0xC3A5
        cw = code.encode(data)
        for bit in range(code.codeword_bits):
            result = code.decode(cw ^ (1 << bit))
            assert result.status is DecodeStatus.CORRECTED, f"bit {bit}"
            assert result.data == data, f"bit {bit}"

    def test_all_double_bit_errors_detected_small_code(self):
        code = SecdedCode(8)
        data = 0x5A
        cw = code.encode(data)
        for a in range(code.codeword_bits):
            for b in range(a + 1, code.codeword_bits):
                result = code.decode(cw ^ (1 << a) ^ (1 << b))
                assert result.status is DecodeStatus.DETECTED, f"bits {a},{b}"
                assert not result.ok

    def test_overall_parity_bit_error_is_correctable(self):
        code = SecdedCode(32)
        data = 0xDEADBEEF
        cw = code.encode(data)
        flipped = cw ^ (1 << (code.codeword_bits - 1))
        result = code.decode(flipped)
        assert result.status is DecodeStatus.CORRECTED
        assert result.data == data


@settings(max_examples=200)
@given(data=st.integers(min_value=0, max_value=(1 << 128) - 1))
def test_property_clean_roundtrip_128(data):
    code = SecdedCode(128)
    result = code.decode(code.encode(data))
    assert result.status is DecodeStatus.CLEAN and result.data == data


@settings(max_examples=200)
@given(
    data=st.integers(min_value=0, max_value=(1 << 64) - 1),
    bit=st.integers(min_value=0, max_value=71),
)
def test_property_single_error_corrected_72_64(data, bit):
    code = SecdedCode(64)
    result = code.decode(code.encode(data) ^ (1 << bit))
    assert result.status is DecodeStatus.CORRECTED
    assert result.data == data


@settings(max_examples=200)
@given(
    data=st.integers(min_value=0, max_value=(1 << 64) - 1),
    bits=st.sets(st.integers(min_value=0, max_value=71), min_size=2, max_size=2),
)
def test_property_double_error_detected_72_64(data, bits):
    code = SecdedCode(64)
    mask = 0
    for b in bits:
        mask |= 1 << b
    result = code.decode(code.encode(data) ^ mask)
    assert result.status is DecodeStatus.DETECTED
