"""Property-based tests for the CRC codes.

The guarantee the end-to-end CRC check relies on: a CRC whose generator
polynomial has a nonzero constant term detects **every** burst error of
length at most the polynomial degree (the error polynomial then cannot
be a multiple of the generator).  All three shipped polynomials
(CRC-8/ATM, CRC-16-CCITT, IEEE CRC-32) have the +1 term, so hypothesis
can quantify over arbitrary in-window bursts at the paper's 128-bit
flit width.
"""

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.coding.crc import CRC

PAYLOAD_BITS = 128

CRCS = {"crc8": CRC.crc8(), "crc16": CRC.crc16(), "crc32": CRC.crc32()}

payloads = st.integers(min_value=0, max_value=(1 << PAYLOAD_BITS) - 1)


@st.composite
def bursts(draw, width):
    """An error mask whose set bits span at most ``width`` positions.

    A burst of length L has its first and last bits set (that is what
    makes L its length); interior bits are arbitrary.  The burst is
    placed at a random offset inside the payload window.
    """
    length = draw(st.integers(min_value=1, max_value=width))
    if length == 1:
        pattern = 1
    else:
        interior = draw(st.integers(0, (1 << (length - 2)) - 1))
        pattern = 1 | (interior << 1) | (1 << (length - 1))
    offset = draw(st.integers(0, PAYLOAD_BITS - length))
    return pattern << offset


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(CRCS))
    @given(payload=payloads)
    @settings(deadline=None)
    def test_verify_accepts_own_checksum(self, name, payload):
        crc = CRCS[name]
        check = crc.compute(payload, PAYLOAD_BITS)
        assert crc.verify(payload, PAYLOAD_BITS, check)
        assert 0 <= check < (1 << crc.width)


class TestBurstDetection:
    @pytest.mark.parametrize("name", sorted(CRCS))
    @given(data=st.data())
    @settings(deadline=None)
    def test_detects_bursts_up_to_polynomial_degree(self, name, data):
        crc = CRCS[name]
        mask = data.draw(bursts(crc.width))
        assert crc.detects(mask, PAYLOAD_BITS)

    @pytest.mark.parametrize("name", sorted(CRCS))
    @given(payload=payloads, data=st.data())
    @settings(deadline=None)
    def test_corrupted_payload_fails_verify(self, name, payload, data):
        """The linearity argument made concrete: flipping a burst in a
        real payload must flip the checksum."""
        crc = CRCS[name]
        mask = data.draw(bursts(crc.width))
        check = crc.compute(payload, PAYLOAD_BITS)
        assert not crc.verify(payload ^ mask, PAYLOAD_BITS, check)

    @pytest.mark.parametrize("name", sorted(CRCS))
    @given(data=st.data())
    @settings(deadline=None)
    def test_single_bit_errors_always_detected(self, name, data):
        crc = CRCS[name]
        position = data.draw(st.integers(0, PAYLOAD_BITS - 1))
        assert crc.detects(1 << position, PAYLOAD_BITS)
