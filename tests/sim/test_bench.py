"""Tests for the kernel bench harness's closed-loop sensor scenario."""

from repro.sim.bench import SCENARIOS, run_bench


def test_sensor_scenario_kernel_equivalent_and_faulted():
    """run_bench itself raises on fast/naive digest divergence; this
    pins that the digest also carries the defense tallies and that the
    campaign actually corrupted telemetry on both kernels."""
    assert "sensor" in SCENARIOS
    payload = run_bench(quick=True, scenarios=["sensor"])
    row = payload["scenarios"]["sensor"]
    digest = row["fast"]["digest"]
    assert digest == row["naive"]["digest"]
    sensor = digest["sensor"]
    assert sensor["injected"]["drop"] > 0
    assert sensor["injected"]["stuck"] > 0
    assert sensor["rejected"] > 0
    assert sensor["holds"] + sensor["clamps"] > 0
    assert digest["packets_delivered"] > 0
