"""Tests for the kernel bench harness's closed-loop fault scenarios."""

from repro.sim.bench import SCENARIOS, run_bench


def test_sensor_scenario_kernel_equivalent_and_faulted():
    """run_bench itself raises on fast/naive digest divergence; this
    pins that the digest also carries the defense tallies and that the
    campaign actually corrupted telemetry on both kernels."""
    assert "sensor" in SCENARIOS
    payload = run_bench(quick=True, scenarios=["sensor"])
    row = payload["scenarios"]["sensor"]
    digest = row["fast"]["digest"]
    assert digest == row["naive"]["digest"]
    sensor = digest["sensor"]
    assert sensor["injected"]["drop"] > 0
    assert sensor["injected"]["stuck"] > 0
    assert sensor["rejected"] > 0
    assert sensor["holds"] + sensor["clamps"] > 0
    assert digest["packets_delivered"] > 0


def test_softerror_scenario_kernel_equivalent_and_upset():
    """The softerror digest folds the full ECC ledger, so any kernel
    divergence in flip placement or scrub outcomes fails loudly inside
    run_bench; this pins that the campaign actually upset the Q-tables
    and that the scrubber actually corrected on both kernels."""
    assert "softerror" in SCENARIOS
    payload = run_bench(quick=True, scenarios=["softerror"])
    row = payload["scenarios"]["softerror"]
    digest = row["fast"]["digest"]
    assert digest == row["naive"]["digest"]
    ecc = digest["ecc"]
    assert ecc["injected"]["qtable"] > 0
    assert ecc["scrubs"] > 0
    assert ecc["corrected"] > 0
    assert digest["packets_delivered"] > 0
