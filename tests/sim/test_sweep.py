"""Tests for the parallel sweep runner and its result cache."""

import dataclasses
import json
import os
import time

import pytest

from repro.sim import (
    DESIGN_ORDER,
    SweepCache,
    SweepPoint,
    SweepProgress,
    SweepRunner,
    SweepSpec,
    merge_suite,
    merge_trace_grid,
    normalized_tables,
    point_cache_key,
    run_parsec_suite,
    scaled_config,
)
from repro.sim.sweep import CACHE_SCHEMA, MODE_DESIGNS


def tiny_config(**overrides):
    kwargs = dict(
        width=3, height=3, epoch_cycles=100, pretrain_cycles=0,
        warmup_cycles=200,
    )
    kwargs.update(overrides)
    return scaled_config(**kwargs)


def tiny_trace_spec(**overrides):
    kwargs = dict(
        config=tiny_config(),
        kind="trace",
        designs=("crc", "arq_ecc"),
        traffics=("swaptions",),
        cycles=400,
    )
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


class TestGridExpansion:
    def test_trace_cross_product_order(self):
        spec = SweepSpec(
            config=tiny_config(),
            kind="trace",
            designs=("crc", "rl"),
            traffics=("canneal", "x264"),
            seeds=(0, 1),
            error_scales=(1.0, 2.0),
            cycles=500,
        )
        points = spec.expand()
        assert len(points) == 2 * 2 * 2 * 2
        # Deterministic order: traffic, scale, seed, design.
        assert [
            (p.traffic, p.error_scale, p.seed, p.design) for p in points[:4]
        ] == [
            ("canneal", 1.0, 0, "crc"),
            ("canneal", 1.0, 0, "rl"),
            ("canneal", 1.0, 1, "crc"),
            ("canneal", 1.0, 1, "rl"),
        ]
        assert points[-1] == SweepPoint(
            kind="trace", design="rl", traffic="x264", seed=1,
            cycles=500, error_scale=2.0,
        )

    def test_load_rate_axis(self):
        spec = SweepSpec(
            config=tiny_config(), kind="load", designs=("crc",),
            traffics=("uniform",), rates=(0.005, 0.01), cycles=400,
        )
        points = spec.expand()
        assert [p.rate for p in points] == [0.005, 0.01]
        assert all(p.kind == "load" for p in points)

    def test_suite_joins_benchmarks_into_one_point_per_design(self):
        spec = SweepSpec(
            config=tiny_config(), kind="suite", designs=("crc", "dt"),
            traffics=("canneal", "x264"), cycles=400,
        )
        points = spec.expand()
        assert len(points) == 2
        assert all(p.traffic == "canneal,x264" for p in points)

    def test_mode_error_designs(self):
        spec = SweepSpec(
            config=tiny_config(), kind="mode_error", designs=MODE_DESIGNS,
            traffics=("uniform",), error_probabilities=(0.0, 0.05), cycles=50,
        )
        assert len(spec.expand()) == 8

    def test_chaos_expands_fault_spec_axis(self):
        spec = SweepSpec(
            config=tiny_config(), kind="chaos", designs=("xy", "adaptive"),
            traffics=("uniform",), rates=(0.1,),
            fault_specs=("", "link@500:5E"), cycles=400,
        )
        points = spec.expand()
        assert len(points) == 4
        assert sorted({p.fault_spec for p in points}) == ["", "link@500:5E"]
        assert all(p.rate == 0.1 for p in points)

    def test_fault_specs_ignored_outside_chaos(self):
        spec = tiny_trace_spec(fault_specs=("", "link@500:5E"))
        assert all(p.fault_spec == "" for p in spec.expand())

    def test_sensor_chaos_expands_sensor_spec_axis(self):
        spec = SweepSpec(
            config=tiny_config(), kind="sensor_chaos", designs=("rl",),
            traffics=("uniform",), rates=(0.05,),
            fault_specs=("",),
            sensor_specs=("drop@0.2:util", "stuck@r1.temp=0.9"),
            cycles=400,
        )
        points = spec.expand()
        assert len(points) == 2
        assert sorted(p.sensor_spec for p in points) == [
            "drop@0.2:util", "stuck@r1.temp=0.9",
        ]
        assert all(p.kind == "sensor_chaos" and p.rate == 0.05 for p in points)

    def test_sensor_specs_ignored_outside_sensor_chaos(self):
        spec = tiny_trace_spec(sensor_specs=("", "drop@0.2:util"))
        assert all(p.sensor_spec == "" for p in spec.expand())

    def test_soft_error_expands_soft_error_spec_axis(self):
        spec = SweepSpec(
            config=tiny_config(), kind="soft_error", designs=("rl",),
            traffics=("uniform",), rates=(0.05,),
            fault_specs=("",),
            soft_error_specs=("qtable@1e-5", "qtable@1e-5;burst@800:4"),
            cycles=400,
        )
        points = spec.expand()
        assert len(points) == 2
        assert sorted(p.soft_error_spec for p in points) == [
            "qtable@1e-5", "qtable@1e-5;burst@800:4",
        ]
        assert all(p.kind == "soft_error" and p.rate == 0.05 for p in points)

    def test_soft_error_specs_ignored_outside_soft_error(self):
        spec = tiny_trace_spec(soft_error_specs=("", "qtable@1e-5"))
        assert all(p.soft_error_spec == "" for p in spec.expand())

    def test_sensor_chaos_takes_control_designs(self):
        spec = SweepSpec(
            config=tiny_config(), kind="sensor_chaos", designs=("xy",),
            traffics=("uniform",), sensor_specs=("drop@0.2:util",), cycles=400,
        )
        with pytest.raises(ValueError, match="unknown design"):
            spec.expand()

    def test_chaos_rejects_rl_designs(self):
        spec = SweepSpec(
            config=tiny_config(), kind="chaos", designs=("rl",),
            traffics=("uniform",), cycles=400,
        )
        with pytest.raises(ValueError, match="routings"):
            spec.expand()

    def test_unknown_design_rejected(self):
        with pytest.raises(ValueError, match="unknown design"):
            tiny_trace_spec(designs=("fpga",)).expand()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep kind"):
            SweepSpec(config=tiny_config(), kind="quantum")

    def test_spec_dict_round_trip(self):
        spec = tiny_trace_spec(
            seeds=(3, 4), error_scales=(0.5,),
            soft_error_specs=("", "qtable@1e-5"),
        )
        blob = json.dumps(spec.as_dict())
        assert SweepSpec.from_dict(json.loads(blob)) == spec


class TestCacheKeys:
    def test_key_stable_across_calls(self):
        spec = tiny_trace_spec()
        point = spec.expand()[0]
        assert point_cache_key(spec.config, point) == point_cache_key(
            spec.config, point
        )

    def test_key_sensitive_to_point_fields(self):
        config = tiny_config()
        base = SweepPoint(
            kind="trace", design="crc", traffic="canneal", seed=0, cycles=400
        )
        keys = {point_cache_key(config, base)}
        for change in (
            {"design": "rl"},
            {"seed": 1},
            {"traffic": "x264"},
            {"cycles": 500},
            {"error_scale": 2.0},
        ):
            keys.add(point_cache_key(config, dataclasses.replace(base, **change)))
        assert len(keys) == 6

    def test_key_sensitive_to_fault_spec(self):
        config = tiny_config()
        base = SweepPoint(
            kind="chaos", design="adaptive", traffic="uniform", seed=0,
            cycles=400, rate=0.1,
        )
        keys = {point_cache_key(config, base)}
        for change in (
            {"fault_spec": "link@500:5E"},
            {"fault_spec": "router@800:7"},
        ):
            keys.add(point_cache_key(config, dataclasses.replace(base, **change)))
        assert len(keys) == 3

    def test_key_sensitive_to_sensor_spec(self):
        """Schema 4: a cached healthy point must never be served for a
        sensor-faulted one (or vice versa)."""
        config = tiny_config()
        base = SweepPoint(
            kind="sensor_chaos", design="rl", traffic="uniform", seed=0,
            cycles=400, rate=0.05,
        )
        keys = {point_cache_key(config, base)}
        for change in (
            {"sensor_spec": "drop@0.2:util"},
            {"sensor_spec": "drop@0.2:util;stuck@r1.temp=0.9"},
        ):
            keys.add(point_cache_key(config, dataclasses.replace(base, **change)))
        assert len(keys) == 3

    def test_key_sensitive_to_soft_error_spec(self):
        """Schema 5: a cached healthy point must never be served for an
        SEU campaign (or one campaign for another)."""
        config = tiny_config()
        base = SweepPoint(
            kind="soft_error", design="rl", traffic="uniform", seed=0,
            cycles=400, rate=0.05,
        )
        keys = {point_cache_key(config, base)}
        for change in (
            {"soft_error_spec": "qtable@1e-5"},
            {"soft_error_spec": "qtable@1e-5;mode@r3+500"},
        ):
            keys.add(point_cache_key(config, dataclasses.replace(base, **change)))
        assert len(keys) == 3

    def test_key_sensitive_to_config(self):
        point = SweepPoint(
            kind="trace", design="crc", traffic="canneal", seed=0, cycles=400
        )
        assert point_cache_key(tiny_config(), point) != point_cache_key(
            tiny_config(warmup_cycles=300), point
        )

    def test_stale_schema_entries_miss(self, tmp_path):
        cache = SweepCache(tmp_path)
        point = SweepPoint(
            kind="trace", design="crc", traffic="canneal", seed=0, cycles=400
        )
        key = point_cache_key(tiny_config(), point)
        cache.store(key, point, {"run": None})
        entry = json.loads(cache.path(key).read_text())
        entry["schema"] = CACHE_SCHEMA - 1
        cache.path(key).write_text(json.dumps(entry))
        assert cache.load(key) is None

    def test_corrupt_entries_miss(self, tmp_path):
        cache = SweepCache(tmp_path)
        cache.root.mkdir(exist_ok=True)
        cache.path("deadbeef").write_text("{truncated")
        assert cache.load("deadbeef") is None


class TestCacheCorruption:
    """Satellite: every corruption path misses quietly, never raises."""

    def _stored(self, tmp_path):
        cache = SweepCache(tmp_path)
        point = SweepPoint(
            kind="trace", design="crc", traffic="canneal", seed=0, cycles=400
        )
        key = point_cache_key(tiny_config(), point)
        cache.store(key, point, {"run": {"mean_latency": 12.5}, "elapsed": 1.0})
        return cache, key

    def test_checksum_mismatch_misses(self, tmp_path):
        cache, key = self._stored(tmp_path)
        entry = json.loads(cache.path(key).read_text())
        entry["payload"]["run"]["mean_latency"] = 99.0  # tamper, stale crc32
        cache.path(key).write_text(json.dumps(entry))
        assert cache.load(key) is None

    def test_truncated_json_misses(self, tmp_path):
        cache, key = self._stored(tmp_path)
        blob = cache.path(key).read_text()
        cache.path(key).write_text(blob[: len(blob) // 2])
        assert cache.load(key) is None

    def test_binary_garbage_misses(self, tmp_path):
        cache, key = self._stored(tmp_path)
        cache.path(key).write_bytes(b"\x00\xff\xfe garbage \x80")
        assert cache.load(key) is None

    def test_non_dict_entry_misses(self, tmp_path):
        cache, key = self._stored(tmp_path)
        cache.path(key).write_text("[1, 2, 3]")
        assert cache.load(key) is None

    def test_non_dict_payload_misses(self, tmp_path):
        cache, key = self._stored(tmp_path)
        entry = json.loads(cache.path(key).read_text())
        entry["payload"] = "oops"
        cache.path(key).write_text(json.dumps(entry))
        assert cache.load(key) is None

    def test_intact_entry_still_hits(self, tmp_path):
        cache, key = self._stored(tmp_path)
        payload = cache.load(key)
        assert payload is not None
        assert payload["run"]["mean_latency"] == 12.5

    def test_store_uses_unique_tmp_name(self, tmp_path, monkeypatch):
        """Satellite: concurrent sweeps sharing a cache dir must not race
        on a shared `<key>.tmp` — the tmp name carries pid + random part."""
        cache = SweepCache(tmp_path)
        point = SweepPoint(
            kind="trace", design="crc", traffic="canneal", seed=0, cycles=400
        )
        key = point_cache_key(tiny_config(), point)
        seen = []
        real_replace = os.replace

        def spy(src, dst):
            seen.append((str(src), str(dst)))
            return real_replace(src, dst)

        monkeypatch.setattr("repro.sim.sweep.os.replace", spy)
        cache.store(key, point, {"run": None})
        (src, dst) = seen[0]
        assert dst.endswith(f"{key}.json")
        assert src != f"{dst}.tmp"
        assert str(os.getpid()) in os.path.basename(src)
        # no tmp residue either way
        assert [p.name for p in cache.root.iterdir()] == [f"{key}.json"]


# ----------------------------------------------------------------------
# Supervision: retries, quarantine, timeouts, worker death
# ----------------------------------------------------------------------
_FLAKY_CALLS = {"n": 0}


def _always_failing_point(config, point):
    raise RuntimeError("poison point")


def _flaky_point(config, point):
    _FLAKY_CALLS["n"] += 1
    if _FLAKY_CALLS["n"] == 1:
        raise RuntimeError("transient glitch")
    from repro.sim.sweep import _EVALUATORS

    payload = _EVALUATORS[point.kind](config, point)
    payload["elapsed"] = 0.0
    return payload


def _hanging_point(config, point):
    time.sleep(60)


def _dying_point(config, point):
    os._exit(13)


class TestSupervision:
    def _runner(self, tmp_path, **kwargs):
        kwargs.setdefault("cache_dir", tmp_path)
        kwargs.setdefault("retry_base_delay", 0.01)
        return SweepRunner(tiny_trace_spec(), **kwargs)

    def test_serial_quarantines_poison_point(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            "repro.sim.sweep.run_sweep_point", _always_failing_point
        )
        runner = self._runner(tmp_path, jobs=1, max_retries=1)
        results = runner.run()
        assert results == [None, None]
        report = runner.report
        assert not report.succeeded
        assert len(report.quarantined) == 2
        assert report.retries == 2  # one retry per point
        assert report.completed == 0

    def test_serial_retry_recovers_flaky_point(self, tmp_path, monkeypatch):
        _FLAKY_CALLS["n"] = 0
        monkeypatch.setattr("repro.sim.sweep.run_sweep_point", _flaky_point)
        runner = self._runner(tmp_path, jobs=1, max_retries=2)
        results = runner.run()
        assert all(r is not None for r in results)
        assert runner.report.succeeded
        assert runner.report.retries == 1
        assert runner.report.completed == 2

    def test_supervised_quarantines_poison_point(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            "repro.sim.sweep.run_sweep_point", _always_failing_point
        )
        runner = self._runner(tmp_path, jobs=2, max_retries=0)
        results = runner.run()
        assert results == [None, None]
        assert len(runner.report.quarantined) == 2
        assert runner.report.succeeded is False

    def test_supervised_timeout_kills_and_quarantines(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.sim.sweep.run_sweep_point", _hanging_point)
        runner = self._runner(
            tmp_path, jobs=2, max_retries=0, point_timeout=0.5
        )
        started = time.monotonic()
        results = runner.run()
        elapsed = time.monotonic() - started
        assert results == [None, None]
        assert runner.report.timeouts == 2
        assert len(runner.report.quarantined) == 2
        assert elapsed < 30  # nowhere near the 60 s the points would hang

    def test_supervised_detects_hard_worker_death(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.sim.sweep.run_sweep_point", _dying_point)
        runner = self._runner(tmp_path, jobs=2, max_retries=0)
        results = runner.run()
        assert results == [None, None]
        assert runner.report.worker_deaths == 2
        assert len(runner.report.quarantined) == 2

    def test_quarantine_does_not_block_healthy_points(self, tmp_path, monkeypatch):
        """One poison point must not take down the rest of the sweep, and
        surviving results are flushed to the cache incrementally."""
        real = run_sweep_point_original = __import__(
            "repro.sim.sweep", fromlist=["run_sweep_point"]
        ).run_sweep_point

        def poison_first(config, point):
            if point.design == "crc":
                raise RuntimeError("poison")
            return real(config, point)

        monkeypatch.setattr("repro.sim.sweep.run_sweep_point", poison_first)
        runner = self._runner(tmp_path, jobs=2, max_retries=0)
        results = runner.run()
        assert results[0] is None  # crc quarantined
        assert results[1] is not None  # arq_ecc survived
        assert len(runner.report.quarantined) == 1
        assert runner.report.completed == 1
        # the healthy point is in the cache despite the failed sweep
        spec = tiny_trace_spec()
        key = point_cache_key(spec.config, spec.expand()[1])
        assert SweepCache(tmp_path).load(key) is not None

    def test_backoff_is_seeded_and_grows(self, tmp_path):
        runner = self._runner(
            tmp_path, retry_base_delay=0.5, retry_jitter=0.5
        )
        d1 = runner._backoff_delay("somekey", 1)
        assert d1 == runner._backoff_delay("somekey", 1)  # deterministic
        assert runner._backoff_delay("otherkey", 1) != d1  # decorrelated
        assert runner._backoff_delay("somekey", 3) > d1  # exponential
        assert 0.5 <= d1 <= 0.75 * 1.5

    def test_report_counts_cache_hits(self, tmp_path):
        spec = tiny_trace_spec()
        SweepRunner(spec, cache_dir=tmp_path).run()
        replay = SweepRunner(spec, cache_dir=tmp_path)
        replay.run()
        report = replay.report
        assert report.total == 2
        assert report.from_cache == 2
        assert report.completed == 2
        assert report.executed == 0
        assert report.succeeded
        assert report.elapsed_seconds >= 0.0

    def test_invalid_supervision_knobs_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="point_timeout"):
            self._runner(tmp_path, point_timeout=0.0)
        with pytest.raises(ValueError, match="max_retries"):
            self._runner(tmp_path, max_retries=-1)
        with pytest.raises(ValueError, match="backoff"):
            self._runner(tmp_path, retry_base_delay=-1.0)


class TestRunnerCaching:
    def test_cache_hit_skips_simulation(self, tmp_path):
        spec = tiny_trace_spec()
        first = SweepRunner(spec, cache_dir=tmp_path)
        results = first.run()
        assert first.executed == 2
        assert all(not r.cached for r in results)

        second = SweepRunner(spec, cache_dir=tmp_path)
        replayed = second.run()
        assert second.executed == 0
        assert all(r.cached for r in replayed)
        for fresh, cached in zip(results, replayed):
            assert fresh.run.constructor_dict() == cached.run.constructor_dict()

    def test_resume_after_interrupt(self, tmp_path):
        """Losing part of the cache re-runs only the missing points."""
        spec = tiny_trace_spec()
        runner = SweepRunner(spec, cache_dir=tmp_path)
        runner.run()
        victim = point_cache_key(spec.config, spec.expand()[1])
        SweepCache(tmp_path).path(victim).unlink()

        resumed = SweepRunner(spec, cache_dir=tmp_path)
        results = resumed.run()
        assert resumed.executed == 1
        assert results[0].cached and not results[1].cached

    def test_no_cache_runs_everything(self, tmp_path):
        spec = tiny_trace_spec()
        SweepRunner(spec, cache_dir=tmp_path).run()
        runner = SweepRunner(spec, cache_dir=tmp_path, use_cache=False)
        runner.run()
        assert runner.executed == 2

    def test_refresh_recomputes_but_stores(self, tmp_path):
        spec = tiny_trace_spec()
        SweepRunner(spec, cache_dir=tmp_path).run()
        refresher = SweepRunner(spec, cache_dir=tmp_path, refresh=True)
        refresher.run()
        assert refresher.executed == 2
        replay = SweepRunner(spec, cache_dir=tmp_path)
        replay.run()
        assert replay.executed == 0

    def test_progress_reporting(self, tmp_path):
        snapshots = []

        def record(progress):
            snapshots.append(
                (progress.done, progress.cached, progress.running, progress.total)
            )

        spec = tiny_trace_spec()
        SweepRunner(spec, cache_dir=tmp_path, progress=record).run()
        assert snapshots[0] == (0, 0, 0, 2)
        assert snapshots[-1] == (2, 0, 0, 2)

        cached_run = SweepRunner(spec, cache_dir=tmp_path, progress=record)
        snapshots.clear()
        cached_run.run()
        assert snapshots == [(2, 2, 0, 2)]

    def test_eta_appears_after_first_executed_point(self):
        progress = SweepProgress(total=4, jobs=2)
        assert progress.eta_seconds() is None
        progress.executed_seconds.append(2.0)
        progress.done = 1
        assert progress.eta_seconds() == pytest.approx(2.0 * 3 / 2)


class TestParallelEqualsSerial:
    def test_jobs1_and_jobs2_merge_identically(self, tmp_path):
        spec = tiny_trace_spec(seeds=(0, 1))
        serial = SweepRunner(spec, jobs=1, cache_dir=tmp_path / "serial")
        parallel = SweepRunner(spec, jobs=2, cache_dir=tmp_path / "parallel")
        serial_grid = merge_trace_grid(serial.run())
        parallel_grid = merge_trace_grid(parallel.run())
        assert serial.executed == parallel.executed == 4
        assert serial_grid.keys() == parallel_grid.keys()
        for cell in serial_grid:
            for design in serial_grid[cell]:
                assert (
                    serial_grid[cell][design].constructor_dict()
                    == parallel_grid[cell][design].constructor_dict()
                )

    def test_load_points_match_across_jobs(self, tmp_path):
        spec = SweepSpec(
            config=tiny_config(), kind="load", designs=("crc",),
            traffics=("uniform",), rates=(0.005, 0.01), cycles=400,
        )
        serial = SweepRunner(spec, jobs=1, cache_dir=tmp_path / "s").run()
        parallel = SweepRunner(spec, jobs=2, cache_dir=tmp_path / "p").run()
        assert [r.load for r in serial] == [r.load for r in parallel]
        assert all(r.load["latency"] > 0 for r in serial)


class TestMerging:
    def test_normalized_tables_match_experiment(self, tmp_path):
        spec = tiny_trace_spec(designs=DESIGN_ORDER[:2])
        grid = merge_trace_grid(SweepRunner(spec, cache_dir=tmp_path).run())
        tables = normalized_tables(
            grid, {"latency": lambda r: r.mean_latency}
        )
        cell = ("swaptions", 1.0, 0)
        assert tables[cell]["latency"]["crc"] == pytest.approx(1.0)
        assert tables[cell]["latency"]["arq_ecc"] > 0

    def test_suite_points_equal_run_parsec_suite(self, tmp_path):
        """The suite kind must preserve run_parsec_suite's exact
        semantics: one pre-training per design, every benchmark cell
        cloned fresh from the frozen snapshot (no state carried across
        benchmarks)."""
        config = tiny_config(pretrain_cycles=1_500)
        benchmarks = ("swaptions", "blackscholes")
        spec = SweepSpec(
            config=config, kind="suite", designs=("crc", "dt"),
            traffics=benchmarks, seeds=(3,), cycles=400,
        )
        merged = merge_suite(SweepRunner(spec, jobs=2, cache_dir=tmp_path).run())

        from repro.baselines import DecisionTreePolicy, crc_policy

        reference = run_parsec_suite(
            config, 400, benchmarks=benchmarks, seed=3,
            designs={"crc": crc_policy, "dt": DecisionTreePolicy},
        )
        assert set(merged) == set(reference)
        for bench in reference:
            for design in reference[bench]:
                assert (
                    merged[bench][design].constructor_dict()
                    == reference[bench][design].constructor_dict()
                )
