"""Tests for the parallel sweep runner and its result cache."""

import dataclasses
import json

import pytest

from repro.sim import (
    DESIGN_ORDER,
    SweepCache,
    SweepPoint,
    SweepProgress,
    SweepRunner,
    SweepSpec,
    merge_suite,
    merge_trace_grid,
    normalized_tables,
    point_cache_key,
    run_parsec_suite,
    scaled_config,
)
from repro.sim.sweep import CACHE_SCHEMA, MODE_DESIGNS


def tiny_config(**overrides):
    kwargs = dict(
        width=3, height=3, epoch_cycles=100, pretrain_cycles=0,
        warmup_cycles=200,
    )
    kwargs.update(overrides)
    return scaled_config(**kwargs)


def tiny_trace_spec(**overrides):
    kwargs = dict(
        config=tiny_config(),
        kind="trace",
        designs=("crc", "arq_ecc"),
        traffics=("swaptions",),
        cycles=400,
    )
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


class TestGridExpansion:
    def test_trace_cross_product_order(self):
        spec = SweepSpec(
            config=tiny_config(),
            kind="trace",
            designs=("crc", "rl"),
            traffics=("canneal", "x264"),
            seeds=(0, 1),
            error_scales=(1.0, 2.0),
            cycles=500,
        )
        points = spec.expand()
        assert len(points) == 2 * 2 * 2 * 2
        # Deterministic order: traffic, scale, seed, design.
        assert [
            (p.traffic, p.error_scale, p.seed, p.design) for p in points[:4]
        ] == [
            ("canneal", 1.0, 0, "crc"),
            ("canneal", 1.0, 0, "rl"),
            ("canneal", 1.0, 1, "crc"),
            ("canneal", 1.0, 1, "rl"),
        ]
        assert points[-1] == SweepPoint(
            kind="trace", design="rl", traffic="x264", seed=1,
            cycles=500, error_scale=2.0,
        )

    def test_load_rate_axis(self):
        spec = SweepSpec(
            config=tiny_config(), kind="load", designs=("crc",),
            traffics=("uniform",), rates=(0.005, 0.01), cycles=400,
        )
        points = spec.expand()
        assert [p.rate for p in points] == [0.005, 0.01]
        assert all(p.kind == "load" for p in points)

    def test_suite_joins_benchmarks_into_one_point_per_design(self):
        spec = SweepSpec(
            config=tiny_config(), kind="suite", designs=("crc", "dt"),
            traffics=("canneal", "x264"), cycles=400,
        )
        points = spec.expand()
        assert len(points) == 2
        assert all(p.traffic == "canneal,x264" for p in points)

    def test_mode_error_designs(self):
        spec = SweepSpec(
            config=tiny_config(), kind="mode_error", designs=MODE_DESIGNS,
            traffics=("uniform",), error_probabilities=(0.0, 0.05), cycles=50,
        )
        assert len(spec.expand()) == 8

    def test_chaos_expands_fault_spec_axis(self):
        spec = SweepSpec(
            config=tiny_config(), kind="chaos", designs=("xy", "adaptive"),
            traffics=("uniform",), rates=(0.1,),
            fault_specs=("", "link@500:5E"), cycles=400,
        )
        points = spec.expand()
        assert len(points) == 4
        assert sorted({p.fault_spec for p in points}) == ["", "link@500:5E"]
        assert all(p.rate == 0.1 for p in points)

    def test_fault_specs_ignored_outside_chaos(self):
        spec = tiny_trace_spec(fault_specs=("", "link@500:5E"))
        assert all(p.fault_spec == "" for p in spec.expand())

    def test_chaos_rejects_rl_designs(self):
        spec = SweepSpec(
            config=tiny_config(), kind="chaos", designs=("rl",),
            traffics=("uniform",), cycles=400,
        )
        with pytest.raises(ValueError, match="routings"):
            spec.expand()

    def test_unknown_design_rejected(self):
        with pytest.raises(ValueError, match="unknown design"):
            tiny_trace_spec(designs=("fpga",)).expand()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep kind"):
            SweepSpec(config=tiny_config(), kind="quantum")

    def test_spec_dict_round_trip(self):
        spec = tiny_trace_spec(seeds=(3, 4), error_scales=(0.5,))
        blob = json.dumps(spec.as_dict())
        assert SweepSpec.from_dict(json.loads(blob)) == spec


class TestCacheKeys:
    def test_key_stable_across_calls(self):
        spec = tiny_trace_spec()
        point = spec.expand()[0]
        assert point_cache_key(spec.config, point) == point_cache_key(
            spec.config, point
        )

    def test_key_sensitive_to_point_fields(self):
        config = tiny_config()
        base = SweepPoint(
            kind="trace", design="crc", traffic="canneal", seed=0, cycles=400
        )
        keys = {point_cache_key(config, base)}
        for change in (
            {"design": "rl"},
            {"seed": 1},
            {"traffic": "x264"},
            {"cycles": 500},
            {"error_scale": 2.0},
        ):
            keys.add(point_cache_key(config, dataclasses.replace(base, **change)))
        assert len(keys) == 6

    def test_key_sensitive_to_fault_spec(self):
        config = tiny_config()
        base = SweepPoint(
            kind="chaos", design="adaptive", traffic="uniform", seed=0,
            cycles=400, rate=0.1,
        )
        keys = {point_cache_key(config, base)}
        for change in (
            {"fault_spec": "link@500:5E"},
            {"fault_spec": "router@800:7"},
        ):
            keys.add(point_cache_key(config, dataclasses.replace(base, **change)))
        assert len(keys) == 3

    def test_key_sensitive_to_config(self):
        point = SweepPoint(
            kind="trace", design="crc", traffic="canneal", seed=0, cycles=400
        )
        assert point_cache_key(tiny_config(), point) != point_cache_key(
            tiny_config(warmup_cycles=300), point
        )

    def test_stale_schema_entries_miss(self, tmp_path):
        cache = SweepCache(tmp_path)
        point = SweepPoint(
            kind="trace", design="crc", traffic="canneal", seed=0, cycles=400
        )
        key = point_cache_key(tiny_config(), point)
        cache.store(key, point, {"run": None})
        entry = json.loads(cache.path(key).read_text())
        entry["schema"] = CACHE_SCHEMA - 1
        cache.path(key).write_text(json.dumps(entry))
        assert cache.load(key) is None

    def test_corrupt_entries_miss(self, tmp_path):
        cache = SweepCache(tmp_path)
        cache.root.mkdir(exist_ok=True)
        cache.path("deadbeef").write_text("{truncated")
        assert cache.load("deadbeef") is None


class TestRunnerCaching:
    def test_cache_hit_skips_simulation(self, tmp_path):
        spec = tiny_trace_spec()
        first = SweepRunner(spec, cache_dir=tmp_path)
        results = first.run()
        assert first.executed == 2
        assert all(not r.cached for r in results)

        second = SweepRunner(spec, cache_dir=tmp_path)
        replayed = second.run()
        assert second.executed == 0
        assert all(r.cached for r in replayed)
        for fresh, cached in zip(results, replayed):
            assert fresh.run.constructor_dict() == cached.run.constructor_dict()

    def test_resume_after_interrupt(self, tmp_path):
        """Losing part of the cache re-runs only the missing points."""
        spec = tiny_trace_spec()
        runner = SweepRunner(spec, cache_dir=tmp_path)
        runner.run()
        victim = point_cache_key(spec.config, spec.expand()[1])
        SweepCache(tmp_path).path(victim).unlink()

        resumed = SweepRunner(spec, cache_dir=tmp_path)
        results = resumed.run()
        assert resumed.executed == 1
        assert results[0].cached and not results[1].cached

    def test_no_cache_runs_everything(self, tmp_path):
        spec = tiny_trace_spec()
        SweepRunner(spec, cache_dir=tmp_path).run()
        runner = SweepRunner(spec, cache_dir=tmp_path, use_cache=False)
        runner.run()
        assert runner.executed == 2

    def test_refresh_recomputes_but_stores(self, tmp_path):
        spec = tiny_trace_spec()
        SweepRunner(spec, cache_dir=tmp_path).run()
        refresher = SweepRunner(spec, cache_dir=tmp_path, refresh=True)
        refresher.run()
        assert refresher.executed == 2
        replay = SweepRunner(spec, cache_dir=tmp_path)
        replay.run()
        assert replay.executed == 0

    def test_progress_reporting(self, tmp_path):
        snapshots = []

        def record(progress):
            snapshots.append(
                (progress.done, progress.cached, progress.running, progress.total)
            )

        spec = tiny_trace_spec()
        SweepRunner(spec, cache_dir=tmp_path, progress=record).run()
        assert snapshots[0] == (0, 0, 0, 2)
        assert snapshots[-1] == (2, 0, 0, 2)

        cached_run = SweepRunner(spec, cache_dir=tmp_path, progress=record)
        snapshots.clear()
        cached_run.run()
        assert snapshots == [(2, 2, 0, 2)]

    def test_eta_appears_after_first_executed_point(self):
        progress = SweepProgress(total=4, jobs=2)
        assert progress.eta_seconds() is None
        progress.executed_seconds.append(2.0)
        progress.done = 1
        assert progress.eta_seconds() == pytest.approx(2.0 * 3 / 2)


class TestParallelEqualsSerial:
    def test_jobs1_and_jobs2_merge_identically(self, tmp_path):
        spec = tiny_trace_spec(seeds=(0, 1))
        serial = SweepRunner(spec, jobs=1, cache_dir=tmp_path / "serial")
        parallel = SweepRunner(spec, jobs=2, cache_dir=tmp_path / "parallel")
        serial_grid = merge_trace_grid(serial.run())
        parallel_grid = merge_trace_grid(parallel.run())
        assert serial.executed == parallel.executed == 4
        assert serial_grid.keys() == parallel_grid.keys()
        for cell in serial_grid:
            for design in serial_grid[cell]:
                assert (
                    serial_grid[cell][design].constructor_dict()
                    == parallel_grid[cell][design].constructor_dict()
                )

    def test_load_points_match_across_jobs(self, tmp_path):
        spec = SweepSpec(
            config=tiny_config(), kind="load", designs=("crc",),
            traffics=("uniform",), rates=(0.005, 0.01), cycles=400,
        )
        serial = SweepRunner(spec, jobs=1, cache_dir=tmp_path / "s").run()
        parallel = SweepRunner(spec, jobs=2, cache_dir=tmp_path / "p").run()
        assert [r.load for r in serial] == [r.load for r in parallel]
        assert all(r.load["latency"] > 0 for r in serial)


class TestMerging:
    def test_normalized_tables_match_experiment(self, tmp_path):
        spec = tiny_trace_spec(designs=DESIGN_ORDER[:2])
        grid = merge_trace_grid(SweepRunner(spec, cache_dir=tmp_path).run())
        tables = normalized_tables(
            grid, {"latency": lambda r: r.mean_latency}
        )
        cell = ("swaptions", 1.0, 0)
        assert tables[cell]["latency"]["crc"] == pytest.approx(1.0)
        assert tables[cell]["latency"]["arq_ecc"] > 0

    def test_suite_points_equal_run_parsec_suite(self, tmp_path):
        """The suite kind must preserve run_parsec_suite's exact
        semantics: shared pre-training, policy state carried across
        benchmarks in order."""
        config = tiny_config(pretrain_cycles=1_500)
        benchmarks = ("swaptions", "blackscholes")
        spec = SweepSpec(
            config=config, kind="suite", designs=("crc", "dt"),
            traffics=benchmarks, seeds=(3,), cycles=400,
        )
        merged = merge_suite(SweepRunner(spec, jobs=2, cache_dir=tmp_path).run())

        from repro.baselines import DecisionTreePolicy, crc_policy

        reference = run_parsec_suite(
            config, 400, benchmarks=benchmarks, seed=3,
            designs={"crc": crc_policy, "dt": DecisionTreePolicy},
        )
        assert set(merged) == set(reference)
        for bench in reference:
            for design in reference[bench]:
                assert (
                    merged[bench][design].constructor_dict()
                    == reference[bench][design].constructor_dict()
                )
