"""Tests for the paper-figure campaign runner and its report tables."""

import pytest

from repro.baselines import DecisionTreePolicy
from repro.obs import MetricRegistry, TraceBuffer
from repro.sim import (
    REPORT_SCHEMA,
    CampaignSpec,
    artifact_key,
    campaign_report,
    default_design_factories,
    ensure_artifact,
    load_policy_artifact,
    pretrain_policy,
    read_policy_artifact_meta,
    render_report_markdown,
    run_campaign,
    run_parsec_suite,
    save_checkpoint,
    scaled_config,
)
from repro.sim.campaign import build_artifacts, campaign_points
from repro.sim.checkpoint import CheckpointError
from repro.sim.metrics import RunResult
from repro.sim.sweep import SweepPoint, _eval_campaign


def tiny_config(**overrides):
    defaults = dict(
        width=3, height=3, epoch_cycles=100, pretrain_cycles=1_500,
        warmup_cycles=200,
    )
    defaults.update(overrides)
    return scaled_config(**defaults)


# ----------------------------------------------------------------------
# Artifact store
# ----------------------------------------------------------------------
class TestArtifacts:
    def test_build_then_reuse(self, tmp_path):
        config = tiny_config()
        path, key, built = ensure_artifact(config, "rl", 0, tmp_path)
        assert built and path.exists()
        meta = read_policy_artifact_meta(path)
        assert meta["key"] == key
        assert meta["design"] == "rl"

        path2, key2, built2 = ensure_artifact(config, "rl", 0, tmp_path)
        assert (path2, key2) == (path, key)
        assert not built2  # warm path: no re-pretraining

    def test_refresh_rebuilds(self, tmp_path):
        config = tiny_config()
        ensure_artifact(config, "rl", 0, tmp_path)
        _, _, built = ensure_artifact(config, "rl", 0, tmp_path, refresh=True)
        assert built

    def test_key_covers_config_design_and_seed(self):
        config = tiny_config()
        base = artifact_key(config, "rl", 0)
        assert artifact_key(config, "rl", 1) != base
        assert artifact_key(config, "dt", 0) != base
        assert artifact_key(tiny_config(pretrain_cycles=1_600), "rl", 0) != base

    def test_torn_artifact_is_rebuilt(self, tmp_path):
        config = tiny_config()
        path, _, _ = ensure_artifact(config, "rl", 0, tmp_path)
        path.write_bytes(path.read_bytes()[:-7])  # tear the container
        with pytest.raises(CheckpointError):
            load_policy_artifact(path)
        _, _, built = ensure_artifact(config, "rl", 0, tmp_path)
        assert built

    def test_foreign_version_container_rejected(self, tmp_path):
        # A full-simulation checkpoint is not a policy artifact even
        # though it shares the container format.
        path = tmp_path / "imposter.ckpt"
        save_checkpoint(str(path), {"state": {"policy": "rl"}}, meta={})
        with pytest.raises(CheckpointError):
            load_policy_artifact(str(path))

    def test_clone_from_artifact_restores_policy(self, tmp_path):
        config = tiny_config()
        path, _, _ = ensure_artifact(config, "dt", 0, tmp_path)
        state, meta = load_policy_artifact(path)
        clone = DecisionTreePolicy()
        clone.load_state(state)
        assert clone.to_state() == state
        assert meta["policy"] == clone.name

    def test_only_trainable_designs_get_artifacts(self, tmp_path):
        spec = CampaignSpec(
            config=tiny_config(),
            benchmarks=("swaptions",),
            designs=("crc", "arq_ecc", "rl"),
        )
        artifacts = build_artifacts(spec, tmp_path)
        assert set(artifacts) == {"rl"}
        points = campaign_points(spec, artifacts)
        assert len(points) == 3
        by_design = {p.design: p for p in points}
        assert by_design["crc"].artifact_path == ""
        assert by_design["rl"].artifact_path.endswith(".ckpt")


# ----------------------------------------------------------------------
# Campaign execution
# ----------------------------------------------------------------------
BENCHMARKS = ("swaptions", "blackscholes")
DESIGNS = ("crc", "rl")


@pytest.fixture(scope="module")
def campaign_setup(tmp_path_factory):
    root = tmp_path_factory.mktemp("campaign")
    spec = CampaignSpec(
        config=tiny_config(), benchmarks=BENCHMARKS, designs=DESIGNS,
        seed=3, trace_cycles=400,
    )
    result = run_campaign(
        spec, jobs=2,
        artifact_dir=root / "artifacts", cache_dir=root / "cache",
    )
    return spec, result, root


class TestRunCampaign:
    def test_grid_shape(self, campaign_setup):
        spec, result, _root = campaign_setup
        assert result.succeeded
        assert set(result.suite) == set(BENCHMARKS)
        for results in result.suite.values():
            assert set(results) == set(DESIGNS)
        counters = result.counters()
        assert counters["cells_total"] == len(BENCHMARKS) * len(DESIGNS)
        assert counters["artifacts_built"] == 1  # rl only

    def test_matches_run_parsec_suite(self, campaign_setup):
        spec, result, _root = campaign_setup
        factories = default_design_factories(spec.seed)
        reference = run_parsec_suite(
            spec.config, spec.trace_cycles, benchmarks=BENCHMARKS,
            seed=spec.seed, designs={d: factories[d] for d in DESIGNS},
        )
        for bench in reference:
            for design in reference[bench]:
                assert (
                    result.suite[bench][design].constructor_dict()
                    == reference[bench][design].constructor_dict()
                ), f"{bench}/{design} diverged from run_parsec_suite"

    def test_warm_rerun_is_pure_cache(self, campaign_setup):
        spec, _result, root = campaign_setup
        rerun = run_campaign(
            spec, jobs=1,
            artifact_dir=root / "artifacts", cache_dir=root / "cache",
        )
        counters = rerun.counters()
        assert counters["artifacts_built"] == 0
        assert counters["artifacts_reused"] == 1
        assert counters["cells_executed"] == 0
        assert counters["cells_cached"] == counters["cells_total"]

    def test_serial_cold_run_bit_identical(self, campaign_setup):
        # jobs=1 with a cold cache (shared artifacts) must reproduce the
        # jobs=2 grid exactly.
        spec, result, root = campaign_setup
        serial = run_campaign(
            spec, jobs=1,
            artifact_dir=root / "artifacts", cache_dir=root / "cache-serial",
        )
        for bench in result.suite:
            for design in result.suite[bench]:
                assert (
                    serial.suite[bench][design].constructor_dict()
                    == result.suite[bench][design].constructor_dict()
                )

    def test_registry_and_tracer_observe_campaign(self, campaign_setup):
        spec, _result, root = campaign_setup
        registry = MetricRegistry()
        tracer = TraceBuffer()
        run_campaign(
            spec, artifact_dir=root / "artifacts", cache_dir=root / "cache",
            registry=registry, tracer=tracer,
        )
        scalars = registry.scalars()
        assert scalars["campaign.cells_total"] == len(BENCHMARKS) * len(DESIGNS)
        kinds = {ev.kind for ev in tracer.events(["campaign"])}
        assert "artifact_reuse" in kinds
        assert "complete" in kinds


class TestCampaignCell:
    def test_trainable_cell_without_artifact_raises(self):
        point = SweepPoint(
            kind="campaign", design="rl", traffic="swaptions", seed=0, cycles=200,
        )
        with pytest.raises(ValueError, match="no pretrained artifact"):
            _eval_campaign(tiny_config(), point)

    def test_artifact_hash_mismatch_raises(self, tmp_path):
        config = tiny_config()
        path, key, _ = ensure_artifact(config, "rl", 0, tmp_path)
        point = SweepPoint(
            kind="campaign", design="rl", traffic="swaptions", seed=0,
            cycles=200, artifact_hash="deadbeef" * 3, artifact_path=str(path),
        )
        with pytest.raises(ValueError, match="key"):
            _eval_campaign(config, point)


# ----------------------------------------------------------------------
# Decision-tree state round trip
# ----------------------------------------------------------------------
class TestDecisionTreeState:
    def test_pretrained_round_trip(self):
        policy = DecisionTreePolicy()
        pretrain_policy(policy, tiny_config(), seed=2)
        state = policy.to_state()
        assert state["frozen"]
        clone = DecisionTreePolicy()
        clone.load_state(state)
        assert clone.to_state() == state

    def test_rejected_state_keeps_model(self):
        policy = DecisionTreePolicy()
        before = policy.to_state()
        policy.load_state({"thresholds": [3.0, 2.0, 1.0]})  # not increasing
        assert policy.to_state() == before


# ----------------------------------------------------------------------
# Report tables
# ----------------------------------------------------------------------
def make_result(design, benchmark, *, cycles=1_000, latency=10.0, retx=4,
                dynamic_pj=1e6, static_pj=5e5, flits=100):
    return RunResult(
        design=design, benchmark=benchmark, execution_cycles=cycles,
        mean_latency=latency, packets_delivered=90, flits_delivered=flits,
        packet_retransmissions=retx, flit_retransmissions=0,
        corrected_errors=0, escaped_errors=0, silent_corruptions=0,
        duplicate_flits=0, dynamic_energy_pj=dynamic_pj,
        static_energy_pj=static_pj, clock_hz=1e9,
    )


class TestReport:
    def suite(self):
        return {
            "canneal": {
                "crc": make_result("crc", "canneal", cycles=1_000, latency=10.0),
                "rl": make_result("rl", "canneal", cycles=500, latency=8.0),
            },
            "x264": {
                "crc": make_result("crc", "x264", cycles=2_000, latency=20.0),
                "rl": make_result("rl", "x264", cycles=1_000, latency=15.0),
            },
        }

    def test_structure_and_values(self):
        report = campaign_report(self.suite())
        assert report["schema"] == REPORT_SCHEMA
        assert report["baseline"] == "crc"
        assert report["benchmarks"] == ["canneal", "x264"]
        assert set(report["figures"]) == {"fig6", "fig7", "fig8", "fig9", "fig10"}
        fig8 = report["figures"]["fig8"]
        assert fig8["per_benchmark"]["canneal"]["rl"] == pytest.approx(0.8)
        assert fig8["geomean"]["crc"] == pytest.approx(1.0)
        # Fig 7 is a speed-UP: crc_cycles / design_cycles, so halving the
        # cycle count doubles the reported ratio.
        fig7 = report["figures"]["fig7"]
        assert fig7["direction"] == "higher"
        assert fig7["per_benchmark"]["canneal"]["rl"] == pytest.approx(2.0)
        assert fig7["geomean"]["rl"] == pytest.approx(2.0)

    def test_zero_baseline_yields_none_not_zero(self):
        suite = self.suite()
        # A zero-energy baseline makes energy efficiency ratios undefined.
        suite["canneal"]["crc"] = make_result(
            "crc", "canneal", dynamic_pj=0.0, static_pj=0.0
        )
        report = campaign_report(suite)
        fig9 = report["figures"]["fig9"]
        assert fig9["per_benchmark"]["canneal"]["rl"] is None
        assert fig9["per_benchmark"]["x264"]["rl"] is not None
        # The geomean skips the undefined benchmark instead of zeroing.
        assert fig9["geomean"]["rl"] == pytest.approx(
            fig9["per_benchmark"]["x264"]["rl"]
        )

    def test_benchmark_missing_baseline_dropped(self):
        suite = self.suite()
        del suite["x264"]["crc"]  # e.g. a quarantined baseline cell
        report = campaign_report(suite)
        assert "x264" not in report["figures"]["fig8"]["per_benchmark"]
        assert report["figures"]["fig8"]["geomean"]["rl"] == pytest.approx(0.8)

    def test_markdown_render(self):
        report = campaign_report(self.suite())
        text = render_report_markdown(report)
        assert "| Figure | Direction | crc | rl |" in text
        assert "Execution speed-up (fig7)" in text
        assert "| **geomean** |" in text
        # Undefined cells render as n/a, never 0.000.
        suite = self.suite()
        suite["canneal"]["crc"] = make_result(
            "crc", "canneal", dynamic_pj=0.0, static_pj=0.0
        )
        assert "n/a" in render_report_markdown(campaign_report(suite))
