"""Tests for simulation configuration (Table II)."""

import pytest

from repro.sim import SimulationConfig, paper_config, scaled_config


class TestPaperConfig:
    def test_table_ii_values(self):
        config = paper_config()
        assert config.width == 8 and config.height == 8      # 8x8 2D mesh
        assert config.num_nodes == 64                        # 64 cores
        assert config.num_vcs == 4                           # 4 VCs per port
        assert config.flit_bits == 128                       # 128 bits/flit
        assert config.packet_size == 4                       # 4 flits
        assert config.routing == "xy"                        # X-Y routing
        assert config.clock_hz == 2.0e9                      # 2.0 GHz
        assert config.voltage == 1.0                         # 1.0 Volt

    def test_section_v_phases(self):
        config = paper_config()
        assert config.epoch_cycles == 1000        # TD rule every 1K cycles
        assert config.pretrain_cycles == 1_000_000
        assert config.warmup_cycles == 300_000


class TestScaledConfig:
    def test_same_topology_shorter_phases(self):
        config = scaled_config()
        paper = paper_config()
        assert (config.width, config.height) == (paper.width, paper.height)
        assert config.pretrain_cycles < paper.pretrain_cycles
        assert config.warmup_cycles < paper.warmup_cycles

    def test_overrides(self):
        config = scaled_config(width=4, height=4, error_scale=2.0)
        assert config.num_nodes == 16
        assert config.error_scale == 2.0


class TestValidation:
    def test_rejects_tiny_mesh(self):
        with pytest.raises(ValueError):
            SimulationConfig(width=1)

    def test_rejects_bad_epoch(self):
        with pytest.raises(ValueError):
            SimulationConfig(epoch_cycles=0)

    def test_rejects_bad_packet_size(self):
        with pytest.raises(ValueError):
            SimulationConfig(packet_size=0)

    def test_rejects_unknown_routing(self):
        with pytest.raises(ValueError):
            SimulationConfig(routing="adaptive-zigzag")

    @pytest.mark.parametrize("routing", ["xy", "yx", "o1turn", "adaptive"])
    def test_accepts_registered_routings(self, routing):
        assert SimulationConfig(routing=routing).routing == routing

    def test_rejects_negative_watchdog_interval(self):
        with pytest.raises(ValueError):
            SimulationConfig(watchdog_interval=-1)

    def test_fault_spec_defaults_healthy(self):
        config = SimulationConfig()
        assert config.fault_spec == ""
        assert config.watchdog_interval == 256

    def test_frozen(self):
        config = SimulationConfig()
        with pytest.raises(AttributeError):
            config.width = 16
