"""Tests for run metrics and stat snapshots."""

import pytest

from repro.noc.stats import NetworkStats
from repro.sim.metrics import RunResult, StatsSnapshot


def make_result(**overrides):
    defaults = dict(
        design="rl",
        benchmark="ferret",
        execution_cycles=10_000,
        mean_latency=25.0,
        packets_delivered=500,
        flits_delivered=2000,
        packet_retransmissions=10,
        flit_retransmissions=40,
        corrected_errors=30,
        escaped_errors=5,
        silent_corruptions=0,
        duplicate_flits=100,
        dynamic_energy_pj=1.0e6,
        static_energy_pj=5.0e5,
        clock_hz=2.0e9,
    )
    defaults.update(overrides)
    return RunResult(**defaults)


class TestRunResult:
    def test_retransmission_events_is_fig6_metric(self):
        assert make_result().retransmission_events == 50

    def test_total_energy(self):
        assert make_result().total_energy_pj == 1.5e6

    def test_execution_seconds(self):
        # 10K cycles at 2 GHz = 5 microseconds.
        assert make_result().execution_seconds == pytest.approx(5e-6)

    def test_energy_efficiency_flits_per_microjoule(self):
        r = make_result()
        assert r.energy_efficiency == pytest.approx(2000 / (1.5e6 * 1e-6))

    def test_dynamic_power(self):
        r = make_result()
        # 1e6 pJ = 1e-6 J over 5 us = 0.2 W.
        assert r.dynamic_power_watts == pytest.approx(0.2)

    def test_zero_guards(self):
        r = make_result(execution_cycles=0, dynamic_energy_pj=0.0, static_energy_pj=0.0)
        assert r.energy_efficiency == 0.0
        assert r.dynamic_power_watts == 0.0
        assert r.total_power_watts == 0.0

    def test_as_dict_round_numbers(self):
        d = make_result().as_dict()
        assert d["design"] == "rl"
        assert d["retransmission_events"] == 50
        assert "energy_efficiency" in d and "dynamic_power_watts" in d


class TestStatsSnapshot:
    def test_delta_isolates_window(self):
        stats = NetworkStats()
        stats.packets_delivered = 10
        stats.flit_retransmissions = 3
        stats.latency.record(20)
        before = StatsSnapshot(stats)

        stats.packets_delivered = 25
        stats.flit_retransmissions = 9
        stats.latency.record(40)
        stats.latency.record(60)
        stats.mode_cycles[2] += 500
        after = StatsSnapshot(stats)

        window = before.delta(after)
        assert window["packets_delivered"] == 15
        assert window["flit_retransmissions"] == 6
        assert window["delivered_in_window"] == 2
        assert window["mean_latency"] == pytest.approx(50.0)
        assert window["mode_cycles"][2] == 500
        assert window["mode_cycles"][0] == 0

    def test_empty_window(self):
        stats = NetworkStats()
        snap = StatsSnapshot(stats)
        window = snap.delta(StatsSnapshot(stats))
        assert window["mean_latency"] == 0.0
        assert window["packets_delivered"] == 0
