"""Tests for the experiment runner."""

import pytest

from repro.baselines import crc_policy
from repro.core.rl_policy import RLControlPolicy
from repro.sim import (
    DESIGN_ORDER,
    compare_designs,
    default_design_factories,
    geometric_mean,
    normalize_to_baseline,
    pretrain_policy,
    run_design_on_trace,
    scaled_config,
    synthesize_benchmark_trace,
)


def tiny_config():
    return scaled_config(
        width=3, height=3, epoch_cycles=100, pretrain_cycles=2000, warmup_cycles=200
    )


class TestFactories:
    def test_four_designs_in_order(self):
        factories = default_design_factories()
        assert set(factories) == set(DESIGN_ORDER)

    def test_factories_produce_fresh_policies(self):
        factories = default_design_factories()
        assert factories["rl"]() is not factories["rl"]()
        assert factories["crc"]().profile.name == "crc"


class TestTraceSynthesis:
    def test_benchmark_trace_on_config_mesh(self):
        config = tiny_config()
        records = synthesize_benchmark_trace("ferret", config, cycles=500, seed=0)
        assert records
        assert all(r.src < config.num_nodes and r.dest < config.num_nodes for r in records)

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            synthesize_benchmark_trace("doom", tiny_config(), cycles=100)


class TestRunners:
    def test_run_design_on_trace(self):
        config = tiny_config()
        records = synthesize_benchmark_trace("swaptions", config, cycles=600, seed=1)
        result = run_design_on_trace(crc_policy(), records, config, "swaptions", seed=1)
        assert result.design == "crc"
        assert result.benchmark == "swaptions"
        assert result.packets_delivered >= len(records)

    def test_pretrain_policy_trains_rl(self):
        policy = RLControlPolicy(share_table=True, seed=1)
        pretrain_policy(policy, tiny_config(), seed=1)
        assert policy.total_updates() > 0

    def test_compare_designs_covers_all(self):
        config = tiny_config()
        records = synthesize_benchmark_trace("swaptions", config, cycles=500, seed=1)
        results = compare_designs(records, config, "swaptions", seed=1)
        assert set(results) == set(DESIGN_ORDER)
        delivered = {r.packets_delivered for r in results.values()}
        # All designs carried (at least) the same offered trace.
        assert min(delivered) >= len(records)

    def test_compare_designs_with_pretrained_policies(self):
        config = tiny_config()
        records = synthesize_benchmark_trace("swaptions", config, cycles=400, seed=1)
        policies = {"crc": crc_policy()}
        results = compare_designs(records, config, "swaptions", seed=1, policies=policies)
        assert set(results) == {"crc"}


class TestNormalization:
    def test_normalize_to_baseline(self):
        config = tiny_config()
        records = synthesize_benchmark_trace("swaptions", config, cycles=400, seed=1)
        results = compare_designs(
            records, config, seed=1,
            designs={"crc": crc_policy, "arq_ecc": default_design_factories()["arq_ecc"]},
        )
        normalized = normalize_to_baseline(results, lambda r: r.mean_latency)
        assert normalized["crc"] == pytest.approx(1.0)
        assert normalized["arq_ecc"] > 0

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([1.0, 0.0]) == 0.0
