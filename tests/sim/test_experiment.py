"""Tests for the experiment runner."""

import math
import zlib

import pytest

from repro.baselines import crc_policy
from repro.core.rl_policy import RLControlPolicy
from repro.sim import (
    DESIGN_ORDER,
    benchmark_trace_seed,
    compare_designs,
    default_design_factories,
    geometric_mean,
    normalize_to_baseline,
    pretrain_policy,
    run_design_on_trace,
    run_parsec_suite,
    scaled_config,
    synthesize_benchmark_trace,
)
from repro.traffic import PARSEC_PROFILES


def tiny_config():
    return scaled_config(
        width=3, height=3, epoch_cycles=100, pretrain_cycles=2000, warmup_cycles=200
    )


class TestFactories:
    def test_four_designs_in_order(self):
        factories = default_design_factories()
        assert set(factories) == set(DESIGN_ORDER)

    def test_factories_produce_fresh_policies(self):
        factories = default_design_factories()
        assert factories["rl"]() is not factories["rl"]()
        assert factories["crc"]().profile.name == "crc"


class TestTraceSynthesis:
    def test_benchmark_trace_on_config_mesh(self):
        config = tiny_config()
        records = synthesize_benchmark_trace("ferret", config, cycles=500, seed=0)
        assert records
        assert all(r.src < config.num_nodes and r.dest < config.num_nodes for r in records)

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            synthesize_benchmark_trace("doom", tiny_config(), cycles=100)


class TestRunners:
    def test_run_design_on_trace(self):
        config = tiny_config()
        records = synthesize_benchmark_trace("swaptions", config, cycles=600, seed=1)
        result = run_design_on_trace(crc_policy(), records, config, "swaptions", seed=1)
        assert result.design == "crc"
        assert result.benchmark == "swaptions"
        assert result.packets_delivered >= len(records)

    def test_pretrain_policy_trains_rl(self):
        policy = RLControlPolicy(share_table=True, seed=1)
        pretrain_policy(policy, tiny_config(), seed=1)
        assert policy.total_updates() > 0

    def test_compare_designs_covers_all(self):
        config = tiny_config()
        records = synthesize_benchmark_trace("swaptions", config, cycles=500, seed=1)
        results = compare_designs(records, config, "swaptions", seed=1)
        assert set(results) == set(DESIGN_ORDER)
        delivered = {r.packets_delivered for r in results.values()}
        # All designs carried (at least) the same offered trace.
        assert min(delivered) >= len(records)

    def test_compare_designs_with_pretrained_policies(self):
        config = tiny_config()
        records = synthesize_benchmark_trace("swaptions", config, cycles=400, seed=1)
        policies = {"crc": crc_policy()}
        results = compare_designs(records, config, "swaptions", seed=1, policies=policies)
        assert set(results) == {"crc"}


class TestNormalization:
    def test_normalize_to_baseline(self):
        config = tiny_config()
        records = synthesize_benchmark_trace("swaptions", config, cycles=400, seed=1)
        results = compare_designs(
            records, config, seed=1,
            designs={"crc": crc_policy, "arq_ecc": default_design_factories()["arq_ecc"]},
        )
        normalized = normalize_to_baseline(results, lambda r: r.mean_latency)
        assert normalized["crc"] == pytest.approx(1.0)
        assert normalized["arq_ecc"] > 0

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_geometric_mean_empty_is_nan(self):
        # An empty geomean is undefined, not "everything matched the
        # baseline perfectly" — 0.0 used to read as a real ratio.
        assert math.isnan(geometric_mean([]))

    def test_geometric_mean_skips_non_positive(self):
        # Non-positive/non-finite values are excluded (with a warning),
        # not allowed to zero out the whole aggregate.
        assert geometric_mean([1.0, 0.0]) == pytest.approx(1.0)
        assert geometric_mean([4.0, -2.0, 9.0]) == pytest.approx(6.0)
        assert geometric_mean([2.0, float("nan"), 8.0]) == pytest.approx(4.0)
        assert math.isnan(geometric_mean([0.0, -1.0]))

    def test_normalize_to_baseline_zero_reference_is_nan(self):
        config = tiny_config()
        records = synthesize_benchmark_trace("swaptions", config, cycles=300, seed=1)
        results = compare_designs(
            records, config, seed=1,
            designs={"crc": crc_policy, "arq_ecc": default_design_factories()["arq_ecc"]},
        )
        # A metric that is 0 for the baseline has no meaningful ratio;
        # every design must come out NaN, never a masked 0.0 or a crash.
        normalized = normalize_to_baseline(results, lambda r: 0.0)
        assert set(normalized) == set(results)
        assert all(math.isnan(v) for v in normalized.values())


class TestTraceSeeding:
    def test_full_crc_mixed_into_seed(self):
        # The seed mixes the full 32-bit CRC of the name, not a mod-1000
        # truncation of it.
        assert benchmark_trace_seed("canneal", 7) == 7 + zlib.crc32(b"canneal")

    def test_profiles_get_distinct_seeds(self):
        seeds = {name: benchmark_trace_seed(name) for name in PARSEC_PROFILES}
        assert len(set(seeds.values())) == len(seeds)

    def test_mod_1000_collision_no_longer_collides(self):
        # Regression for the truncated seed: find two names whose CRCs
        # collide mod 1000 (as the old `% 1000` seeding used) and check
        # the full-width seeds still differ.
        reference = zlib.crc32(b"canneal") % 1000
        collider = next(
            name
            for name in (f"bench{i}" for i in range(100_000))
            if zlib.crc32(name.encode()) % 1000 == reference
            and zlib.crc32(name.encode()) != zlib.crc32(b"canneal")
        )
        assert benchmark_trace_seed(collider) != benchmark_trace_seed("canneal")


class TestSuiteOrderIndependence:
    def test_run_parsec_suite_order_independent(self):
        # Regression for the cross-benchmark policy-state leak: each
        # cell must clone its policy from the frozen pretrain snapshot,
        # so permuting the benchmark list cannot change any cell.
        config = tiny_config()
        factories = default_design_factories(3)
        designs = {name: factories[name] for name in ("crc", "rl")}
        forward = run_parsec_suite(
            config, trace_cycles=400, seed=3,
            benchmarks=["swaptions", "blackscholes"], designs=designs,
        )
        reversed_ = run_parsec_suite(
            config, trace_cycles=400, seed=3,
            benchmarks=["blackscholes", "swaptions"], designs=designs,
        )
        assert set(forward) == set(reversed_)
        for benchmark, results in forward.items():
            for design, result in results.items():
                assert (
                    result.constructor_dict()
                    == reversed_[benchmark][design].constructor_dict()
                ), f"{benchmark}/{design} changed with benchmark order"
