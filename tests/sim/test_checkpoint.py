"""Tests for the checkpoint container and the resumable run plan."""

import json
import math
import shutil
import struct
import zlib

import pytest

from repro.noc.packet import Packet
from repro.sim import scaled_config
from repro.sim.checkpoint import (
    CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION,
    CheckpointError,
    ResumableRun,
    load_checkpoint,
    read_checkpoint_meta,
    save_checkpoint,
)
from repro.sim.simulator import Simulator


def small_config(**overrides):
    kwargs = dict(
        width=3, height=3, epoch_cycles=100, pretrain_cycles=1_200,
        warmup_cycles=200,
    )
    kwargs.update(overrides)
    return scaled_config(**kwargs)


class TestContainer:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "snap.ckpt"
        payload = {"numbers": [1, 2, 3], "nested": {"a": (4, 5)}}
        save_checkpoint(path, payload, {"design": "rl", "cycle": 42})
        restored, meta = load_checkpoint(path)
        assert restored == payload
        assert meta["design"] == "rl" and meta["cycle"] == 42

    def test_meta_readable_without_unpickle(self, tmp_path):
        path = tmp_path / "snap.ckpt"
        save_checkpoint(path, object(), {"phase": "pretrain"})
        assert read_checkpoint_meta(path)["phase"] == "pretrain"

    def test_no_tmp_residue(self, tmp_path):
        path = tmp_path / "snap.ckpt"
        save_checkpoint(path, {"x": 1}, {})
        save_checkpoint(path, {"x": 2}, {})
        leftovers = [p for p in tmp_path.iterdir() if p.name != "snap.ckpt"]
        assert leftovers == []
        assert load_checkpoint(path)[0] == {"x": 2}

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            read_checkpoint_meta(tmp_path / "nope.ckpt")

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "snap.ckpt"
        path.write_bytes(b"NOTACKPT" + b"\x00" * 64)
        with pytest.raises(CheckpointError, match="bad magic"):
            load_checkpoint(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "snap.ckpt"
        save_checkpoint(path, {"x": 1}, {})
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) - 5])
        with pytest.raises(CheckpointError, match="truncated"):
            load_checkpoint(path)

    def test_truncated_header_rejected(self, tmp_path):
        path = tmp_path / "snap.ckpt"
        path.write_bytes(CHECKPOINT_MAGIC + struct.pack("<I", 10_000) + b"{}")
        with pytest.raises(CheckpointError, match="header cut short"):
            load_checkpoint(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "snap.ckpt"
        save_checkpoint(path, {"x": 1}, {})
        blob = path.read_bytes()
        offset = len(CHECKPOINT_MAGIC)
        (header_len,) = struct.unpack_from("<I", blob, offset)
        start = offset + 4
        header = json.loads(blob[start:start + header_len])
        header["version"] = CHECKPOINT_VERSION + 1
        raw = json.dumps(header, sort_keys=True).encode("utf-8")
        path.write_bytes(
            CHECKPOINT_MAGIC + struct.pack("<I", len(raw)) + raw
            + blob[start + header_len:]
        )
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path)

    def test_corrupt_body_fails_crc(self, tmp_path):
        path = tmp_path / "snap.ckpt"
        save_checkpoint(path, {"x": 1}, {})
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError, match="CRC"):
            load_checkpoint(path)

    def test_unpicklable_body_rejected(self, tmp_path):
        # Valid container whose body is not a pickle: load must raise
        # CheckpointError, not a bare pickle exception.
        path = tmp_path / "snap.ckpt"
        body = b"this is not a pickle"
        header = json.dumps(
            {
                "version": CHECKPOINT_VERSION,
                "crc32": zlib.crc32(body) & 0xFFFFFFFF,
                "body_bytes": len(body),
                "meta": {},
            }
        ).encode("utf-8")
        path.write_bytes(
            CHECKPOINT_MAGIC + struct.pack("<I", len(header)) + header + body
        )
        with pytest.raises(CheckpointError, match="unpickle"):
            load_checkpoint(path)


class TestResumableRun:
    def test_checkpointed_run_matches_plain_run(self, tmp_path):
        config = small_config()
        plain = ResumableRun(config, "rl", "swaptions", trace_cycles=300).run()
        ckpt = ResumableRun(
            config, "rl", "swaptions", trace_cycles=300,
            checkpoint_path=tmp_path / "run.ckpt", checkpoint_every=75,
        ).run()
        assert ckpt == plain

    def test_kill_and_resume_is_bit_identical(self, tmp_path):
        """A snapshot taken mid-pretraining resumes to exactly the result
        an uninterrupted run produces — the tentpole determinism contract."""
        config = small_config()
        baseline = ResumableRun(config, "rl", "swaptions", trace_cycles=300).run()

        run = ResumableRun(
            config, "rl", "swaptions", trace_cycles=300,
            checkpoint_path=tmp_path / "run.ckpt", checkpoint_every=75,
        )
        snapshots = []
        original_save = run.save

        def keep_copies(path=None):
            saved = original_save(path)
            copy = tmp_path / f"snap_{run.sim.network.now}.ckpt"
            if not copy.exists():
                shutil.copy(saved, copy)
                snapshots.append(copy)
            return saved

        run.save = keep_copies
        assert run.run() == baseline
        # Resume from an early and a late mid-run snapshot (fresh objects,
        # nothing shared with the original run instance).
        mid_run = [p for p in snapshots if not read_checkpoint_meta(p)["finished"]]
        assert len(mid_run) >= 2
        for snap in (mid_run[1], mid_run[-1]):
            resumed = ResumableRun.resume(
                snap, checkpoint_path=tmp_path / "scratch.ckpt",
                checkpoint_every=0,
            ).run()
            assert resumed == baseline

    def test_snapshot_restores_packet_id_counter(self, tmp_path):
        """Packet ids come from a process-global counter; a snapshot must
        carry it so a resumed process cannot reissue ids that collide
        with the pickled in-flight packets' (regression test)."""
        config = small_config()
        run = ResumableRun(
            config, "rl", "swaptions", trace_cycles=300,
            checkpoint_path=tmp_path / "run.ckpt", checkpoint_every=75,
        )

        class Stop(Exception):
            pass

        original_save = run.save

        def stop_after_first(path=None):
            original_save(path)
            raise Stop()

        run.save = stop_after_first
        with pytest.raises(Stop):
            run.run()
        payload, _ = load_checkpoint(tmp_path / "run.ckpt")
        assert payload["next_pid"] == Packet._next_pid
        # Simulate the fresh-process case: wind the counter back, resume,
        # and check the restore moved it forward again.
        Packet._next_pid = 0
        resumed = ResumableRun.resume(tmp_path / "run.ckpt", checkpoint_every=0)
        assert Packet._next_pid == payload["next_pid"]
        assert resumed.sim.network.now == run.sim.network.now

    def test_restore_packet_counter_never_regresses(self):
        before = Packet._next_pid
        Simulator.restore_packet_counter(before - 1 if before else None)
        assert Packet._next_pid == before
        Simulator.restore_packet_counter(None)
        assert Packet._next_pid == before

    def test_finished_snapshot_returns_stored_result(self, tmp_path):
        config = small_config(pretrain_cycles=0)
        run = ResumableRun(
            config, "crc", "swaptions", trace_cycles=300,
            checkpoint_path=tmp_path / "run.ckpt",
        )
        result = run.run()
        resumed = ResumableRun.resume(tmp_path / "run.ckpt")
        assert resumed.result == result
        assert resumed.run() == result

    def test_meta_describes_run(self, tmp_path):
        config = small_config(pretrain_cycles=0)
        ResumableRun(
            config, "crc", "swaptions", trace_cycles=300,
            checkpoint_path=tmp_path / "run.ckpt", checkpoint_every=50,
        ).run()
        meta = read_checkpoint_meta(tmp_path / "run.ckpt")
        assert meta["design"] == "crc"
        assert meta["benchmark"] == "swaptions"
        assert meta["finished"] is True
        assert meta["checkpoint_every"] == 50
        assert meta["config"]["width"] == config.width

    def test_resume_inherits_checkpoint_cadence_from_meta(self, tmp_path):
        config = small_config(pretrain_cycles=0)
        run = ResumableRun(
            config, "crc", "swaptions", trace_cycles=300,
            checkpoint_path=tmp_path / "run.ckpt", checkpoint_every=64,
        )
        run.save()
        resumed = ResumableRun.resume(tmp_path / "run.ckpt")
        assert resumed.checkpoint_every == 64
        overridden = ResumableRun.resume(tmp_path / "run.ckpt", checkpoint_every=7)
        assert overridden.checkpoint_every == 7

    def test_poisoned_q_table_degrades_to_safe_mode(self, tmp_path):
        """A snapshot whose stored Q-state is corrupt must resume with the
        affected routers pinned to safe mode, not crash."""
        config = small_config(pretrain_cycles=0)
        run = ResumableRun(
            config, "rl", "swaptions", trace_cycles=300,
            checkpoint_path=tmp_path / "run.ckpt",
        )
        run.save()
        payload, meta = load_checkpoint(tmp_path / "run.ckpt")
        agent_state = payload["policy_state"]["agents"][0]
        state_key = next(iter(agent_state["table"]), None)
        if state_key is None:
            agent_state["table"] = {(0,) * 5: [math.nan] * agent_state["num_actions"]}
        else:
            agent_state["table"][state_key][0] = math.nan
        save_checkpoint(tmp_path / "run.ckpt", payload, meta)

        resumed = ResumableRun.resume(tmp_path / "run.ckpt")
        assert resumed.sim.policy.safe_mode_routers
        assert resumed.sim.policy.safe_mode_events

    def test_non_run_checkpoint_rejected(self, tmp_path):
        save_checkpoint(tmp_path / "other.ckpt", {"not": "a run"}, {})
        with pytest.raises(CheckpointError, match="not a run checkpoint"):
            ResumableRun.resume(tmp_path / "other.ckpt")
