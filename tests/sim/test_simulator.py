"""Tests for the integrated closed-loop simulator.

These use a small 3x3 mesh with short phases so the whole control loop —
power -> thermal -> errors -> observation -> policy -> modes — runs end
to end in well under a second per test.
"""

import pytest

from repro.baselines import arq_ecc_policy, crc_policy
from repro.core.modes import OperationMode
from repro.core.rl_policy import RLControlPolicy
from repro.sim import Simulator, scaled_config
from repro.traffic import TraceRecord


def tiny_config(**overrides):
    params = dict(
        width=3,
        height=3,
        epoch_cycles=100,
        pretrain_cycles=1200,
        warmup_cycles=300,
        pretrain_injection_rate=0.02,
    )
    params.update(overrides)
    return scaled_config(**params)


def tiny_trace(n=40, size=4):
    records = []
    for i in range(n):
        src = i % 9
        dest = (i + 4) % 9
        records.append(TraceRecord(i * 3, src, dest, size))
    return records


class TestClosedLoop:
    def test_trace_runs_to_completion(self):
        sim = Simulator(tiny_config(), crc_policy(), seed=2)
        result = sim.measure_trace(tiny_trace(), "tiny")
        assert result.packets_delivered == 40
        assert result.flits_delivered == 160
        assert result.execution_cycles > 0
        assert result.mean_latency > 0

    def test_temperatures_rise_above_ambient_under_load(self):
        sim = Simulator(tiny_config(), crc_policy(), seed=2)
        sim.measure_trace(tiny_trace(), "tiny")
        assert all(r.temperature > sim.config.t_ambient for r in sim.network.routers)

    def test_error_probabilities_follow_temperature(self):
        sim = Simulator(tiny_config(), crc_policy(), seed=2)
        initial = sim.injector.mean_probability()
        sim.measure_trace(tiny_trace(80), "tiny")
        assert sim.injector.mean_probability() > initial

    def test_energy_accounting_positive_and_split(self):
        sim = Simulator(tiny_config(), arq_ecc_policy(), seed=2)
        result = sim.measure_trace(tiny_trace(), "tiny")
        assert result.dynamic_energy_pj > 0
        assert result.static_energy_pj > 0

    def test_modes_applied_by_policy(self):
        sim = Simulator(tiny_config(), arq_ecc_policy(), seed=2)
        sim.measure_trace(tiny_trace(), "tiny")
        assert all(r.mode is OperationMode.MODE_1 for r in sim.network.routers)
        assert sim.network.stats.mode_cycles[1] > 0

    def test_latency_measured_from_absolute_time(self):
        """Regression: trace packets must get absolute created_at stamps
        (a relative stamp inflates latency by the warm-up offset)."""
        config = tiny_config(warmup_cycles=600)
        sim = Simulator(config, crc_policy(), seed=2)
        sim.warmup()
        result = sim.measure_trace(tiny_trace(), "tiny")
        assert result.mean_latency < 200  # far below the 600-cycle offset

    def test_measurement_window_isolated_from_warmup(self):
        sim = Simulator(tiny_config(), crc_policy(), seed=2)
        sim.warmup()
        delivered_before = sim.network.stats.packets_delivered
        assert delivered_before > 0  # warm-up really ran traffic
        result = sim.measure_trace(tiny_trace(), "tiny")
        # All 40 trace packets counted; a handful of still-in-flight
        # warm-up packets may land in the window (the network is
        # deliberately measured warm), but the warm-up bulk is excluded.
        assert 40 <= result.packets_delivered <= 40 + 10


class TestPhases:
    def test_pretrain_skipped_for_static_policies(self):
        sim = Simulator(tiny_config(), crc_policy(), seed=2)
        sim.pretrain()
        assert sim.network.now == 0  # nothing ran

    def test_pretrain_runs_for_rl(self):
        policy = RLControlPolicy(share_table=True, seed=2)
        sim = Simulator(tiny_config(), policy, seed=2)
        sim.pretrain()
        assert sim.network.now >= sim.config.pretrain_cycles
        assert policy.total_updates() > 0
        assert policy.states_visited() > 0

    def test_pretrain_curriculum_visits_every_mode(self):
        policy = RLControlPolicy(share_table=True, seed=2)
        sim = Simulator(tiny_config(), policy, seed=2)
        sim.pretrain()
        agent = policy._unique_agents()[0]
        tried = set()
        for state in agent._table:
            row = agent._table[state]
            tried.update(a for a, q in enumerate(row) if q != 0.0)
        assert tried == {0, 1, 2, 3}

    def test_forced_mode_pins_routers(self):
        sim = Simulator(tiny_config(), RLControlPolicy(share_table=True), seed=2)
        sim.forced_mode = OperationMode.MODE_2
        sim.run_cycles(None, sim.config.epoch_cycles + 1, learn=False)
        assert all(r.mode is OperationMode.MODE_2 for r in sim.network.routers)

    def test_drain_guard_raises(self):
        config = tiny_config(max_drain_cycles=50)
        sim = Simulator(config, crc_policy(), seed=2)
        with pytest.raises(RuntimeError, match="max_drain_cycles"):
            sim.measure_trace(tiny_trace(200), "tiny")


class TestDeterminism:
    def test_same_seed_same_result(self):
        a = Simulator(tiny_config(), crc_policy(), seed=7).measure_trace(
            tiny_trace(), "tiny"
        )
        b = Simulator(tiny_config(), crc_policy(), seed=7).measure_trace(
            tiny_trace(), "tiny"
        )
        assert a.execution_cycles == b.execution_cycles
        assert a.mean_latency == b.mean_latency
        assert a.dynamic_energy_pj == b.dynamic_energy_pj

    def test_different_seed_differs(self):
        config = tiny_config()
        a = Simulator(config, crc_policy(), seed=7).measure_trace(tiny_trace(), "t")
        b = Simulator(config, crc_policy(), seed=8).measure_trace(tiny_trace(), "t")
        # Error injection differs; latency identical only by coincidence.
        assert (a.mean_latency, a.corrected_errors, a.retransmission_events) != (
            b.mean_latency,
            b.corrected_errors,
            b.retransmission_events,
        )
