"""Acceptance suite for the soft-error (SEU) resilience layer.

The tentpole contract: with SECDED-protected Q storage and TMR'd mode
registers, an RL campaign under a sustained Q-table upset rate plus a
mode-register strike completes with delivered fraction >= 0.95, the
scrubber's ``ecc.corrected`` ledger exactly matches the injected
single-bit upsets, and the decoded Q-values never show corruption.
With ``ecc_protect=False`` the same campaign measurably degrades: the
upsets reach the policy directly and saturate Q-values to the
fixed-point rail.  Soft errors must also preserve the repo's two
standing determinism contracts: fast == naive kernel, and a
killed-and-resumed run is bit-identical to an uninterrupted one.
"""

import shutil

from repro.core.qlearning import QTableStorage
from repro.sim import (
    ResumableRun,
    Simulator,
    SweepSpec,
    default_design_factories,
    scaled_config,
    synthesize_benchmark_trace,
)
from repro.sim.sweep import _eval_soft_error
from repro.obs import TraceBuffer

# Sustained Q-table upsets plus a one-shot strike on router 4's mode
# register; seed 2 yields isolated single-bit upsets only (no two hits
# share a 39-bit word), so the corrected == injected identity is exact.
ACCEPTANCE_SPEC = "qtable@5e-4;mode@r4+1900"
ACCEPTANCE_SEED = 2

#: the fixed-point saturation rail — where sign/high-bit flips land
#: (the negative rail is the larger magnitude in two's complement)
Q_RAIL = -QTableStorage._WORD_MIN / QTableStorage._SCALE


def small_config(**overrides):
    overrides.setdefault("width", 3)
    overrides.setdefault("height", 3)
    return scaled_config(
        epoch_cycles=100, pretrain_cycles=1_500, warmup_cycles=300,
        **overrides,
    )


def soft_error_point(config, spec_str, rate=0.05, cycles=800, seed=0):
    spec = SweepSpec(
        config=config,
        kind="soft_error",
        designs=("rl",),
        traffics=("uniform",),
        seeds=(seed,),
        rates=(rate,),
        fault_specs=("",),
        soft_error_specs=(spec_str,),
        cycles=cycles,
    )
    return spec.expand()[0]


def run_campaign(**overrides):
    overrides.setdefault("soft_error_spec", ACCEPTANCE_SPEC)
    config = small_config(**overrides)
    point = soft_error_point(
        config, config.soft_error_spec, seed=ACCEPTANCE_SEED
    )
    return _eval_soft_error(config, point)["soft_error"]


class TestAcceptance:
    def test_protected_rl_survives_seu_campaign(self):
        payload = run_campaign()
        assert payload["diagnosis"] is None
        assert payload["ecc"] is True
        assert payload["delivered_fraction"] >= 0.95
        assert payload["outstanding"] == 0
        # The campaign really fired: a sustained Q-table upset stream
        # plus exactly one mode-register strike.
        assert payload["injected"]["qtable"] > 50
        assert payload["injected"]["mode"] == 1
        assert payload["scrubs"] > 0
        # The defended contract, exactly: every injected upset was an
        # isolated single-bit error and every one was scrubbed away.
        assert payload["words_multi"] == 0
        assert payload["corrected"] == payload["words_single"]
        assert payload["corrected"] == payload["injected"]["qtable"]
        assert payload["quarantined_rows"] == 0
        # The mode strike was outvoted by the TMR majority.
        assert payload["mode_votes"] == 1
        # Decoded Q-values never saw the corruption.
        assert payload["max_abs_q"] < 100.0

    def test_no_ecc_degrades_measurably(self):
        protected = run_campaign()
        raw = run_campaign(ecc_protect=False)
        assert raw["ecc"] is False
        # Without SECDED nothing is correctable — the scrubber is blind.
        assert raw["corrected"] == 0
        assert raw["mode_votes"] == 0
        assert raw["injected"]["qtable"] > 50
        # The pinned degradation: upsets reach the policy's learned
        # state directly, and high-bit flips saturate Q-values to the
        # fixed-point rail — six orders of magnitude off the learned
        # range the protected run preserves.
        assert raw["max_abs_q"] == Q_RAIL
        assert raw["max_abs_q"] > 1_000 * protected["max_abs_q"]

    def test_scrub_disabled_lets_upsets_accumulate(self):
        """``--scrub-every 0``: each isolated single-bit upset is still
        hidden by SECDED decode-on-read, but without scrubbing they are
        never cleaned out of the words — eventually two land in the same
        word and the corruption becomes uncorrectable.  This is exactly
        why the scrub schedule exists."""
        payload = run_campaign(scrub_every=0)
        assert payload["scrubs"] == 0
        assert payload["corrected"] == 0
        assert payload["diagnosis"] is None
        assert payload["delivered_fraction"] >= 0.95
        # Accumulated upsets collided into uncorrectable words and the
        # garbage reached the policy — the scrubbed run stays clean.
        assert payload["max_abs_q"] > 100.0
        assert run_campaign(scrub_every=1)["max_abs_q"] < 100.0

    def test_quiet_spec_is_upset_free(self):
        """An empty clause list is a healthy platform: no model, no
        storage attach, no ECC ledger."""
        payload = run_campaign(soft_error_spec="")
        assert payload["injected"] == {}
        assert payload["scrubs"] == 0
        assert payload["delivered_fraction"] >= 0.95


class TestDeterminism:
    SPEC = "qtable@3e-4;mode@r2+900;burst@1200:4"

    def _classic(self, kernel, tracer=None):
        config = small_config(soft_error_spec=self.SPEC)
        policy = default_design_factories(0)["rl"]()
        sim = Simulator(config, policy, seed=0, kernel=kernel, tracer=tracer)
        sim.pretrain()
        policy.freeze()
        sim.warmup()
        trace = synthesize_benchmark_trace("swaptions", config, 400, 0)
        result = sim.measure_trace(trace, "swaptions")
        return sim, result

    def test_kernels_agree_under_soft_errors(self):
        fast_tracer, naive_tracer = TraceBuffer(), TraceBuffer()
        fast_sim, fast = self._classic("fast", fast_tracer)
        naive_sim, naive = self._classic("naive", naive_tracer)
        assert fast == naive
        assert fast_tracer.digest() == naive_tracer.digest()
        # The campaign actually fired, identically on both kernels.
        assert fast_sim.soft_errors.injected["qtable"] > 0
        assert dict(fast_sim.soft_errors.injected) == dict(
            naive_sim.soft_errors.injected
        )
        assert fast_sim.metrics.peek("ecc.corrected") == naive_sim.metrics.peek(
            "ecc.corrected"
        )

    def test_kill_and_resume_bit_identical_with_soft_errors(self, tmp_path):
        config = small_config(soft_error_spec=self.SPEC)
        baseline = ResumableRun(config, "rl", "swaptions", trace_cycles=400).run()

        run = ResumableRun(
            config, "rl", "swaptions", trace_cycles=400,
            checkpoint_path=tmp_path / "run.ckpt", checkpoint_every=350,
        )
        copies = []
        original_save = run.save

        def keep(path=None):
            saved = original_save(path)
            if saved is not None:
                copy = tmp_path / f"snap_{len(copies)}.ckpt"
                shutil.copy(saved, copy)
                copies.append(copy)
            return saved

        run.save = keep
        uninterrupted = run.run()
        assert uninterrupted == baseline
        assert len(copies) >= 3
        # Resume from an early, a middle, and the last mid-run snapshot:
        # the SEU master RNG, the ECC word arrays, and the TMR copies
        # must all restore bit-exactly for these to agree.
        for copy in (copies[0], copies[len(copies) // 2], copies[-2]):
            resumed = ResumableRun.resume(copy).run()
            assert resumed == baseline
