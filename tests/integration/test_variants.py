"""Integration tests for platform variants beyond the paper's defaults:
torus topology, YX routing, alternate packet geometry, and trace file
round trips through a live simulation."""

import random

import pytest

from repro.baselines import crc_policy
from repro.core.modes import OperationMode
from repro.noc import MeshTopology, Network, Packet
from repro.noc.routing import yx_route
from repro.power import CorePowerParams
from repro.sim import Simulator, scaled_config
from repro.traffic import ParsecTraceSynthesizer, PARSEC_PROFILES, load_trace, save_trace


def run_uniform(net, n_packets=100, seed=5, size=4):
    rng = random.Random(seed)
    n = net.topology.num_nodes
    created = 0
    while created < n_packets or not net.quiescent:
        if created < n_packets and net.now % 2 == 0:
            src, dst = rng.randrange(n), rng.randrange(n)
            if src != dst:
                net.inject(Packet(src, dst, size, net.flit_bits, net.now))
                created += 1
        net.cycle()
        assert net.now < 100_000
    net.harvest_epoch_counters(1)
    return net.stats


class TestTorus:
    def test_torus_delivers_traffic(self):
        net = Network(MeshTopology(4, 4, torus=True), rng=random.Random(1))
        stats = run_uniform(net, 120)
        assert stats.packets_delivered == 120

    def test_torus_under_errors_with_ecc(self):
        net = Network(MeshTopology(4, 4, torus=True), rng=random.Random(1))
        net.set_all_modes(OperationMode.MODE_1)
        for _, model in net.channel_models():
            model.event_probability = 0.05
        stats = run_uniform(net, 100)
        assert stats.packets_delivered == 100
        assert stats.corrected_errors > 0


class TestYXRouting:
    def test_yx_network_delivers(self):
        net = Network(MeshTopology(4, 4), routing_fn=yx_route, rng=random.Random(2))
        stats = run_uniform(net, 100)
        assert stats.packets_delivered == 100

    def test_yx_config_through_simulator(self):
        config = scaled_config(
            width=3, height=3, routing="yx",
            epoch_cycles=100, pretrain_cycles=0, warmup_cycles=200,
        )
        sim = Simulator(config, crc_policy(), seed=3)
        sim.warmup()
        assert sim.network.stats.packets_delivered > 0


class TestPacketGeometry:
    @pytest.mark.parametrize("size,bits", [(1, 32), (2, 64), (8, 128)])
    def test_alternate_packet_shapes(self, size, bits):
        net = Network(MeshTopology(3, 3), flit_bits=bits, rng=random.Random(4))
        net.set_all_modes(OperationMode.MODE_2)
        for _, model in net.channel_models():
            model.event_probability = 0.05
        stats = run_uniform(net, 60, size=size)
        assert stats.packets_delivered == 60
        assert stats.flits_delivered == 60 * size


class TestTraceFileRoundTrip:
    def test_synthesized_trace_survives_disk_and_replay(self, tmp_path):
        config = scaled_config(
            width=3, height=3, epoch_cycles=100, pretrain_cycles=0, warmup_cycles=0
        )
        topo = MeshTopology(3, 3)
        records = ParsecTraceSynthesizer(
            PARSEC_PROFILES["dedup"], topo, random.Random(6)
        ).synthesize(500)
        path = tmp_path / "dedup.trace"
        save_trace(records, path)
        loaded = load_trace(path)
        assert loaded == sorted(records)

        sim = Simulator(config, crc_policy(), seed=6)
        result = sim.measure_trace(loaded, "dedup-from-file")
        assert result.packets_delivered == len(loaded)


class TestCorePowerParams:
    def test_monotone_and_capped(self):
        params = CorePowerParams()
        assert params.core_power(0.0) == params.idle_watts
        assert params.core_power(0.1) > params.core_power(0.0)
        assert params.core_power(10.0) == params.max_watts

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            CorePowerParams().core_power(-0.1)
