"""Golden equivalence: the activity-driven kernel vs the naive full scan.

DESIGN.md §11's core contract: for any seed and workload, the fast
kernel and the reference full-scan kernel must produce *bit-identical*
results — same deliveries, same retransmissions, same RNG-driven error
pattern, same final statistics.  These tests drive matched networks
through healthy and hard-fault campaigns under both routing policies and
compare everything observable.
"""

import random

import pytest

from repro.faults.hardfaults import HardFaultModel, HardFaultSchedule
from repro.noc.network import Network
from repro.noc.packet import Packet
from repro.noc.topology import MeshTopology, Port

CHAOS_SPEC = "link@400:1E;router@900:5;burst@600+300:0.05"


def _build(kernel, seed, routing, fault_spec):
    net = Network(
        MeshTopology(4, 4),
        routing_fn=routing,
        rng=random.Random(seed + 1),
        routing_seed=seed,
        kernel=kernel,
    )
    if fault_spec:
        net.hard_faults = HardFaultModel(net, HardFaultSchedule.parse(fault_spec))
    for _, model in net.channel_models():
        model.event_probability = 0.01
        model.relax_factor = 0.5
    return net


def _drive(net, seed, cycles=1_500, rate=0.15):
    """Uniform random traffic, mixing per-cycle stepping and run() spans."""
    rng = random.Random(seed + 7)
    nodes = net.topology.num_nodes
    message_id = 0
    end = net.now + cycles
    while net.now < end:
        if rng.random() < rate:
            src, dst = rng.randrange(nodes), rng.randrange(nodes)
            if src != dst:
                net.inject(
                    Packet(src, dst, 4, 128, net.now, message_id=message_id)
                )
                message_id += 1
        # Alternate single cycles with short run() spans so the
        # fast-forward path participates in the equivalence check.
        if net.now % 7 == 0:
            net.run(3)
        else:
            net.cycle()
    deadline = net.now + 50_000
    while not net.quiescent and net.now < deadline:
        net.cycle()


def _fingerprint(net):
    stats = net.stats
    return {
        "final_cycle": net.now,
        "messages_created": stats.messages_created,
        "packets_delivered": stats.packets_delivered,
        "flits_delivered": stats.flits_delivered,
        "messages_dropped": stats.messages_dropped,
        "retransmission_events": stats.retransmission_events,
        "crc_failures": stats.crc_failures,
        "corrected_errors": stats.corrected_errors,
        "silent_corruptions": stats.silent_corruptions,
        "mean_latency": stats.mean_latency,
        "reroutes": sum(r.epoch.reroutes for r in net.routers),
        "arbitrations": sum(r.epoch.arbitration_ops for r in net.routers),
        "flits_out": [list(r.epoch.flits_out) for r in net.routers],
        "rng_state": net.rng.getstate(),
    }


@pytest.mark.parametrize(
    "seed,routing,fault_spec",
    [
        (0, "xy", None),
        (1, "adaptive", None),
        (2, "xy", CHAOS_SPEC),
        (3, "adaptive", CHAOS_SPEC),
        (4, "adaptive", CHAOS_SPEC),
    ],
)
def test_kernels_bit_identical(seed, routing, fault_spec):
    prints = {}
    for kernel in ("fast", "naive"):
        net = _build(kernel, seed, routing, fault_spec)
        _drive(net, seed)
        prints[kernel] = _fingerprint(net)
    assert prints["fast"] == prints["naive"]


def test_active_sets_drain_at_quiescence():
    """Lazy deregistration converges: no activity left once quiescent."""
    net = _build("fast", 0, "xy", None)
    _drive(net, 0, cycles=400)
    assert net.quiescent
    act = net.activity
    assert not act.channels
    assert not act.routers
    assert not act.ni_eject
    assert not act.ni_inject


def test_fast_forward_skips_only_truly_idle_cycles():
    """run() jumps idle spans without skipping watchdog or fault events."""
    net = _build("fast", 0, "xy", "link@5000:1E")
    # Nothing in flight: run() should fast-forward but stop exactly at
    # the scheduled hard fault, then continue.
    net.run(8_000)
    assert net.now == 8_000
    assert net.activity.fast_forwarded > 0
    assert not net.fault_state.link_alive(1, int(Port.EAST))
    # The watchdog observed every interval boundary despite the jumps.
    assert net.watchdog is not None
    assert net.watchdog.checks >= 8_000 // net.watchdog.interval - 1


def test_naive_kernel_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_NAIVE_KERNEL", "1")
    net = Network(MeshTopology(2, 2))
    assert net.kernel == "naive"
    monkeypatch.setenv("REPRO_NAIVE_KERNEL", "0")
    net = Network(MeshTopology(2, 2))
    assert net.kernel == "fast"


def test_channel_pending_properties():
    net = _build("fast", 0, "xy", None)
    channel = next(iter(net.channels.values()))
    assert not channel.busy
    assert not channel.has_pending_data
    assert not channel.has_pending_acks
    assert not channel.has_pending_credits
    channel.send_credit(0, net.now + 1)
    assert channel.has_pending_credits and channel.busy
    assert channel.pop_credits(net.now + 1) == [0]
    assert not channel.busy
