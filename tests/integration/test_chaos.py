"""Acceptance tests for the hard-fault / graceful-degradation subsystem.

These encode the ISSUE's acceptance scenarios end to end:

* a 4x4 mesh with one non-boundary link killed mid-run — adaptive
  routing delivers >= 95% of packets with no watchdog trip, while XY
  reports the loss through conservation accounting (counted drops)
  instead of wedging buffers;
* a two-link cut that isolates a node produces a structured diagnosis
  within one watchdog window;
* identical seeds and fault schedules produce identical chaos results
  whether points run serially or through the process pool.
"""

import dataclasses
import random

import pytest

from repro.faults import HardFaultModel, HardFaultSchedule
from repro.noc import (
    MeshTopology,
    Network,
    Packet,
    Port,
    UnreachableDestinationError,
)
from repro.sim import SweepRunner, SweepSpec, scaled_config
from repro.sim.sweep import SweepPoint, run_sweep_point

# Channel 5 -> 6 sits in the interior of the 4x4 mesh: both endpoints
# keep full degree, so the mesh stays connected after the kill.
MIDRUN_LINK_KILL = "link@500:5E"


def _config(**overrides):
    return scaled_config(width=4, height=4, **overrides)


def _chaos_point(routing, fault_spec, seed=0, cycles=2_000, rate=0.1):
    return SweepPoint(
        kind="chaos",
        design=routing,
        traffic="uniform",
        seed=seed,
        cycles=cycles,
        rate=rate,
        fault_spec=fault_spec,
    )


def _conserved(chaos):
    return (
        chaos["messages_created"]
        == chaos["packets_delivered"] + chaos["messages_dropped"] + chaos["outstanding"]
    )


class TestMidRunLinkKill:
    def test_adaptive_delivers_95_percent(self):
        payload = run_sweep_point(
            _config(), _chaos_point("adaptive", MIDRUN_LINK_KILL)
        )
        chaos = payload["chaos"]
        assert chaos["diagnosis"] is None, chaos["diagnosis"]
        assert chaos["link_kills"] == 1
        assert chaos["messages_created"] > 100
        assert chaos["delivered_fraction"] >= 0.95
        assert chaos["outstanding"] == 0
        assert _conserved(chaos)

    def test_xy_reports_loss_through_accounting(self):
        payload = run_sweep_point(_config(), _chaos_point("xy", MIDRUN_LINK_KILL))
        chaos = payload["chaos"]
        # XY cannot route around the dead column crossing: packets that
        # need 5->E are dropped with accounting, not wedged in buffers.
        assert chaos["diagnosis"] is None, chaos["diagnosis"]
        assert chaos["messages_dropped"] > 0
        assert chaos["outstanding"] == 0
        assert _conserved(chaos)
        assert chaos["delivered_fraction"] < 1.0


class TestIsolatingCut:
    # Corner node 0 receives only through 1->W and 4->S; cutting both
    # makes it unreachable as a destination while the rest of the mesh
    # keeps running.
    CUT = "link@64:1W;link@64:4S"

    def test_structured_diagnosis_within_one_window(self):
        net = Network(
            MeshTopology(4, 4),
            routing_fn="adaptive",
            rng=random.Random(0),
            watchdog_interval=8,
            unreachable_action="raise",
        )
        net.hard_faults = HardFaultModel(net, HardFaultSchedule.parse(self.CUT))
        net.run(64)
        net.inject(Packet(5, 0, 4, net.flit_bits, net.now, message_id=1))
        before = net.now
        with pytest.raises(UnreachableDestinationError) as err:
            net.run(256)
        report = err.value.report
        assert report["kind"] == "unreachable_destination"
        assert report["dest"] == 0
        dead = {tuple(link) for link in report["dead_links"]}
        assert {(1, int(Port.WEST)), (4, int(Port.SOUTH))} <= dead
        # Diagnosis arrives promptly (route computation), well within
        # one watchdog window of the injection.
        assert net.now - before <= net.watchdog.interval

    def test_chaos_evaluator_counts_unreachable_drops(self):
        payload = run_sweep_point(
            _config(), _chaos_point("adaptive", self.CUT, cycles=1_500)
        )
        chaos = payload["chaos"]
        assert chaos["diagnosis"] is None
        assert chaos["unreachable_drops"] > 0
        assert chaos["outstanding"] == 0
        assert _conserved(chaos)


class TestDeterminism:
    SPECS = ("", MIDRUN_LINK_KILL)

    def _strip(self, payload):
        payload = dict(payload)
        payload.pop("elapsed", None)
        return payload

    def test_point_results_reproducible(self):
        config = _config()
        for spec in self.SPECS:
            point = _chaos_point("adaptive", spec, cycles=1_000)
            first = self._strip(run_sweep_point(config, point))
            second = self._strip(run_sweep_point(config, point))
            assert first == second

    def test_serial_and_pooled_runs_agree(self, tmp_path):
        spec = SweepSpec(
            config=_config(),
            kind="chaos",
            designs=("xy", "adaptive"),
            traffics=("uniform",),
            seeds=(0,),
            rates=(0.1,),
            fault_specs=self.SPECS,
            cycles=800,
        )
        serial = SweepRunner(spec, jobs=1, use_cache=False).run()
        pooled = SweepRunner(spec, jobs=2, use_cache=False).run()
        assert [dataclasses.replace(r, elapsed=0.0) for r in serial] == [
            dataclasses.replace(r, elapsed=0.0) for r in pooled
        ]
