"""Seeded determinism guarantees.

The sweep cache (:mod:`repro.sim.sweep`) keys results by (config, point)
alone, which is only sound if a run's result is a pure function of those
inputs: same seed, same config, same design -> byte-identical
:class:`RunResult`, in this process, in a fresh process, and in a pool
worker.  These tests pin that contract for every compared design — the
RL policy, both static modes (CRC and ARQ+ECC), and the CART
decision-tree baseline.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.sim import (
    DESIGN_ORDER,
    default_design_factories,
    run_design_on_trace,
    scaled_config,
    synthesize_benchmark_trace,
)

CONFIG_KWARGS = dict(
    width=3, height=3, epoch_cycles=100, pretrain_cycles=1_500,
    warmup_cycles=200,
)
TRACE_CYCLES = 400
SEED = 13


def measure(design: str) -> str:
    """One full (pre-train, warm-up, measure) run, serialized to bytes."""
    config = scaled_config(**CONFIG_KWARGS)
    policy = default_design_factories(SEED)[design]()
    records = synthesize_benchmark_trace("swaptions", config, TRACE_CYCLES, SEED)
    result = run_design_on_trace(
        policy, records, config, benchmark="swaptions", seed=SEED
    )
    return json.dumps(result.constructor_dict(), sort_keys=True)


@pytest.mark.parametrize("design", DESIGN_ORDER)
def test_same_seed_byte_identical_result(design):
    """Two fresh simulator runs with one seed agree to the byte."""
    assert measure(design) == measure(design)


@pytest.mark.parametrize("design", ("crc", "rl"))
def test_different_seeds_differ(design):
    """The seed actually reaches the platform: runs are not degenerate."""
    config = scaled_config(**CONFIG_KWARGS)

    def run(seed):
        policy = default_design_factories(seed)[design]()
        records = synthesize_benchmark_trace("swaptions", config, TRACE_CYCLES, seed)
        result = run_design_on_trace(
            policy, records, config, benchmark="swaptions", seed=seed
        )
        return json.dumps(result.constructor_dict(), sort_keys=True)

    assert run(13) != run(14)


def test_trace_synthesis_stable_across_interpreters():
    """Traces must not depend on the interpreter's string-hash salt.

    Regression guard for the former ``hash(benchmark)`` seeding: two
    interpreters with different PYTHONHASHSEED values must synthesize
    the identical trace, or sweep workers (and cache keys) diverge.
    """
    script = (
        "import json\n"
        "from repro.sim import scaled_config, synthesize_benchmark_trace\n"
        f"config = scaled_config(**{CONFIG_KWARGS!r})\n"
        f"records = synthesize_benchmark_trace('canneal', config, {TRACE_CYCLES}, {SEED})\n"
        "print(json.dumps([(r.cycle, r.src, r.dest, r.size) for r in records]))\n"
    )

    def run_with_hashseed(value: str) -> str:
        env = dict(os.environ, PYTHONHASHSEED=value)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"), *sys.path) if p
        )
        return subprocess.run(
            [sys.executable, "-c", script],
            env=env, capture_output=True, text=True, check=True,
        ).stdout

    assert run_with_hashseed("1") == run_with_hashseed("2")
