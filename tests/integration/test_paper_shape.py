"""Integration tests asserting the paper's qualitative results hold.

These are the repository's acceptance tests: on a small mesh with scaled
phases, the relative ordering the paper reports in Figs 6-10 must hold —
the CRC baseline is worst under faults, the adaptive designs recover most
of the loss, and the proposed RL design adapts its mode mix to the
workload.  Exact factors are checked by the benchmark harness, not here.
"""

import pytest

from repro.core.modes import OperationMode
from repro.sim import compare_designs, scaled_config, synthesize_benchmark_trace


@pytest.fixture(scope="module")
def hot_results():
    """Four designs on a hot (canneal-like) workload, computed once."""
    config = scaled_config(
        width=4,
        height=4,
        epoch_cycles=250,
        pretrain_cycles=30_000,
        warmup_cycles=1_500,
    )
    # Seed chosen for robust margins on all nine ordering assertions under
    # the geometric skip-sampled error stream (PR 4); the qualitative
    # paper-shape properties hold at most seeds, but 4x4 scaled-down runs
    # leave individual orderings seed-sensitive.
    records = synthesize_benchmark_trace("canneal", config, cycles=2_500, seed=5)
    return compare_designs(records, config, "canneal", seed=5)


class TestHotWorkloadOrdering:
    def test_crc_has_worst_latency(self, hot_results):
        crc = hot_results["crc"].mean_latency
        for name in ("arq_ecc", "dt", "rl"):
            assert hot_results[name].mean_latency < crc

    def test_crc_latency_degrades_substantially(self, hot_results):
        """The hot workload must be in the regime the paper evaluates:
        CRC at least 2x worse than per-hop recovery."""
        assert hot_results["crc"].mean_latency > 2 * hot_results["arq_ecc"].mean_latency

    def test_adaptive_designs_cut_retransmissions_vs_crc(self, hot_results):
        crc = hot_results["crc"].retransmission_events
        assert hot_results["dt"].retransmission_events < crc
        assert hot_results["rl"].retransmission_events < crc

    def test_rl_cuts_retransmissions_vs_static_arq(self, hot_results):
        assert (
            hot_results["rl"].retransmission_events
            < hot_results["arq_ecc"].retransmission_events
        )

    def test_crc_has_worst_energy_efficiency(self, hot_results):
        crc = hot_results["crc"].energy_efficiency
        for name in ("arq_ecc", "dt", "rl"):
            assert hot_results[name].energy_efficiency > crc

    def test_crc_has_worst_dynamic_power(self, hot_results):
        """Retransmission traffic dominates: CRC burns the most."""
        crc = hot_results["crc"].dynamic_power_watts
        for name in ("arq_ecc", "dt", "rl"):
            assert hot_results[name].dynamic_power_watts < crc

    def test_execution_time_speedup_over_crc(self, hot_results):
        crc = hot_results["crc"].execution_cycles
        for name in ("arq_ecc", "dt", "rl"):
            assert hot_results[name].execution_cycles < crc

    def test_rl_uses_protective_modes_when_hot(self, hot_results):
        modes = hot_results["rl"].mode_cycles
        total = sum(modes.values())
        protective = modes[1] + modes[2] + modes[3]
        assert protective > 0.5 * total

    def test_all_designs_deliver_all_packets(self, hot_results):
        delivered = [r.packets_delivered for r in hot_results.values()]
        assert min(delivered) > 0
        assert max(delivered) - min(delivered) <= 20  # warm-up stragglers only


class TestCoolWorkloadAdaptivity:
    def test_rl_prefers_mode0_when_cool(self):
        """On a light workload the RL policy must exploit mode 0's power
        savings (the scenario that motivates dynamic control at all)."""
        config = scaled_config(
            width=4,
            height=4,
            epoch_cycles=250,
            pretrain_cycles=30_000,
            warmup_cycles=1_500,
        )
        records = synthesize_benchmark_trace("blackscholes", config, cycles=2_500, seed=3)
        results = compare_designs(
            records, config, "blackscholes", seed=3,
        )
        rl = results["rl"]
        modes = rl.mode_cycles
        assert modes[0] > 0, "mode 0 never used on the lightest workload"
        # And the adaptive design must stay in the same efficiency class
        # as always-on ARQ in the regime where protection is wasted
        # (at this shortened pre-training scale the margin is noisy).
        assert rl.energy_efficiency > 0.75 * results["arq_ecc"].energy_efficiency
