"""End-to-end determinism of checkpoint/resume.

The tentpole contract: a run that is snapshotted, killed, and resumed
from disk produces *exactly* the RunResult of a run that was never
interrupted — and the ResumableRun plan itself is byte-equivalent to the
classic ``pretrain -> freeze -> warmup -> measure_trace`` pipeline.
"""

import shutil

import pytest

from repro.sim import (
    ResumableRun,
    Simulator,
    default_design_factories,
    read_checkpoint_meta,
    scaled_config,
    synthesize_benchmark_trace,
)


def small_config():
    return scaled_config(
        width=3, height=3, epoch_cycles=100, pretrain_cycles=1_500,
        warmup_cycles=300,
    )


def classic_run(config, design, benchmark, trace_cycles, seed=0):
    policy = default_design_factories(seed)[design]()
    sim = Simulator(config, policy, seed=seed)
    if policy.trainable:
        sim.pretrain()
    policy.freeze()
    sim.warmup()
    trace = synthesize_benchmark_trace(benchmark, config, trace_cycles, seed)
    return sim.measure_trace(trace, benchmark)


@pytest.mark.parametrize("design", ["rl", "crc", "dt"])
def test_plan_matches_classic_pipeline(design):
    """ResumableRun with no checkpointing is the classic pipeline."""
    config = small_config()
    classic = classic_run(config, design, "swaptions", 300)
    planned = ResumableRun(config, design, "swaptions", trace_cycles=300).run()
    assert planned == classic


def test_interrupted_run_resumes_bit_identically(tmp_path):
    """Snapshots from every phase of a checkpointed run resume to the
    uninterrupted result (the CI kill-and-resume smoke in miniature)."""
    config = small_config()
    baseline = ResumableRun(config, "rl", "swaptions", trace_cycles=300).run()

    run = ResumableRun(
        config, "rl", "swaptions", trace_cycles=300,
        checkpoint_path=tmp_path / "run.ckpt", checkpoint_every=90,
    )
    copies = []
    original_save = run.save

    def keep(path=None):
        saved = original_save(path)
        copy = tmp_path / f"{run.sim.network.now}.snap"
        if not copy.exists():
            shutil.copy(saved, copy)
            copies.append(copy)
        return saved

    run.save = keep
    assert run.run() == baseline

    by_phase = {}
    for copy in copies:
        meta = read_checkpoint_meta(copy)
        if not meta["finished"]:
            by_phase.setdefault(meta["phase"], copy)
    assert "pretrain" in by_phase  # plan must checkpoint during training
    for phase, snap in sorted(by_phase.items()):
        resumed = ResumableRun.resume(
            snap, checkpoint_path=tmp_path / "scratch.ckpt", checkpoint_every=0
        ).run()
        assert resumed == baseline, f"resume from {phase} diverged"
