"""Acceptance suite for the degraded-telemetry control plane.

The tentpole contract: with the hardened observation path, an RL
campaign under 20% telemetry dropout plus a wedged temperature sensor
completes with delivered fraction >= 0.95, no unhandled exceptions, and
bounded mode flapping — while the unhardened path demonstrably fails on
the same corruption.  Sensor faults must also preserve the repo's two
standing determinism contracts: fast == naive kernel, and a
killed-and-resumed run is bit-identical to an uninterrupted one.
"""

import shutil

import pytest

from repro.sim import (
    ResumableRun,
    Simulator,
    SweepSpec,
    default_design_factories,
    scaled_config,
    synthesize_benchmark_trace,
)
from repro.sim.sweep import _eval_sensor_chaos
from repro.obs import TraceBuffer

ACCEPTANCE_SPEC = "drop@0.2:util;stuck@r5.temp=0.9"


def small_config(**overrides):
    overrides.setdefault("width", 3)
    overrides.setdefault("height", 3)
    return scaled_config(
        epoch_cycles=100, pretrain_cycles=1_500, warmup_cycles=300,
        **overrides,
    )


def sensor_point(config, sensor_spec, rate=0.05, cycles=800, seed=0):
    spec = SweepSpec(
        config=config,
        kind="sensor_chaos",
        designs=("rl",),
        traffics=("uniform",),
        seeds=(seed,),
        rates=(rate,),
        fault_specs=("",),
        sensor_specs=(sensor_spec,),
        cycles=cycles,
    )
    return spec.expand()[0]


class TestAcceptance:
    def test_hardened_rl_survives_dropout_and_stuck_sensor(self):
        config = small_config(sensor_spec=ACCEPTANCE_SPEC, mode_hysteresis_epochs=2)
        point = sensor_point(config, ACCEPTANCE_SPEC)
        payload = _eval_sensor_chaos(config, point)["sensor_chaos"]
        assert payload["diagnosis"] is None
        assert payload["defenses"] is True
        assert payload["delivered_fraction"] >= 0.95
        assert payload["outstanding"] == 0
        # The campaign really injected and the guard really worked.
        assert payload["injected"]["drop"] > 0
        assert payload["injected"]["stuck"] > 0
        assert payload["rejected_observations"] > 0
        assert payload["sensor_holds"] + payload["sensor_defaults"] > 0
        # Bounded flapping: nowhere near one switch per router per epoch.
        epochs = (
            config.pretrain_cycles + config.warmup_cycles + point.cycles
        ) // config.epoch_cycles
        assert payload["mode_switches"] < 9 * epochs

    def test_unhardened_path_crashes_on_dropout(self):
        """Without defenses a dropped reading reaches discretization as
        None and raises — the failure mode the guard exists to absorb."""
        config = small_config(
            sensor_spec="drop@1.0:util", sensor_defenses=False,
        )
        policy = default_design_factories(0)["rl"]()
        sim = Simulator(config, policy, seed=0)
        with pytest.raises(TypeError):
            sim.pretrain()

    def test_hysteresis_bounds_flapping_under_noise(self):
        noisy = "noise@0.2:nack;noise@10.0:temp"
        results = {}
        for hysteresis in (0, 4):
            config = small_config(
                sensor_spec=noisy, mode_hysteresis_epochs=hysteresis,
            )
            point = sensor_point(config, noisy)
            results[hysteresis] = _eval_sensor_chaos(config, point)["sensor_chaos"]
        assert results[4]["debounced_switches"] > 0
        assert results[0]["debounced_switches"] == 0
        assert results[4]["mode_switches"] <= results[0]["mode_switches"]

    def test_full_dropout_quarantines_and_still_delivers(self):
        config = small_config(sensor_spec="drop@1.0:all", sensor_quarantine_k=4)
        point = sensor_point(config, "drop@1.0:all")
        payload = _eval_sensor_chaos(config, point)["sensor_chaos"]
        assert payload["diagnosis"] is None
        assert payload["quarantined_routers"] == list(range(9))
        assert payload["safe_mode_entries"] >= 9
        assert payload["delivered_fraction"] >= 0.95


class TestDeterminism:
    SPEC = "drop@0.3:util;noise@0.05:nack;stuck@r2.temp=0.8;stale@r4+600:3"

    def _classic(self, kernel, tracer=None):
        config = small_config(sensor_spec=self.SPEC, mode_hysteresis_epochs=2)
        policy = default_design_factories(0)["rl"]()
        sim = Simulator(config, policy, seed=0, kernel=kernel, tracer=tracer)
        sim.pretrain()
        policy.freeze()
        sim.warmup()
        trace = synthesize_benchmark_trace("swaptions", config, 400, 0)
        return sim.measure_trace(trace, "swaptions")

    def test_kernels_agree_under_sensor_faults(self):
        fast_tracer, naive_tracer = TraceBuffer(), TraceBuffer()
        fast = self._classic("fast", fast_tracer)
        naive = self._classic("naive", naive_tracer)
        assert fast == naive
        assert fast.rejected_observations > 0  # faults actually fired
        assert fast_tracer.digest() == naive_tracer.digest()

    def test_kill_and_resume_bit_identical_with_sensor_faults(self, tmp_path):
        config = small_config(
            sensor_spec=self.SPEC, mode_hysteresis_epochs=2,
            sensor_quarantine_k=4,
        )
        baseline = ResumableRun(config, "rl", "swaptions", trace_cycles=400).run()
        assert baseline.rejected_observations > 0

        run = ResumableRun(
            config, "rl", "swaptions", trace_cycles=400,
            checkpoint_path=tmp_path / "run.ckpt", checkpoint_every=350,
        )
        copies = []
        original_save = run.save

        def keep(path=None):
            saved = original_save(path)
            if saved is not None:
                copy = tmp_path / f"snap_{len(copies)}.ckpt"
                shutil.copy(saved, copy)
                copies.append(copy)
            return saved

        run.save = keep
        uninterrupted = run.run()
        assert uninterrupted == baseline
        assert len(copies) >= 3
        # Resume from an early, a middle, and the last mid-run snapshot.
        for copy in (copies[0], copies[len(copies) // 2], copies[-2]):
            resumed = ResumableRun.resume(copy).run()
            assert resumed == baseline
