"""Hypothesis property tests for the routing functions.

Complements the example-based tests in ``test_routing.py`` with the
properties ISSUE'd for the fault-tolerant routing work: every function
must return a productive minimal port, realize exactly the Manhattan
distance, and (for XY) never make a Y-to-X turn.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc import FaultState, MeshTopology, Port, minimal_ports, xy_route, yx_route
from repro.noc.routing import ROUTING_FUNCTIONS, make_adaptive_route

MAX_DIM = 8

dims = st.integers(min_value=2, max_value=MAX_DIM)


@st.composite
def mesh_and_pair(draw):
    width, height = draw(dims), draw(dims)
    topo = MeshTopology(width, height)
    nodes = width * height
    src = draw(st.integers(min_value=0, max_value=nodes - 1))
    dest = draw(st.integers(min_value=0, max_value=nodes - 1))
    return topo, src, dest


def _walk(topology, route_fn, src, dest, limit=None):
    node = src
    path = [node]
    limit = limit if limit is not None else 4 * (topology.width + topology.height)
    for _ in range(limit):
        if node == dest:
            return path
        port = route_fn(topology, node, dest)
        node = topology.neighbour(node, port)
        assert node is not None, "routing walked off the mesh"
        path.append(node)
    raise AssertionError("routing did not reach the destination")


@settings(max_examples=200, deadline=None)
@given(mesh_and_pair())
def test_dimension_order_ports_are_productive_minimal(case):
    topo, src, dest = case
    minimal = set(minimal_ports(topo, src, dest))
    assert xy_route(topo, src, dest) in minimal
    assert yx_route(topo, src, dest) in minimal


@settings(max_examples=200, deadline=None)
@given(mesh_and_pair())
def test_route_length_equals_manhattan_distance(case):
    topo, src, dest = case
    for fn in (xy_route, yx_route):
        path = _walk(topo, fn, src, dest)
        assert len(path) - 1 == topo.hop_distance(src, dest)


@settings(max_examples=200, deadline=None)
@given(mesh_and_pair())
def test_xy_never_turns_y_to_x(case):
    topo, src, dest = case
    path = _walk(topo, xy_route, src, dest)
    seen_y = False
    for a, b in zip(path, path[1:]):
        ax, ay = topo.coordinates(a)
        bx, by = topo.coordinates(b)
        if ay != by:
            seen_y = True
        if ax != bx:
            assert not seen_y, f"YX turn on path {path}"


@settings(max_examples=100, deadline=None)
@given(mesh_and_pair(), st.integers(min_value=0, max_value=2**31))
def test_o1turn_routes_are_minimal(case, seed):
    topo, src, dest = case
    fn = ROUTING_FUNCTIONS["o1turn"].build(topo, router_id=0, seed=seed)
    path = _walk(topo, fn, src, dest)
    assert len(path) - 1 == topo.hop_distance(src, dest)


@settings(max_examples=100, deadline=None)
@given(mesh_and_pair())
def test_adaptive_equals_xy_when_healthy(case):
    topo, src, dest = case
    fn = make_adaptive_route(FaultState(topo))
    assert fn(topo, src, dest) == xy_route(topo, src, dest)


@settings(max_examples=100, deadline=None)
@given(mesh_and_pair(), st.randoms(use_true_random=False))
def test_adaptive_reaches_destination_around_one_dead_link(case, rnd):
    topo, src, dest = case
    fault_state = FaultState(topo)
    fn = make_adaptive_route(fault_state)
    # Kill one random directed link that isn't the destination's last
    # resort: pick any; if it cuts the graph, reachability must say so.
    channels = list(topo.channels())
    spec = channels[rnd.randrange(len(channels))]
    fault_state.kill_link(spec.src, int(spec.src_port))
    if not fault_state.reachable(src, dest):
        return  # cut graph: RC would drop with accounting, not route
    path = _walk(topo, fn, src, dest)
    for a, b in zip(path, path[1:]):
        assert (a, b) != (spec.src, spec.dst), "route used the dead link"
