"""Tests for XY / YX routing functions."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc import MeshTopology, Port, minimal_ports, xy_route, yx_route
from repro.noc.routing import make_o1turn_route


def _walk(topology, route_fn, src, dest, limit=64):
    """Follow a routing function hop by hop; returns the path."""
    node = src
    path = [node]
    for _ in range(limit):
        if node == dest:
            return path
        port = route_fn(topology, node, dest)
        node = topology.neighbour(node, port)
        assert node is not None, "routing walked off the mesh"
        path.append(node)
    raise AssertionError("routing did not reach the destination")


class TestXY:
    def test_local_at_destination(self):
        topo = MeshTopology(4, 4)
        assert xy_route(topo, 5, 5) is Port.LOCAL

    def test_x_first(self):
        topo = MeshTopology(4, 4)
        # from (0,0) to (2,2): must go EAST first
        assert xy_route(topo, 0, topo.node_id(2, 2)) is Port.EAST
        # from (2,0) to (2,2): x aligned, go NORTH
        assert xy_route(topo, topo.node_id(2, 0), topo.node_id(2, 2)) is Port.NORTH

    def test_path_is_minimal(self):
        topo = MeshTopology(4, 4)
        path = _walk(topo, xy_route, 0, 15)
        assert len(path) - 1 == topo.hop_distance(0, 15)

    def test_no_yx_turn(self):
        """XY never turns from a Y direction back into an X direction."""
        topo = MeshTopology(5, 5)
        for src in range(25):
            for dest in range(25):
                if src == dest:
                    continue
                path = _walk(topo, xy_route, src, dest)
                seen_y = False
                for a, b in zip(path, path[1:]):
                    ax, ay = topo.coordinates(a)
                    bx, by = topo.coordinates(b)
                    if ay != by:
                        seen_y = True
                    if ax != bx:
                        assert not seen_y, f"YX turn on path {path}"


class TestYX:
    def test_y_first(self):
        topo = MeshTopology(4, 4)
        assert yx_route(topo, 0, topo.node_id(2, 2)) is Port.NORTH

    def test_reaches_destination(self):
        topo = MeshTopology(4, 4)
        for src, dest in [(0, 15), (3, 12), (5, 10)]:
            path = _walk(topo, yx_route, src, dest)
            assert path[-1] == dest


class TestMinimalPorts:
    def test_at_destination(self):
        topo = MeshTopology(4, 4)
        assert minimal_ports(topo, 7, 7) == [Port.LOCAL]

    def test_diagonal_has_two_choices(self):
        topo = MeshTopology(4, 4)
        ports = minimal_ports(topo, 0, topo.node_id(2, 2))
        assert set(ports) == {Port.EAST, Port.NORTH}

    def test_aligned_has_one_choice(self):
        topo = MeshTopology(4, 4)
        assert minimal_ports(topo, 0, 3) == [Port.EAST]

    def test_xy_choice_is_always_minimal(self):
        topo = MeshTopology(4, 4)
        for src in range(16):
            for dest in range(16):
                if src != dest:
                    assert xy_route(topo, src, dest) in minimal_ports(topo, src, dest)


class TestO1Turn:
    def test_alternates_between_xy_and_yx(self):
        topo = MeshTopology(4, 4)
        route = make_o1turn_route([0, 1])
        dest = topo.node_id(2, 2)
        assert route(topo, 0, dest) is Port.EAST   # XY
        assert route(topo, 0, dest) is Port.NORTH  # YX


@settings(max_examples=200)
@given(
    w=st.integers(min_value=2, max_value=8),
    h=st.integers(min_value=2, max_value=8),
    data=st.data(),
)
def test_property_xy_always_delivers_minimally(w, h, data):
    topo = MeshTopology(w, h)
    src = data.draw(st.integers(min_value=0, max_value=topo.num_nodes - 1))
    dest = data.draw(st.integers(min_value=0, max_value=topo.num_nodes - 1))
    if src == dest:
        return
    path = _walk(topo, xy_route, src, dest, limit=w + h)
    assert path[-1] == dest
    assert len(path) - 1 == topo.hop_distance(src, dest)
