"""Tests for packets and flits."""

import pytest

from repro.noc import FlitType, Packet


class TestFlitTypes:
    def test_multi_flit_layout(self):
        p = Packet(src=0, dest=1, size=4, flit_bits=128, created_at=0)
        assert p.flits[0].ftype is FlitType.HEAD
        assert p.flits[1].ftype is FlitType.BODY
        assert p.flits[2].ftype is FlitType.BODY
        assert p.flits[3].ftype is FlitType.TAIL

    def test_single_flit_packet(self):
        p = Packet(src=0, dest=1, size=1, flit_bits=128, created_at=0)
        flit = p.flits[0]
        assert flit.ftype is FlitType.HEAD_TAIL
        assert flit.is_head and flit.is_tail

    def test_two_flit_packet(self):
        p = Packet(src=0, dest=1, size=2, flit_bits=64, created_at=0)
        assert p.flits[0].is_head and not p.flits[0].is_tail
        assert p.flits[1].is_tail and not p.flits[1].is_head


class TestValidation:
    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            Packet(src=0, dest=1, size=0, flit_bits=128, created_at=0)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            Packet(src=3, dest=3, size=2, flit_bits=128, created_at=0)

    def test_rejects_payload_count_mismatch(self):
        with pytest.raises(ValueError):
            Packet(src=0, dest=1, size=2, flit_bits=128, created_at=0, payloads=[1])


class TestPayloads:
    def test_combined_payload_concatenates(self):
        p = Packet(src=0, dest=1, size=2, flit_bits=8, created_at=0, payloads=[0xAB, 0xCD])
        assert p.combined_payload() == (0xCD << 8) | 0xAB

    def test_received_payload_applies_errors(self):
        p = Packet(src=0, dest=1, size=2, flit_bits=8, created_at=0, payloads=[0xAB, 0xCD])
        p.flits[0].error_mask = 0x01
        assert p.combined_payload(received=True) == (0xCD << 8) | 0xAA
        assert p.flits[0].is_corrupted
        assert not p.flits[1].is_corrupted

    def test_total_bits(self):
        p = Packet(src=0, dest=1, size=4, flit_bits=128, created_at=0)
        assert p.total_bits == 512


class TestIdentity:
    def test_pids_are_unique(self):
        a = Packet(src=0, dest=1, size=1, flit_bits=8, created_at=0)
        b = Packet(src=0, dest=1, size=1, flit_bits=8, created_at=0)
        assert a.pid != b.pid

    def test_message_id_defaults_to_pid(self):
        p = Packet(src=0, dest=1, size=1, flit_bits=8, created_at=0)
        assert p.message_id == p.pid


class TestRetransmissionClone:
    def test_clone_preserves_identity_and_payload(self):
        p = Packet(src=0, dest=5, size=2, flit_bits=8, created_at=17, payloads=[1, 2])
        p.crc_check = 0xBEEF
        clone = p.clone_for_retransmission(now=200)
        assert clone.pid != p.pid
        assert clone.message_id == p.message_id
        assert clone.created_at == p.created_at  # latency measured from origin
        assert clone.payloads == p.payloads
        assert clone.crc_check == p.crc_check
        assert clone.retransmission == 1

    def test_clone_has_fresh_flits(self):
        p = Packet(src=0, dest=5, size=2, flit_bits=8, created_at=0, payloads=[1, 2])
        p.flits[0].error_mask = 0xFF
        clone = p.clone_for_retransmission(now=10)
        assert clone.flits[0].error_mask == 0
        assert clone.path == []

    def test_chained_clones_count_attempts(self):
        p = Packet(src=0, dest=5, size=1, flit_bits=8, created_at=0)
        c2 = p.clone_for_retransmission(1).clone_for_retransmission(2)
        assert c2.retransmission == 2
