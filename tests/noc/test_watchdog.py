"""Tests for the runtime invariant watchdogs."""

import random

import pytest

from repro.noc import (
    ConservationError,
    DeadlockError,
    LivelockError,
    MeshTopology,
    Network,
    NoCInvariantError,
    Packet,
    Port,
    UnreachableDestinationError,
)


def _mesh(routing="xy", **kwargs):
    return Network(
        MeshTopology(4, 4), routing_fn=routing, rng=random.Random(0), **kwargs
    )


class TestWiring:
    def test_enabled_by_default(self):
        net = _mesh()
        assert net.watchdog is not None
        assert net.watchdog.interval == 256

    def test_interval_zero_disables(self):
        net = _mesh(watchdog_interval=0)
        assert net.watchdog is None
        net.run(600)  # no watchdog, no crash

    def test_polled_on_interval(self):
        net = _mesh(watchdog_interval=16)
        net.run(64)
        assert net.watchdog.checks == 4


class TestConservation:
    def test_healthy_traffic_passes(self):
        net = _mesh(watchdog_interval=8)
        rng = random.Random(1)
        for i in range(500):
            if rng.random() < 0.2:
                src, dst = rng.randrange(16), rng.randrange(16)
                if src != dst:
                    net.inject(Packet(src, dst, 4, net.flit_bits, net.now, message_id=i))
            net.cycle()
        assert net.watchdog.checks > 0

    def test_tampered_counter_raises(self):
        net = _mesh(watchdog_interval=8)
        net.stats.messages_created += 3  # phantom messages
        with pytest.raises(ConservationError) as err:
            net.run(8)
        report = err.value.report
        assert report["kind"] == "conservation"
        assert report["messages_created"] == 3
        assert report["outstanding"] == 0


class TestDeadlock:
    def test_wedged_message_raises_within_window(self):
        net = _mesh(watchdog_interval=8, deadlock_cycles=64)
        ni = net.interfaces[0]
        net.inject(Packet(0, 5, 4, net.flit_bits, 0, message_id=1))
        # Simulate a wedged protocol: the message is outstanding at the
        # source but its flits will never enter the network.
        ni._inject_queue.clear()
        with pytest.raises(DeadlockError) as err:
            net.run(256)
        assert err.value.report["kind"] == "deadlock"
        assert err.value.report["outstanding"] == 1
        # Tripped within one watchdog poll after the detection window.
        assert net.now <= 64 + 8

    def test_structured_report_lists_stuck_vcs(self):
        net = _mesh(watchdog_interval=8, deadlock_cycles=32)
        net.inject(Packet(0, 5, 4, net.flit_bits, 0, message_id=1))
        # Let the head enter the local VC, then freeze the router so the
        # worm wedges inside the pipeline.
        net.run(2)
        net.routers[0].step = lambda now: None
        with pytest.raises(DeadlockError) as err:
            net.run(256)
        stuck = err.value.report["stuck"]
        assert any(entry.get("router") == 0 for entry in stuck)
        assert any(
            entry.get("packet", {}) and entry["packet"]["pid"] is not None
            for entry in stuck
            if entry.get("packet")
        )


class TestLivelock:
    def test_overaged_message_raises(self):
        net = _mesh(watchdog_interval=8, deadlock_cycles=10**9, max_packet_age=100)
        ni = net.interfaces[0]
        net.inject(Packet(0, 5, 4, net.flit_bits, 0, message_id=1))
        ni._inject_queue.clear()
        with pytest.raises(LivelockError) as err:
            net.run(512)
        report = err.value.report
        assert report["kind"] == "livelock"
        assert report["overage_messages"][0]["message_id"] == 1

    def test_age_zero_disables_livelock_only(self):
        net = _mesh(watchdog_interval=8, deadlock_cycles=10**9, max_packet_age=0)
        ni = net.interfaces[0]
        net.inject(Packet(0, 5, 4, net.flit_bits, 0, message_id=1))
        ni._inject_queue.clear()
        net.run(512)  # neither deadlock (huge window) nor livelock fires


class TestUnreachable:
    @staticmethod
    def _isolate_node_zero(net):
        # Corner node 0 touches exactly two bidirectional links.
        net.kill_link(0, Port.EAST)
        net.kill_link(0, Port.NORTH)
        net.kill_link(1, Port.WEST)
        net.kill_link(4, Port.SOUTH)

    def test_raise_mode_gives_structured_diagnosis(self):
        net = _mesh(
            routing="adaptive", watchdog_interval=8, unreachable_action="raise"
        )
        self._isolate_node_zero(net)
        net.inject(Packet(5, 0, 4, net.flit_bits, net.now, message_id=1))
        with pytest.raises(UnreachableDestinationError) as err:
            net.run(64)
        report = err.value.report
        assert report["kind"] == "unreachable_destination"
        assert report["dest"] == 0
        assert sorted(report["dead_nodes"]) == []
        assert (0, int(Port.EAST)) in [tuple(x) for x in report["dead_links"]]
        assert isinstance(err.value, NoCInvariantError)

    def test_drop_mode_counts_and_conserves(self):
        net = _mesh(routing="adaptive", watchdog_interval=8)
        self._isolate_node_zero(net)
        net.inject(Packet(5, 0, 4, net.flit_bits, net.now, message_id=1))
        net.run(256)
        assert net.stats.unreachable_drops == 1
        assert net.stats.messages_dropped == 1
        assert net.quiescent
