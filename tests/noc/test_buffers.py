"""Tests for virtual channels and input ports."""

import pytest

from repro.noc import FlitType, InputPort, OutputQueue, Packet, Port, VCState
from repro.noc.buffers import VirtualChannel


def _flit(index=0, size=4):
    packet = Packet(src=0, dest=1, size=size, flit_bits=8, created_at=0)
    return packet.flits[index]


class TestVirtualChannel:
    def test_rejects_zero_depth(self):
        with pytest.raises(ValueError):
            VirtualChannel(Port.LOCAL, 0, 0)

    def test_fifo_order(self):
        vc = VirtualChannel(Port.EAST, 1, 4)
        packet = Packet(src=0, dest=1, size=3, flit_bits=8, created_at=0)
        for flit in packet.flits:
            vc.push(flit)
        assert [vc.pop().index for _ in range(3)] == [0, 1, 2]

    def test_push_sets_vc_id(self):
        vc = VirtualChannel(Port.EAST, 2, 4)
        flit = _flit()
        vc.push(flit)
        assert flit.vc == 2

    def test_overflow_raises(self):
        vc = VirtualChannel(Port.EAST, 0, 1)
        vc.push(_flit())
        with pytest.raises(OverflowError):
            vc.push(_flit())

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            VirtualChannel(Port.EAST, 0, 1).pop()

    def test_release_resets_state(self):
        vc = VirtualChannel(Port.EAST, 0, 2)
        vc.state = VCState.ACTIVE
        vc.out_port = 3
        vc.out_vc = 1
        vc.release()
        assert vc.state is VCState.IDLE
        assert vc.out_port is None and vc.out_vc is None

    def test_front_peeks(self):
        vc = VirtualChannel(Port.EAST, 0, 2)
        assert vc.front is None
        flit = _flit()
        vc.push(flit)
        assert vc.front is flit
        assert vc.occupancy == 1


class TestInputPort:
    def test_rejects_zero_vcs(self):
        with pytest.raises(ValueError):
            InputPort(Port.LOCAL, 0, 4)

    def test_occupied_vcs_counts_busy_lanes(self):
        port = InputPort(Port.NORTH, 4, 4)
        assert port.occupied_vcs == 0
        port.vcs[0].push(_flit())
        port.vcs[2].state = VCState.ACTIVE
        assert port.occupied_vcs == 2

    def test_free_vc_for_head_skips_busy(self):
        port = InputPort(Port.NORTH, 2, 4)
        port.vcs[0].state = VCState.ROUTING
        free = port.free_vc_for_head()
        assert free is port.vcs[1]
        port.vcs[1].push(_flit())
        assert port.free_vc_for_head() is None

    def test_buffered_flits_total(self):
        port = InputPort(Port.NORTH, 2, 4)
        port.vcs[0].push(_flit(0))
        port.vcs[0].push(_flit(1))
        port.vcs[1].push(_flit(0))
        assert port.buffered_flits == 3


class TestOutputQueue:
    def test_rejects_zero_depth(self):
        with pytest.raises(ValueError):
            OutputQueue(0)

    def test_fifo_semantics(self):
        q = OutputQueue(3)
        q.push("a")
        q.push("b")
        assert q.front() == "a"
        assert q.pop() == "a"
        assert len(q) == 1

    def test_overflow_raises(self):
        q = OutputQueue(1)
        q.push("a")
        assert q.is_full
        with pytest.raises(OverflowError):
            q.push("b")
