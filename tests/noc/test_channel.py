"""Tests for channels, transmissions, and the channel error model."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.arq import AckKind, AckMessage
from repro.noc import Channel, ChannelErrorModel, MeshTopology, Packet, Transmission
from repro.noc.topology import ChannelSpec, Port


def make_channel(latency=1, p=0.0, severity=(0.33, 0.47, 0.20), seed=0):
    spec = ChannelSpec(0, Port.EAST, 1, Port.WEST)
    model = ChannelErrorModel(random.Random(seed), 128, p, severity)
    return Channel(spec, latency, model)


def flit():
    return Packet(0, 1, 1, 128, 0).flits[0]


class TestErrorModel:
    def test_validation(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            ChannelErrorModel(rng, 128, event_probability=1.5)
        with pytest.raises(ValueError):
            ChannelErrorModel(rng, 128, severity=(0.5, 0.5, 0.5))
        with pytest.raises(ValueError):
            ChannelErrorModel(rng, 128, severity=(-0.1, 0.9, 0.2))

    def test_zero_probability_never_errors(self):
        model = ChannelErrorModel(random.Random(1), 128, 0.0)
        assert all(model.sample_error_bits(False) == 0 for _ in range(500))

    def test_certain_probability_always_errors(self):
        model = ChannelErrorModel(random.Random(1), 128, 1.0)
        assert all(model.sample_error_bits(False) >= 1 for _ in range(200))

    def test_severity_mix_statistics(self):
        model = ChannelErrorModel(
            random.Random(2), 128, 1.0, severity=(0.5, 0.3, 0.2)
        )
        counts = {1: 0, 2: 0, 3: 0}
        n = 3000
        for _ in range(n):
            counts[model.sample_error_bits(False)] += 1
        assert abs(counts[1] / n - 0.5) < 0.05
        assert abs(counts[2] / n - 0.3) < 0.05
        assert abs(counts[3] / n - 0.2) < 0.05

    def test_relaxation_scales_probability(self):
        model = ChannelErrorModel(
            random.Random(3), 128, 0.5, relax_factor=0.0
        )
        assert all(model.sample_error_bits(True) == 0 for _ in range(300))
        assert any(model.sample_error_bits(False) > 0 for _ in range(100))

    def test_mask_has_exact_weight(self):
        model = ChannelErrorModel(random.Random(4), 128, 1.0)
        for k in (1, 2, 3):
            mask = model.sample_mask(k)
            assert bin(mask).count("1") == k
            assert mask < (1 << 128)


class TestChannel:
    def test_rejects_zero_latency(self):
        spec = ChannelSpec(0, Port.EAST, 1, Port.WEST)
        with pytest.raises(ValueError):
            Channel(spec, 0, ChannelErrorModel(random.Random(0), 128))

    def test_data_delivery_at_arrival_time(self):
        ch = make_channel()
        t = Transmission(flit(), None, 0, False, False, False, arrive_at=5)
        ch.send(t)
        assert ch.pop_arrivals(4) == []
        assert ch.pop_arrivals(5) == [t]
        assert ch.pop_arrivals(5) == []  # consumed
        assert not ch.busy

    def test_arrivals_sorted_by_time(self):
        ch = make_channel()
        late = Transmission(flit(), None, 0, False, False, False, arrive_at=7)
        early = Transmission(flit(), None, 0, False, False, False, arrive_at=5)
        ch.send(late)
        ch.send(early)
        assert ch.pop_arrivals(10) == [early, late]

    def test_ack_and_credit_sideband(self):
        ch = make_channel()
        ch.send_ack(AckMessage(3, AckKind.ACK), deliver_at=2)
        ch.send_ack(AckMessage(4, AckKind.NACK), deliver_at=3)
        ch.send_credit(1, deliver_at=2)
        assert ch.pop_acks(1) == []
        assert [m.seq for m in ch.pop_acks(2)] == [3]
        assert ch.pop_credits(2) == [1]
        assert [m.seq for m in ch.pop_acks(3)] == [4]
        assert not ch.busy

    def test_busy_reflects_any_traffic(self):
        ch = make_channel()
        assert not ch.busy
        ch.send_credit(0, 1)
        assert ch.busy
        ch.pop_credits(1)
        assert not ch.busy


class TestTransmission:
    def test_fields(self):
        f = flit()
        t = Transmission(f, 9, 2, True, True, False, 11, paired=True)
        assert t.flit is f
        assert t.seq == 9 and t.vc == 2
        assert t.protected and t.relaxed and not t.duplicate and t.paired


@settings(max_examples=80)
@given(
    p=st.floats(min_value=0.0, max_value=1.0),
    relaxed=st.booleans(),
)
def test_property_error_bits_in_range(p, relaxed):
    model = ChannelErrorModel(random.Random(5), 64, p)
    for _ in range(20):
        bits = model.sample_error_bits(relaxed)
        assert bits in (0, 1, 2, 3)


class TestSkipSampling:
    """The geometric skip-sampler must be a faithful Bernoulli stream."""

    @settings(max_examples=20, deadline=None)
    @given(
        p=st.sampled_from([0.005, 0.02, 0.05, 0.1, 0.3]),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_event_rate_matches_bernoulli(self, p, seed):
        """Observed event frequency ~ Binomial(n, p) within 5 sigma."""
        n = max(4_000, int(60 / p))
        model = ChannelErrorModel(random.Random(seed), 64, p)
        events = sum(1 for _ in range(n) if model.sample_error_bits(False))
        sigma = (n * p * (1.0 - p)) ** 0.5
        assert abs(events - n * p) < 5.0 * sigma + 1.0

    def test_gap_lengths_are_geometric(self):
        """Mean clean-run length ~ (1-p)/p, the geometric mean gap."""
        p = 0.05
        model = ChannelErrorModel(random.Random(11), 64, p)
        gaps, current = [], 0
        for _ in range(200_000):
            if model.sample_error_bits(False):
                gaps.append(current)
                current = 0
            else:
                current += 1
        mean_gap = sum(gaps) / len(gaps)
        expected = (1.0 - p) / p
        assert abs(mean_gap - expected) < 0.05 * expected + 0.5

    def test_probability_refresh_keeps_memoryless_countdown(self):
        """Setting the same p must not redraw (epoch refresh is a no-op)."""
        model = ChannelErrorModel(random.Random(3), 64, 0.1)
        model.sample_error_bits(False)  # force the countdown to exist
        before = model._gap
        model.set_probabilities(0.1, model.relax_factor)
        assert model._gap == before
        model.set_probabilities(0.2, model.relax_factor)
        assert model._gap is None  # an actual change invalidates it

    def test_pickle_roundtrip_preserves_stream(self):
        """A snapshot mid-stream must continue bit-identically."""
        import pickle

        model = ChannelErrorModel(random.Random(17), 64, 0.08)
        for _ in range(137):
            model.sample_error_bits(False)
            model.sample_error_bits(True)
        clone = pickle.loads(pickle.dumps(model))
        for _ in range(500):
            assert clone.sample_error_bits(False) == model.sample_error_bits(False)
            assert clone.sample_error_bits(True) == model.sample_error_bits(True)
