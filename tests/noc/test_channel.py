"""Tests for channels, transmissions, and the channel error model."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.arq import AckKind, AckMessage
from repro.noc import Channel, ChannelErrorModel, MeshTopology, Packet, Transmission
from repro.noc.topology import ChannelSpec, Port


def make_channel(latency=1, p=0.0, severity=(0.33, 0.47, 0.20), seed=0):
    spec = ChannelSpec(0, Port.EAST, 1, Port.WEST)
    model = ChannelErrorModel(random.Random(seed), 128, p, severity)
    return Channel(spec, latency, model)


def flit():
    return Packet(0, 1, 1, 128, 0).flits[0]


class TestErrorModel:
    def test_validation(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            ChannelErrorModel(rng, 128, event_probability=1.5)
        with pytest.raises(ValueError):
            ChannelErrorModel(rng, 128, severity=(0.5, 0.5, 0.5))
        with pytest.raises(ValueError):
            ChannelErrorModel(rng, 128, severity=(-0.1, 0.9, 0.2))

    def test_zero_probability_never_errors(self):
        model = ChannelErrorModel(random.Random(1), 128, 0.0)
        assert all(model.sample_error_bits(False) == 0 for _ in range(500))

    def test_certain_probability_always_errors(self):
        model = ChannelErrorModel(random.Random(1), 128, 1.0)
        assert all(model.sample_error_bits(False) >= 1 for _ in range(200))

    def test_severity_mix_statistics(self):
        model = ChannelErrorModel(
            random.Random(2), 128, 1.0, severity=(0.5, 0.3, 0.2)
        )
        counts = {1: 0, 2: 0, 3: 0}
        n = 3000
        for _ in range(n):
            counts[model.sample_error_bits(False)] += 1
        assert abs(counts[1] / n - 0.5) < 0.05
        assert abs(counts[2] / n - 0.3) < 0.05
        assert abs(counts[3] / n - 0.2) < 0.05

    def test_relaxation_scales_probability(self):
        model = ChannelErrorModel(
            random.Random(3), 128, 0.5, relax_factor=0.0
        )
        assert all(model.sample_error_bits(True) == 0 for _ in range(300))
        assert any(model.sample_error_bits(False) > 0 for _ in range(100))

    def test_mask_has_exact_weight(self):
        model = ChannelErrorModel(random.Random(4), 128, 1.0)
        for k in (1, 2, 3):
            mask = model.sample_mask(k)
            assert bin(mask).count("1") == k
            assert mask < (1 << 128)


class TestChannel:
    def test_rejects_zero_latency(self):
        spec = ChannelSpec(0, Port.EAST, 1, Port.WEST)
        with pytest.raises(ValueError):
            Channel(spec, 0, ChannelErrorModel(random.Random(0), 128))

    def test_data_delivery_at_arrival_time(self):
        ch = make_channel()
        t = Transmission(flit(), None, 0, False, False, False, arrive_at=5)
        ch.send(t)
        assert ch.pop_arrivals(4) == []
        assert ch.pop_arrivals(5) == [t]
        assert ch.pop_arrivals(5) == []  # consumed
        assert not ch.busy

    def test_arrivals_sorted_by_time(self):
        ch = make_channel()
        late = Transmission(flit(), None, 0, False, False, False, arrive_at=7)
        early = Transmission(flit(), None, 0, False, False, False, arrive_at=5)
        ch.send(late)
        ch.send(early)
        assert ch.pop_arrivals(10) == [early, late]

    def test_ack_and_credit_sideband(self):
        ch = make_channel()
        ch.send_ack(AckMessage(3, AckKind.ACK), deliver_at=2)
        ch.send_ack(AckMessage(4, AckKind.NACK), deliver_at=3)
        ch.send_credit(1, deliver_at=2)
        assert ch.pop_acks(1) == []
        assert [m.seq for m in ch.pop_acks(2)] == [3]
        assert ch.pop_credits(2) == [1]
        assert [m.seq for m in ch.pop_acks(3)] == [4]
        assert not ch.busy

    def test_busy_reflects_any_traffic(self):
        ch = make_channel()
        assert not ch.busy
        ch.send_credit(0, 1)
        assert ch.busy
        ch.pop_credits(1)
        assert not ch.busy


class TestTransmission:
    def test_fields(self):
        f = flit()
        t = Transmission(f, 9, 2, True, True, False, 11, paired=True)
        assert t.flit is f
        assert t.seq == 9 and t.vc == 2
        assert t.protected and t.relaxed and not t.duplicate and t.paired


@settings(max_examples=80)
@given(
    p=st.floats(min_value=0.0, max_value=1.0),
    relaxed=st.booleans(),
)
def test_property_error_bits_in_range(p, relaxed):
    model = ChannelErrorModel(random.Random(5), 64, p)
    for _ in range(20):
        bits = model.sample_error_bits(relaxed)
        assert bits in (0, 1, 2, 3)
