"""Tests for mesh/torus topology construction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc import MeshTopology, Port
from repro.noc.topology import OPPOSITE_PORT


class TestConstruction:
    def test_rejects_tiny_mesh(self):
        with pytest.raises(ValueError):
            MeshTopology(1, 4)
        with pytest.raises(ValueError):
            MeshTopology(4, 1)

    def test_node_count(self):
        assert MeshTopology(8, 8).num_nodes == 64
        assert MeshTopology(4, 2).num_nodes == 8

    def test_channel_count_mesh(self):
        # 2 * (w-1) * h horizontal + 2 * w * (h-1) vertical directed links
        topo = MeshTopology(4, 4)
        assert topo.num_channels == 2 * 3 * 4 + 2 * 4 * 3

    def test_channel_count_torus(self):
        topo = MeshTopology(4, 4, torus=True)
        assert topo.num_channels == 4 * 16  # every node has all 4 dirs


class TestCoordinates:
    def test_roundtrip(self):
        topo = MeshTopology(5, 3)
        for node in range(topo.num_nodes):
            x, y = topo.coordinates(node)
            assert topo.node_id(x, y) == node

    def test_rejects_out_of_range(self):
        topo = MeshTopology(4, 4)
        with pytest.raises(ValueError):
            topo.coordinates(16)
        with pytest.raises(ValueError):
            topo.node_id(4, 0)


class TestNeighbours:
    def test_interior_node_has_four_neighbours(self):
        topo = MeshTopology(4, 4)
        node = topo.node_id(1, 1)
        assert topo.neighbour(node, Port.EAST) == topo.node_id(2, 1)
        assert topo.neighbour(node, Port.WEST) == topo.node_id(0, 1)
        assert topo.neighbour(node, Port.NORTH) == topo.node_id(1, 2)
        assert topo.neighbour(node, Port.SOUTH) == topo.node_id(1, 0)

    def test_corner_has_two_neighbours(self):
        topo = MeshTopology(4, 4)
        assert topo.neighbour(0, Port.WEST) is None
        assert topo.neighbour(0, Port.SOUTH) is None
        assert topo.neighbour(0, Port.EAST) == 1
        assert topo.neighbour(0, Port.NORTH) == 4

    def test_torus_wraparound(self):
        topo = MeshTopology(4, 4, torus=True)
        assert topo.neighbour(0, Port.WEST) == 3
        assert topo.neighbour(0, Port.SOUTH) == 12

    def test_channels_are_symmetric(self):
        topo = MeshTopology(4, 4)
        pairs = {(c.src, c.dst) for c in topo.channels()}
        assert all((dst, src) in pairs for src, dst in pairs)

    def test_channel_dst_port_is_opposite(self):
        for spec in MeshTopology(3, 3).channels():
            assert spec.dst_port == OPPOSITE_PORT[spec.src_port]

    def test_ports_of_corner_and_interior(self):
        topo = MeshTopology(4, 4)
        assert set(topo.ports_of(0)) == {Port.LOCAL, Port.EAST, Port.NORTH}
        assert len(topo.ports_of(topo.node_id(1, 1))) == 5


class TestHopDistance:
    def test_manhattan(self):
        topo = MeshTopology(4, 4)
        assert topo.hop_distance(0, 15) == 6
        assert topo.hop_distance(0, 0) == 0
        assert topo.hop_distance(0, 3) == 3

    def test_torus_shortcut(self):
        topo = MeshTopology(4, 4, torus=True)
        assert topo.hop_distance(0, 3) == 1


@settings(max_examples=100)
@given(
    w=st.integers(min_value=2, max_value=8),
    h=st.integers(min_value=2, max_value=8),
    data=st.data(),
)
def test_property_neighbour_symmetry(w, h, data):
    """neighbour(neighbour(n, p), opposite(p)) == n on any mesh."""
    topo = MeshTopology(w, h)
    node = data.draw(st.integers(min_value=0, max_value=topo.num_nodes - 1))
    for port, opposite in OPPOSITE_PORT.items():
        other = topo.neighbour(node, port)
        if other is not None:
            assert topo.neighbour(other, opposite) == node


@settings(max_examples=100)
@given(
    w=st.integers(min_value=2, max_value=8),
    h=st.integers(min_value=2, max_value=8),
    data=st.data(),
)
def test_property_hop_distance_is_metric(w, h, data):
    topo = MeshTopology(w, h)
    n = topo.num_nodes
    a = data.draw(st.integers(min_value=0, max_value=n - 1))
    b = data.draw(st.integers(min_value=0, max_value=n - 1))
    c = data.draw(st.integers(min_value=0, max_value=n - 1))
    assert topo.hop_distance(a, b) == topo.hop_distance(b, a)
    assert (topo.hop_distance(a, b) == 0) == (a == b)
    assert topo.hop_distance(a, c) <= topo.hop_distance(a, b) + topo.hop_distance(b, c)
