"""Tests for network interfaces: CRC protection and source retransmission."""

import random

import pytest

from repro.noc import MeshTopology, Network, Packet


def make_network(seed=0):
    return Network(MeshTopology(4, 4), rng=random.Random(seed))


class TestSourceSide:
    def test_enqueue_computes_crc(self):
        net = make_network()
        p = Packet(0, 5, 2, 128, 0, payloads=[7, 9])
        net.inject(p)
        assert p.crc_check is not None
        ni = net.interfaces[0]
        assert ni.outstanding_messages == 1
        assert ni.inject_backlog == 1

    def test_enqueue_rejects_wrong_source(self):
        net = make_network()
        with pytest.raises(ValueError, match="does not match"):
            net.interfaces[3].enqueue(Packet(0, 5, 1, 128, 0))

    def test_injection_is_one_flit_per_cycle(self):
        net = make_network()
        net.inject(Packet(0, 5, 4, 128, 0))
        ni = net.interfaces[0]
        router = net.routers[0]
        for expected in (1, 2, 3, 4):
            ni.step_inject(net.now)
            assert router.epoch.flits_in[0] == expected
            net.now += 1

    def test_release_clears_store(self):
        net = make_network()
        p = Packet(0, 5, 1, 128, 0)
        net.inject(p)
        net.interfaces[0].release(p.message_id)
        assert net.interfaces[0].outstanding_messages == 0


class TestRetransmissionRequest:
    def test_stale_request_ignored(self):
        net = make_network()
        p = Packet(0, 5, 1, 128, 0)
        net.inject(p)
        ni = net.interfaces[0]
        ni.release(p.message_id)  # delivered meanwhile
        ni.schedule_retransmission(p.message_id, due_cycle=0)
        ni.step_inject(0)
        assert ni.inject_backlog <= 1  # no clone materialized

    def test_request_clones_and_requeues_at_front(self):
        net = make_network()
        p = Packet(0, 5, 2, 128, 0, payloads=[1, 2])
        p2 = Packet(0, 7, 2, 128, 0, payloads=[3, 4])
        ni = net.interfaces[0]
        ni.enqueue(p)
        ni.enqueue(p2)
        ni.schedule_retransmission(p.message_id, due_cycle=0)
        ni.step_inject(0)
        # The clone jumped the queue; the in-progress packet is the clone.
        assert ni._current.message_id == p.message_id
        assert ni._current.retransmission == 1

    def test_end_to_end_recovery_under_certain_errors(self):
        """With errors guaranteed on every hop and no ECC, packets still
        deliver eventually through source retransmission... unless errors
        are permanent.  Use a burst of errors then a clean network."""
        net = make_network(seed=3)
        for _, model in net.channel_models():
            model.event_probability = 0.5
        net.inject(Packet(0, 3, 2, 128, 0, payloads=[5, 6]))
        for _ in range(60):
            net.cycle()
        # Clear the fault burst; recovery must complete.
        for _, model in net.channel_models():
            model.event_probability = 0.0
        net.drain(max_cycles=20_000)
        assert net.stats.packets_delivered >= 1
        assert net.stats.crc_failures + net.stats.packet_retransmissions >= 0


class TestDestinationSide:
    def test_latency_counts_from_creation(self):
        net = make_network()
        packet = Packet(0, 1, 1, 128, 0)
        net.inject(packet)
        net.drain(max_cycles=200)
        assert net.stats.latency.count == 1
        assert net.stats.latency.minimum >= 1

    def test_path_attribution_to_routers(self):
        net = make_network()
        net.inject(Packet(0, 3, 1, 128, 0))
        net.drain(max_cycles=500)
        # XY path 0->1->2->3: all four routers saw the delivered packet.
        for rid in (0, 1, 2, 3):
            assert net.routers[rid].epoch.delivered_packets == 1
        assert net.routers[4].epoch.delivered_packets == 0

    def test_core_activity_counts_unique_work_only(self):
        net = make_network()
        p = Packet(0, 1, 2, 128, 0)
        net.inject(p)
        net.drain(max_cycles=200)
        # Source counted 2 injected flits; destination counted 2 delivered.
        assert net.routers[0].epoch.core_activity_flits == 2
        assert net.routers[1].epoch.core_activity_flits == 2
