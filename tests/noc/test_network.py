"""Network-level integration tests: delivery, recovery, conservation.

These run real traffic through small meshes and assert the end-to-end
guarantees every fault-tolerant configuration must uphold: every message
is eventually delivered with correct payload accounting, credits are
conserved, and each operation mode exhibits its documented behaviour.
"""

import random

import pytest

from repro.core.modes import OperationMode
from repro.noc import MeshTopology, Network, Packet, Port


def make_network(size=4, mode=OperationMode.MODE_0, error=0.0, seed=11, **kwargs):
    net = Network(MeshTopology(size, size), rng=random.Random(seed), **kwargs)
    net.set_all_modes(mode)
    for _, model in net.channel_models():
        model.event_probability = error
    return net


def run_random_traffic(net, n_packets, seed=3, rate=2, size=4, max_cycles=200_000):
    """Inject uniform-random traffic and drain; returns total cycles."""
    rng = random.Random(seed)
    n = net.topology.num_nodes
    created = 0
    while created < n_packets or not net.quiescent:
        if created < n_packets and net.now % rate == 0:
            src = rng.randrange(n)
            dst = rng.randrange(n)
            if src != dst:
                net.inject(
                    Packet(
                        src,
                        dst,
                        size,
                        net.flit_bits,
                        net.now,
                        payloads=[rng.getrandbits(net.flit_bits) for _ in range(size)],
                    )
                )
                created += 1
        net.cycle()
        if net.now > max_cycles:
            raise AssertionError("network failed to drain")
    net.harvest_epoch_counters(1)
    return net.now


class TestCleanDelivery:
    def test_single_packet_latency_is_plausible(self):
        net = make_network()
        net.inject(Packet(0, 15, 4, 128, 0, payloads=[1, 2, 3, 4]))
        net.drain(max_cycles=500)
        assert net.stats.packets_delivered == 1
        # 6 hops x ~5 cycles/hop plus 3 extra flits of serialization.
        assert 20 <= net.stats.mean_latency <= 60

    def test_neighbour_packet_is_fast(self):
        net = make_network()
        net.inject(Packet(0, 1, 1, 128, 0, payloads=[42]))
        net.drain(max_cycles=100)
        assert net.stats.mean_latency <= 12

    @pytest.mark.parametrize("mode", list(OperationMode))
    def test_all_modes_deliver_everything_clean(self, mode):
        net = make_network(mode=mode)
        run_random_traffic(net, 150)
        assert net.stats.packets_delivered == 150
        assert net.stats.packets_injected == 150
        assert net.stats.retransmission_events == 0
        assert net.stats.crc_failures == 0

    def test_mode_latency_ordering_clean(self):
        """Without errors, heavier modes cost latency: 0 <= 1 <= 2 <= 3."""
        latencies = []
        for mode in OperationMode:
            net = make_network(mode=mode)
            run_random_traffic(net, 150)
            latencies.append(net.stats.mean_latency)
        assert latencies[0] <= latencies[1] <= latencies[2] <= latencies[3]

    def test_flits_delivered_accounting(self):
        net = make_network()
        run_random_traffic(net, 50, size=4)
        assert net.stats.flits_delivered == 50 * 4


class TestFaultyDelivery:
    @pytest.mark.parametrize("mode", list(OperationMode))
    @pytest.mark.parametrize("error", [0.02, 0.1])
    def test_all_modes_deliver_everything_under_errors(self, mode, error):
        net = make_network(mode=mode, error=error)
        run_random_traffic(net, 120)
        assert net.stats.packets_delivered == 120

    def test_mode0_errors_cause_packet_retransmissions(self):
        net = make_network(mode=OperationMode.MODE_0, error=0.05)
        run_random_traffic(net, 150)
        assert net.stats.packet_retransmissions > 0
        assert net.stats.flit_retransmissions == 0  # no ARQ in mode 0

    def test_mode1_corrects_singles_and_nacks_doubles(self):
        net = make_network(mode=OperationMode.MODE_1, error=0.1)
        run_random_traffic(net, 150)
        assert net.stats.corrected_errors > 0
        assert net.stats.flit_retransmissions > 0
        # Per-hop recovery must beat end-to-end recovery by a wide margin.
        assert net.stats.packet_retransmissions < net.stats.flit_retransmissions

    def test_mode2_reduces_retransmissions_vs_mode1(self):
        results = {}
        for mode in (OperationMode.MODE_1, OperationMode.MODE_2):
            net = make_network(mode=mode, error=0.1)
            run_random_traffic(net, 200)
            results[mode] = net.stats.retransmission_events
        assert results[OperationMode.MODE_2] < results[OperationMode.MODE_1]

    def test_mode2_generates_duplicates(self):
        net = make_network(mode=OperationMode.MODE_2, error=0.0)
        run_random_traffic(net, 50)
        assert net.stats.duplicate_flits > 0

    def test_mode3_eliminates_retransmissions(self):
        net = make_network(mode=OperationMode.MODE_3, error=0.2, relax_factor=0.0)
        run_random_traffic(net, 150)
        assert net.stats.retransmission_events == 0
        assert net.stats.corrected_errors == 0

    def test_mode0_latency_collapses_under_high_error(self):
        clean = make_network(mode=OperationMode.MODE_0, error=0.0)
        run_random_traffic(clean, 100)
        faulty = make_network(mode=OperationMode.MODE_0, error=0.15)
        run_random_traffic(faulty, 100)
        assert faulty.stats.mean_latency > 2 * clean.stats.mean_latency


class TestConservation:
    @pytest.mark.parametrize("mode", list(OperationMode))
    def test_credits_fully_restored_after_drain(self, mode):
        net = make_network(mode=mode, error=0.08)
        run_random_traffic(net, 150)
        for router in net.routers:
            for port, link in router.outputs.items():
                assert link.credits == [net.routers[0].vc_depth] * router.num_vcs, (
                    f"router {router.id} port {Port(port).name} leaked credits"
                )

    @pytest.mark.parametrize("mode", list(OperationMode))
    def test_no_stale_state_after_drain(self, mode):
        net = make_network(mode=mode, error=0.08)
        run_random_traffic(net, 150)
        for router in net.routers:
            assert router.is_idle, f"router {router.id} not idle after drain"
            for link in router.outputs.values():
                assert not any(link.vc_allocated)

    def test_payload_integrity_end_to_end(self):
        """Every delivered packet's received payload matches what was sent
        (single-bit errors corrected in flight leave no trace)."""
        net = make_network(mode=OperationMode.MODE_1, error=0.1)
        delivered = []
        original_finish = net.interfaces[0].__class__._finish_packet

        def spy(self, packet, now):
            delivered.append(packet)
            original_finish(self, packet, now)

        for ni in net.interfaces:
            ni._finish_packet = spy.__get__(ni)
        run_random_traffic(net, 100)
        assert delivered
        clean = [p for p in delivered if not any(f.error_mask for f in p.flits)]
        for packet in clean:
            assert packet.combined_payload(received=True) == packet.combined_payload()


class TestModeSwitching:
    def test_switch_requires_drain_when_disabling_ecc(self):
        net = make_network(mode=OperationMode.MODE_1, error=0.0)
        rng = random.Random(5)
        for _ in range(10):
            src, dst = rng.randrange(16), rng.randrange(16)
            if src != dst:
                net.inject(Packet(src, dst, 4, 128, 0))
        for _ in range(6):
            net.cycle()
        # Mid-flight, ask every router to drop to mode 0.
        net.set_all_modes(OperationMode.MODE_0)
        busy = [r for r in net.routers if not r._arq_quiescent()]
        assert busy, "expected in-flight protected flits"
        assert any(r.mode is OperationMode.MODE_1 for r in busy)
        net.drain(max_cycles=10_000)
        for _ in range(8):
            net.cycle()  # let deferred switches apply
        assert all(r.mode is OperationMode.MODE_0 for r in net.routers)
        assert net.stats.packets_delivered == 10

    def test_switch_between_protected_modes_is_immediate(self):
        net = make_network(mode=OperationMode.MODE_1)
        net.set_all_modes(OperationMode.MODE_3)
        assert all(r.mode is OperationMode.MODE_3 for r in net.routers)

    def test_traffic_survives_random_mode_churn(self):
        net = make_network(error=0.05)
        rng = random.Random(17)
        traffic_rng = random.Random(23)
        created = 0
        while created < 150 or not net.quiescent:
            if created < 150 and net.now % 2 == 0:
                src, dst = traffic_rng.randrange(16), traffic_rng.randrange(16)
                if src != dst:
                    net.inject(Packet(src, dst, 4, 128, net.now))
                    created += 1
            if net.now % 50 == 0:
                for router in net.routers:
                    router.request_mode(OperationMode(rng.randrange(4)))
            net.cycle()
            assert net.now < 100_000
        assert net.stats.packets_delivered == 150


class TestEpochHarvest:
    def test_mode_cycles_accounting(self):
        net = make_network(mode=OperationMode.MODE_2)
        net.run(10)
        net.harvest_epoch_counters(10)
        assert net.stats.mode_cycles[2] == 10 * 16
        assert net.stats.mode_cycles[0] == 0

    def test_reset_epoch_counters(self):
        net = make_network()
        run_random_traffic(net, 20)
        net.reset_epoch_counters()
        for router in net.routers:
            assert router.epoch.buffer_writes == 0
            assert router.epoch.flits_in == [0] * 5
