"""Tests for round-robin and matrix arbiters."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc import MatrixArbiter, RoundRobinArbiter


@pytest.mark.parametrize("cls", [RoundRobinArbiter, MatrixArbiter])
class TestCommonBehaviour:
    def test_rejects_zero_size(self, cls):
        with pytest.raises(ValueError):
            cls(0)

    def test_no_request_no_grant(self, cls):
        assert cls(4).grant([False] * 4) is None

    def test_single_request_granted(self, cls):
        arb = cls(4)
        assert arb.grant([False, False, True, False]) == 2

    def test_grant_is_a_requester(self, cls):
        arb = cls(8)
        requests = [True, False, True, False, True, False, False, True]
        for _ in range(20):
            g = arb.grant(requests)
            assert requests[g]

    def test_wrong_width_rejected(self, cls):
        with pytest.raises(ValueError):
            cls(4).grant([True] * 5)

    def test_reset(self, cls):
        arb = cls(4)
        arb.grant([True] * 4)
        arb.reset()
        assert arb.grant([True] * 4) == 0


class TestRoundRobinFairness:
    def test_all_requesters_rotate(self):
        arb = RoundRobinArbiter(4)
        grants = [arb.grant([True] * 4) for _ in range(8)]
        assert grants == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_winner_gets_lowest_priority(self):
        arb = RoundRobinArbiter(4)
        assert arb.grant([True, False, False, True]) == 0
        # 0 just won; with 0 and 3 requesting, 3 must win now
        assert arb.grant([True, False, False, True]) == 3


class TestMatrixFairness:
    def test_least_recently_served_wins(self):
        arb = MatrixArbiter(3)
        assert arb.grant([True, True, True]) == 0
        assert arb.grant([True, True, True]) == 1
        assert arb.grant([True, True, True]) == 2
        assert arb.grant([True, True, True]) == 0

    def test_winner_demoted_below_non_requesters(self):
        arb = MatrixArbiter(3)
        arb.grant([False, True, False])  # 1 wins, demoted below 0 and 2
        assert arb.grant([True, True, False]) == 0


@pytest.mark.parametrize("cls", [RoundRobinArbiter, MatrixArbiter])
@settings(max_examples=100)
@given(data=st.data())
def test_property_no_starvation(cls, data):
    """A persistent requester is served within ``size`` grants."""
    size = data.draw(st.integers(min_value=1, max_value=8))
    arb = cls(size)
    persistent = data.draw(st.integers(min_value=0, max_value=size - 1))
    waits = 0
    for _ in range(size * 3):
        others = data.draw(
            st.lists(st.booleans(), min_size=size, max_size=size)
        )
        requests = list(others)
        requests[persistent] = True
        if arb.grant(requests) == persistent:
            waits = 0
        else:
            waits += 1
        assert waits <= size, "persistent requester starved"
