"""Tests for statistics counters and the latency accumulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc import LatencyAccumulator, NetworkStats, RouterEpochStats


class TestLatencyAccumulator:
    def test_empty(self):
        acc = LatencyAccumulator()
        assert acc.count == 0
        assert acc.mean == 0.0
        assert acc.minimum is None and acc.maximum is None

    def test_basic_statistics(self):
        acc = LatencyAccumulator()
        for v in (10, 20, 30):
            acc.record(v)
        assert acc.count == 3
        assert acc.mean == 20.0
        assert acc.minimum == 10 and acc.maximum == 30

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            LatencyAccumulator().record(-1)

    def test_histogram_buckets(self):
        acc = LatencyAccumulator()
        acc.record(10)     # <= 16 -> bucket 0
        acc.record(100)    # <= 128 -> bucket 3
        acc.record(99999)  # overflow bucket
        hist = acc.histogram
        assert hist[0] == 1
        assert hist[3] == 1
        assert hist[-1] == 1
        assert sum(hist) == 3

    def test_merge(self):
        a, b = LatencyAccumulator(), LatencyAccumulator()
        a.record(10)
        b.record(30)
        b.record(50)
        a.merge(b)
        assert a.count == 3
        assert a.minimum == 10 and a.maximum == 50
        assert a.mean == pytest.approx(30.0)

    def test_merge_empty(self):
        a = LatencyAccumulator()
        a.record(5)
        a.merge(LatencyAccumulator())
        assert a.count == 1 and a.minimum == 5


class TestRouterEpochStats:
    def test_reset_zeroes_everything(self):
        epoch = RouterEpochStats()
        epoch.flits_in[1] = 5
        epoch.corrected_errors = 3
        epoch.core_activity_flits = 9
        epoch.reset()
        assert epoch.flits_in == [0] * 5
        assert epoch.corrected_errors == 0
        assert epoch.core_activity_flits == 0

    def test_utilization_per_cycle(self):
        epoch = RouterEpochStats()
        epoch.flits_in[2] = 50
        epoch.flits_out[3] = 25
        assert epoch.input_link_utilization(100)[2] == 0.5
        assert epoch.output_link_utilization(100)[3] == 0.25

    def test_nack_rates_guard_division(self):
        epoch = RouterEpochStats()
        assert epoch.input_nack_rate() == [0.0] * 5
        epoch.flits_out[1] = 10
        epoch.nacks_in[1] = 2
        assert epoch.input_nack_rate()[1] == 0.2
        epoch.flits_in[4] = 4
        epoch.nacks_out[4] = 1
        assert epoch.output_nack_rate()[4] == 0.25

    def test_mean_delivered_latency_default(self):
        epoch = RouterEpochStats()
        assert epoch.mean_delivered_latency(42.0) == 42.0
        epoch.delivered_latency_total = 60
        epoch.delivered_packets = 3
        assert epoch.mean_delivered_latency(42.0) == 20.0


class TestNetworkStats:
    def test_retransmission_events_combines_both(self):
        stats = NetworkStats()
        stats.packet_retransmissions = 3
        stats.flit_retransmissions = 7
        assert stats.retransmission_events == 10

    def test_throughput(self):
        stats = NetworkStats()
        stats.cycles = 100
        stats.flits_delivered = 25
        assert stats.throughput == 0.25

    def test_as_dict_complete(self):
        d = NetworkStats().as_dict()
        for key in (
            "cycles",
            "packets_delivered",
            "retransmission_events",
            "silent_corruptions",
            "mean_latency",
            "throughput",
        ):
            assert key in d


@settings(max_examples=100)
@given(values=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1))
def test_property_accumulator_consistency(values):
    acc = LatencyAccumulator()
    for v in values:
        acc.record(v)
    assert acc.count == len(values)
    assert acc.minimum == min(values)
    assert acc.maximum == max(values)
    assert acc.mean == pytest.approx(sum(values) / len(values))
    assert sum(acc.histogram) == len(values)
