"""Tests for the ORION-style power/energy model."""

import pytest

from repro.noc.stats import RouterEpochStats
from repro.power import DesignPowerProfile, EnergyParams, RouterPowerModel


def busy_epoch(flits=100):
    """Epoch counters of a router that forwarded ``flits`` flits east."""
    stats = RouterEpochStats()
    stats.buffer_writes = flits
    stats.buffer_reads = flits
    stats.crossbar_traversals = flits
    stats.arbitration_ops = flits
    stats.flits_out[1] = flits
    return stats


class TestCalibration:
    def test_baseline_flit_energy_anchor(self):
        """Paper anchor: baseline router ~13.3 pJ per flit."""
        model = RouterPowerModel()
        assert abs(model.baseline_flit_energy_pj() - 13.33) < 0.1

    def test_rl_overhead_fraction_anchor(self):
        """Paper anchor: RL adds 0.16 pJ/flit = 1.2 % of baseline."""
        model = RouterPowerModel()
        assert abs(model.rl_overhead_fraction() - 0.012) < 0.001


class TestDynamicEnergy:
    def test_idle_router_has_zero_dynamic(self):
        model = RouterPowerModel()
        e = model.epoch_energy(RouterEpochStats(), DesignPowerProfile.crc(), False, 1000)
        assert e.dynamic_pj == 0.0
        assert e.static_pj > 0.0

    def test_dynamic_scales_with_traffic(self):
        model = RouterPowerModel()
        light = model.epoch_energy(busy_epoch(10), DesignPowerProfile.crc(), False, 1000)
        heavy = model.epoch_energy(busy_epoch(100), DesignPowerProfile.crc(), False, 1000)
        assert abs(heavy.dynamic_pj - 10 * light.dynamic_pj) < 1e-9

    def test_busy_flit_energy_matches_anchor(self):
        """Per-hop dynamic energy of the event mix ~= the 13.3 pJ anchor
        minus the NI CRC share (12.73 pJ)."""
        model = RouterPowerModel()
        e = model.epoch_energy(busy_epoch(100), DesignPowerProfile.crc(), False, 1000)
        assert abs(e.dynamic_pj / 100 - 12.73) < 0.01

    def test_rl_per_flit_overhead_applied(self):
        model = RouterPowerModel()
        stats = busy_epoch(100)
        crc = model.epoch_energy(stats, DesignPowerProfile.crc(), False, 1000)
        rl = model.epoch_energy(stats, DesignPowerProfile.rl(), False, 1000)
        assert abs((rl.dynamic_pj - crc.dynamic_pj) - 100 * 0.16) < 1e-9

    def test_dt_per_flit_overhead_applied(self):
        model = RouterPowerModel()
        stats = busy_epoch(50)
        crc = model.epoch_energy(stats, DesignPowerProfile.crc(), False, 1000)
        dt = model.epoch_energy(stats, DesignPowerProfile.decision_tree(), False, 1000)
        assert abs((dt.dynamic_pj - crc.dynamic_pj) - 50 * 0.12) < 1e-9

    def test_ecc_events_cost_energy(self):
        model = RouterPowerModel()
        stats = busy_epoch(50)
        plain = model.epoch_energy(stats, DesignPowerProfile.arq_ecc(), True, 1000)
        stats.ecc_encodes = 50
        stats.ecc_decodes = 50
        with_ecc = model.epoch_energy(stats, DesignPowerProfile.arq_ecc(), True, 1000)
        assert with_ecc.dynamic_pj - plain.dynamic_pj == pytest.approx(50 * (0.7 + 0.9))

    def test_rejects_bad_epoch(self):
        model = RouterPowerModel()
        with pytest.raises(ValueError):
            model.epoch_energy(RouterEpochStats(), DesignPowerProfile.crc(), False, 0)


class TestStaticEnergy:
    def test_static_scales_with_time(self):
        model = RouterPowerModel()
        short = model.epoch_energy(RouterEpochStats(), DesignPowerProfile.crc(), False, 500)
        long = model.epoch_energy(RouterEpochStats(), DesignPowerProfile.crc(), False, 1000)
        assert long.static_pj == pytest.approx(2 * short.static_pj)

    def test_crc_design_has_no_ecc_leakage(self):
        model = RouterPowerModel()
        crc = model.epoch_energy(RouterEpochStats(), DesignPowerProfile.crc(), True, 1000)
        arq = model.epoch_energy(RouterEpochStats(), DesignPowerProfile.arq_ecc(), True, 1000)
        assert arq.static_pj > crc.static_pj

    def test_power_gating_removes_ecc_leakage(self):
        """The proposed design gates ECC leakage off in mode 0; the static
        ARQ+ECC design cannot."""
        model = RouterPowerModel()
        rl_on = model.epoch_energy(RouterEpochStats(), DesignPowerProfile.rl(), True, 1000)
        rl_off = model.epoch_energy(RouterEpochStats(), DesignPowerProfile.rl(), False, 1000)
        assert rl_off.static_pj < rl_on.static_pj
        arq_off = model.epoch_energy(
            RouterEpochStats(), DesignPowerProfile.arq_ecc(), False, 1000
        )
        arq_on = model.epoch_energy(
            RouterEpochStats(), DesignPowerProfile.arq_ecc(), True, 1000
        )
        assert arq_off.static_pj == arq_on.static_pj

    def test_expected_idle_baseline_power(self):
        """2.0 mW baseline leakage at 2 GHz: 1000 cycles = 0.5 us -> 1 nJ."""
        model = RouterPowerModel()
        e = model.epoch_energy(RouterEpochStats(), DesignPowerProfile.crc(), False, 1000)
        assert e.static_pj == pytest.approx(2.0e-3 * 0.5e-6 * 1e12)


class TestConversions:
    def test_to_watts(self):
        # 1000 pJ over 1000 cycles at 2 GHz (0.5 us) = 2 mW.
        assert RouterPowerModel.to_watts(1000.0, 1000, 2.0e9) == pytest.approx(2e-3)

    def test_to_watts_rejects_zero_cycles(self):
        with pytest.raises(ValueError):
            RouterPowerModel.to_watts(1.0, 0, 2.0e9)

    def test_custom_params_propagate(self):
        params = EnergyParams(rl_per_flit_pj=0.32)
        model = RouterPowerModel(params)
        assert model.rl_overhead_fraction() == pytest.approx(0.32 / model.baseline_flit_energy_pj())
