"""Tests for the area model — pinned to the paper's Section VI-B numbers."""

import pytest

from repro.power import AreaParams, RouterAreaModel


class TestPaperAnchors:
    def test_rl_added_area(self):
        assert RouterAreaModel().rl_added_area_um2() == 2360.0

    def test_overhead_vs_crc(self):
        assert RouterAreaModel().rl_overhead_vs("crc") == pytest.approx(0.055, abs=0.001)

    def test_overhead_vs_arq_ecc(self):
        assert RouterAreaModel().rl_overhead_vs("arq_ecc") == pytest.approx(0.048, abs=0.001)

    def test_overhead_vs_dt(self):
        assert RouterAreaModel().rl_overhead_vs("dt") == pytest.approx(0.045, abs=0.001)


class TestComposition:
    def test_design_ordering(self):
        model = RouterAreaModel()
        crc = model.design_area_um2("crc")
        arq = model.design_area_um2("arq_ecc")
        dt = model.design_area_um2("dt")
        rl = model.design_area_um2("rl")
        assert crc < arq < rl < dt  # DT logic is larger than RL logic

    def test_rl_design_is_arq_plus_rl_logic(self):
        model = RouterAreaModel()
        assert model.design_area_um2("rl") == pytest.approx(
            model.design_area_um2("arq_ecc") + 2360.0
        )

    def test_unknown_design_rejected(self):
        with pytest.raises(ValueError):
            RouterAreaModel().design_area_um2("fpga")

    def test_summary_keys(self):
        summary = RouterAreaModel().summary()
        assert set(summary) == {
            "crc_um2",
            "arq_ecc_um2",
            "dt_um2",
            "rl_um2",
            "rl_added_um2",
            "overhead_vs_crc",
            "overhead_vs_arq_ecc",
            "overhead_vs_dt",
        }

    def test_custom_params(self):
        model = RouterAreaModel(AreaParams(rl_logic_um2=4720.0))
        assert model.rl_overhead_vs("crc") == pytest.approx(0.11, abs=0.002)
