"""Tests for the Table I state features and discretization."""

import pytest

from repro.core.state import DiscretizationConfig, observe_router
from repro.noc import MeshTopology, Packet, Port, Router
from repro.noc.routing import xy_route


def make_router(num_vcs=4):
    return Router(5, MeshTopology(4, 4), xy_route, num_vcs=num_vcs, vc_depth=4)


class TestBins:
    def test_utilization_bins_linear_to_max(self):
        cfg = DiscretizationConfig()
        # Five bins over [0, 0.3] flits/cycle (paper's observed max).
        assert cfg.utilization_bin(0.0) == 0
        assert cfg.utilization_bin(0.05) == 0
        assert cfg.utilization_bin(0.07) == 1
        assert cfg.utilization_bin(0.15) == 2
        assert cfg.utilization_bin(0.29) == 4
        assert cfg.utilization_bin(0.9) == 4  # clamps above the max

    def test_nack_bins_log_space(self):
        cfg = DiscretizationConfig()
        assert cfg.nack_bin(0.0) == 0
        assert cfg.nack_bin(5e-4) == 0
        assert cfg.nack_bin(5e-3) == 1
        assert cfg.nack_bin(5e-2) == 2
        assert cfg.nack_bin(0.5) == 3

    def test_temperature_bins_cover_paper_range(self):
        cfg = DiscretizationConfig()
        # Five even bins over the observed [50, 100] C range.
        assert cfg.temperature_bin(45.0) == 0
        assert cfg.temperature_bin(55.0) == 0
        assert cfg.temperature_bin(65.0) == 1
        assert cfg.temperature_bin(75.0) == 2
        assert cfg.temperature_bin(85.0) == 3
        assert cfg.temperature_bin(95.0) == 4
        assert cfg.temperature_bin(120.0) == 4

    def test_buffer_bins(self):
        cfg = DiscretizationConfig(num_vcs=4)
        assert cfg.buffer_bin(0) == 0
        assert cfg.buffer_bin(4) == 4
        assert 0 < cfg.buffer_bin(2) < 4


class TestObservation:
    def test_feature_set_matches_table_i(self):
        """Table I: six feature classes, features 1-5 per-port."""
        obs = observe_router(make_router(), epoch_cycles=100)
        assert len(obs.occupied_vcs) == 5
        assert len(obs.input_utilization) == 5
        assert len(obs.output_utilization) == 5
        assert len(obs.input_nack_rate) == 5
        assert len(obs.output_nack_rate) == 5
        assert isinstance(obs.temperature, float)

    def test_raw_vector_dimension(self):
        obs = observe_router(make_router(), epoch_cycles=100)
        assert len(obs.raw_vector()) == 26  # 5 features x 5 ports + temp

    def test_compact_state_shape(self):
        obs = observe_router(make_router(), epoch_cycles=100, compact=True)
        assert len(obs.discrete) == 7  # 6 aggregates + current mode

    def test_full_state_shape(self):
        obs = observe_router(make_router(), epoch_cycles=100, compact=False)
        assert len(obs.discrete) == 27  # 26 per-port bins + current mode

    def test_mode_can_be_excluded(self):
        obs = observe_router(
            make_router(), epoch_cycles=100, compact=True, include_mode=False
        )
        assert len(obs.discrete) == 6

    def test_rejects_empty_epoch(self):
        with pytest.raises(ValueError):
            observe_router(make_router(), epoch_cycles=0)

    def test_counters_flow_into_features(self):
        router = make_router()
        router.epoch.flits_in[int(Port.EAST)] = 30
        router.epoch.flits_out[int(Port.WEST)] = 20
        router.epoch.nacks_in[int(Port.WEST)] = 2
        router.epoch.nacks_out[int(Port.EAST)] = 3
        router.temperature = 88.0
        obs = observe_router(router, epoch_cycles=100)
        assert obs.input_utilization[int(Port.EAST)] == pytest.approx(0.3)
        assert obs.output_utilization[int(Port.WEST)] == pytest.approx(0.2)
        assert obs.input_nack_rate[int(Port.WEST)] == pytest.approx(2 / 20)
        assert obs.output_nack_rate[int(Port.EAST)] == pytest.approx(3 / 30)
        assert obs.temperature == 88.0
        # And into the discrete key: temp 88 -> bin 3, mode 0 appended.
        assert obs.discrete[5] == 3
        assert obs.discrete[6] == 0

    def test_occupied_vcs_feature(self):
        router = make_router()
        packet = Packet(0, 5, 2, 128, 0)
        router.try_inject_head(packet.flits[0], now=0)
        obs = observe_router(router, epoch_cycles=100)
        assert obs.occupied_vcs[int(Port.LOCAL)] == 1

    def test_discrete_state_is_hashable_key(self):
        obs = observe_router(make_router(), epoch_cycles=100)
        {obs.discrete: 1}  # must not raise
