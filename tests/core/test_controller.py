"""Tests for the control-policy interface and the reward function."""

import pytest

from repro.core.controller import ControlPolicy, compute_reward
from repro.core.modes import OperationMode
from repro.core.state import RouterObservation
from repro.power.orion import DesignPowerProfile


class TestReward:
    def test_paper_equation_3(self):
        """r = [E2E_latency * Power]^-1."""
        assert compute_reward(20.0, 0.005) == pytest.approx(1.0 / (20.0 * 0.005))

    def test_lower_latency_is_better(self):
        assert compute_reward(10.0, 0.01) > compute_reward(100.0, 0.01)

    def test_lower_power_is_better(self):
        assert compute_reward(10.0, 0.001) > compute_reward(10.0, 0.01)

    def test_floors_keep_reward_finite(self):
        assert compute_reward(0.0, 0.0) < float("inf")
        assert compute_reward(-5.0, -1.0) > 0.0


class _CountingPolicy(ControlPolicy):
    """Minimal concrete policy for exercising the ABC defaults."""

    def __init__(self):
        self.profile = DesignPowerProfile.crc()
        self.learn_calls = 0

    def select(self, router_id, observation):
        return OperationMode.MODE_0


def _obs(router_id=0):
    return RouterObservation(
        router_id=router_id,
        occupied_vcs=[0] * 5,
        input_utilization=[0.0] * 5,
        output_utilization=[0.0] * 5,
        input_nack_rate=[0.0] * 5,
        output_nack_rate=[0.0] * 5,
        temperature=50.0,
        discrete=(0,),
    )


class TestPolicyInterface:
    def test_cannot_instantiate_abstract(self):
        with pytest.raises(TypeError):
            ControlPolicy()

    def test_defaults_are_no_ops(self):
        policy = _CountingPolicy()
        policy.reset(16)
        policy.learn(0, _obs(), OperationMode.MODE_0, 1.0, _obs())
        policy.freeze()
        assert not policy.trainable
        assert policy.name == "crc"

    def test_select_is_required(self):
        policy = _CountingPolicy()
        assert policy.select(3, _obs(3)) is OperationMode.MODE_0


class TestRewardGuard:
    def test_nan_latency_clamped_and_counted(self):
        from repro.core.controller import REWARD_GUARD

        REWARD_GUARD.reset()
        reward = compute_reward(float("nan"), 0.01)
        assert reward == pytest.approx(compute_reward(1.0, 0.01))
        assert REWARD_GUARD.events == 1

    def test_nan_power_clamped_and_counted(self):
        from repro.core.controller import REWARD_GUARD

        REWARD_GUARD.reset()
        reward = compute_reward(20.0, float("nan"))
        assert reward == pytest.approx(compute_reward(20.0, 1e-6))
        assert REWARD_GUARD.events == 1

    def test_inf_inputs_clamped(self):
        from repro.core.controller import REWARD_GUARD

        REWARD_GUARD.reset()
        import math

        assert math.isfinite(compute_reward(float("inf"), float("-inf")))
        assert REWARD_GUARD.events == 2

    def test_reward_never_nan(self):
        import math

        for latency in (float("nan"), float("inf"), -1.0, 0.0, 5.0):
            for power in (float("nan"), float("inf"), -1.0, 0.0, 0.01):
                assert math.isfinite(compute_reward(latency, power))

    def test_guard_reset_returns_count(self):
        from repro.core.controller import REWARD_GUARD

        REWARD_GUARD.reset()
        compute_reward(float("nan"), float("nan"))
        assert REWARD_GUARD.reset() == 2
        assert REWARD_GUARD.events == 0
