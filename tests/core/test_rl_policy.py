"""Tests for the RL control policy."""

import pytest

from repro.core.modes import OperationMode
from repro.core.rl_policy import RLControlPolicy
from repro.core.state import RouterObservation


def obs(discrete, router_id=0):
    return RouterObservation(
        router_id=router_id,
        occupied_vcs=[0] * 5,
        input_utilization=[0.0] * 5,
        output_utilization=[0.0] * 5,
        input_nack_rate=[0.0] * 5,
        output_nack_rate=[0.0] * 5,
        temperature=50.0,
        discrete=discrete,
    )


class TestLifecycle:
    def test_select_before_reset_raises(self):
        with pytest.raises(RuntimeError):
            RLControlPolicy().select(0, obs((0,)))

    def test_reset_rejects_zero_routers(self):
        with pytest.raises(ValueError):
            RLControlPolicy().reset(0)

    def test_per_router_agents_are_independent(self):
        policy = RLControlPolicy(epsilon=0.0, pretrain_epsilon=0.0, seed=1)
        policy.reset(2)
        policy.learn(0, obs((1,)), OperationMode.MODE_2, 50.0, obs((1,)))
        # Router 0 learned something; router 1's table is untouched.
        assert policy._agents[0].states_visited > 0
        assert policy._agents[1].states_visited == 0

    def test_shared_table_pools_experience(self):
        policy = RLControlPolicy(
            epsilon=0.0, pretrain_epsilon=0.0, share_table=True, seed=1
        )
        policy.reset(4)
        for _ in range(30):
            policy.learn(0, obs((7,)), OperationMode.MODE_3, 50.0, obs((7,)))
        # All routers select from the same table.
        assert policy.select(3, obs((7,))) is OperationMode.MODE_3

    def test_reset_preserves_learning_for_same_size(self):
        policy = RLControlPolicy(share_table=True, seed=1)
        policy.reset(4)
        policy.learn(0, obs((7,)), OperationMode.MODE_1, 10.0, obs((7,)))
        visited = policy.states_visited()
        policy.reset(4)
        assert policy.states_visited() == visited
        policy.reset(9)  # different platform: fresh agents
        assert policy.states_visited() == 0

    def test_profile_is_rl_design(self):
        policy = RLControlPolicy()
        assert policy.profile.name == "rl"
        assert policy.profile.has_rl_logic
        assert policy.profile.ecc_gated
        assert policy.trainable


class TestLearning:
    def test_learns_state_conditional_modes(self):
        """Mode 0 pays in 'cool' states, mode 3 pays in 'hot' states."""
        policy = RLControlPolicy(
            epsilon=0.0, pretrain_epsilon=0.5, pretrain_alpha=0.3, seed=3
        )
        policy.reset(1)
        cool, hot = (0,), (4,)
        import random

        rng = random.Random(0)
        for _ in range(600):
            state = cool if rng.random() < 0.5 else hot
            action = policy.select(0, obs(state))
            if state == cool:
                reward = 10.0 if action is OperationMode.MODE_0 else 5.0
            else:
                reward = 10.0 if action is OperationMode.MODE_3 else 2.0
            policy.learn(0, obs(state), action, reward, obs(state))
        policy.freeze()
        assert policy.select(0, obs(cool)) is OperationMode.MODE_0
        assert policy.select(0, obs(hot)) is OperationMode.MODE_3

    def test_freeze_anneals_parameters(self):
        policy = RLControlPolicy(
            alpha=0.1, epsilon=0.02, pretrain_alpha=0.3, pretrain_epsilon=0.4
        )
        policy.reset(2)
        agent = policy._agents[0]
        assert agent.alpha == 0.3 and agent.epsilon == 0.4
        policy.freeze()
        assert agent.alpha == 0.1 and agent.epsilon == 0.02


class TestIntrospection:
    def test_counters(self):
        policy = RLControlPolicy(share_table=True)
        policy.reset(4)
        policy.learn(1, obs((1,)), OperationMode.MODE_0, 1.0, obs((2,)))
        policy.learn(2, obs((2,)), OperationMode.MODE_1, 1.0, obs((1,)))
        assert policy.total_updates() == 2
        assert policy.states_visited() == 2

    def test_mode_distribution_sums_to_states(self):
        policy = RLControlPolicy(share_table=True, pretrain_epsilon=0.0)
        policy.reset(2)
        policy.learn(0, obs((1,)), OperationMode.MODE_2, 9.0, obs((1,)))
        dist = policy.mode_distribution()
        assert sum(dist.values()) == policy.states_visited()
        assert dist[OperationMode.MODE_2] == 1


class TestSafeMode:
    def test_safe_mode_pins_router_to_mode_3(self):
        policy = RLControlPolicy(seed=0)
        policy.reset(4)
        assert policy.enter_safe_mode(2, "watchdog trip") is True
        assert policy.select(2, obs((0, 0, 0, 0))) == OperationMode.MODE_3
        assert 2 in policy.safe_mode_routers
        assert policy.safe_mode_events[0]["reason"] == "watchdog trip"

    def test_safe_mode_router_stops_learning(self):
        policy = RLControlPolicy(seed=0)
        policy.reset(2)
        policy.enter_safe_mode(0, "rejected table")
        before = policy.total_updates()
        policy.learn(0, obs((0,)), OperationMode.MODE_0, 1.0, obs((1,)))
        assert policy.total_updates() == before
        policy.learn(1, obs((0,)), OperationMode.MODE_0, 1.0, obs((1,)))
        assert policy.total_updates() == before + 1

    def test_enter_safe_mode_is_idempotent(self):
        policy = RLControlPolicy(seed=0)
        policy.reset(2)
        policy.enter_safe_mode(1, "first")
        policy.enter_safe_mode(1, "second")
        assert len(policy.safe_mode_events) == 1


class TestDurableState:
    def _trained(self, num_routers=3, share=False):
        policy = RLControlPolicy(seed=5, share_table=share)
        policy.reset(num_routers)
        for step in range(40):
            rid = step % num_routers
            policy.learn(
                rid, obs((step % 4,), rid), OperationMode(step % 4),
                float(step), obs(((step + 1) % 4,), rid),
            )
        return policy

    def test_state_round_trip_preserves_behaviour(self):
        policy = self._trained()
        clone = RLControlPolicy(seed=5)
        clone.load_state(policy.to_state())
        assert clone.total_updates() == policy.total_updates()
        assert clone.states_visited() == policy.states_visited()
        for rid in range(3):
            seq_a = [int(policy.select(rid, obs((i % 4,), rid))) for i in range(20)]
            seq_b = [int(clone.select(rid, obs((i % 4,), rid))) for i in range(20)]
            assert seq_a == seq_b

    def test_shared_table_round_trip(self):
        policy = self._trained(share=True)
        clone = RLControlPolicy(seed=5, share_table=True)
        clone.load_state(policy.to_state())
        assert clone.total_updates() == policy.total_updates()
        assert len(clone._unique_agents()) == 1

    def test_load_state_none_is_noop(self):
        policy = self._trained()
        updates = policy.total_updates()
        policy.load_state(None)
        assert policy.total_updates() == updates

    def test_poisoned_table_degrades_instead_of_raising(self):
        policy = self._trained()
        state = policy.to_state()
        agent_state = state["agents"][1]
        key = next(iter(agent_state["table"]))
        agent_state["table"][key][0] = float("nan")
        clone = RLControlPolicy(seed=5)
        clone.load_state(state)  # must not raise
        assert clone.safe_mode_routers == {1}
        assert clone.select(1, obs((0,), 1)) == OperationMode.MODE_3
        # untouched routers load normally and keep their tables
        assert clone.select(0, obs((0,), 0)) in OperationMode

    def test_poisoned_shared_table_degrades_all_routers(self):
        policy = self._trained(share=True)
        state = policy.to_state()
        key = next(iter(state["agents"][0]["table"]))
        state["agents"][0]["table"][key][0] = float("inf")
        clone = RLControlPolicy(seed=5, share_table=True)
        clone.load_state(state)
        assert clone.safe_mode_routers == {0, 1, 2}

    def test_snapshot_remembers_degraded_routers(self):
        policy = self._trained()
        policy.enter_safe_mode(2, "watchdog trip")
        clone = RLControlPolicy(seed=5)
        clone.load_state(policy.to_state())
        assert 2 in clone.safe_mode_routers
