"""Tests for the RL control policy."""

import pytest

from repro.core.modes import OperationMode
from repro.core.rl_policy import RLControlPolicy
from repro.core.state import RouterObservation


def obs(discrete, router_id=0):
    return RouterObservation(
        router_id=router_id,
        occupied_vcs=[0] * 5,
        input_utilization=[0.0] * 5,
        output_utilization=[0.0] * 5,
        input_nack_rate=[0.0] * 5,
        output_nack_rate=[0.0] * 5,
        temperature=50.0,
        discrete=discrete,
    )


class TestLifecycle:
    def test_select_before_reset_raises(self):
        with pytest.raises(RuntimeError):
            RLControlPolicy().select(0, obs((0,)))

    def test_reset_rejects_zero_routers(self):
        with pytest.raises(ValueError):
            RLControlPolicy().reset(0)

    def test_per_router_agents_are_independent(self):
        policy = RLControlPolicy(epsilon=0.0, pretrain_epsilon=0.0, seed=1)
        policy.reset(2)
        policy.learn(0, obs((1,)), OperationMode.MODE_2, 50.0, obs((1,)))
        # Router 0 learned something; router 1's table is untouched.
        assert policy._agents[0].states_visited > 0
        assert policy._agents[1].states_visited == 0

    def test_shared_table_pools_experience(self):
        policy = RLControlPolicy(
            epsilon=0.0, pretrain_epsilon=0.0, share_table=True, seed=1
        )
        policy.reset(4)
        for _ in range(30):
            policy.learn(0, obs((7,)), OperationMode.MODE_3, 50.0, obs((7,)))
        # All routers select from the same table.
        assert policy.select(3, obs((7,))) is OperationMode.MODE_3

    def test_reset_preserves_learning_for_same_size(self):
        policy = RLControlPolicy(share_table=True, seed=1)
        policy.reset(4)
        policy.learn(0, obs((7,)), OperationMode.MODE_1, 10.0, obs((7,)))
        visited = policy.states_visited()
        policy.reset(4)
        assert policy.states_visited() == visited
        policy.reset(9)  # different platform: fresh agents
        assert policy.states_visited() == 0

    def test_profile_is_rl_design(self):
        policy = RLControlPolicy()
        assert policy.profile.name == "rl"
        assert policy.profile.has_rl_logic
        assert policy.profile.ecc_gated
        assert policy.trainable


class TestLearning:
    def test_learns_state_conditional_modes(self):
        """Mode 0 pays in 'cool' states, mode 3 pays in 'hot' states."""
        policy = RLControlPolicy(
            epsilon=0.0, pretrain_epsilon=0.5, pretrain_alpha=0.3, seed=3
        )
        policy.reset(1)
        cool, hot = (0,), (4,)
        import random

        rng = random.Random(0)
        for _ in range(600):
            state = cool if rng.random() < 0.5 else hot
            action = policy.select(0, obs(state))
            if state == cool:
                reward = 10.0 if action is OperationMode.MODE_0 else 5.0
            else:
                reward = 10.0 if action is OperationMode.MODE_3 else 2.0
            policy.learn(0, obs(state), action, reward, obs(state))
        policy.freeze()
        assert policy.select(0, obs(cool)) is OperationMode.MODE_0
        assert policy.select(0, obs(hot)) is OperationMode.MODE_3

    def test_freeze_anneals_parameters(self):
        policy = RLControlPolicy(
            alpha=0.1, epsilon=0.02, pretrain_alpha=0.3, pretrain_epsilon=0.4
        )
        policy.reset(2)
        agent = policy._agents[0]
        assert agent.alpha == 0.3 and agent.epsilon == 0.4
        policy.freeze()
        assert agent.alpha == 0.1 and agent.epsilon == 0.02


class TestIntrospection:
    def test_counters(self):
        policy = RLControlPolicy(share_table=True)
        policy.reset(4)
        policy.learn(1, obs((1,)), OperationMode.MODE_0, 1.0, obs((2,)))
        policy.learn(2, obs((2,)), OperationMode.MODE_1, 1.0, obs((1,)))
        assert policy.total_updates() == 2
        assert policy.states_visited() == 2

    def test_mode_distribution_sums_to_states(self):
        policy = RLControlPolicy(share_table=True, pretrain_epsilon=0.0)
        policy.reset(2)
        policy.learn(0, obs((1,)), OperationMode.MODE_2, 9.0, obs((1,)))
        dist = policy.mode_distribution()
        assert sum(dist.values()) == policy.states_visited()
        assert dist[OperationMode.MODE_2] == 1
