"""Unit tests for the ECC Q-table backing store and the TMR mode bank.

The storage contract: the agent's float table is a decoded cache of the
fixed-point SRAM — writes quantize through it, flips corrupt it, and a
scrub pass corrects single-bit errors, quarantines double-bit rows, and
leaves the cache equal to the decoded words at all times.
"""

import math
import random

import pytest

from repro.core.modes import TmrModeBank
from repro.core.qlearning import AgentStateError, QLearningAgent, QTableStorage


def _agent_with_storage(ecc=True, num_actions=4, rows=5, seed=0):
    agent = QLearningAgent(num_actions=num_actions, rng=random.Random(seed))
    storage = QTableStorage(ecc=ecc)
    agent.attach_storage(storage)
    rng = random.Random(seed + 1)
    for row in range(rows):
        for action in range(num_actions):
            agent.update((row,), action, rng.uniform(-3, 3), (row,))
    return agent, storage


def _cache_matches_words(agent, storage):
    for state, row in storage._words.items():
        for action, word in enumerate(row):
            assert agent._table[state][action] == storage._decode(word)


class TestQuantization:
    def test_quantize_is_fixed_point(self):
        step = 1.0 / (1 << QTableStorage.FRAC_BITS)
        assert QTableStorage.quantize(0.0) == 0.0
        assert QTableStorage.quantize(step / 3) == 0.0
        assert QTableStorage.quantize(1.2345) == pytest.approx(1.2345, abs=step)

    def test_quantize_clamps_nan_to_zero(self):
        assert QTableStorage.quantize(float("nan")) == 0.0

    def test_quantize_saturates(self):
        huge = 1e12
        top = QTableStorage._WORD_MAX / QTableStorage._SCALE
        assert QTableStorage.quantize(huge) == top
        assert QTableStorage.quantize(-huge) == QTableStorage._WORD_MIN / QTableStorage._SCALE

    def test_writes_are_write_through_quantized(self):
        agent, storage = _agent_with_storage()
        _cache_matches_words(agent, storage)
        for row in agent._table.values():
            for value in row:
                assert value == QTableStorage.quantize(value)


class TestFlipAndScrub:
    def test_single_flip_is_invisible_under_ecc_then_corrected(self):
        agent, storage = _agent_with_storage(ecc=True)
        before = {s: list(r) for s, r in agent._table.items()}
        key = storage.flip_bit(17)
        # ECC decode-on-read: the cache still shows the original value.
        assert agent._table == before
        stats = storage.scrub()
        assert stats == {"corrected": 1, "detected": 0, "quarantined_rows": 0}
        assert storage.corrected == 1
        assert agent._table == before
        # The word itself was re-encoded clean: a second scrub is a no-op.
        assert storage.scrub() == {"corrected": 0, "detected": 0, "quarantined_rows": 0}
        assert key in storage._words or key[0] in storage._words

    def test_double_flip_quarantines_row_to_q_init(self):
        agent, storage = _agent_with_storage(ecc=True)
        # Two distinct bits of the same word.
        storage.flip_bit(3)
        storage.flip_bit(11)
        stats = storage.scrub()
        assert stats == {"corrected": 0, "detected": 1, "quarantined_rows": 1}
        state = storage._row_order[0]
        q_init = QTableStorage.quantize(agent.q_init)
        assert agent._table[state] == [q_init] * agent.num_actions
        _cache_matches_words(agent, storage)

    def test_no_ecc_corruption_reaches_cache_and_scrub_is_blind(self):
        agent, storage = _agent_with_storage(ecc=False)
        before = {s: list(r) for s, r in agent._table.items()}
        # Flip the sign bit of the first word: a large value change.
        storage.flip_bit(QTableStorage.DATA_BITS - 1)
        assert agent._table != before
        corrupted = {s: list(r) for s, r in agent._table.items()}
        stats = storage.scrub()
        assert stats == {"corrected": 0, "detected": 0, "quarantined_rows": 0}
        assert agent._table == corrupted  # nothing to repair without ECC
        _cache_matches_words(agent, storage)

    def test_corrupted_values_stay_finite(self):
        """Fixed-point garbage is bounded — the NaN/inf class of failure
        cannot arise from any flip pattern."""
        agent, storage = _agent_with_storage(ecc=False, rows=2)
        rng = random.Random(5)
        for _ in range(200):
            storage.flip_bit(rng.randrange(storage.bit_count()))
        for row in agent._table.values():
            assert all(math.isfinite(v) for v in row)

    def test_scrub_counts_accumulate(self):
        agent, storage = _agent_with_storage(ecc=True)
        storage.flip_bit(0)
        storage.scrub()
        storage.flip_bit(1)
        storage.scrub()
        assert storage.scrubs == 2
        assert storage.corrected == 2


class TestStateRoundTrip:
    def test_mid_corruption_round_trip_is_bit_identical(self):
        agent, storage = _agent_with_storage(ecc=True)
        storage.flip_bit(40)
        storage.flip_bit(41)  # same word: pending DETECTED
        storage.flip_bit(200)  # different word: pending CORRECTED
        state = agent.to_state()
        clone = QLearningAgent.from_state(state)
        assert clone._table == agent._table
        assert clone.storage.to_state() == storage.to_state()
        # Scrubbing both sides produces identical outcomes.
        assert clone.storage.scrub() == storage.scrub()
        assert clone._table == agent._table

    def test_frac_bits_mismatch_rejected(self):
        agent, storage = _agent_with_storage()
        state = agent.to_state()
        state["storage"]["frac_bits"] = 99
        with pytest.raises(AgentStateError, match="fixed-point layout mismatch"):
            QLearningAgent.from_state(state)

    def test_overwide_word_rejected(self):
        agent, storage = _agent_with_storage()
        state = agent.to_state()
        first = next(iter(state["storage"]["words"]))
        state["storage"]["words"][first][0] = 1 << 60
        with pytest.raises(AgentStateError, match="does not fit"):
            QLearningAgent.from_state(state)


class TestTmrModeBank:
    def test_single_upset_is_outvoted(self):
        bank = TmrModeBank(4)
        bank.write(2, 3)
        bank.upset(2, bit=0, copy=1)
        assert bank.read(2) == 3
        assert bank.vote() == 1  # one copy resynced
        assert bank.copies[2] == [3, 3, 3]

    def test_two_upsets_distinct_copies_corrupt_majority(self):
        bank = TmrModeBank(4)
        bank.write(1, 0)
        bank.upset(1, bit=1, copy=0)
        bank.upset(1, bit=1, copy=2)
        assert bank.read(1) == 2  # majority flipped

    def test_write_resyncs_all_copies(self):
        bank = TmrModeBank(2)
        bank.upset(0, bit=0, copy=0)
        bank.write(0, 1)
        assert bank.copies[0] == [1, 1, 1]
        assert bank.vote() == 0

    def test_vote_counts_accumulate(self):
        bank = TmrModeBank(3)
        bank.upset(0, bit=0, copy=0)
        bank.upset(1, bit=1, copy=2)
        assert bank.vote() == 2
        assert bank.votes == 2
        assert bank.upsets == 2

    def test_needs_routers(self):
        with pytest.raises(ValueError, match="at least one router"):
            TmrModeBank(0)
