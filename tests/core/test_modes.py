"""Tests for the four operation modes and their behaviour table."""

from repro.core.modes import MODE_BEHAVIOUR, OperationMode


class TestActionSpace:
    def test_four_modes(self):
        assert len(OperationMode) == 4
        assert [int(m) for m in OperationMode] == [0, 1, 2, 3]

    def test_every_mode_has_behaviour(self):
        assert set(MODE_BEHAVIOUR) == set(OperationMode)


class TestModeSemantics:
    def test_mode0_disables_ecc(self):
        b = MODE_BEHAVIOUR[OperationMode.MODE_0]
        assert not b.ecc_enabled
        assert not b.pre_retransmit
        assert b.extra_cycles_before_send == 0
        assert not b.timing_relaxed

    def test_mode1_enables_ecc_only(self):
        b = MODE_BEHAVIOUR[OperationMode.MODE_1]
        assert b.ecc_enabled
        assert not b.pre_retransmit
        assert b.extra_cycles_before_send == 0

    def test_mode2_adds_pre_retransmission(self):
        b = MODE_BEHAVIOUR[OperationMode.MODE_2]
        assert b.ecc_enabled
        assert b.pre_retransmit
        assert not b.timing_relaxed

    def test_mode3_relaxes_timing_with_two_stalls(self):
        """Section III: one control cycle + one stall cycle before send."""
        b = MODE_BEHAVIOUR[OperationMode.MODE_3]
        assert b.ecc_enabled
        assert b.timing_relaxed
        assert b.extra_cycles_before_send == 2
        assert not b.pre_retransmit


class TestLinkOccupancy:
    def test_slots_per_flit(self):
        assert MODE_BEHAVIOUR[OperationMode.MODE_0].link_slots_per_flit == 1
        assert MODE_BEHAVIOUR[OperationMode.MODE_1].link_slots_per_flit == 1
        # mode 2: original + duplicate
        assert MODE_BEHAVIOUR[OperationMode.MODE_2].link_slots_per_flit == 2
        # mode 3: two stall cycles + the transfer
        assert MODE_BEHAVIOUR[OperationMode.MODE_3].link_slots_per_flit == 3

    def test_throughput_cost_ordering(self):
        """Heavier protection never increases raw link throughput."""
        slots = [MODE_BEHAVIOUR[m].link_slots_per_flit for m in OperationMode]
        assert slots[0] <= slots[1] <= slots[2] <= slots[3]
