"""Tests for the tabular Q-learning agent."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.qlearning import AgentStateError, QLearningAgent


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            QLearningAgent(0)
        with pytest.raises(ValueError):
            QLearningAgent(4, alpha=0.0)
        with pytest.raises(ValueError):
            QLearningAgent(4, alpha=1.5)
        with pytest.raises(ValueError):
            QLearningAgent(4, gamma=-0.1)
        with pytest.raises(ValueError):
            QLearningAgent(4, epsilon=2.0)

    def test_unvisited_state_has_init_values(self):
        agent = QLearningAgent(4, q_init=0.5)
        assert agent.q_values("s") == (0.5,) * 4
        assert agent.states_visited == 0


class TestUpdate:
    def test_td_rule_exact(self):
        """Q <- (1-a)Q + a(r + g max Q') — paper equation 2, by hand."""
        agent = QLearningAgent(2, alpha=0.5, gamma=0.5, epsilon=0.0)
        agent.update("a", 0, reward=4.0, next_state="b")
        # Q(a,0) = 0.5*0 + 0.5*(4 + 0.5*0) = 2
        assert agent.q_values("a")[0] == pytest.approx(2.0)
        agent.update("b", 1, reward=2.0, next_state="a")
        # Q(b,1) = 0.5*(2 + 0.5*2) = 1.5
        assert agent.q_values("b")[1] == pytest.approx(1.5)

    def test_update_rejects_bad_action(self):
        agent = QLearningAgent(2)
        with pytest.raises(ValueError):
            agent.update("s", 5, 1.0, "s")

    def test_update_counter(self):
        agent = QLearningAgent(2)
        for _ in range(7):
            agent.update("s", 0, 1.0, "s")
        assert agent.updates == 7


class TestSelection:
    def test_greedy_picks_argmax(self):
        agent = QLearningAgent(3, alpha=1.0, gamma=0.0, epsilon=0.0)
        agent.update("s", 0, 1.0, "t")
        agent.update("s", 1, 5.0, "t")
        agent.update("s", 2, 3.0, "t")
        assert agent.best_action("s") == 1
        assert agent.select_action("s") == 1

    def test_epsilon_one_is_uniform_random(self):
        agent = QLearningAgent(4, epsilon=1.0, rng=random.Random(3))
        agent.update("s", 0, 100.0, "s")
        picks = {agent.select_action("s") for _ in range(100)}
        assert picks == {0, 1, 2, 3}

    def test_epsilon_zero_never_explores(self):
        agent = QLearningAgent(4, epsilon=0.0, rng=random.Random(3))
        agent.update("s", 2, 10.0, "s")
        assert all(agent.select_action("s") == 2 for _ in range(50))

    def test_tie_break_is_uniform_not_action_zero(self):
        agent = QLearningAgent(4, epsilon=0.0, rng=random.Random(5))
        picks = {agent.best_action("fresh") for _ in range(200)}
        assert picks == {0, 1, 2, 3}


class TestConvergence:
    def test_learns_two_armed_bandit(self):
        """Single state, arm 1 pays more: greedy policy converges to it."""
        rng = random.Random(0)
        agent = QLearningAgent(2, alpha=0.1, gamma=0.0, epsilon=0.3, rng=rng)
        for _ in range(500):
            action = agent.select_action("s")
            reward = (2.0 if action == 1 else 1.0) + rng.gauss(0, 0.1)
            agent.update("s", action, reward, "s")
        assert agent.best_action("s") == 1

    def test_learns_chain_mdp(self):
        """Two-state chain: action 1 moves to the rewarding state.

        States: 'low' (reward 0 staying via action 0, move via action 1),
        'high' (reward 1 on every action, absorbing).  With gamma=0.9
        the optimal policy at 'low' is action 1.
        """
        rng = random.Random(1)
        agent = QLearningAgent(2, alpha=0.2, gamma=0.9, epsilon=0.2, rng=rng)
        state = "low"
        for _ in range(2000):
            action = agent.select_action(state)
            if state == "low":
                reward, next_state = (0.0, "high") if action == 1 else (0.1, "low")
            else:
                reward, next_state = 1.0, "high"
            agent.update(state, action, reward, next_state)
            state = next_state
            if rng.random() < 0.05:
                state = "low"  # occasional reset to keep visiting 'low'
        assert agent.best_action("low") == 1

    def test_greedy_policy_snapshot(self):
        agent = QLearningAgent(2, alpha=1.0, gamma=0.0, epsilon=0.0)
        agent.update("a", 1, 5.0, "a")
        agent.update("b", 0, 5.0, "b")
        assert agent.greedy_policy() == {"a": 1, "b": 0}


class TestAnnealing:
    def test_set_epsilon_and_alpha(self):
        agent = QLearningAgent(2)
        agent.set_epsilon(0.5)
        agent.set_alpha(0.9)
        assert agent.epsilon == 0.5 and agent.alpha == 0.9
        with pytest.raises(ValueError):
            agent.set_epsilon(-0.1)
        with pytest.raises(ValueError):
            agent.set_alpha(0.0)


@settings(max_examples=100)
@given(
    rewards=st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=40),
    gamma=st.floats(min_value=0.0, max_value=0.99),
)
def test_property_q_values_bounded_by_return(rewards, gamma):
    """Q never exceeds max_reward / (1 - gamma) for non-negative rewards."""
    agent = QLearningAgent(2, alpha=0.5, gamma=gamma, epsilon=0.0)
    bound = max(rewards) / (1.0 - gamma) + 1e-9
    for i, r in enumerate(rewards):
        agent.update("s", i % 2, r, "s")
        assert all(0.0 <= q <= bound for q in agent.q_values("s"))


# ----------------------------------------------------------------------
# Durable state (checkpoint/resume)
# ----------------------------------------------------------------------
class TestDurableState:
    def test_round_trip_preserves_learning(self):
        agent = QLearningAgent(4, alpha=0.3, gamma=0.7, epsilon=0.2,
                               rng=random.Random(7))
        for i in range(50):
            agent.update((i % 5,), i % 4, float(i), ((i + 1) % 5,))
        clone = QLearningAgent.from_state(agent.to_state())
        assert clone.num_actions == agent.num_actions
        assert clone.alpha == agent.alpha
        assert clone.gamma == agent.gamma
        assert clone.epsilon == agent.epsilon
        assert clone.updates == agent.updates
        for s in range(5):
            assert clone.q_values((s,)) == agent.q_values((s,))
        # identical RNG state: the exploration streams stay in lockstep
        assert [clone.select_action((i % 5,)) for i in range(30)] == [
            agent.select_action((i % 5,)) for i in range(30)
        ]

    def test_to_state_is_a_deep_copy(self):
        agent = QLearningAgent(2)
        agent.update("s", 0, 1.0, "s")
        state = agent.to_state()
        state["table"]["s"][0] = 999.0
        assert agent.q_values("s")[0] != 999.0

    def test_rejects_nan_q_values(self):
        agent = QLearningAgent(2)
        agent.update("s", 0, 1.0, "s")
        state = agent.to_state()
        state["table"]["s"][1] = float("nan")
        with pytest.raises(AgentStateError, match="non-finite"):
            QLearningAgent.from_state(state)

    def test_rejects_inf_q_values(self):
        agent = QLearningAgent(2)
        agent.update("s", 0, 1.0, "s")
        state = agent.to_state()
        state["table"]["s"][0] = float("inf")
        with pytest.raises(AgentStateError, match="non-finite"):
            QLearningAgent.from_state(state)

    def test_rejects_mismatched_action_count(self):
        agent = QLearningAgent(4)
        agent.update("s", 0, 1.0, "s")
        state = agent.to_state()
        state["table"]["s"] = [0.0, 1.0]  # row narrower than num_actions
        with pytest.raises(AgentStateError, match="expected 4"):
            QLearningAgent.from_state(state)

    def test_rejects_malformed_snapshots(self):
        with pytest.raises(AgentStateError):
            QLearningAgent.from_state("not a dict")
        with pytest.raises(AgentStateError):
            QLearningAgent.from_state({})
        with pytest.raises(AgentStateError, match="action count"):
            QLearningAgent.from_state({"num_actions": 0, "table": {}})
        with pytest.raises(AgentStateError, match="dict"):
            QLearningAgent.from_state({"num_actions": 2, "table": [1, 2]})
        with pytest.raises(AgentStateError, match="RNG"):
            QLearningAgent.from_state(
                {"num_actions": 2, "table": {}, "rng_state": "bogus"}
            )

    def test_rejects_invalid_hyperparameters(self):
        with pytest.raises(AgentStateError, match="hyper"):
            QLearningAgent.from_state(
                {"num_actions": 2, "table": {}, "alpha": 7.0}
            )


@settings(max_examples=60, deadline=None)
@given(
    num_actions=st.integers(min_value=1, max_value=6),
    transitions=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=7),   # state
            st.integers(min_value=0, max_value=1000),  # action (mod num_actions)
            st.floats(min_value=-50.0, max_value=50.0,
                      allow_nan=False, allow_infinity=False),
            st.integers(min_value=0, max_value=7),   # next state
        ),
        max_size=60,
    ),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_property_state_round_trip(num_actions, transitions, seed):
    """Satellite: from_state(to_state()) preserves Q-values and the
    greedy policy for arbitrary visited-state sets."""
    agent = QLearningAgent(num_actions, rng=random.Random(seed))
    for s, a, r, s2 in transitions:
        agent.update((s,), a % num_actions, r, (s2,))
    clone = QLearningAgent.from_state(agent.to_state())
    visited = {s for s, _, _, _ in transitions} | {
        s2 for _, _, _, s2 in transitions
    }
    for s in visited:
        assert clone.q_values((s,)) == agent.q_values((s,))
    assert clone.greedy_policy() == agent.greedy_policy()
    assert clone.updates == agent.updates
