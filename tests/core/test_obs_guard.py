"""Tests for the consumer-side observation guard (telemetry hardening)."""

import math
import pickle

import pytest

from repro.core.controller import ObservationGuard
from repro.core.state import DiscretizationConfig, RouterObservation, discretize_observation


CFG = DiscretizationConfig()


def make_obs(router_id=0, temp=60.0, mode=0):
    obs = RouterObservation(
        router_id=router_id,
        occupied_vcs=[1, 0, 2, 0, 1],
        input_utilization=[0.1, 0.0, 0.2, 0.05, 0.0],
        output_utilization=[0.0, 0.1, 0.0, 0.15, 0.0],
        input_nack_rate=[0.01, 0.0, 0.0, 0.02, 0.0],
        output_nack_rate=[0.0, 0.0, 0.03, 0.0, 0.0],
        temperature=temp,
    )
    obs.discrete = discretize_observation(obs, CFG, compact=True, mode=mode)
    return obs


def make_guard(**kwargs):
    kwargs.setdefault("num_routers", 4)
    return ObservationGuard(**kwargs)


class TestHealthyPassThrough:
    def test_valid_observation_untouched(self):
        guard = make_guard()
        obs = make_obs()
        before = (list(obs.occupied_vcs), list(obs.input_utilization),
                  obs.temperature, obs.discrete)
        report = guard.inspect(0, 0, obs, epoch_index=0)
        assert not report.dirty and not report.rejected
        assert (list(obs.occupied_vcs), list(obs.input_utilization),
                obs.temperature, obs.discrete) == before

    def test_validation_args(self):
        with pytest.raises(ValueError):
            make_guard(num_routers=0)
        with pytest.raises(ValueError):
            make_guard(hold_ttl=0)
        with pytest.raises(ValueError):
            make_guard(quarantine_after=0)


class TestHoldAndDefault:
    def test_dropped_field_held_from_last_good(self):
        guard = make_guard()
        guard.inspect(0, 0, make_obs(temp=72.0), epoch_index=0)
        obs = make_obs(temp=72.0)
        obs.input_utilization = None
        report = guard.inspect(0, 0, obs, epoch_index=1)
        assert report.rejected and report.holds == 1
        assert obs.input_utilization == [0.1, 0.0, 0.2, 0.05, 0.0]
        assert obs.discrete  # re-discretized from the repaired reading

    def test_no_history_falls_back_to_default(self):
        guard = make_guard(default_temperature=40.0)
        obs = make_obs()
        obs.temperature = None
        obs.occupied_vcs = None
        report = guard.inspect(0, 0, obs, epoch_index=0)
        assert report.defaults == 2 and report.holds == 0
        assert obs.temperature == 40.0
        assert obs.occupied_vcs == [0, 0, 0, 0, 0]

    def test_hold_expires_after_ttl(self):
        guard = make_guard(hold_ttl=2, default_temperature=40.0)
        guard.inspect(0, 0, make_obs(temp=95.0), epoch_index=0)
        for epoch in (1, 2):  # within TTL: last-good value survives
            obs = make_obs()
            obs.temperature = float("nan")
            guard.inspect(0, 0, obs, epoch_index=epoch)
            assert obs.temperature == 95.0
        obs = make_obs()
        obs.temperature = float("nan")
        guard.inspect(0, 0, obs, epoch_index=3)  # stale beyond TTL
        assert obs.temperature == 40.0

    def test_non_finite_and_malformed_rejected(self):
        guard = make_guard()
        for poison in (float("inf"), float("nan")):
            obs = make_obs()
            obs.input_nack_rate = [0.0, poison, 0.0, 0.0, 0.0]
            report = guard.inspect(0, 0, obs, epoch_index=0)
            assert report.rejected
        obs = make_obs()
        obs.occupied_vcs = [1, 2]  # wrong arity
        assert guard.inspect(1, 0, obs, epoch_index=0).rejected
        obs = make_obs()
        obs.output_utilization = "garbage"
        assert guard.inspect(2, 0, obs, epoch_index=0).rejected


class TestClamping:
    def test_out_of_range_values_clamped(self):
        guard = make_guard()
        obs = make_obs()
        obs.input_utilization = [-0.5, 0.0, 0.1, 0.0, 0.0]
        obs.input_nack_rate = [1.5, 0.0, 0.0, 0.0, 0.0]
        obs.temperature = 1e6
        report = guard.inspect(0, 0, obs, epoch_index=0)
        assert not report.rejected  # finite values are repairable in place
        assert report.clamps == 3
        assert obs.input_utilization[0] == 0.0
        assert obs.input_nack_rate[0] == 1.0
        assert obs.temperature == ObservationGuard.MAX_TEMPERATURE

    def test_buffer_count_clamped_to_vcs(self):
        guard = make_guard()
        obs = make_obs()
        obs.occupied_vcs = [99, 0, 0, 0, -3]
        report = guard.inspect(0, 0, obs, epoch_index=0)
        assert report.clamps == 2
        assert obs.occupied_vcs == [CFG.num_vcs, 0, 0, 0, 0]


class TestQuarantine:
    def test_escalates_after_consecutive_rejects(self):
        guard = make_guard(quarantine_after=3)
        for epoch in range(2):
            obs = make_obs()
            obs.temperature = None
            report = guard.inspect(0, 0, obs, epoch_index=epoch)
            assert not report.quarantined
        obs = make_obs()
        obs.temperature = None
        report = guard.inspect(0, 0, obs, epoch_index=2)
        assert report.quarantined and guard.quarantined == {0}
        # Already quarantined: the flag fires exactly once.
        obs = make_obs()
        obs.temperature = None
        assert not guard.inspect(0, 0, obs, epoch_index=3).quarantined

    def test_valid_observation_resets_streak(self):
        guard = make_guard(quarantine_after=2)
        obs = make_obs()
        obs.temperature = None
        guard.inspect(0, 0, obs, epoch_index=0)
        guard.inspect(0, 0, make_obs(), epoch_index=1)  # healthy: reset
        obs = make_obs()
        obs.temperature = None
        assert not guard.inspect(0, 0, obs, epoch_index=2).quarantined
        obs = make_obs()
        obs.temperature = None
        assert guard.inspect(0, 0, obs, epoch_index=3).quarantined

    def test_streaks_are_per_router(self):
        guard = make_guard(quarantine_after=2)
        for epoch in range(2):
            obs = make_obs(router_id=1)
            obs.temperature = None
            guard.inspect(1, 0, obs, epoch_index=epoch)
        assert guard.quarantined == {1}


class TestState:
    def test_guard_pickles_with_streaks(self):
        guard = make_guard(quarantine_after=3)
        obs = make_obs()
        obs.temperature = None
        guard.inspect(0, 0, obs, epoch_index=0)
        clone = pickle.loads(pickle.dumps(guard))
        for epoch in (1, 2):
            for g in (guard, clone):
                poisoned = make_obs()
                poisoned.temperature = math.nan
                g.inspect(0, 0, poisoned, epoch_index=epoch)
        assert guard.quarantined == clone.quarantined == {0}
