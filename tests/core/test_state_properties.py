"""Property tests for the discretization bins (hypothesis).

The observation guard only clamps what it can *see* is out of range; the
last line of defense is that every bin function is total over the whole
float line (NaN and infinities included), monotonic, and stable at its
boundaries — so no telemetry value, however corrupted, can crash the
Q-table key computation or map out of the bin range.
"""

import math

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.core.state import (  # noqa: E402
    NUM_PORTS,
    DiscretizationConfig,
    RouterObservation,
    discretize_observation,
)

CFG = DiscretizationConfig()

any_float = st.floats(allow_nan=True, allow_infinity=True)
finite = st.floats(allow_nan=False, allow_infinity=False)


class TestTotality:
    """Every bin accepts every float and lands inside its range."""

    @given(any_float)
    def test_utilization_bin_total(self, value):
        assert 0 <= CFG.utilization_bin(value) < CFG.utilization_bins

    @given(any_float)
    def test_buffer_bin_total(self, value):
        assert 0 <= CFG.buffer_bin(value) < CFG.utilization_bins

    @given(any_float)
    def test_nack_bin_total(self, value):
        assert 0 <= CFG.nack_bin(value) <= len(CFG.nack_thresholds)

    @given(any_float)
    def test_temperature_bin_total(self, value):
        assert 0 <= CFG.temperature_bin(value) < CFG.temperature_bins

    def test_nan_reads_as_no_signal_or_saturates(self):
        nan = float("nan")
        assert CFG.utilization_bin(nan) == 0
        assert CFG.buffer_bin(nan) == 0
        assert CFG.temperature_bin(nan) == 0
        # NaN compares False against every threshold, so it falls through
        # to the top NACK bin — conservative (reads as "high error").
        assert CFG.nack_bin(nan) == len(CFG.nack_thresholds)

    def test_infinities_saturate(self):
        assert CFG.utilization_bin(math.inf) == CFG.utilization_bins - 1
        assert CFG.buffer_bin(math.inf) == CFG.utilization_bins - 1
        assert CFG.nack_bin(math.inf) == len(CFG.nack_thresholds)
        assert CFG.temperature_bin(math.inf) == CFG.temperature_bins - 1
        for bin_fn in (CFG.utilization_bin, CFG.buffer_bin,
                       CFG.nack_bin, CFG.temperature_bin):
            assert bin_fn(-math.inf) == 0


class TestMonotonicity:
    @given(finite, finite)
    def test_utilization_bin_monotonic(self, a, b):
        lo, hi = sorted((a, b))
        assert CFG.utilization_bin(lo) <= CFG.utilization_bin(hi)

    @given(finite, finite)
    def test_buffer_bin_monotonic(self, a, b):
        lo, hi = sorted((a, b))
        assert CFG.buffer_bin(lo) <= CFG.buffer_bin(hi)

    @given(finite, finite)
    def test_nack_bin_monotonic(self, a, b):
        lo, hi = sorted((a, b))
        assert CFG.nack_bin(lo) <= CFG.nack_bin(hi)

    @given(finite, finite)
    def test_temperature_bin_monotonic(self, a, b):
        lo, hi = sorted((a, b))
        assert CFG.temperature_bin(lo) <= CFG.temperature_bin(hi)


class TestBoundaries:
    """Exact boundary values map stably (no off-by-one drift)."""

    def test_utilization_boundaries(self):
        assert CFG.utilization_bin(0.0) == 0
        assert CFG.utilization_bin(CFG.max_link_utilization) == CFG.utilization_bins - 1
        # Just below a fifth of the max stays in bin 0; at it, bin 1.
        step = CFG.max_link_utilization / CFG.utilization_bins
        assert CFG.utilization_bin(step * 0.999) == 0
        assert CFG.utilization_bin(step) == 1

    def test_nack_thresholds_are_half_open(self):
        for i, threshold in enumerate(CFG.nack_thresholds):
            assert CFG.nack_bin(threshold * 0.999) == i
            assert CFG.nack_bin(threshold) == i + 1
        assert CFG.nack_bin(0.0) == 0
        assert CFG.nack_bin(1.0) == len(CFG.nack_thresholds)

    def test_temperature_boundaries(self):
        lo, hi = CFG.temperature_range
        assert CFG.temperature_bin(lo) == 0
        assert CFG.temperature_bin(hi) == CFG.temperature_bins - 1

    def test_buffer_boundaries(self):
        assert CFG.buffer_bin(0) == 0
        assert CFG.buffer_bin(CFG.num_vcs) == CFG.utilization_bins - 1


class TestDiscretizeObservation:
    @given(
        st.lists(any_float, min_size=NUM_PORTS, max_size=NUM_PORTS),
        st.lists(any_float, min_size=NUM_PORTS, max_size=NUM_PORTS),
        st.lists(any_float, min_size=NUM_PORTS, max_size=NUM_PORTS),
        st.lists(any_float, min_size=NUM_PORTS, max_size=NUM_PORTS),
        st.lists(any_float, min_size=NUM_PORTS, max_size=NUM_PORTS),
        any_float,
        st.booleans(),
    )
    @settings(max_examples=200)
    def test_total_over_arbitrary_telemetry(
        self, vcs, in_util, out_util, in_nack, out_nack, temp, compact
    ):
        """Whatever floats the sensors report, discretization returns a
        tuple of in-range ints — it never raises."""
        obs = RouterObservation(
            router_id=0,
            occupied_vcs=vcs,
            input_utilization=in_util,
            output_utilization=out_util,
            input_nack_rate=in_nack,
            output_nack_rate=out_nack,
            temperature=temp,
        )
        key = discretize_observation(obs, CFG, compact=compact, mode=2)
        assert isinstance(key, tuple)
        assert all(isinstance(b, int) for b in key)
        expected_len = 7 if compact else 5 * NUM_PORTS + 2
        assert len(key) == expected_len
        assert key[-1] == 2  # appended mode
