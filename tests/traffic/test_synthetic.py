"""Tests for synthetic traffic patterns."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc import MeshTopology
from repro.traffic import PATTERNS, SyntheticTraffic, destination_for


class TestPermutationPatterns:
    def test_transpose(self):
        topo = MeshTopology(4, 4)
        rng = random.Random(0)
        assert PATTERNS["transpose"](topo, topo.node_id(1, 3), rng) == topo.node_id(3, 1)

    def test_transpose_requires_square(self):
        with pytest.raises(ValueError):
            PATTERNS["transpose"](MeshTopology(4, 2), 0, random.Random(0))

    def test_bit_complement(self):
        topo = MeshTopology(4, 4)
        assert PATTERNS["bit_complement"](topo, 0b0000, random.Random(0)) == 0b1111
        assert PATTERNS["bit_complement"](topo, 0b0101, random.Random(0)) == 0b1010

    def test_bit_reverse(self):
        topo = MeshTopology(4, 4)
        assert PATTERNS["bit_reverse"](topo, 0b0001, random.Random(0)) == 0b1000

    def test_shuffle(self):
        topo = MeshTopology(4, 4)
        assert PATTERNS["shuffle"](topo, 0b1001, random.Random(0)) == 0b0011

    def test_tornado(self):
        topo = MeshTopology(8, 8)
        assert PATTERNS["tornado"](topo, topo.node_id(0, 2), random.Random(0)) == topo.node_id(3, 2)

    def test_neighbour_wraps(self):
        topo = MeshTopology(4, 4)
        assert PATTERNS["neighbour"](topo, topo.node_id(3, 1), random.Random(0)) == topo.node_id(0, 1)

    def test_power_of_two_required_for_bit_patterns(self):
        topo = MeshTopology(3, 3)
        with pytest.raises(ValueError):
            PATTERNS["bit_complement"](topo, 0, random.Random(0))

    def test_destination_for_skips_self_loop(self):
        topo = MeshTopology(4, 4)
        diagonal = topo.node_id(2, 2)
        assert destination_for("transpose", topo, diagonal, random.Random(0)) is None

    def test_destination_for_unknown_pattern(self):
        with pytest.raises(ValueError):
            destination_for("zigzag", MeshTopology(4, 4), 0, random.Random(0))

    def test_uniform_never_self(self):
        topo = MeshTopology(4, 4)
        rng = random.Random(1)
        for src in range(16):
            for _ in range(50):
                assert PATTERNS["uniform"](topo, src, rng) != src


class TestSyntheticSource:
    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            SyntheticTraffic(MeshTopology(4, 4), injection_rate=1.5)

    def test_rejects_unknown_pattern(self):
        with pytest.raises(ValueError):
            SyntheticTraffic(MeshTopology(4, 4), pattern="spiral")

    def test_injection_rate_statistics(self):
        topo = MeshTopology(4, 4)
        source = SyntheticTraffic(topo, injection_rate=0.1, rng=random.Random(3))
        total = sum(len(source.packets_for_cycle(t)) for t in range(500))
        expected = 0.1 * 16 * 500
        assert 0.85 * expected < total < 1.15 * expected

    def test_zero_rate_generates_nothing(self):
        source = SyntheticTraffic(MeshTopology(4, 4), injection_rate=0.0)
        assert sum(len(source.packets_for_cycle(t)) for t in range(100)) == 0

    def test_packet_geometry(self):
        source = SyntheticTraffic(
            MeshTopology(4, 4), injection_rate=1.0, packet_size=2, flit_bits=64,
            rng=random.Random(0),
        )
        packets = source.packets_for_cycle(7)
        assert packets
        for p in packets:
            assert p.size == 2
            assert p.flit_bits == 64
            assert p.created_at == 7

    def test_hotspot_concentrates_traffic(self):
        topo = MeshTopology(4, 4)
        source = SyntheticTraffic(
            topo, pattern="hotspot", injection_rate=0.5,
            hotspot_nodes=[5], hotspot_fraction=0.8, rng=random.Random(9),
        )
        counts = {}
        for t in range(200):
            for p in source.packets_for_cycle(t):
                counts[p.dest] = counts.get(p.dest, 0) + 1
        assert counts[5] == max(counts.values())
        assert counts[5] > 0.5 * sum(counts.values())


@settings(max_examples=50)
@given(pattern=st.sampled_from(sorted(PATTERNS)), src=st.integers(min_value=0, max_value=63))
def test_property_patterns_stay_on_mesh(pattern, src):
    topo = MeshTopology(8, 8)
    dest = PATTERNS[pattern](topo, src, random.Random(0))
    assert 0 <= dest < 64
