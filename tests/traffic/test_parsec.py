"""Tests for the PARSEC-like trace synthesizer."""

import random

import pytest

from repro.noc import MeshTopology
from repro.traffic import PARSEC_PROFILES, BenchmarkProfile, ParsecTraceSynthesizer


class TestProfiles:
    def test_suite_has_ten_benchmarks(self):
        assert len(PARSEC_PROFILES) == 10
        assert "blackscholes" in PARSEC_PROFILES
        assert "x264" in PARSEC_PROFILES

    def test_intensity_ordering(self):
        """Published characterization: blackscholes/swaptions lightest,
        canneal/streamcluster heaviest."""
        rates = {name: p.mean_rate for name, p in PARSEC_PROFILES.items()}
        light = max(rates["blackscholes"], rates["swaptions"])
        heavy = min(rates["canneal"], rates["streamcluster"])
        assert light < heavy

    def test_bursty_benchmarks_have_high_burst_factor(self):
        assert PARSEC_PROFILES["x264"].burst_factor >= 3.0
        assert PARSEC_PROFILES["blackscholes"].burst_factor == 1.0

    def test_mean_rate_includes_burst_duty(self):
        profile = BenchmarkProfile("b", 0.01, 3.0, 0.1, 0.1)
        # duty cycle 0.5 -> rate * (1 + 0.5 * 2) = 0.02
        assert profile.mean_rate == pytest.approx(0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            BenchmarkProfile("bad", 1.5)
        with pytest.raises(ValueError):
            BenchmarkProfile("bad", 0.01, burst_factor=0.5)
        with pytest.raises(ValueError):
            BenchmarkProfile("bad", 0.01, locality=(0.5, 0.2, 0.2))
        with pytest.raises(ValueError):
            BenchmarkProfile("bad", 0.01, packet_size=0)


class TestSynthesizer:
    def test_rejects_empty_span(self):
        synth = ParsecTraceSynthesizer(
            PARSEC_PROFILES["ferret"], MeshTopology(4, 4), random.Random(0)
        )
        with pytest.raises(ValueError):
            synth.synthesize(0)

    def test_records_are_valid_and_sorted_by_cycle(self):
        synth = ParsecTraceSynthesizer(
            PARSEC_PROFILES["dedup"], MeshTopology(4, 4), random.Random(1)
        )
        records = synth.synthesize(300)
        assert records
        cycles = [r.cycle for r in records]
        assert cycles == sorted(cycles)
        for r in records:
            assert 0 <= r.src < 16 and 0 <= r.dest < 16 and r.src != r.dest
            assert r.size == 4

    def test_volume_matches_mean_rate(self):
        profile = PARSEC_PROFILES["streamcluster"]
        synth = ParsecTraceSynthesizer(profile, MeshTopology(4, 4), random.Random(2))
        records = synth.synthesize(2000)
        expected = profile.mean_rate * 16 * 2000
        assert 0.8 * expected < len(records) < 1.2 * expected

    def test_heavier_profile_generates_more_traffic(self):
        topo = MeshTopology(4, 4)
        light = len(
            ParsecTraceSynthesizer(
                PARSEC_PROFILES["blackscholes"], topo, random.Random(3)
            ).synthesize(1500)
        )
        heavy = len(
            ParsecTraceSynthesizer(
                PARSEC_PROFILES["canneal"], topo, random.Random(3)
            ).synthesize(1500)
        )
        assert heavy > 2 * light

    def test_hotspot_locality_targets_hotspots(self):
        profile = BenchmarkProfile("hot", 0.05, locality=(0.0, 0.0, 1.0))
        synth = ParsecTraceSynthesizer(
            profile, MeshTopology(4, 4), random.Random(4), hotspot_nodes=[5, 6]
        )
        records = synth.synthesize(300)
        assert records
        assert all(r.dest in (5, 6) for r in records)

    def test_neighbour_locality_stays_adjacent(self):
        profile = BenchmarkProfile("near", 0.05, locality=(0.0, 1.0, 0.0))
        topo = MeshTopology(4, 4)
        synth = ParsecTraceSynthesizer(profile, topo, random.Random(5))
        for r in synth.synthesize(200):
            assert topo.hop_distance(r.src, r.dest) == 1

    def test_deterministic_per_seed(self):
        topo = MeshTopology(4, 4)
        a = ParsecTraceSynthesizer(PARSEC_PROFILES["vips"], topo, random.Random(7)).synthesize(200)
        b = ParsecTraceSynthesizer(PARSEC_PROFILES["vips"], topo, random.Random(7)).synthesize(200)
        assert a == b

    def test_default_hotspots_are_centre_tiles(self):
        topo = MeshTopology(8, 8)
        synth = ParsecTraceSynthesizer(PARSEC_PROFILES["ferret"], topo, random.Random(0))
        centre = {topo.node_id(3, 3), topo.node_id(4, 3), topo.node_id(3, 4), topo.node_id(4, 4)}
        assert set(synth.hotspot_nodes) == centre
