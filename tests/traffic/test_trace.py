"""Tests for trace records, file I/O, and replay."""

import random

import pytest

from repro.noc import MeshTopology
from repro.traffic import TraceRecord, TraceReplayer, load_trace, save_trace


class TestRecord:
    def test_validation(self):
        with pytest.raises(ValueError):
            TraceRecord(-1, 0, 1, 4)
        with pytest.raises(ValueError):
            TraceRecord(0, 0, 1, 0)
        with pytest.raises(ValueError):
            TraceRecord(0, 3, 3, 4)

    def test_ordering_by_cycle(self):
        records = [TraceRecord(5, 0, 1, 4), TraceRecord(2, 1, 0, 4)]
        assert sorted(records)[0].cycle == 2


class TestFileIO:
    def test_roundtrip(self, tmp_path):
        records = [
            TraceRecord(0, 0, 5, 4),
            TraceRecord(3, 2, 7, 1),
            TraceRecord(3, 1, 4, 4),
        ]
        path = tmp_path / "trace.txt"
        assert save_trace(records, path) == 3
        loaded = load_trace(path)
        assert loaded == sorted(records)

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# header\n\n1 0 2 4\n# trailer\n")
        assert load_trace(path) == [TraceRecord(1, 0, 2, 4)]

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("1 0 2\n")
        with pytest.raises(ValueError, match="expected 4 fields"):
            load_trace(path)


class TestReplayer:
    def _records(self):
        return [
            TraceRecord(0, 0, 1, 4),
            TraceRecord(2, 1, 2, 4),
            TraceRecord(2, 3, 0, 2),
            TraceRecord(10, 2, 3, 4),
        ]

    def test_replays_in_time_order(self):
        replayer = TraceReplayer(self._records(), MeshTopology(2, 2))
        assert len(replayer.packets_for_cycle(0)) == 1
        assert len(replayer.packets_for_cycle(1)) == 0
        assert len(replayer.packets_for_cycle(2)) == 2
        assert not replayer.exhausted
        assert len(replayer.packets_for_cycle(10)) == 1
        assert replayer.exhausted

    def test_late_poll_catches_up(self):
        replayer = TraceReplayer(self._records(), MeshTopology(2, 2))
        assert len(replayer.packets_for_cycle(99)) == 4

    def test_packet_fields_match_record(self):
        replayer = TraceReplayer([TraceRecord(1, 3, 0, 2)], MeshTopology(2, 2), flit_bits=32)
        packet = replayer.packets_for_cycle(1)[0]
        assert (packet.src, packet.dest, packet.size) == (3, 0, 2)
        assert packet.flit_bits == 32

    def test_stretch_rescales_time(self):
        replayer = TraceReplayer(self._records(), MeshTopology(2, 2), stretch=2.0)
        assert len(replayer.packets_for_cycle(3)) == 1  # only the cycle-0 record
        assert len(replayer.packets_for_cycle(4)) == 2  # cycle-2 records land at 4
        assert replayer.last_cycle == 20

    def test_rejects_bad_stretch(self):
        with pytest.raises(ValueError):
            TraceReplayer([], MeshTopology(2, 2), stretch=0.0)

    def test_rejects_off_mesh_records(self):
        with pytest.raises(ValueError):
            TraceReplayer([TraceRecord(0, 0, 99, 4)], MeshTopology(2, 2))

    def test_reset(self):
        replayer = TraceReplayer(self._records(), MeshTopology(2, 2))
        replayer.packets_for_cycle(99)
        assert replayer.exhausted
        replayer.reset()
        assert replayer.remaining == 4

    def test_counts(self):
        replayer = TraceReplayer(self._records(), MeshTopology(2, 2))
        assert replayer.total_messages == 4
        replayer.packets_for_cycle(2)
        assert replayer.remaining == 1

    def test_empty_trace(self):
        replayer = TraceReplayer([], MeshTopology(2, 2))
        assert replayer.exhausted
        assert replayer.last_cycle == 0
        assert replayer.packets_for_cycle(0) == []
