"""Tests for hard-fault schedules and the campaign model."""

import random

import pytest

from repro.faults import HardFaultEvent, HardFaultModel, HardFaultSchedule, parse_fault_spec
from repro.noc import MeshTopology, Network, Packet, Port


class TestSpecParsing:
    def test_link_clause(self):
        (event,) = parse_fault_spec("link@500:5E")
        assert event.kind == "link"
        assert event.cycle == 500
        assert event.node == 5
        assert event.port is Port.EAST

    def test_router_clause(self):
        (event,) = parse_fault_spec("router@800:7")
        assert (event.kind, event.cycle, event.node) == ("router", 800, 7)

    def test_burst_clause(self):
        (event,) = parse_fault_spec("burst@300+200:0.2")
        assert event.kind == "burst"
        assert event.cycle == 300
        assert event.duration == 200
        assert event.probability == pytest.approx(0.2)

    def test_multi_clause_sorted_by_cycle(self):
        events = parse_fault_spec("router@800:7;link@500:5E;burst@300+200:0.2")
        assert [e.cycle for e in events] == [300, 500, 800]

    def test_round_trip(self):
        spec = "burst@300+200:0.2;link@500:5E;router@800:7"
        schedule = HardFaultSchedule.parse(spec)
        assert schedule.format() == spec
        assert HardFaultSchedule.parse(schedule.format()) == schedule

    def test_empty_spec_is_healthy(self):
        assert len(HardFaultSchedule.parse("")) == 0
        assert HardFaultSchedule.parse("").format() == ""

    @pytest.mark.parametrize(
        "bad",
        ["link@500:5X", "link@500", "router@:7", "burst@300:0.2",
         "burst@300+0:0.2", "burst@300+10:1.5", "fire@500:5E", "link@-2:5E"],
    )
    def test_bad_clauses_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_fault_spec(bad)


class TestSampling:
    def test_deterministic_in_seed(self):
        topo = MeshTopology(4, 4)
        a = HardFaultSchedule.sample(topo, seed=3, link_rate=1e-4, router_rate=1e-5)
        b = HardFaultSchedule.sample(topo, seed=3, link_rate=1e-4, router_rate=1e-5)
        assert a == b and a.format() == b.format()

    def test_seed_changes_campaign(self):
        topo = MeshTopology(4, 4)
        a = HardFaultSchedule.sample(topo, seed=3, link_rate=1e-4)
        b = HardFaultSchedule.sample(topo, seed=4, link_rate=1e-4)
        assert a != b

    def test_zero_rates_empty(self):
        topo = MeshTopology(4, 4)
        assert len(HardFaultSchedule.sample(topo, seed=1)) == 0

    def test_max_events_cap(self):
        topo = MeshTopology(4, 4)
        schedule = HardFaultSchedule.sample(
            topo, seed=1, link_rate=0.5, max_events=3
        )
        assert len(schedule) == 3


def _mesh(routing="adaptive", **kwargs):
    return Network(
        MeshTopology(4, 4), routing_fn=routing, rng=random.Random(0), **kwargs
    )


class TestModel:
    def test_link_kill_applies_at_cycle(self):
        net = _mesh()
        model = HardFaultModel(net, HardFaultSchedule.parse("link@10:5E"))
        net.hard_faults = model
        net.run(10)
        assert net.channels[(5, Port.EAST)].alive
        net.run(1)
        assert not net.channels[(5, Port.EAST)].alive
        assert net.stats.link_kills == 1
        assert model.applied == [("link@10:5E", 10)]
        assert model.first_fault_cycle == 10

    def test_router_kill(self):
        net = _mesh()
        model = HardFaultModel(net, HardFaultSchedule.parse("router@5:5"))
        net.hard_faults = model
        net.run(20)
        assert net.stats.router_kills == 1
        assert 5 in net.fault_state.dead_nodes
        assert not net.interfaces[5].alive

    def test_burst_raises_then_restores(self):
        net = _mesh()
        for _, em in net.channel_models():
            em.event_probability = 0.01
        model = HardFaultModel(net, HardFaultSchedule.parse("burst@5+10:0.3"))
        net.hard_faults = model
        net.run(6)
        probs = {em.event_probability for _, em in net.channel_models()}
        assert probs == {0.3}
        net.run(20)
        probs = {em.event_probability for _, em in net.channel_models()}
        assert probs == {0.01}

    def test_overlapping_events_idempotent(self):
        # A router kill implies its link kills; re-killing is a no-op.
        net = _mesh()
        spec = "link@5:5E;router@6:5;link@7:5E;router@8:5"
        net.hard_faults = HardFaultModel(net, HardFaultSchedule.parse(spec))
        net.run(20)
        assert net.stats.router_kills == 1

    def test_post_fault_latency_split(self):
        net = _mesh()
        model = HardFaultModel(net, HardFaultSchedule.parse("link@60:5E"))
        net.hard_faults = model
        mid = 0
        rng = random.Random(3)
        for _ in range(400):
            if rng.random() < 0.3:
                src, dst = rng.randrange(16), rng.randrange(16)
                if src != dst:
                    net.inject(Packet(src, dst, 4, net.flit_bits, net.now, message_id=mid))
                    mid += 1
            net.cycle()
        while not net.quiescent:
            net.cycle()
        assert model.pre_fault_latency > 0.0
        assert model.post_fault_latency > 0.0
        # The overall mean is a mixture of the two phases.
        overall = net.stats.latency.mean
        lo = min(model.pre_fault_latency, model.post_fault_latency)
        hi = max(model.pre_fault_latency, model.post_fault_latency)
        assert lo <= overall <= hi
