"""Tests for the compact RC thermal model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import ThermalGrid


class TestConstruction:
    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            ThermalGrid(0, 4)

    def test_rejects_bad_resistances(self):
        with pytest.raises(ValueError):
            ThermalGrid(2, 2, r_vertical=0)
        with pytest.raises(ValueError):
            ThermalGrid(2, 2, r_lateral=-1)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            ThermalGrid(2, 2, alpha=0.0)
        with pytest.raises(ValueError):
            ThermalGrid(2, 2, alpha=1.5)

    def test_starts_at_ambient(self):
        grid = ThermalGrid(4, 4, t_ambient=45.0)
        assert np.allclose(grid.temperatures, 45.0)


class TestSteadyState:
    def test_zero_power_is_ambient(self):
        grid = ThermalGrid(3, 3)
        assert np.allclose(grid.steady_state([0.0] * 9), grid.t_ambient)

    def test_uniform_power_heats_uniformly(self):
        grid = ThermalGrid(3, 3, t_ambient=45.0, r_vertical=100.0)
        temps = grid.steady_state([0.1] * 9)
        # Uniform load: no lateral flow, pure vertical: T = 45 + 0.1*100.
        assert np.allclose(temps, 55.0)

    def test_calibration_idle_and_hot(self):
        """~50 mW idle ~= 50 C; ~0.5 W saturated pushes toward 95 C."""
        grid = ThermalGrid(1, 1)
        idle = grid.steady_state([0.05])[0]
        hot = grid.steady_state([0.5])[0]
        assert 48.0 <= idle <= 52.0
        assert 90.0 <= hot <= 100.0

    def test_hotspot_spreads_laterally(self):
        grid = ThermalGrid(3, 3)
        power = [0.0] * 9
        power[4] = 0.5  # centre tile only
        temps = grid.steady_state(power)
        assert temps[4] == max(temps)
        assert temps[1] > grid.t_ambient  # neighbour warmed by spreading
        assert temps[4] < grid.t_ambient + 0.5 * grid.r_vertical  # some heat leaves sideways

    def test_rejects_negative_power(self):
        with pytest.raises(ValueError):
            ThermalGrid(2, 2).steady_state([0.1, -0.1, 0.0, 0.0])

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            ThermalGrid(2, 2).steady_state([0.1])


class TestTransient:
    def test_step_approaches_equilibrium(self):
        grid = ThermalGrid(2, 2, alpha=0.25)
        target = grid.steady_state([0.3] * 4)
        previous_gap = np.inf
        for _ in range(30):
            temps = grid.step([0.3] * 4)
            gap = float(np.max(np.abs(temps - target)))
            assert gap <= previous_gap + 1e-9
            previous_gap = gap
        assert previous_gap < 0.5

    def test_alpha_one_jumps_to_equilibrium(self):
        grid = ThermalGrid(2, 2, alpha=1.0)
        temps = grid.step([0.2] * 4)
        assert np.allclose(temps, grid.steady_state([0.2] * 4))

    def test_cooling_after_load_removed(self):
        grid = ThermalGrid(2, 2, alpha=0.5)
        for _ in range(10):
            grid.step([0.4] * 4)
        hot = grid.temperatures.copy()
        for _ in range(10):
            grid.step([0.0] * 4)
        assert np.all(grid.temperatures < hot)

    def test_reset(self):
        grid = ThermalGrid(2, 2)
        grid.step([0.4] * 4)
        grid.reset()
        assert np.allclose(grid.temperatures, grid.t_ambient)
        grid.reset(60.0)
        assert np.allclose(grid.temperatures, 60.0)


@settings(max_examples=60, deadline=None)
@given(
    power=st.lists(
        st.floats(min_value=0.0, max_value=1.0), min_size=9, max_size=9
    )
)
def test_property_steady_state_bounds(power):
    """Steady state lies between ambient and the no-spreading bound, and
    more power never cools any tile."""
    grid = ThermalGrid(3, 3)
    temps = grid.steady_state(power)
    assert np.all(temps >= grid.t_ambient - 1e-9)
    assert np.all(temps <= grid.t_ambient + grid.r_vertical * max(power) + 1e-9)
    bumped = list(power)
    bumped[4] += 0.1
    hotter = grid.steady_state(bumped)
    assert np.all(hotter >= temps - 1e-9)
