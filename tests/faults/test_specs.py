"""Unit tests for the shared spec-grammar plumbing.

All three fault planes (hard faults, sensor faults, soft errors) parse
through :mod:`repro.faults.specs`; these tests pin the shared mechanics
— clause splitting, the ``r<N>`` router token, the one-line error
wrapper — plus the cross-grammar guarantee that every grammar reports
malformed clauses with the same ``bad <what> clause ...`` shape.
"""

import pytest

from repro.faults.hardfaults import parse_fault_spec
from repro.faults.sensors import parse_sensor_spec
from repro.faults.softerrors import parse_soft_error_spec
from repro.faults.specs import (
    format_spec,
    parse_router_token,
    parse_spec,
    split_clauses,
)


class TestSplitClauses:
    def test_strips_and_drops_empty(self):
        assert split_clauses(" a@1 ;; b@2 ; ") == ["a@1", "b@2"]

    def test_empty_spec_is_no_clauses(self):
        assert split_clauses("") == []
        assert split_clauses(" ; ; ") == []


class TestRouterToken:
    def test_parses_r_prefixed_id(self):
        assert parse_router_token(" r12 ") == 12

    def test_rejects_missing_prefix(self):
        with pytest.raises(ValueError, match="router must be written 'r<id>'"):
            parse_router_token("12")

    def test_rejects_non_numeric_id(self):
        with pytest.raises(ValueError):
            parse_router_token("rx")


class _Item:
    def __init__(self, kind, rest):
        self.kind, self.rest = kind, rest

    def format(self):
        return f"{self.kind}@{self.rest}"

    def sort_key(self):
        return (self.kind, self.rest)


class TestParseSpec:
    def test_sorts_canonically_and_round_trips(self):
        items = parse_spec("b@2;a@1", "demo", _Item, _Item.sort_key)
        assert [i.format() for i in items] == ["a@1", "b@2"]
        assert format_spec(items, _Item.sort_key) == "a@1;b@2"

    def test_clause_without_at_is_rewrapped(self):
        with pytest.raises(ValueError, match=r"bad demo clause 'oops'"):
            parse_spec("oops", "demo", _Item, _Item.sort_key)

    def test_handler_error_is_rewrapped_with_clause(self):
        def boom(kind, rest):
            raise KeyError(kind)

        with pytest.raises(ValueError, match=r"bad demo clause 'a@1'"):
            parse_spec("a@1", "demo", boom, _Item.sort_key)


class TestUniformErrorShape:
    """Every grammar built on the shared plumbing reports identically."""

    @pytest.mark.parametrize(
        "parser, what",
        [
            (parse_fault_spec, "fault"),
            (parse_sensor_spec, "sensor"),
            (parse_soft_error_spec, "soft-error"),
        ],
    )
    def test_malformed_clause_names_grammar_and_clause(self, parser, what):
        with pytest.raises(ValueError, match=rf"bad {what} clause 'nope@x'"):
            parser("nope@x")

    @pytest.mark.parametrize(
        "parser",
        [parse_fault_spec, parse_sensor_spec, parse_soft_error_spec],
    )
    def test_empty_spec_is_healthy(self, parser):
        assert parser("") == []
