"""Tests for the sensor-fault model (telemetry corruption campaigns)."""

import pickle
import random

import pytest

from repro.core.state import RouterObservation
from repro.faults import (
    SensorFaultModel,
    SensorFaultRule,
    format_sensor_spec,
    parse_sensor_spec,
)


def make_obs(router_id=0, temp=60.0):
    return RouterObservation(
        router_id=router_id,
        occupied_vcs=[1, 0, 2, 0, 1],
        input_utilization=[0.1, 0.0, 0.2, 0.05, 0.0],
        output_utilization=[0.0, 0.1, 0.0, 0.15, 0.0],
        input_nack_rate=[0.01, 0.0, 0.0, 0.02, 0.0],
        output_nack_rate=[0.0, 0.0, 0.03, 0.0, 0.0],
        temperature=temp,
    )


class TestGrammar:
    def test_round_trip_is_canonical(self):
        spec = "stale@r7+400:8; drop@0.2:util ;noise@0.05:nack;stuck@r3.temp=0.9"
        rules = parse_sensor_spec(spec)
        canonical = format_sensor_spec(rules)
        assert canonical == (
            "stuck@r3.temp=0.9;drop@0.2:util;noise@0.05:nack;stale@r7+400:8"
        )
        assert parse_sensor_spec(canonical) == rules

    def test_empty_spec_is_healthy(self):
        assert parse_sensor_spec("") == []
        assert parse_sensor_spec(" ; ;") == []

    def test_rules_sorted_kind_then_router(self):
        rules = parse_sensor_spec("stuck@r5.buf=2;stuck@r1.temp=0.5;drop@0.1:all")
        assert [r.format() for r in rules] == [
            "stuck@r1.temp=0.5", "stuck@r5.buf=2", "drop@0.1:all",
        ]

    @pytest.mark.parametrize("clause", [
        "wobble@r1.temp=3",      # unknown kind
        "drop@1.5:util",         # probability out of range
        "drop@0:util",           # zero probability
        "noise@-0.1:nack",       # non-positive sigma
        "noise@0.1:buf",         # noise on integer VC counts is ill-typed
        "stuck@r2.all=1",        # stuck targets one concrete field
        "stuck@3.temp=1",        # router must be written r<id>
        "stale@r2+100:0",        # zero-epoch staleness
        "stale@r2+-5:3",         # negative onset
        "drop@x:util",           # unparseable number
        "stuck@r1.temp",         # missing value
    ])
    def test_bad_clause_named_in_error(self, clause):
        with pytest.raises(ValueError, match="bad sensor clause"):
            parse_sensor_spec(f"drop@0.5:util;{clause}")

    def test_rule_equality_and_hash(self):
        a = parse_sensor_spec("drop@0.2:util")[0]
        b = SensorFaultRule("drop", probability=0.2, field="util")
        assert a == b and hash(a) == hash(b)


class TestModel:
    def test_targeted_rule_must_fit_mesh(self):
        rules = parse_sensor_spec("stuck@r9.temp=0.5")
        with pytest.raises(ValueError, match="only 9 routers"):
            SensorFaultModel(rules, num_routers=9)
        SensorFaultModel(rules, num_routers=10)  # r9 exists in a 10-router mesh

    def test_stuck_wedges_the_sensor(self):
        model = SensorFaultModel(parse_sensor_spec("stuck@r0.temp=88"), 4)
        obs = make_obs(0)
        events = model.corrupt(obs, now=1000)
        assert obs.temperature == 88.0
        assert ("stuck", "temp") in events
        other = make_obs(1)
        assert model.corrupt(other, now=1000) == []
        assert other.temperature == 60.0

    def test_stuck_overrides_noise(self):
        spec = "noise@5.0:temp;stuck@r0.temp=70"
        model = SensorFaultModel(parse_sensor_spec(spec), 2, seed=3)
        obs = make_obs(0)
        model.corrupt(obs, now=0)
        assert obs.temperature == 70.0  # wedged sensors do not jitter

    def test_drop_removes_the_reading(self):
        model = SensorFaultModel(parse_sensor_spec("drop@1.0:util"), 2)
        obs = make_obs(0)
        events = model.corrupt(obs, now=0)
        assert obs.input_utilization is None
        assert obs.output_utilization is None
        assert obs.occupied_vcs is not None  # other fields untouched
        assert events == [("drop", "util")]

    def test_noise_perturbs_every_element(self):
        model = SensorFaultModel(parse_sensor_spec("noise@0.5:nack"), 2, seed=1)
        obs = make_obs(0)
        before = list(obs.input_nack_rate)
        model.corrupt(obs, now=0)
        assert obs.input_nack_rate != before
        assert len(obs.input_nack_rate) == 5

    def test_stale_replays_last_reported_reading(self):
        model = SensorFaultModel(parse_sensor_spec("stale@r0+500:2"), 2)
        first = make_obs(0, temp=55.0)
        model.corrupt(first, now=250)  # before onset: untouched, snapshotted
        assert first.temperature == 55.0
        frozen = make_obs(0, temp=90.0)
        model.corrupt(frozen, now=500)
        assert frozen.temperature == 55.0  # replays the pre-onset reading
        again = make_obs(0, temp=95.0)
        model.corrupt(again, now=750)
        assert again.temperature == 55.0  # second held epoch
        fresh = make_obs(0, temp=99.0)
        model.corrupt(fresh, now=1000)
        assert fresh.temperature == 99.0  # window exhausted

    def test_injected_tallies(self):
        model = SensorFaultModel(parse_sensor_spec("drop@1.0:temp;stuck@r0.buf=3"), 2)
        model.corrupt(make_obs(0), now=0)
        model.corrupt(make_obs(1), now=0)
        assert model.injected == {"drop": 2, "stuck": 1}


class TestDeterminism:
    SPEC = "drop@0.3:util;noise@0.1:nack;stuck@r1.temp=0.9;stale@r0+750:3"

    def _stream(self, model, epochs=8, routers=4):
        out = []
        for e in range(epochs):
            for r in range(routers):
                obs = make_obs(r, temp=50.0 + e + r)
                model.corrupt(obs, now=e * 250)
                out.append((obs.temperature, obs.input_utilization,
                            obs.input_nack_rate))
        return out

    def test_same_seed_same_stream(self):
        rules = parse_sensor_spec(self.SPEC)
        a = SensorFaultModel(rules, 4, seed=11)
        b = SensorFaultModel(rules, 4, seed=11)
        assert self._stream(a) == self._stream(b)

    def test_different_seed_diverges(self):
        rules = parse_sensor_spec(self.SPEC)
        a = SensorFaultModel(rules, 4, seed=11)
        b = SensorFaultModel(rules, 4, seed=12)
        assert self._stream(a) != self._stream(b)

    def test_pickle_mid_campaign_resumes_identically(self):
        rules = parse_sensor_spec(self.SPEC)
        model = SensorFaultModel(rules, 4, seed=5)
        self._stream(model, epochs=3)
        clone = pickle.loads(pickle.dumps(model))
        assert self._stream(model, epochs=5) == self._stream(clone, epochs=5)
        assert model.injected == clone.injected

    def test_fixed_rng_draws_regardless_of_activation(self):
        # A drop rule draws exactly one uniform per corrupt() call whether
        # or not it fires, so downstream draws stay aligned.
        rules = parse_sensor_spec("drop@0.5:temp")
        model = SensorFaultModel(rules, 2, seed=9)
        for r in range(2):
            model.corrupt(make_obs(r), now=0)
        reference = random.Random(9)
        reference.random()
        reference.random()
        assert model.rng.getstate() == reference.getstate()
