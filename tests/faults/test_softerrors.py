"""Unit tests for the SEU model: grammar, determinism, one-shot rules.

The determinism contract under test is the same one the sensor model
carries: one master-RNG token per rule per epoch *unconditionally*, all
variable-count sampling on throwaway sub-RNGs, so the upset stream is a
pure function of (spec, seed, epoch sequence) and pickles mid-campaign.
"""

import copy
import pickle
import random

import pytest

from repro.core.qlearning import QLearningAgent, QTableStorage
from repro.faults.softerrors import (
    MODE_COPIES,
    MODE_REGISTER_BITS,
    SoftErrorModel,
    SoftErrorRule,
    _poisson,
    format_soft_error_spec,
    parse_soft_error_spec,
)


def _storage(num_rows=6, num_actions=4, ecc=True, seed=0):
    """A small bound storage with deterministic contents."""
    agent = QLearningAgent(num_actions=num_actions, rng=random.Random(seed))
    storage = QTableStorage(ecc=ecc)
    agent.attach_storage(storage)
    rng = random.Random(seed)
    for row in range(num_rows):
        for action in range(num_actions):
            agent.update((row,), action, rng.uniform(-2, 2), (row,))
    return storage


class TestGrammar:
    def test_round_trip_canonical_order(self):
        spec = "burst@800:4;qtable@1e-6;mode@r3+500"
        rules = parse_soft_error_spec(spec)
        assert format_soft_error_spec(rules) == "qtable@1e-06;mode@r3+500;burst@800:4"
        assert parse_soft_error_spec(format_soft_error_spec(rules)) == rules

    def test_empty_spec(self):
        assert parse_soft_error_spec("") == []

    @pytest.mark.parametrize(
        "bad",
        [
            "qtable@0",        # rate must be > 0
            "qtable@1.5",      # rate must be <= 1
            "mode@3+500",      # router must be r<N>
            "mode@r3+x",       # cycle must be an int
            "burst@800:0",     # count must be positive
            "burst@800",       # missing count
            "flux@1",          # unknown kind
        ],
    )
    def test_malformed_clauses(self, bad):
        with pytest.raises(ValueError, match="bad soft-error clause"):
            parse_soft_error_spec(bad)

    def test_rule_equality_and_hash_by_format(self):
        a = SoftErrorRule("burst", cycle=800, count=4)
        b = parse_soft_error_spec("burst@800:4")[0]
        assert a == b
        assert len({a, b}) == 1


class TestPoisson:
    def test_zero_mean(self):
        assert _poisson(random.Random(0), 0.0) == 0

    def test_small_mean_is_deterministic(self):
        assert _poisson(random.Random(7), 2.0) == _poisson(random.Random(7), 2.0)

    def test_large_mean_gaussian_branch(self):
        value = _poisson(random.Random(1), 100.0)
        assert 50 <= value <= 150


class TestModelValidation:
    def test_mode_rule_router_bounds(self):
        rules = parse_soft_error_spec("mode@r9+0")
        with pytest.raises(ValueError, match="only 9 routers"):
            SoftErrorModel(rules, num_routers=9)

    def test_needs_routers(self):
        with pytest.raises(ValueError, match="at least one router"):
            SoftErrorModel([], num_routers=0)


class TestDeterminism:
    SPEC = "qtable@1e-4;mode@r2+500;burst@900:3"

    def _run(self, model, storages, epochs=6, epoch_cycles=250):
        mode_flips = []
        out = []
        for e in range(1, epochs + 1):
            out.append(
                model.inject(
                    e * epoch_cycles, storages,
                    flip_mode=lambda r, b, c: mode_flips.append((r, b, c)),
                )
            )
        return out, mode_flips

    def test_same_seed_same_stream(self):
        rules = parse_soft_error_spec(self.SPEC)
        s1, s2 = _storage(), _storage()
        m1 = SoftErrorModel(rules, num_routers=9, seed=11)
        m2 = SoftErrorModel(rules, num_routers=9, seed=11)
        out1, flips1 = self._run(m1, [s1])
        out2, flips2 = self._run(m2, [s2])
        assert out1 == out2
        assert flips1 == flips2
        assert m1.injected == m2.injected
        assert s1.to_state() == s2.to_state()

    def test_one_shot_rules_fire_exactly_once(self):
        rules = parse_soft_error_spec("mode@r2+500;burst@900:3")
        storage = _storage()
        model = SoftErrorModel(rules, num_routers=9, seed=3)
        out, flips = self._run(model, [storage], epochs=8)
        assert sum(o["mode"] for o in out) == 1
        assert sum(o["burst"] for o in out) == 3
        assert len(flips) == 1
        router, bit, copy_id = flips[0]
        assert router == 2
        assert 0 <= bit < MODE_REGISTER_BITS
        assert 0 <= copy_id < MODE_COPIES
        # The mode rule became due at cycle 500 (epoch 2 at 250 c/epoch).
        assert out[0]["mode"] == 0 and out[1]["mode"] == 1

    def test_token_draw_is_unconditional(self):
        """A campaign whose one-shots all fired must keep consuming one
        token per rule per epoch: the qtable flips after the one-shots
        expire must match a fresh model fast-forwarded the same way."""
        rules = parse_soft_error_spec(self.SPEC)
        m1 = SoftErrorModel(rules, num_routers=9, seed=5)
        m2 = SoftErrorModel(rules, num_routers=9, seed=5)
        s1, s2 = _storage(), _storage()
        # m1 runs with storages all along; m2 runs the first 4 epochs
        # against *empty* storages (no bits to flip) — the stream of
        # master tokens must stay aligned regardless.
        empty_agent = QLearningAgent(num_actions=4)
        empty = QTableStorage()
        empty_agent.attach_storage(empty)
        for e in range(1, 5):
            m1.inject(e * 250, [s1])
            m2.inject(e * 250, [empty])
        r1 = m1.inject(5 * 250, [s1])
        r2 = m2.inject(5 * 250, [s1])
        assert r1["qtable"] == r2["qtable"]

    def test_pickle_mid_campaign_resumes_identically(self):
        rules = parse_soft_error_spec(self.SPEC)
        storage = _storage()
        model = SoftErrorModel(rules, num_routers=9, seed=7)
        for e in range(1, 4):
            model.inject(e * 250, [storage])
        clone_model = pickle.loads(pickle.dumps(model))
        clone_storage = copy.deepcopy(storage)
        for e in range(4, 8):
            a = model.inject(e * 250, [storage])
            b = clone_model.inject(e * 250, [clone_storage])
            assert a == b
        assert storage.to_state() == clone_storage.to_state()

    def test_spec_property_is_canonical(self):
        model = SoftErrorModel(parse_soft_error_spec(self.SPEC), num_routers=9)
        assert model.spec == "qtable@0.0001;mode@r2+500;burst@900:3"


class TestWordClassification:
    def test_burst_hits_classified_single_vs_multi(self):
        storage = _storage(num_rows=1, num_actions=1)  # one 39-bit word
        rules = parse_soft_error_spec("burst@0:5")
        model = SoftErrorModel(rules, num_routers=9, seed=0)
        stats = model.inject(250, [storage])
        assert stats["burst"] == 5
        # All five flips landed in the only word.
        assert stats["words_single"] == 0
        assert stats["words_multi"] == 1
