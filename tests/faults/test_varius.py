"""Tests for the VARIUS-style timing-error model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import VariusModel, VariusParams, gaussian_tail


class TestGaussianTail:
    def test_symmetry_point(self):
        assert abs(gaussian_tail(0.0) - 0.5) < 1e-12

    def test_known_values(self):
        assert abs(gaussian_tail(1.645) - 0.05) < 1e-3
        assert abs(gaussian_tail(3.09) - 0.001) < 1e-4

    def test_monotone_decreasing(self):
        values = [gaussian_tail(z) for z in (-2, -1, 0, 1, 2, 3)]
        assert values == sorted(values, reverse=True)


class TestParams:
    def test_rejects_bad_nominal_delay(self):
        with pytest.raises(ValueError):
            VariusParams(nominal_delay=1.2)
        with pytest.raises(ValueError):
            VariusParams(nominal_delay=0.0)

    def test_rejects_bad_sigma(self):
        with pytest.raises(ValueError):
            VariusParams(sigma=0.0)


class TestModel:
    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            VariusModel(0, 4)

    def test_systematic_field_is_near_one(self):
        model = VariusModel(8, 8, seed=3)
        values = [model.systematic_multiplier(n) for n in range(64)]
        assert all(0.85 < v < 1.15 for v in values)
        mean = sum(values) / len(values)
        assert abs(mean - 1.0) < 0.02

    def test_systematic_field_is_deterministic_per_seed(self):
        a = VariusModel(4, 4, seed=7)
        b = VariusModel(4, 4, seed=7)
        c = VariusModel(4, 4, seed=8)
        assert [a.systematic_multiplier(n) for n in range(16)] == [
            b.systematic_multiplier(n) for n in range(16)
        ]
        assert [a.systematic_multiplier(n) for n in range(16)] != [
            c.systematic_multiplier(n) for n in range(16)
        ]

    def test_spatial_correlation(self):
        """Smoothing makes neighbours more alike than distant nodes."""
        model = VariusModel(8, 8, seed=1)
        neighbour_gap = []
        distant_gap = []
        for y in range(8):
            for x in range(7):
                a = model.systematic_multiplier(y * 8 + x)
                b = model.systematic_multiplier(y * 8 + x + 1)
                neighbour_gap.append(abs(a - b))
        for n in range(32):
            distant_gap.append(
                abs(model.systematic_multiplier(n) - model.systematic_multiplier(63 - n))
            )
        assert sum(neighbour_gap) / len(neighbour_gap) < sum(distant_gap) / len(distant_gap)

    def test_calibration_anchors(self):
        """Defaults span ~2e-4 at 50C to ~0.12 at 90C (see module doc)."""
        params = VariusParams(sigma_systematic=0.0)  # isolate nominal device
        model = VariusModel(1, 1, params=params)
        p50 = model.timing_error_probability(0, 50.0)
        p75 = model.timing_error_probability(0, 75.0)
        p90 = model.timing_error_probability(0, 90.0)
        assert 1e-5 < p50 < 1e-3
        assert 0.005 < p75 < 0.05
        assert 0.05 < p90 < 0.20

    def test_probability_monotone_in_temperature(self):
        model = VariusModel(2, 2, seed=0)
        probs = [model.timing_error_probability(0, t) for t in range(50, 105, 5)]
        assert probs == sorted(probs)

    def test_relaxation_collapses_probability(self):
        model = VariusModel(1, 1)
        hot = model.timing_error_probability(0, 100.0)
        relaxed = model.timing_error_probability(0, 100.0, relax_cycles=2)
        assert relaxed < hot * 1e-6

    def test_rejects_negative_relax(self):
        with pytest.raises(ValueError):
            VariusModel(1, 1).timing_error_probability(0, 60.0, relax_cycles=-1)

    def test_low_voltage_increases_delay(self):
        model = VariusModel(1, 1)
        assert model.mean_delay(0, 60.0, voltage=0.9) > model.mean_delay(0, 60.0)

    def test_overdrive_reduces_delay(self):
        model = VariusModel(1, 1)
        assert model.mean_delay(0, 60.0, voltage=1.1) < model.mean_delay(0, 60.0)

    def test_rejects_subthreshold_voltage(self):
        with pytest.raises(ValueError):
            VariusModel(1, 1).mean_delay(0, 60.0, voltage=0.2)

    def test_vector_interface(self):
        model = VariusModel(2, 2)
        probs = model.error_probabilities([50.0, 60.0, 70.0, 80.0])
        assert len(probs) == 4
        with pytest.raises(ValueError):
            model.error_probabilities([50.0])


@settings(max_examples=100)
@given(
    t=st.floats(min_value=40.0, max_value=110.0),
    relax=st.integers(min_value=0, max_value=3),
)
def test_property_probability_is_valid_and_relaxation_helps(t, relax):
    model = VariusModel(2, 2, seed=5)
    p = model.timing_error_probability(1, t, relax_cycles=relax)
    assert 0.0 <= p <= 1.0
    assert p <= model.timing_error_probability(1, t, relax_cycles=0)
