"""Tests for the runtime fault injector."""

import random
import warnings

import pytest

from repro.faults import FaultInjector, VariusModel
from repro.noc import MeshTopology, Network


def make_setup(size=4):
    net = Network(MeshTopology(size, size), rng=random.Random(0))
    varius = VariusModel(size, size, seed=2)
    return net, varius


class TestConstruction:
    def test_rejects_grid_mismatch(self):
        net, _ = make_setup(4)
        with pytest.raises(ValueError):
            FaultInjector(net, VariusModel(2, 2))

    def test_rejects_negative_scale(self):
        net, varius = make_setup()
        with pytest.raises(ValueError):
            FaultInjector(net, varius, error_scale=-1.0)


class TestRefresh:
    def test_refresh_applies_to_every_channel(self):
        net, varius = make_setup()
        injector = FaultInjector(net, varius)
        injector.refresh([90.0] * 16)
        for _, model in net.channel_models():
            assert model.event_probability > 0.0
            assert 0.0 <= model.relax_factor < 1e-4

    def test_hotter_die_means_more_errors(self):
        net, varius = make_setup()
        injector = FaultInjector(net, varius)
        injector.refresh([55.0] * 16)
        cool = injector.mean_probability()
        injector.refresh([95.0] * 16)
        hot = injector.mean_probability()
        assert hot > 10 * cool

    def test_probability_tracks_upstream_router(self):
        net, varius = make_setup()
        injector = FaultInjector(net, varius)
        temps = [50.0] * 16
        temps[5] = 100.0
        injector.refresh(temps)
        hot_channels = {k: p for k, p in injector.current.items() if k[0] == 5}
        cold_channels = {k: p for k, p in injector.current.items() if k[0] == 10}
        assert min(hot_channels.values()) > max(cold_channels.values())

    def test_error_scale_multiplies(self):
        net, varius = make_setup()
        plain = FaultInjector(net, varius)
        plain.refresh([80.0] * 16)
        baseline = plain.mean_probability()
        scaled = FaultInjector(net, varius, error_scale=3.0)
        scaled.refresh([80.0] * 16)
        assert abs(scaled.mean_probability() - 3.0 * baseline) < 1e-9

    def test_scale_clamps_at_one(self):
        net, varius = make_setup()
        injector = FaultInjector(net, varius, error_scale=1e9)
        with pytest.warns(RuntimeWarning):
            injector.refresh([100.0] * 16)
        assert max(injector.current.values()) <= 1.0

    def test_rejects_wrong_temperature_count(self):
        net, varius = make_setup()
        with pytest.raises(ValueError):
            FaultInjector(net, varius).refresh([50.0] * 3)


class TestSaturationAndClamp:
    @staticmethod
    def _patched(injector, p, p_relaxed):
        def fake(node, temperature, voltage=None, relax_cycles=0):
            return p_relaxed if relax_cycles else p

        injector.varius.timing_error_probability = fake
        return injector

    def test_saturation_warns_once_and_counts(self):
        net, varius = make_setup()
        injector = FaultInjector(net, varius, error_scale=1e9)
        with pytest.warns(RuntimeWarning, match="saturated"):
            injector.refresh([100.0] * 16)
        assert injector.saturation_events == len(net.channels)
        before = injector.saturation_events
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a second warning would raise
            injector.refresh([100.0] * 16)
        assert injector.saturation_events == 2 * before
        assert max(injector.current.values()) == 1.0

    def test_no_saturation_no_warning(self):
        net, varius = make_setup()
        injector = FaultInjector(net, varius)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            injector.refresh([80.0] * 16)
        assert injector.saturation_events == 0

    def test_relax_factor_clamped_to_one(self):
        # Pathological VARIUS corner: relaxing *raises* the probability.
        net, varius = make_setup()
        injector = self._patched(FaultInjector(net, varius), p=0.1, p_relaxed=0.5)
        injector.refresh([80.0] * 16)
        for _, model in net.channel_models():
            assert model.relax_factor == 1.0

    def test_relax_factor_floor_at_zero(self):
        net, varius = make_setup()
        injector = self._patched(FaultInjector(net, varius), p=0.1, p_relaxed=-0.5)
        injector.refresh([80.0] * 16)
        for _, model in net.channel_models():
            assert model.relax_factor == 0.0

    def test_zero_probability_means_zero_relax(self):
        net, varius = make_setup()
        injector = self._patched(FaultInjector(net, varius), p=0.0, p_relaxed=0.3)
        injector.refresh([80.0] * 16)
        for _, model in net.channel_models():
            assert model.event_probability == 0.0
            assert model.relax_factor == 0.0


class TestUniform:
    def test_set_uniform(self):
        net, varius = make_setup()
        injector = FaultInjector(net, varius)
        injector.set_uniform(0.07)
        assert all(p == 0.07 for p in injector.current.values())
        for _, model in net.channel_models():
            assert model.event_probability == 0.07

    def test_rejects_invalid_probability(self):
        net, varius = make_setup()
        with pytest.raises(ValueError):
            FaultInjector(net, varius).set_uniform(1.5)

    def test_mean_probability_empty(self):
        net, varius = make_setup()
        assert FaultInjector(net, varius).mean_probability() == 0.0
