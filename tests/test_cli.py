"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main, make_policy


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.design == "rl"
        assert args.benchmark == "canneal"
        assert args.width == 4

    def test_sweep_rates_parsing(self):
        args = build_parser().parse_args(["sweep", "--rates", "0.01,0.02"])
        assert args.rates == "0.01,0.02"


class TestMakePolicy:
    def test_all_designs(self):
        for name in ("crc", "arq_ecc", "dt", "rl"):
            assert make_policy(name).profile.name in ("crc", "arq_ecc", "dt", "rl")

    def test_unknown_design(self):
        with pytest.raises(ValueError, match="unknown design"):
            make_policy("fpga")


class TestCommands:
    def _fast(self, extra):
        return extra + [
            "--width", "3", "--height", "3",
            "--epoch", "100", "--pretrain", "1200",
            "--warmup", "200", "--trace-cycles", "400",
        ]

    def test_run_json(self, capsys):
        code = main(self._fast(["run", "--design", "crc", "--benchmark", "swaptions", "--json"]))
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["design"] == "crc"
        assert payload["packets_delivered"] > 0

    def test_run_text(self, capsys):
        code = main(self._fast(["run", "--design", "arq_ecc", "--benchmark", "swaptions"]))
        assert code == 0
        out = capsys.readouterr().out
        assert "mean_latency" in out

    def test_run_profile(self, capsys):
        code = main(self._fast(
            ["run", "--design", "crc", "--benchmark", "swaptions", "--profile"]
        ))
        assert code == 0
        err = capsys.readouterr().err
        assert "[profile] cycle kernel: fast" in err
        assert "channel_visits" in err
        assert "fast-forwarded" in err

    def test_run_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            main(self._fast(["run", "--benchmark", "doom"]))

    def test_compare_text(self, capsys):
        code = main(self._fast(["compare", "--benchmark", "swaptions"]))
        assert code == 0
        out = capsys.readouterr().out
        for design in ("crc", "arq_ecc", "dt", "rl"):
            assert design in out

    def test_sweep_json(self, capsys):
        code = main(
            self._fast(["sweep", "--design", "crc", "--rates", "0.005,0.01", "--span", "400", "--json", "--no-cache"])
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 2
        assert payload[0]["rate"] == 0.005
        assert payload[0]["latency"] > 0
        # Higher load never reduces latency on a sane sweep.
        assert payload[1]["latency"] >= payload[0]["latency"] * 0.8


class TestChaosCommand:
    def _argv(self, cache_dir, extra=()):
        return [
            "chaos", "--routings", "xy,adaptive",
            "--fault-specs", "link@200:5E",
            "--width", "4", "--height", "4",
            "--rate", "0.05", "--span", "800",
            "--cache-dir", str(cache_dir),
            *extra,
        ]

    def test_rejects_unknown_routing(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown routing"):
            main(self._argv(tmp_path, ["--routings", "zigzag"]))

    def test_rejects_bad_fault_spec(self, tmp_path):
        with pytest.raises(SystemExit, match="bad fault clause"):
            main(self._argv(tmp_path, ["--fault-specs", "link@500:5Q"]))

    def test_text_table(self, capsys, tmp_path):
        assert main(self._argv(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "routing" in out and "delivered" in out
        assert "adaptive" in out and "xy" in out
        assert "link@200:5E" in out

    def test_json_payload(self, capsys, tmp_path):
        assert main(self._argv(tmp_path, ["--json"])) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [row["routing"] for row in payload] == ["xy", "adaptive"]
        for row in payload:
            assert row["fault_spec"] == "link@200:5E"
            assert row["link_kills"] == 1
            assert row["diagnosis"] is None
            assert 0.0 < row["delivered_fraction"] <= 1.0

    def test_healthy_baseline_spec(self, capsys, tmp_path):
        argv = self._argv(tmp_path, ["--json"])
        argv[argv.index("link@200:5E")] = ""
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        for row in payload:
            assert row["fault_spec"] == ""
            assert row["link_kills"] == 0
            assert row["delivered_fraction"] == 1.0


class TestSensorChaosCommand:
    def _argv(self, cache_dir, extra=()):
        return [
            "chaos", "--sensor-spec", "drop@0.3:util;stuck@r2.temp=0.9",
            "--hysteresis", "2",
            "--width", "3", "--height", "3",
            "--epoch", "100", "--pretrain", "1500", "--warmup", "300",
            "--rate", "0.05", "--span", "600",
            "--cache-dir", str(cache_dir),
            *extra,
        ]

    def test_rejects_bad_sensor_spec(self, tmp_path):
        with pytest.raises(SystemExit, match="bad sensor clause 'drop@2:util'"):
            main(self._argv(tmp_path, ["--sensor-spec", "drop@2:util"]))

    def test_rejects_unknown_design(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown design"):
            main(self._argv(tmp_path, ["--designs", "fpga"]))

    def test_json_payload(self, capsys, tmp_path):
        assert main(self._argv(tmp_path, ["--json"])) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 1
        row = payload[0]
        assert row["design"] == "rl"
        assert row["sensor_spec"] == "drop@0.3:util;stuck@r2.temp=0.9"
        assert row["defenses"] is True
        assert row["diagnosis"] is None
        assert row["delivered_fraction"] >= 0.95
        assert row["injected"]["drop"] > 0
        assert row["rejected_observations"] > 0

    def test_text_table(self, capsys, tmp_path):
        assert main(self._argv(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "sensor spec" in out and "rejected" in out
        assert "drop@0.3:util" in out and "ok" in out


class TestSoftErrorChaosCommand:
    def _argv(self, cache_dir, extra=()):
        return [
            "chaos", "--soft-error-spec", "qtable@5e-4;mode@r4+1900",
            "--width", "3", "--height", "3",
            "--epoch", "100", "--pretrain", "1500", "--warmup", "300",
            "--rate", "0.05", "--span", "600",
            "--cache-dir", str(cache_dir),
            *extra,
        ]

    def test_rejects_bad_soft_error_spec(self, tmp_path):
        with pytest.raises(
            SystemExit, match="bad soft-error clause 'qtable@2'"
        ):
            main(self._argv(tmp_path, ["--soft-error-spec", "qtable@2"]))

    def test_json_payload(self, capsys, tmp_path):
        assert main(self._argv(tmp_path, ["--json"])) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 1
        row = payload[0]
        assert row["design"] == "rl"
        assert row["soft_error_spec"] == "qtable@5e-4;mode@r4+1900"
        assert row["ecc"] is True
        assert row["diagnosis"] is None
        assert row["delivered_fraction"] >= 0.95
        assert row["injected"]["qtable"] > 0
        assert row["corrected"] > 0

    def test_no_ecc_flag_disables_correction(self, capsys, tmp_path):
        assert main(self._argv(tmp_path, ["--no-ecc", "--json"])) == 0
        row = json.loads(capsys.readouterr().out)[0]
        assert row["ecc"] is False
        assert row["corrected"] == 0
        assert row["injected"]["qtable"] > 0

    def test_text_table(self, capsys, tmp_path):
        assert main(self._argv(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "soft-error spec" in out and "corr" in out
        assert "qtable@5e-4" in out and "ok" in out


class TestCampaignCommand:
    def _argv(self, tmp_path, extra=()):
        return [
            "campaign", "--benchmarks", "swaptions,blackscholes",
            "--designs", "crc,dt",
            "--width", "3", "--height", "3",
            "--epoch", "100", "--pretrain", "1200",
            "--warmup", "200", "--trace-cycles", "300",
            "--cache-dir", str(tmp_path / "cache"),
            "--artifact-dir", str(tmp_path / "artifacts"),
            *extra,
        ]

    def test_rejects_unknown_benchmark(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown benchmark"):
            main(self._argv(tmp_path, ["--benchmarks", "doom"]))

    def test_rejects_unknown_design(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown design"):
            main(self._argv(tmp_path, ["--designs", "fpga"]))

    def test_json_report_and_warm_rerun(self, capsys, tmp_path):
        assert main(self._argv(tmp_path, ["--json"])) == 0
        captured = capsys.readouterr()
        assert "1 artifact(s) built, 0 reused" in captured.err
        report = json.loads(captured.out)
        assert report["schema"] == 1
        assert report["benchmarks"] == ["blackscholes", "swaptions"]
        assert report["designs"] == ["crc", "dt"]
        for figure in report["figures"].values():
            assert figure["geomean"]["crc"] == pytest.approx(1.0)

        assert main(self._argv(tmp_path, ["--json"])) == 0
        captured = capsys.readouterr()
        assert "0 artifact(s) built, 1 reused" in captured.err
        assert "0 cell(s) simulated, 4 from cache" in captured.err
        assert json.loads(captured.out) == report

    def test_markdown_output_and_report_files(self, capsys, tmp_path):
        report_json = tmp_path / "report.json"
        report_md = tmp_path / "report.md"
        argv = self._argv(tmp_path, [
            "--report-json", str(report_json), "--report-md", str(report_md),
        ])
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "| Figure | Direction | crc | dt |" in out
        assert "| **geomean** |" in out
        assert json.load(report_json.open())["schema"] == 1
        assert report_md.read_text() in out


class TestSpecValidation:
    """Malformed grammars exit with one line naming the bad clause."""

    def test_run_rejects_bad_fault_spec(self):
        with pytest.raises(SystemExit, match=r"--fault-spec: bad fault clause"):
            main(["run", "--fault-spec", "link@500:5Q"])

    def test_run_rejects_bad_soft_error_spec(self):
        with pytest.raises(
            SystemExit, match=r"--soft-error-spec: bad soft-error clause"
        ):
            main(["run", "--soft-error-spec", "qtable@0"])

    def test_run_rejects_bad_sensor_spec(self):
        with pytest.raises(
            SystemExit, match=r"--sensor-spec: bad sensor clause 'noise@0:nack'"
        ):
            main(["run", "--sensor-spec", "noise@0:nack"])

    def test_chaos_names_the_flag(self, tmp_path):
        with pytest.raises(SystemExit, match=r"--fault-specs: bad fault clause"):
            main(["chaos", "--fault-specs", "meteor@1:2",
                  "--cache-dir", str(tmp_path)])


class TestBenchCommand:
    _ARGS = ["bench", "--quick", "--scenarios", "saturated", "--width", "3", "--height", "3"]

    def test_report_and_payload(self, capsys):
        assert main(self._ARGS + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        row = payload["result"]["scenarios"]["saturated"]
        # run_bench itself enforces the digest equality; spot-check shape.
        assert row["fast"]["digest"] == row["naive"]["digest"]
        assert row["fast"]["cycles_per_second"] > 0
        assert payload["result"]["speedups"]["saturated"] == row["speedup"]

    def test_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit, match="unknown scenario"):
            main(["bench", "--quick", "--scenarios", "blackhole"])

    def test_output_appends_trajectory(self, capsys, tmp_path):
        out_file = tmp_path / "BENCH_kernel.json"
        assert main(self._ARGS + ["--output", str(out_file), "--label", "first"]) == 0
        capsys.readouterr()
        assert main(self._ARGS + ["--output", str(out_file), "--label", "second"]) == 0
        capsys.readouterr()
        trajectory = json.loads(out_file.read_text())
        assert [e["label"] for e in trajectory["entries"]] == ["first", "second"]

    def test_check_against_self_passes(self, capsys, tmp_path):
        out_file = tmp_path / "BENCH_kernel.json"
        assert main(self._ARGS + ["--output", str(out_file)]) == 0
        capsys.readouterr()
        # Immediately re-checking against the entry just written passes
        # with the generous default threshold.
        assert main(self._ARGS + ["--check", str(out_file), "--threshold", "0.9"]) == 0

    def test_check_detects_regression(self, capsys, tmp_path):
        out_file = tmp_path / "BENCH_kernel.json"
        baseline = {
            "version": 1,
            "entries": [{"label": "impossible", "speedups": {"saturated": 10_000.0}}],
        }
        out_file.write_text(json.dumps(baseline))
        assert main(self._ARGS + ["--check", str(out_file)]) == 1
        err = capsys.readouterr().err
        assert "REGRESSION" in err

    def test_check_with_no_baseline_is_lenient(self, capsys, tmp_path):
        out_file = tmp_path / "BENCH_kernel.json"
        out_file.write_text(json.dumps({"version": 1, "entries": []}))
        assert main(self._ARGS + ["--check", str(out_file)]) == 0
        assert "nothing to check" in capsys.readouterr().err


class TestSweepEndToEnd:
    """The sweep subcommand through the parallel cached runner."""

    def _argv(self, cache_dir, extra=()):
        return [
            "sweep", "--design", "crc", "--pattern", "uniform",
            "--rates", "0.005,0.01",
            "--width", "2", "--height", "2",
            "--epoch", "100", "--pretrain", "500",
            "--warmup", "100", "--span", "300",
            "--json", "--cache-dir", str(cache_dir),
            *extra,
        ]

    def test_sweep_on_2x2_mesh(self, capsys, tmp_path):
        assert main(self._argv(tmp_path)) == 0
        out, err = capsys.readouterr()
        payload = json.loads(out)
        assert [row["rate"] for row in payload] == [0.005, 0.01]
        assert all(row["latency"] > 0 for row in payload)
        assert all(not row["saturated"] for row in payload)
        assert "2 point(s) simulated, 0 from cache" in err

    def test_repeat_completes_from_cache(self, capsys, tmp_path):
        assert main(self._argv(tmp_path)) == 0
        first = capsys.readouterr().out
        assert main(self._argv(tmp_path)) == 0
        out, err = capsys.readouterr()
        assert out == first
        assert "0 point(s) simulated, 2 from cache" in err

    def test_parallel_matches_serial(self, capsys, tmp_path):
        assert main(self._argv(tmp_path / "serial", ["--jobs", "1"])) == 0
        serial = capsys.readouterr().out
        assert main(self._argv(tmp_path / "parallel", ["--jobs", "2"])) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_text_output_marks_saturation_column(self, capsys, tmp_path):
        argv = self._argv(tmp_path)
        argv.remove("--json")
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "rate" in out and "latency" in out and "throughput" in out


class TestObservabilityCli:
    """--trace/--metrics flags and the ``trace`` inspection subcommand."""

    def _run_argv(self, tmp_path, extra=()):
        return [
            "run", "--design", "rl", "--benchmark", "swaptions",
            "--width", "3", "--height", "3",
            "--epoch", "100", "--pretrain", "1200",
            "--warmup", "200", "--trace-cycles", "300",
            "--fault-spec", "router@800:4",
            "--trace", str(tmp_path / "run.jsonl"),
            *extra,
        ]

    def test_run_exports_trace_and_metrics(self, capsys, tmp_path):
        argv = self._run_argv(
            tmp_path, ["--metrics", str(tmp_path / "m.csv"), "--json"]
        )
        assert main(argv) == 0
        out, err = capsys.readouterr()
        assert json.loads(out)["design"] == "rl"
        assert "event(s)" in err

        from repro.obs import read_trace_jsonl

        events = read_trace_jsonl(str(tmp_path / "run.jsonl"))
        categories = {ev.category for ev in events}
        assert {"mode", "rl", "fault"} <= categories
        header = (tmp_path / "m.csv").read_text().splitlines()[0]
        assert header.startswith("cycle,")
        assert "net.packets_delivered" in header

    def test_trace_filter_requires_trace(self, tmp_path):
        with pytest.raises(SystemExit, match="--trace-filter requires --trace"):
            main([
                "run", "--design", "crc", "--benchmark", "swaptions",
                "--trace-filter", "mode",
            ])

    def test_trace_filter_rejects_unknown_category(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown trace categories"):
            main(self._run_argv(tmp_path, ["--trace-filter", "bogus"]))

    def test_trace_subcommand_summarizes(self, capsys, tmp_path):
        assert main(self._run_argv(tmp_path, ["--json"])) == 0
        capsys.readouterr()
        trace_file = str(tmp_path / "run.jsonl")

        assert main(["trace", trace_file]) == 0
        out = capsys.readouterr().out
        assert "event(s)" in out and "digest" in out

        assert main(["trace", trace_file, "--digest"]) == 0
        digest = capsys.readouterr().out.strip()
        assert len(digest) == 64

        assert main(["trace", trace_file, "--tail", "3", "--filter", "mode"]) == 0
        tail = capsys.readouterr().out
        assert "mode/transition" in tail

        assert main(["trace", trace_file, "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert all(row["category"] in (
            "mode", "rl", "fault", "watchdog", "reward", "retx", "checkpoint"
        ) for row in rows)

    def test_trace_subcommand_missing_file(self, tmp_path):
        with pytest.raises(SystemExit, match="no such trace file"):
            main(["trace", str(tmp_path / "absent.jsonl")])

    def _chaos_argv(self, tmp_path, extra=()):
        return [
            "chaos", "--routings", "adaptive",
            "--fault-specs", "link@200:5E",
            "--width", "4", "--height", "4",
            "--rate", "0.05", "--span", "800",
            "--cache-dir", str(tmp_path / "cache"),
            *extra,
        ]

    def test_chaos_trace_single_point(self, capsys, tmp_path):
        trace_file = tmp_path / "chaos.jsonl"
        argv = self._chaos_argv(tmp_path, ["--trace", str(trace_file), "--json"])
        assert main(argv) == 0
        out, err = capsys.readouterr()
        assert "traced; cache bypassed" in err
        payload = json.loads(out)
        assert payload[0]["link_kills"] == 1

        from repro.obs import read_trace_jsonl

        kinds = {f"{ev.category}/{ev.kind}" for ev in read_trace_jsonl(str(trace_file))}
        assert "fault/link_kill" in kinds
        assert "watchdog/check" in kinds

    def test_chaos_trace_rejects_grids(self, tmp_path):
        argv = self._chaos_argv(
            tmp_path,
            ["--routings", "xy,adaptive", "--trace", str(tmp_path / "t.jsonl")],
        )
        with pytest.raises(SystemExit, match="single-point"):
            main(argv)

    def test_sensor_chaos_trace_and_degradation_summary(self, capsys, tmp_path):
        """Traced sensor campaign emits sensor events; `repro trace`
        rolls them up into the degradation summary line."""
        trace_file = tmp_path / "sensor.jsonl"
        argv = [
            "chaos", "--sensor-spec", "drop@1.0:all",
            "--width", "3", "--height", "3",
            "--epoch", "100", "--pretrain", "1200", "--warmup", "200",
            "--rate", "0.05", "--span", "500",
            "--cache-dir", str(tmp_path / "cache"),
            "--trace", str(trace_file), "--trace-filter", "sensor", "--json",
        ]
        assert main(argv) == 0
        out, err = capsys.readouterr()
        assert "traced; cache bypassed" in err
        payload = json.loads(out)
        assert payload[0]["rejected_observations"] > 0
        assert payload[0]["quarantined_routers"] == list(range(9))

        assert main(["trace", str(trace_file)]) == 0
        summary = capsys.readouterr().out
        assert "sensor/reject" in summary
        assert "sensor/quarantine" in summary
        assert "degradation: 9 safe-mode entries" in summary
