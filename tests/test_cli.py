"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main, make_policy


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.design == "rl"
        assert args.benchmark == "canneal"
        assert args.width == 4

    def test_sweep_rates_parsing(self):
        args = build_parser().parse_args(["sweep", "--rates", "0.01,0.02"])
        assert args.rates == "0.01,0.02"


class TestMakePolicy:
    def test_all_designs(self):
        for name in ("crc", "arq_ecc", "dt", "rl"):
            assert make_policy(name).profile.name in ("crc", "arq_ecc", "dt", "rl")

    def test_unknown_design(self):
        with pytest.raises(ValueError, match="unknown design"):
            make_policy("fpga")


class TestCommands:
    def _fast(self, extra):
        return extra + [
            "--width", "3", "--height", "3",
            "--epoch", "100", "--pretrain", "1200",
            "--warmup", "200", "--trace-cycles", "400",
        ]

    def test_run_json(self, capsys):
        code = main(self._fast(["run", "--design", "crc", "--benchmark", "swaptions", "--json"]))
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["design"] == "crc"
        assert payload["packets_delivered"] > 0

    def test_run_text(self, capsys):
        code = main(self._fast(["run", "--design", "arq_ecc", "--benchmark", "swaptions"]))
        assert code == 0
        out = capsys.readouterr().out
        assert "mean_latency" in out

    def test_run_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            main(self._fast(["run", "--benchmark", "doom"]))

    def test_compare_text(self, capsys):
        code = main(self._fast(["compare", "--benchmark", "swaptions"]))
        assert code == 0
        out = capsys.readouterr().out
        for design in ("crc", "arq_ecc", "dt", "rl"):
            assert design in out

    def test_sweep_json(self, capsys):
        code = main(
            self._fast(["sweep", "--design", "crc", "--rates", "0.005,0.01", "--span", "400", "--json"])
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 2
        assert payload[0]["rate"] == 0.005
        assert payload[0]["latency"] > 0
        # Higher load never reduces latency on a sane sweep.
        assert payload[1]["latency"] >= payload[0]["latency"] * 0.8
