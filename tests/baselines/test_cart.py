"""Tests for the from-scratch CART regression tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.cart import RegressionTree


class TestValidation:
    def test_constructor_bounds(self):
        with pytest.raises(ValueError):
            RegressionTree(max_depth=0)
        with pytest.raises(ValueError):
            RegressionTree(min_samples_leaf=0)

    def test_fit_validates_shapes(self):
        tree = RegressionTree()
        with pytest.raises(ValueError):
            tree.fit([], [])
        with pytest.raises(ValueError):
            tree.fit([[1.0]], [1.0, 2.0])
        with pytest.raises(ValueError):
            tree.fit([[1.0], [1.0, 2.0]], [1.0, 2.0])
        with pytest.raises(ValueError):
            tree.fit([[], []], [1.0, 2.0])

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RegressionTree().predict([1.0])

    def test_predict_validates_width(self):
        tree = RegressionTree(min_samples_leaf=1).fit([[1.0], [2.0]], [0.0, 1.0])
        with pytest.raises(ValueError):
            tree.predict([1.0, 2.0])


class TestFitting:
    def test_constant_target_predicts_constant(self):
        tree = RegressionTree().fit([[float(i)] for i in range(30)], [5.0] * 30)
        assert tree.predict([3.0]) == 5.0
        assert tree.n_leaves == 1  # no split improves a constant target

    def test_perfect_step_function(self):
        x = [[float(i)] for i in range(40)]
        y = [0.0 if i < 20 else 1.0 for i in range(40)]
        tree = RegressionTree(min_samples_leaf=2).fit(x, y)
        assert tree.predict([5.0]) == pytest.approx(0.0)
        assert tree.predict([35.0]) == pytest.approx(1.0)
        assert tree.depth >= 1

    def test_selects_informative_feature(self):
        """Feature 1 carries the signal; feature 0 is noise."""
        rng = random.Random(0)
        x = [[rng.random(), rng.random()] for _ in range(200)]
        y = [1.0 if row[1] > 0.5 else 0.0 for row in x]
        tree = RegressionTree(max_depth=1, min_samples_leaf=5).fit(x, y)
        assert tree.root.feature == 1
        assert tree.root.threshold == pytest.approx(0.5, abs=0.08)

    def test_max_depth_respected(self):
        rng = random.Random(1)
        x = [[rng.random()] for _ in range(300)]
        y = [row[0] for row in x]
        tree = RegressionTree(max_depth=3, min_samples_leaf=1).fit(x, y)
        assert tree.depth <= 3

    def test_min_samples_leaf_respected(self):
        x = [[float(i)] for i in range(10)]
        y = [0.0] * 5 + [1.0] * 5
        tree = RegressionTree(max_depth=10, min_samples_leaf=5).fit(x, y)
        # Only one split possible: 5 | 5.
        assert tree.n_leaves <= 2

    def test_approximates_linear_function(self):
        x = [[i / 100.0] for i in range(100)]
        y = [2.0 * row[0] for row in x]
        tree = RegressionTree(max_depth=6, min_samples_leaf=2).fit(x, y)
        errors = [abs(tree.predict(row) - 2.0 * row[0]) for row in x]
        assert max(errors) < 0.2

    def test_predict_many(self):
        tree = RegressionTree(min_samples_leaf=1).fit([[0.0], [1.0]], [0.0, 1.0])
        assert tree.predict_many([[0.0], [1.0]]) == [
            tree.predict([0.0]),
            tree.predict([1.0]),
        ]


@settings(max_examples=60, deadline=None)
@given(
    data=st.lists(
        st.tuples(st.floats(-10, 10), st.floats(0, 1)), min_size=4, max_size=80
    )
)
def test_property_prediction_within_target_range(data):
    """Leaf means can never leave the convex hull of the targets."""
    x = [[a] for a, _ in data]
    y = [b for _, b in data]
    tree = RegressionTree(min_samples_leaf=2).fit(x, y)
    lo, hi = min(y), max(y)
    for row in x:
        assert lo - 1e-9 <= tree.predict(row) <= hi + 1e-9
