"""Tests for static baseline policies and the DT policy."""

import pytest

from repro.baselines import (
    DecisionTreePolicy,
    arq_ecc_policy,
    crc_policy,
)
from repro.core.modes import OperationMode
from repro.core.state import RouterObservation


def obs(error_probability=0.0, temperature=60.0, nack=0.0):
    return RouterObservation(
        router_id=0,
        occupied_vcs=[0] * 5,
        input_utilization=[0.05] * 5,
        output_utilization=[0.05] * 5,
        input_nack_rate=[nack] * 5,
        output_nack_rate=[nack] * 5,
        temperature=temperature,
        discrete=(0,),
        true_error_probability=error_probability,
    )


class TestStaticPolicies:
    def test_crc_always_mode_0(self):
        policy = crc_policy()
        assert policy.select(0, obs()) is OperationMode.MODE_0
        assert policy.select(63, obs(0.5, 100.0)) is OperationMode.MODE_0
        assert policy.profile.name == "crc"
        assert not policy.profile.has_ecc_hardware
        assert not policy.trainable

    def test_arq_ecc_always_mode_1(self):
        policy = arq_ecc_policy()
        assert policy.select(0, obs()) is OperationMode.MODE_1
        assert policy.profile.has_ecc_hardware
        assert not policy.profile.ecc_gated  # always-on hardware

    def test_learn_and_freeze_are_no_ops(self):
        policy = crc_policy()
        policy.learn(0, obs(), OperationMode.MODE_0, 1.0, obs())
        policy.freeze()
        assert policy.select(0, obs()) is OperationMode.MODE_0


class TestDecisionTreePolicy:
    def _trained(self, **kwargs):
        policy = DecisionTreePolicy(min_samples_leaf=2, **kwargs)
        # Temperature-correlated labels: the tree should learn T -> p.
        for temp, p in [(55.0, 1e-4), (65.0, 1e-3), (75.0, 1e-2), (88.0, 6e-2), (96.0, 2e-1)]:
            for _ in range(10):
                policy.learn(0, obs(p, temp), OperationMode.MODE_1, 1.0, obs(p, temp))
        policy.freeze()
        return policy

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            DecisionTreePolicy(thresholds=(0.1, 0.05, 0.2))

    def test_untrained_uses_safe_training_mode(self):
        policy = DecisionTreePolicy()
        assert policy.select(0, obs()) is OperationMode.MODE_1
        assert not policy.is_fitted

    def test_training_then_frozen(self):
        policy = self._trained()
        assert policy.is_fitted
        samples = policy.training_samples
        policy.learn(0, obs(0.5, 99.0), OperationMode.MODE_1, 1.0, obs())
        assert policy.training_samples == samples  # frozen: no new samples

    def test_mode_escalates_with_predicted_error(self):
        policy = self._trained()
        cold = policy.select(0, obs(temperature=55.0))
        warm = policy.select(0, obs(temperature=75.0))
        hot = policy.select(0, obs(temperature=96.0))
        assert cold is OperationMode.MODE_0
        assert warm in (OperationMode.MODE_1, OperationMode.MODE_2)
        assert hot in (OperationMode.MODE_2, OperationMode.MODE_3)
        assert int(cold) < int(warm) <= int(hot)

    def test_predicted_error_rate_exposed(self):
        policy = self._trained()
        low = policy.predicted_error_rate(obs(temperature=55.0))
        high = policy.predicted_error_rate(obs(temperature=96.0))
        assert low < high

    def test_predicted_error_rate_requires_training(self):
        with pytest.raises(RuntimeError):
            DecisionTreePolicy().predicted_error_rate(obs())

    def test_too_few_samples_keeps_training_mode(self):
        policy = DecisionTreePolicy(min_samples_leaf=8)
        policy.learn(0, obs(), OperationMode.MODE_1, 1.0, obs())
        policy.freeze()
        assert not policy.is_fitted
        assert policy.select(0, obs()) is OperationMode.MODE_1

    def test_profile(self):
        policy = DecisionTreePolicy()
        assert policy.profile.name == "dt"
        assert policy.profile.has_dt_logic
        assert policy.trainable
