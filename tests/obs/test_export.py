"""Round-trip tests for the metric exporters (CSV and JSON).

The JSON export is the registry's durable form — ``run --metrics`` dumps
it, and downstream notebooks read it back.  These tests pin the
round-trip contract: an exported document re-ingests (via
``read_metrics_json`` + ``registry_from_snapshot``) into a registry that
re-exports byte-identically, for the empty registry, for unicode metric
names, and (property-tested) for arbitrary instrument populations.
"""

import csv
import json

import pytest

from repro.obs.export import (
    metrics_timeline_rows,
    read_metrics_json,
    registry_from_snapshot,
    write_metrics_csv,
    write_metrics_json,
)
from repro.obs.metrics import MetricRegistry


def _roundtrip(registry: MetricRegistry, tmp_path) -> MetricRegistry:
    path = str(tmp_path / "metrics.json")
    write_metrics_json(registry, path)
    return registry_from_snapshot(read_metrics_json(path))


class TestEmptyRegistry:
    def test_json_round_trip(self, tmp_path):
        registry = MetricRegistry()
        rebuilt = _roundtrip(registry, tmp_path)
        assert rebuilt.snapshot() == registry.snapshot()
        assert rebuilt.timeline == []

    def test_csv_has_header_only(self, tmp_path):
        path = str(tmp_path / "metrics.csv")
        assert write_metrics_csv(MetricRegistry(), path) == 0
        with open(path, newline="") as fh:
            rows = list(csv.reader(fh))
        assert rows == [["cycle"]]


class TestUnicodeLabels:
    def test_unicode_metric_names_survive_json(self, tmp_path):
        registry = MetricRegistry()
        registry.counter("链路.失败").inc(3)
        registry.gauge("température.°C").set(45.5)
        registry.histogram("λ-latency").record(12.0)
        rebuilt = _roundtrip(registry, tmp_path)
        assert rebuilt.peek("链路.失败") == 3
        assert rebuilt.peek("température.°C") == 45.5
        assert rebuilt.snapshot() == registry.snapshot()

    def test_unicode_metric_names_survive_csv(self, tmp_path):
        registry = MetricRegistry()
        registry.gauge("θ.中文").set(1.25)
        registry.snapshot_epoch(100)
        path = str(tmp_path / "metrics.csv")
        assert write_metrics_csv(registry, path) == 1
        with open(path, encoding="utf-8", newline="") as fh:
            rows = list(csv.DictReader(fh))
        assert rows[0]["θ.中文"] == "1.25"


class TestReadValidation:
    def test_rejects_non_export_document(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"snapshot": []}))
        with pytest.raises(ValueError, match="not a metrics JSON export"):
            read_metrics_json(str(path))

    def test_rejects_non_dict(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match="not a metrics JSON export"):
            read_metrics_json(str(path))


class TestTimelineRoundTrip:
    def test_timeline_rows_and_dropped_survive(self, tmp_path):
        registry = MetricRegistry(max_timeline=2)
        for cycle in (100, 200, 300):
            registry.counter("epochs").inc()
            registry.snapshot_epoch(cycle)
        assert registry.timeline_dropped == 1
        rebuilt = _roundtrip(registry, tmp_path)
        assert rebuilt.timeline_dropped == 1
        assert metrics_timeline_rows(rebuilt) == metrics_timeline_rows(registry)


# ----------------------------------------------------------------------
pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

names = st.text(
    alphabet=st.characters(
        whitelist_categories=("Ll", "Lu", "Lo", "Nd"), blacklist_characters="\x00"
    ),
    min_size=1,
    max_size=12,
)
finite = st.floats(allow_nan=False, allow_infinity=False, width=32)


@st.composite
def registries(draw):
    registry = MetricRegistry()
    for name in draw(st.lists(names, max_size=4, unique=True)):
        registry.counter(name).inc(draw(st.integers(min_value=0, max_value=10**6)))
    for name in draw(st.lists(names, max_size=4, unique=True)):
        registry.gauge(name).set(draw(finite))
    for name in draw(st.lists(names, max_size=2, unique=True)):
        hist = registry.histogram(name)
        for value in draw(st.lists(finite, max_size=8)):
            hist.record(value)
    for cycle in draw(st.lists(st.integers(min_value=0, max_value=10**9), max_size=3)):
        registry.snapshot_epoch(cycle)
    return registry


@settings(max_examples=50, deadline=None)
@given(registries())
def test_export_reingests_to_equal_registry(tmp_path_factory, registry):
    """write -> read -> rebuild -> write is a fixed point."""
    tmp = tmp_path_factory.mktemp("export")
    first = str(tmp / "first.json")
    second = str(tmp / "second.json")
    write_metrics_json(registry, first)
    rebuilt = registry_from_snapshot(read_metrics_json(first))
    assert rebuilt.snapshot() == registry.snapshot()
    write_metrics_json(rebuilt, second)
    with open(first) as a, open(second) as b:
        assert a.read() == b.read()
