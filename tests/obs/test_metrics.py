"""Unit tests for the metric registry, instruments, and exporters."""

import csv
import json

import pytest

from repro.obs.export import (
    metrics_timeline_rows,
    write_metrics_csv,
    write_metrics_json,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricRegistry


class TestInstruments:
    def test_counter_inc_and_reset(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5
        c.reset()
        assert c.value == 0

    def test_gauge_last_write_wins(self):
        g = Gauge()
        g.set(3.5)
        g.set(-1.0)
        assert g.value == -1.0
        g.reset()
        assert g.value == 0.0


class TestHistogram:
    def test_rejects_non_increasing_bounds(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram(bounds=(10.0, 10.0, 20.0))

    def test_records_into_correct_buckets(self):
        h = Histogram(bounds=(10.0, 100.0))
        for value in (1.0, 10.0, 50.0, 1000.0):
            h.record(value)
        assert h.buckets == [2, 1, 1]  # <=10, <=100, overflow
        assert h.count == 4
        assert h.min == 1.0
        assert h.max == 1000.0
        assert h.mean == pytest.approx(1061.0 / 4)

    def test_empty_mean_is_zero(self):
        assert Histogram().mean == 0.0

    def test_merge_sums_everything(self):
        a, b = Histogram(bounds=(10.0,)), Histogram(bounds=(10.0,))
        a.record(5.0)
        b.record(50.0)
        a.merge(b)
        assert a.buckets == [1, 1]
        assert a.count == 2
        assert a.min == 5.0
        assert a.max == 50.0

    def test_merge_with_empty_is_identity(self):
        a = Histogram()
        a.record(3.0)
        before = a.as_dict()
        a.merge(Histogram())
        assert a.as_dict() == before

    def test_merge_rejects_mismatched_bounds(self):
        with pytest.raises(ValueError, match="different bounds"):
            Histogram(bounds=(1.0,)).merge(Histogram(bounds=(2.0,)))

    def test_reset_restores_fresh_state(self):
        h = Histogram(bounds=(10.0,))
        h.record(3.0)
        h.reset()
        assert h == Histogram(bounds=(10.0,))


class TestMetricRegistry:
    def test_create_on_access_returns_same_instrument(self):
        m = MetricRegistry()
        assert m.counter("a") is m.counter("a")
        assert m.gauge("b") is m.gauge("b")
        assert m.histogram("c") is m.histogram("c")

    def test_rejects_nonpositive_timeline_cap(self):
        with pytest.raises(ValueError, match="max_timeline"):
            MetricRegistry(max_timeline=0)

    def test_ingest_takes_numbers_and_skips_the_rest(self):
        m = MetricRegistry()
        m.ingest("net", {"cycles": 10, "mean": 2.5, "label": "x", "flag": True})
        scalars = m.scalars()
        assert scalars == {"net.cycles": 10, "net.mean": 2.5}

    def test_snapshot_epoch_appends_flat_rows(self):
        m = MetricRegistry()
        m.counter("hits").inc(3)
        m.gauge("temp").set(71.5)
        row = m.snapshot_epoch(500)
        assert row == {"cycle": 500, "hits": 3, "temp": 71.5}
        assert m.timeline == [row]

    def test_timeline_cap_drops_oldest(self):
        m = MetricRegistry(max_timeline=2)
        for cycle in (1, 2, 3):
            m.snapshot_epoch(cycle)
        assert [row["cycle"] for row in m.timeline] == [2, 3]
        assert m.timeline_dropped == 1
        assert m.snapshot()["timeline_dropped"] == 1

    def test_snapshot_is_sorted_and_complete(self):
        m = MetricRegistry()
        m.counter("b").inc()
        m.counter("a").inc()
        m.histogram("lat").record(12.0)
        snap = m.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        assert snap["histograms"]["lat"]["count"] == 1

    def test_reset_zeroes_instruments_and_timeline(self):
        m = MetricRegistry()
        m.counter("a").inc()
        m.gauge("g").set(2.0)
        m.histogram("h").record(1.0)
        m.snapshot_epoch(10)
        m.reset()
        assert m.scalars() == {"a": 0, "g": 0.0}
        assert m.histogram("h").count == 0
        assert m.timeline == []
        assert m.timeline_dropped == 0
        # instruments survive reset so producers keep their references
        assert m.names()["counters"] == ["a"]


class TestExport:
    def test_timeline_rows_fill_missing_columns(self):
        m = MetricRegistry()
        m.counter("early").inc()
        m.snapshot_epoch(1)
        m.counter("late").inc(7)
        m.snapshot_epoch(2)
        rows = metrics_timeline_rows(m)
        assert rows[0] == {"cycle": 1, "early": 1, "late": 0}
        assert rows[1] == {"cycle": 2, "early": 1, "late": 7}

    def test_csv_round_trip(self, tmp_path):
        m = MetricRegistry()
        m.gauge("x").set(1.5)
        m.snapshot_epoch(100)
        path = tmp_path / "m.csv"
        assert write_metrics_csv(m, str(path)) == 1
        with open(path, newline="") as fh:
            rows = list(csv.DictReader(fh))
        assert rows == [{"cycle": "100", "x": "1.5"}]

    def test_empty_csv_still_has_header(self, tmp_path):
        path = tmp_path / "m.csv"
        assert write_metrics_csv(MetricRegistry(), str(path)) == 0
        assert path.read_text().strip() == "cycle"

    def test_json_export_shape(self, tmp_path):
        m = MetricRegistry()
        m.counter("a").inc(2)
        m.snapshot_epoch(10)
        path = tmp_path / "m.json"
        write_metrics_json(m, str(path))
        payload = json.loads(path.read_text())
        assert payload["snapshot"]["counters"] == {"a": 2}
        assert payload["timeline"] == [{"cycle": 10, "a": 2}]
