"""Property-based tests for the observability primitives.

Three invariants the rest of the layer leans on:

* the canonical JSONL encoding of a trace round-trips losslessly (the
  ``repro trace`` CLI and the golden-digest tests read files written by
  ``--trace``);
* histogram ``merge`` is associative and commutative (the sweep
  supervisor folds worker histograms in arbitrary completion order);
* the ring buffer's drop/filter accounting is exact for any interleaving
  of capacities, filters, and event streams.
"""

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.obs.metrics import Histogram
from repro.obs.trace import CATEGORIES, TraceBuffer, TraceEvent, trace_digest

# JSON-scalar payload values; floats restricted to finite (NaN does not
# round-trip through equality and the hooks never emit it).
scalars = st.one_of(
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.booleans(),
    st.text(max_size=12),
)

events = st.builds(
    TraceEvent,
    cycle=st.integers(min_value=0, max_value=10**9),
    category=st.sampled_from(CATEGORIES),
    kind=st.text(
        alphabet=st.characters(whitelist_categories=("Ll",), max_codepoint=127),
        min_size=1,
        max_size=16,
    ),
    subject=st.one_of(st.none(), st.integers(min_value=0, max_value=255)),
    data=st.dictionaries(
        st.text(
            alphabet=st.characters(whitelist_categories=("Ll",), max_codepoint=127),
            min_size=1,
            max_size=8,
        ),
        scalars,
        max_size=4,
    ),
)


class TestJsonlRoundTrip:
    @given(stream=st.lists(events, max_size=20))
    @settings(deadline=None)
    def test_encode_decode_preserves_stream_and_digest(self, stream, tmp_path_factory):
        path = tmp_path_factory.mktemp("trace") / "t.jsonl"
        from repro.obs.trace import read_trace_jsonl, write_trace_jsonl

        write_trace_jsonl(stream, str(path))
        loaded = read_trace_jsonl(str(path))
        assert loaded == stream
        assert trace_digest(loaded, exclude=()) == trace_digest(stream, exclude=())

    @given(ev=events)
    @settings(deadline=None)
    def test_single_event_json_round_trip(self, ev):
        assert TraceEvent.from_json(ev.to_json()) == ev


BOUNDS = (5.0, 25.0, 125.0)
samples = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=30
)


def _hist(values):
    h = Histogram(bounds=BOUNDS)
    for v in values:
        h.record(v)
    return h


class TestHistogramMerge:
    @given(a=samples, b=samples, c=samples)
    @settings(deadline=None)
    def test_merge_is_associative(self, a, b, c):
        left = _hist(a)
        ab = _hist(b)
        ab.merge(_hist(c))
        left.merge(ab)  # a + (b + c)

        right = _hist(a)
        right.merge(_hist(b))
        right.merge(_hist(c))  # (a + b) + c
        assert left == right

    @given(a=samples, b=samples)
    @settings(deadline=None)
    def test_merge_is_commutative(self, a, b):
        ab = _hist(a)
        ab.merge(_hist(b))
        ba = _hist(b)
        ba.merge(_hist(a))
        assert ab == ba

    @given(values=samples)
    @settings(deadline=None)
    def test_merge_equals_bulk_record(self, values):
        split = len(values) // 2
        merged = _hist(values[:split])
        merged.merge(_hist(values[split:]))
        assert merged == _hist(values)


class TestRingAccounting:
    @given(
        capacity=st.integers(min_value=1, max_value=32),
        wanted=st.one_of(
            st.none(),
            st.sets(st.sampled_from(CATEGORIES), min_size=1),
        ),
        stream=st.lists(st.sampled_from(CATEGORIES), max_size=100),
    )
    @settings(deadline=None)
    def test_drop_and_filter_invariants(self, capacity, wanted, stream):
        buf = TraceBuffer(capacity=capacity, categories=wanted)
        for cycle, category in enumerate(stream):
            buf.emit(cycle, category, "evt")
        accepted = (
            len(stream)
            if wanted is None
            else sum(1 for c in stream if c in wanted)
        )
        assert buf.emitted == accepted
        assert buf.filtered == len(stream) - accepted
        assert len(buf) == min(accepted, capacity)
        assert buf.dropped == buf.emitted - len(buf)
        # survivors are exactly the newest accepted events, in order
        kept = [c for c in stream if wanted is None or c in wanted]
        assert [ev.category for ev in buf] == kept[-capacity:]
