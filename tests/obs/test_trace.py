"""Unit tests for the trace layer: events, ring buffer, digest, JSONL."""

import pytest

from repro.obs.trace import (
    CATEGORIES,
    DIGEST_EXCLUDE,
    TraceBuffer,
    TraceEvent,
    parse_categories,
    read_trace_jsonl,
    trace_digest,
    write_trace_jsonl,
)


class TestTraceEvent:
    def test_round_trips_through_dict_and_json(self):
        ev = TraceEvent(42, "mode", "transition", subject=3, data={"old": 0, "new": 2})
        assert TraceEvent.from_dict(ev.as_dict()) == ev
        assert TraceEvent.from_json(ev.to_json()) == ev

    def test_optional_fields_omitted_from_encoding(self):
        ev = TraceEvent(0, "watchdog", "check")
        payload = ev.as_dict()
        assert "subject" not in payload
        assert "data" not in payload
        assert TraceEvent.from_json(ev.to_json()) == ev

    def test_canonical_json_is_sorted_and_compact(self):
        ev = TraceEvent(7, "fault", "link_kill", subject=1, data={"b": 2, "a": 1})
        line = ev.to_json()
        assert " " not in line
        assert line.index('"a"') < line.index('"b"')

    def test_from_dict_rejects_unknown_category(self):
        with pytest.raises(ValueError, match="unknown trace category"):
            TraceEvent.from_dict({"cycle": 0, "category": "bogus", "kind": "x"})

    def test_events_with_different_payloads_are_unequal(self):
        a = TraceEvent(1, "rl", "decision", subject=0, data={"action": 1})
        b = TraceEvent(1, "rl", "decision", subject=0, data={"action": 2})
        assert a != b


class TestTraceBuffer:
    def test_emit_rejects_unknown_category(self):
        buf = TraceBuffer()
        with pytest.raises(ValueError, match="unknown trace category"):
            buf.emit(0, "bogus", "x")

    def test_rejects_unknown_filter_categories(self):
        with pytest.raises(ValueError, match="unknown trace categories"):
            TraceBuffer(categories=["mode", "bogus"])

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            TraceBuffer(capacity=0)

    def test_category_filter_counts_rejects(self):
        buf = TraceBuffer(categories=["mode"])
        assert buf.wants("mode")
        assert not buf.wants("fault")
        buf.emit(1, "mode", "transition", subject=0)
        buf.emit(2, "fault", "link_kill", subject=0)
        assert len(buf) == 1
        assert buf.emitted == 1
        assert buf.filtered == 1
        assert [ev.category for ev in buf] == ["mode"]

    def test_unfiltered_buffer_wants_everything(self):
        buf = TraceBuffer()
        assert all(buf.wants(c) for c in CATEGORIES)

    def test_ring_evicts_oldest_and_accounts_drops(self):
        buf = TraceBuffer(capacity=3)
        for cycle in range(5):
            buf.emit(cycle, "mode", "transition", subject=cycle)
        assert len(buf) == 3
        assert buf.emitted == 5
        assert buf.dropped == 2
        assert [ev.cycle for ev in buf] == [2, 3, 4]

    def test_clear_resets_all_accounting(self):
        buf = TraceBuffer(capacity=2, categories=["mode"])
        buf.emit(0, "mode", "a")
        buf.emit(1, "fault", "b")
        buf.clear()
        assert len(buf) == 0
        assert buf.emitted == 0
        assert buf.filtered == 0
        assert buf.dropped == 0

    def test_events_selects_categories(self):
        buf = TraceBuffer()
        buf.emit(0, "mode", "transition")
        buf.emit(1, "fault", "link_kill")
        buf.emit(2, "mode", "transition")
        assert len(buf.events(["mode"])) == 2
        assert len(buf.events()) == 3

    def test_summary_shape(self):
        buf = TraceBuffer()
        buf.emit(5, "mode", "transition", subject=0)
        buf.emit(9, "mode", "transition", subject=1)
        summary = buf.summary()
        assert summary["events"] == 2
        assert summary["first_cycle"] == 5
        assert summary["last_cycle"] == 9
        assert summary["by_category"] == {"mode": 2}
        assert summary["by_kind"] == {"mode/transition": 2}


class TestDigest:
    def test_checkpoint_events_excluded_by_default(self):
        buf = TraceBuffer()
        buf.emit(0, "mode", "transition", subject=0)
        base = buf.digest()
        buf.emit(1, "checkpoint", "save", segment=0)
        assert buf.digest() == base
        assert buf.digest(exclude=()) != base
        assert DIGEST_EXCLUDE == ("checkpoint",)

    def test_digest_is_order_sensitive(self):
        a = TraceEvent(0, "mode", "transition", subject=0)
        b = TraceEvent(1, "mode", "transition", subject=1)
        assert trace_digest([a, b]) != trace_digest([b, a])

    def test_empty_streams_share_a_digest(self):
        assert trace_digest([]) == TraceBuffer().digest()


class TestJsonl:
    def test_round_trip(self, tmp_path):
        events = [
            TraceEvent(0, "mode", "transition", subject=1, data={"old": 0, "new": 3}),
            TraceEvent(7, "watchdog", "check", data={"outstanding": 4}),
            TraceEvent(9, "fault", "router_kill", subject=5),
        ]
        path = tmp_path / "t.jsonl"
        assert write_trace_jsonl(events, str(path)) == 3
        loaded = read_trace_jsonl(str(path))
        assert loaded == events
        assert trace_digest(loaded) == trace_digest(events)

    def test_read_skips_blank_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        ev = TraceEvent(0, "retx", "crc_retransmission", subject=2)
        path.write_text("\n" + ev.to_json() + "\n\n")
        assert read_trace_jsonl(str(path)) == [ev]


class TestParseCategories:
    def test_empty_means_all(self):
        assert parse_categories(None) is None
        assert parse_categories("") is None

    def test_splits_and_strips(self):
        assert parse_categories(" mode , fault ") == ("mode", "fault")

    def test_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown trace categories"):
            parse_categories("mode,nope")
