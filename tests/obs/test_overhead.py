"""Observability must be free when off and behaviour-neutral when on.

The tentpole contract from DESIGN.md §12: attaching a tracer changes
*nothing* about a simulation except that events get recorded.  These
tests pin that at the network level, at the full-simulation level, and
through the bench harness's ``traced`` scenario and digest gates.  They
also cover the tally migration: per-run registry counters replace the
ad-hoc module tallies and reset cleanly between runs.
"""

import random
import warnings

import pytest

from repro.core.controller import REWARD_GUARD, compute_reward
from repro.faults.hardfaults import HardFaultModel, HardFaultSchedule
from repro.faults.injector import FaultInjector
from repro.faults.varius import VariusModel
from repro.noc.network import Network
from repro.noc.packet import Packet
from repro.noc.topology import MeshTopology
from repro.obs import MetricRegistry, TraceBuffer
from repro.sim import ResumableRun, scaled_config
from repro.sim.bench import check_digests, run_bench

CHAOS_SPEC = "link@300:1E;router@700:5;burst@500+200:0.1"


def _network(seed, tracer):
    net = Network(
        MeshTopology(4, 4),
        routing_fn="adaptive",
        rng=random.Random(seed + 1),
        routing_seed=seed,
        kernel="fast",
    )
    net.hard_faults = HardFaultModel(net, HardFaultSchedule.parse(CHAOS_SPEC))
    for _, model in net.channel_models():
        model.event_probability = 0.01
        model.relax_factor = 0.5
    if tracer is not None:
        net.attach_tracer(tracer)
    rng = random.Random(seed + 7)
    message_id = 0
    while net.now < 1_200:
        if rng.random() < 0.15:
            src, dst = rng.randrange(16), rng.randrange(16)
            if src != dst:
                net.inject(Packet(src, dst, 4, 128, net.now, message_id=message_id))
                message_id += 1
        net.cycle()
    deadline = net.now + 50_000
    while not net.quiescent and net.now < deadline:
        net.cycle()
    return net


class TestTracingIsBehaviourNeutral:
    def test_network_stats_identical_with_and_without_tracer(self):
        untraced = _network(5, None)
        traced = _network(5, TraceBuffer())
        assert traced.stats.as_dict() == untraced.stats.as_dict()
        assert len(traced.tracer) > 0

    def test_full_simulation_result_identical_with_and_without_tracer(self):
        config = scaled_config(
            width=3, height=3, epoch_cycles=100, pretrain_cycles=1_200,
            warmup_cycles=300, fault_spec="router@2000:4",
        )
        untraced = ResumableRun(config, "rl", "swaptions", trace_cycles=300).run()
        run = ResumableRun(config, "rl", "swaptions", trace_cycles=300)
        run.sim.attach_tracer(TraceBuffer())
        assert run.run() == untraced


class TestBenchTracedScenario:
    def test_traced_scenario_matches_chaos_digest(self):
        payload = run_bench(quick=True, scenarios=["chaos", "traced"])
        rows = payload["scenarios"]
        assert rows["traced"]["fast"]["digest"] == rows["chaos"]["fast"]["digest"]
        trace = rows["traced"]["fast"]["trace"]
        assert trace["events"] > 0
        assert trace["dropped"] == 0
        assert payload["trace_overhead"] > 0.0


def _payload(digest, quick=True, seed=0, mesh=(4, 4), cycles=6_000):
    return {
        "quick": quick,
        "seed": seed,
        "mesh": list(mesh),
        "scenarios": {"chaos": {"cycles": cycles, "fast": {"digest": digest}}},
    }


class TestCheckDigests:
    def test_flags_drift_at_matching_point(self):
        baseline = _payload({"packets_delivered": 10})
        baseline["label"] = "seed"
        current = _payload({"packets_delivered": 11})
        failures = check_digests(current, {"entries": [baseline]})
        assert len(failures) == 1
        assert "chaos" in failures[0]
        assert "seed" in failures[0]

    def test_identical_digests_pass(self):
        digest = {"packets_delivered": 10, "mean_latency": 2.5}
        entries = {"entries": [_payload(dict(digest))]}
        assert check_digests(_payload(dict(digest)), entries) == []

    def test_other_measurement_points_are_ignored(self):
        baseline = _payload({"packets_delivered": 10}, quick=False)
        current = _payload({"packets_delivered": 11}, quick=True)
        assert check_digests(current, {"entries": [baseline]}) == []

    def test_different_cycle_counts_are_ignored(self):
        baseline = _payload({"packets_delivered": 10}, cycles=20_000)
        current = _payload({"packets_delivered": 11}, cycles=6_000)
        assert check_digests(current, {"entries": [baseline]}) == []

    def test_entries_without_scenarios_are_skipped(self):
        entry = {"quick": True, "seed": 0, "mesh": [4, 4], "label": "seed-era"}
        current = _payload({"packets_delivered": 11})
        assert check_digests(current, {"entries": [entry]}) == []


def _injector_setup(registry=None, error_scale=1.0):
    net = Network(MeshTopology(4, 4), rng=random.Random(0))
    varius = VariusModel(4, 4, seed=2)
    return FaultInjector(net, varius, error_scale=error_scale, registry=registry)


class TestTallyMigration:
    def test_injector_saturation_lands_in_shared_registry(self):
        registry = MetricRegistry()
        injector = _injector_setup(registry=registry, error_scale=1e9)
        with pytest.warns(RuntimeWarning, match="saturated"):
            injector.refresh([100.0] * 16)
        assert injector.saturation_events > 0
        assert (
            registry.counter("injector.saturation_events").value
            == injector.saturation_events
        )

    def test_injector_without_registry_keeps_private_counter(self):
        injector = _injector_setup(error_scale=1e9)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            injector.refresh([100.0] * 16)
        assert injector.saturation_events > 0

    def test_registry_reset_clears_migrated_tallies(self):
        registry = MetricRegistry()
        injector = _injector_setup(registry=registry, error_scale=1e9)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            injector.refresh([100.0] * 16)
        registry.reset()
        assert injector.saturation_events == 0

    def test_compute_reward_counts_into_both_guard_and_counter(self):
        registry = MetricRegistry()
        counter = registry.counter("reward.guard_clamps")
        REWARD_GUARD.reset()
        reward = compute_reward(float("nan"), float("inf"), counter=counter)
        assert reward == compute_reward(1.0, 1e-6)
        assert counter.value == 2
        assert REWARD_GUARD.events == 2
        REWARD_GUARD.reset()

    def test_fresh_simulator_registry_starts_clean(self):
        from repro.sim import Simulator, default_design_factories

        config = scaled_config(width=3, height=3, epoch_cycles=100)
        policy = default_design_factories(0)["rl"]()
        sim = Simulator(config, policy, seed=0)
        counters = sim.metrics.snapshot()["counters"]
        assert counters["reward.guard_clamps"] == 0
        assert counters["injector.saturation_events"] == 0
