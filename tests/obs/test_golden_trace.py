"""Golden-trace regression tests.

A fixed-seed run must emit a byte-identical event stream forever: the
digests hard-coded here pin the exact traces of three reference runs
(healthy XY, adaptive chaos, and a full RL simulation under a fault
campaign).  If a code change alters any digest, either the change broke
run determinism or it deliberately changed the observable event stream —
in which case the constants are updated in the same commit, making trace
changes reviewable.

The same runs double as kernel-equivalence checks (fast and naive must
emit identical streams, not just identical stats) and as the
checkpoint/resume contract: a resumed run's trace digests identically to
the uninterrupted run because the ``checkpoint`` category is excluded
from the canonical digest.
"""

import random
import shutil

import pytest

from repro.faults.hardfaults import HardFaultModel, HardFaultSchedule
from repro.noc.network import Network
from repro.noc.packet import Packet
from repro.noc.topology import MeshTopology
from repro.obs import TraceBuffer, trace_digest
from repro.sim import ResumableRun, read_checkpoint_meta, scaled_config

CHAOS_SPEC = "link@300:1E;router@700:5;burst@500+200:0.1"

# sha256 of the canonical JSONL stream (checkpoint category excluded).
GOLDEN_XY = "38f70261953925cac4f3aa217f85600ba82f10869eff92d1597726e254244c0f"
GOLDEN_CHAOS = "bf8f49390b4c5bda5585601d431114eb3627c6076a95bcd3482d912df0fd10e9"
# GOLDEN_SIM moved when benchmark trace seeding switched to the full
# 32-bit crc32 mix (the old `% 1000` fold let distinct benchmark names
# collide onto identical traces): the reference run's synthesized
# swaptions trace — and therefore its event stream — changed.
GOLDEN_SIM = "5d942d131e3c7ca72d28f195dedb1809f42072d4a6d72c363603f655a35d12fb"


def _build(kernel, seed, routing, fault_spec=None):
    net = Network(
        MeshTopology(4, 4),
        routing_fn=routing,
        rng=random.Random(seed + 1),
        routing_seed=seed,
        kernel=kernel,
    )
    if fault_spec:
        net.hard_faults = HardFaultModel(net, HardFaultSchedule.parse(fault_spec))
    for _, model in net.channel_models():
        model.event_probability = 0.01
        model.relax_factor = 0.5
    net.attach_tracer(TraceBuffer())
    return net


def _drive(net, seed, cycles=1_200, rate=0.15):
    rng = random.Random(seed + 7)
    nodes = net.topology.num_nodes
    message_id = 0
    end = net.now + cycles
    while net.now < end:
        if rng.random() < rate:
            src, dst = rng.randrange(nodes), rng.randrange(nodes)
            if src != dst:
                net.inject(Packet(src, dst, 4, 128, net.now, message_id=message_id))
                message_id += 1
        net.cycle()
    deadline = net.now + 50_000
    while not net.quiescent and net.now < deadline:
        net.cycle()
    return net.tracer


class TestNetworkGoldenTraces:
    @pytest.mark.parametrize("kernel", ["fast", "naive"])
    def test_healthy_xy_trace_digest(self, kernel):
        tracer = _drive(_build(kernel, 11, "xy"), 11)
        assert tracer.digest() == GOLDEN_XY

    @pytest.mark.parametrize("kernel", ["fast", "naive"])
    def test_adaptive_chaos_trace_digest(self, kernel):
        tracer = _drive(_build(kernel, 23, "adaptive", CHAOS_SPEC), 23)
        assert tracer.digest() == GOLDEN_CHAOS

    def test_chaos_trace_contains_required_event_families(self):
        tracer = _drive(_build("fast", 23, "adaptive", CHAOS_SPEC), 23)
        kinds = {f"{ev.category}/{ev.kind}" for ev in tracer}
        assert "fault/campaign_event" in kinds
        assert "fault/link_kill" in kinds
        assert "fault/router_kill" in kinds
        assert "watchdog/check" in kinds
        assert tracer.dropped == 0

    def test_rerun_in_same_process_is_stable(self):
        first = _drive(_build("fast", 23, "adaptive", CHAOS_SPEC), 23)
        second = _drive(_build("fast", 23, "adaptive", CHAOS_SPEC), 23)
        assert first.digest() == second.digest()


def _sim_config():
    return scaled_config(
        width=3, height=3, epoch_cycles=100, pretrain_cycles=1_500,
        warmup_cycles=300, fault_spec="link@600:1E;router@1200:4",
    )


def _traced_run(tmp_path=None, checkpoint_every=0):
    kwargs = {}
    if tmp_path is not None:
        kwargs = {
            "checkpoint_path": tmp_path / "run.ckpt",
            "checkpoint_every": checkpoint_every,
        }
    run = ResumableRun(_sim_config(), "rl", "swaptions", trace_cycles=300, **kwargs)
    run.sim.attach_tracer(TraceBuffer())
    return run


class TestSimulatorGoldenTrace:
    def test_rl_fault_campaign_trace_digest(self):
        run = _traced_run()
        result = run.run()
        tracer = run.sim.tracer
        categories = {ev.category for ev in tracer}
        # the acceptance-criteria families: mode transitions, RL
        # decisions, hard faults, and watchdog heartbeats all present
        assert {"mode", "rl", "fault", "watchdog"} <= categories
        assert tracer.digest() == GOLDEN_SIM
        assert result.packets_delivered > 0

    def test_resumed_run_digests_identically(self, tmp_path):
        baseline = _traced_run()
        baseline_result = baseline.run()
        golden = baseline.sim.tracer.digest()
        assert golden == GOLDEN_SIM

        run = _traced_run(tmp_path, checkpoint_every=90)
        copies = []
        original_save = run.save

        def keep(path=None):
            saved = original_save(path)
            copy = tmp_path / f"{run.sim.network.now}.snap"
            if not copy.exists():
                shutil.copy(saved, copy)
                copies.append(copy)
            return saved

        run.save = keep
        assert run.run() == baseline_result
        # checkpoint save markers are digest-excluded, so the
        # checkpointed-but-uninterrupted run still matches
        assert run.sim.tracer.digest() == golden
        assert any(
            ev.category == "checkpoint" and ev.kind == "save"
            for ev in run.sim.tracer
        )

        unfinished = [c for c in copies if not read_checkpoint_meta(c)["finished"]]
        assert unfinished, "plan must checkpoint mid-run"
        snap = unfinished[len(unfinished) // 2]
        resumed = ResumableRun.resume(
            snap, checkpoint_path=tmp_path / "scratch.ckpt", checkpoint_every=0
        )
        assert resumed.sim.tracer is not None, "tracer must survive the snapshot"
        assert resumed.run() == baseline_result
        assert resumed.sim.tracer.digest() == golden
        assert any(
            ev.category == "checkpoint" and ev.kind == "restore"
            for ev in resumed.sim.tracer
        )

    def test_trace_filter_does_not_perturb_the_run(self):
        full = _traced_run()
        full_result = full.run()

        run = ResumableRun(_sim_config(), "rl", "swaptions", trace_cycles=300)
        run.sim.attach_tracer(TraceBuffer(categories=["mode", "fault"]))
        assert run.run() == full_result
        tracer = run.sim.tracer
        assert {ev.category for ev in tracer} <= {"mode", "fault"}
        assert tracer.filtered > 0
        # the filtered stream is the full stream restricted to the
        # selected categories
        wanted = full.sim.tracer.events(["mode", "fault"])
        assert trace_digest(tracer.events(), exclude=()) == trace_digest(
            wanted, exclude=()
        )
