"""Workload substrate: synthetic patterns, traces, PARSEC-like synthesis."""

from repro.traffic.parsec import (
    PARSEC_PROFILES,
    BenchmarkProfile,
    ParsecTraceSynthesizer,
)
from repro.traffic.synthetic import (
    PATTERNS,
    NullTraffic,
    SyntheticTraffic,
    destination_for,
)
from repro.traffic.trace import TraceRecord, TraceReplayer, load_trace, save_trace

__all__ = [
    "PARSEC_PROFILES",
    "BenchmarkProfile",
    "ParsecTraceSynthesizer",
    "PATTERNS",
    "NullTraffic",
    "SyntheticTraffic",
    "destination_for",
    "TraceRecord",
    "TraceReplayer",
    "load_trace",
    "save_trace",
]
