"""Application trace records, file I/O, and replay.

The paper drives its evaluation with PARSEC traces that "contain packet
information, injection/ejection events, and clock time stamps"
(Section V-B).  This module defines the equivalent portable trace format:

* a :class:`TraceRecord` per message — injection cycle, source,
  destination, packet size in flits;
* a plain-text file format (one record per line, ``#`` comments) so
  traces can be inspected, diffed, and versioned;
* a :class:`TraceReplayer` that presents the same ``packets_for_cycle``
  protocol as the synthetic sources, so the simulator is agnostic to
  whether traffic is synthetic or replayed.

Replaying a trace gives every compared design the *same* offered work,
which is what makes the execution-time speed-up comparison of Fig. 7
meaningful.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.noc.packet import Packet
from repro.noc.topology import MeshTopology

__all__ = ["TraceRecord", "TraceReplayer", "load_trace", "save_trace"]


@dataclass(frozen=True, order=True)
class TraceRecord:
    """One message of an application trace."""

    cycle: int
    src: int
    dest: int
    size: int

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise ValueError("cycle cannot be negative")
        if self.size <= 0:
            raise ValueError("size must be at least one flit")
        if self.src == self.dest:
            raise ValueError("source and destination must differ")


def save_trace(records: Iterable[TraceRecord], path: Union[str, Path]) -> int:
    """Write records to a trace file; returns the record count."""
    path = Path(path)
    count = 0
    with path.open("w") as f:
        f.write("# cycle src dest size\n")
        for record in sorted(records):
            f.write(f"{record.cycle} {record.src} {record.dest} {record.size}\n")
            count += 1
    return count


def load_trace(path: Union[str, Path]) -> List[TraceRecord]:
    """Read a trace file written by :func:`save_trace`."""
    records = []
    with Path(path).open() as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 4:
                raise ValueError(f"{path}:{lineno}: expected 4 fields, got {len(parts)}")
            cycle, src, dest, size = (int(p) for p in parts)
            records.append(TraceRecord(cycle, src, dest, size))
    return sorted(records)


class TraceReplayer:
    """Replays a trace through the ``packets_for_cycle`` protocol."""

    def __init__(
        self,
        records: List[TraceRecord],
        topology: MeshTopology,
        flit_bits: int = 128,
        rng: Optional[random.Random] = None,
        stretch: float = 1.0,
    ) -> None:
        """``stretch`` rescales all timestamps (2.0 = half the offered
        load), which benches use for load sweeps on a fixed trace."""
        if stretch <= 0:
            raise ValueError("stretch must be positive")
        for record in records:
            if record.src >= topology.num_nodes or record.dest >= topology.num_nodes:
                raise ValueError(f"record {record} outside the topology")
        self.records = sorted(records)
        self.topology = topology
        self.flit_bits = flit_bits
        self.rng = rng if rng is not None else random.Random(0)
        self.stretch = stretch
        self._cursor = 0

    # ------------------------------------------------------------------
    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self.records)

    @property
    def remaining(self) -> int:
        return len(self.records) - self._cursor

    @property
    def total_messages(self) -> int:
        return len(self.records)

    @property
    def last_cycle(self) -> int:
        """Stretched timestamp of the final record (0 for empty traces)."""
        if not self.records:
            return 0
        return int(self.records[-1].cycle * self.stretch)

    def reset(self) -> None:
        self._cursor = 0

    def packets_for_cycle(self, now: int) -> List[Packet]:
        packets = []
        while self._cursor < len(self.records):
            record = self.records[self._cursor]
            due = int(record.cycle * self.stretch)
            if due > now:
                break
            payloads = [
                self.rng.getrandbits(self.flit_bits) for _ in range(record.size)
            ]
            packets.append(
                Packet(record.src, record.dest, record.size, self.flit_bits, now, payloads)
            )
            self._cursor += 1
        return packets
