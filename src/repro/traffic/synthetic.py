"""Synthetic traffic patterns (Booksim-style).

The paper pre-trains the learning policies on synthetic traffic before
replaying application traces (Section V-B).  This module provides the
standard pattern suite: uniform random plus the classic permutations
(transpose, bit-complement, bit-reverse, shuffle, tornado, neighbour) and
a configurable hotspot pattern.

A :class:`SyntheticTraffic` source makes one Bernoulli injection decision
per node per cycle at the configured packet injection rate, matching how
cycle-accurate simulators drive open-loop traffic.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence

from repro.noc.packet import Packet
from repro.noc.topology import MeshTopology

__all__ = ["PATTERNS", "NullTraffic", "SyntheticTraffic", "destination_for"]


def _bits_needed(n: int) -> int:
    bits = (n - 1).bit_length()
    if 1 << bits != n:
        raise ValueError(f"pattern requires a power-of-two node count, got {n}")
    return bits


def uniform(topology: MeshTopology, src: int, rng: random.Random) -> int:
    dest = rng.randrange(topology.num_nodes - 1)
    return dest if dest < src else dest + 1


def transpose(topology: MeshTopology, src: int, rng: random.Random) -> int:
    if topology.width != topology.height:
        raise ValueError("transpose requires a square mesh")
    x, y = topology.coordinates(src)
    return topology.node_id(y, x)


def bit_complement(topology: MeshTopology, src: int, rng: random.Random) -> int:
    bits = _bits_needed(topology.num_nodes)
    return src ^ ((1 << bits) - 1)


def bit_reverse(topology: MeshTopology, src: int, rng: random.Random) -> int:
    bits = _bits_needed(topology.num_nodes)
    out = 0
    for i in range(bits):
        if src & (1 << i):
            out |= 1 << (bits - 1 - i)
    return out


def shuffle(topology: MeshTopology, src: int, rng: random.Random) -> int:
    bits = _bits_needed(topology.num_nodes)
    return ((src << 1) | (src >> (bits - 1))) & ((1 << bits) - 1)


def tornado(topology: MeshTopology, src: int, rng: random.Random) -> int:
    x, y = topology.coordinates(src)
    return topology.node_id((x + topology.width // 2 - 1) % topology.width, y)


def neighbour(topology: MeshTopology, src: int, rng: random.Random) -> int:
    x, y = topology.coordinates(src)
    return topology.node_id((x + 1) % topology.width, y)


#: Named destination functions ``f(topology, src, rng) -> dest``.
PATTERNS: Dict[str, Callable[[MeshTopology, int, random.Random], int]] = {
    "uniform": uniform,
    "transpose": transpose,
    "bit_complement": bit_complement,
    "bit_reverse": bit_reverse,
    "shuffle": shuffle,
    "tornado": tornado,
    "neighbour": neighbour,
}


def destination_for(
    pattern: str, topology: MeshTopology, src: int, rng: random.Random
) -> Optional[int]:
    """Destination of one packet under a named pattern (None = self-loop,
    which the caller should skip — e.g. transpose of a diagonal node)."""
    try:
        fn = PATTERNS[pattern]
    except KeyError:
        raise ValueError(f"unknown pattern {pattern!r}") from None
    dest = fn(topology, src, rng)
    return None if dest == src else dest


class NullTraffic:
    """A traffic source that never injects.

    Drain phases need a source that satisfies the ``TrafficSource``
    protocol but stops offering packets so the network can empty
    (e.g. the tail of a load-sweep point after the injection span).
    """

    def packets_for_cycle(self, now: int) -> List[Packet]:
        return []


class SyntheticTraffic:
    """Open-loop Bernoulli traffic source over a mesh.

    Parameters
    ----------
    topology:
        Target mesh.
    pattern:
        One of :data:`PATTERNS`, or ``"hotspot"`` (uniform with extra
        weight on ``hotspot_nodes``).
    injection_rate:
        Packets per node per cycle (Bernoulli probability).
    packet_size, flit_bits:
        Packet geometry (Table II defaults: 4 flits of 128 bits).
    hotspot_nodes, hotspot_fraction:
        For the hotspot pattern: the favoured destinations and the share
        of traffic they attract.
    """

    def __init__(
        self,
        topology: MeshTopology,
        pattern: str = "uniform",
        injection_rate: float = 0.01,
        packet_size: int = 4,
        flit_bits: int = 128,
        rng: Optional[random.Random] = None,
        hotspot_nodes: Optional[Sequence[int]] = None,
        hotspot_fraction: float = 0.5,
    ) -> None:
        if not 0.0 <= injection_rate <= 1.0:
            raise ValueError("injection rate must be in [0, 1]")
        if pattern != "hotspot" and pattern not in PATTERNS:
            raise ValueError(f"unknown pattern {pattern!r}")
        if not 0.0 <= hotspot_fraction <= 1.0:
            raise ValueError("hotspot fraction must be in [0, 1]")
        self.topology = topology
        self.pattern = pattern
        self.injection_rate = injection_rate
        self.packet_size = packet_size
        self.flit_bits = flit_bits
        self.rng = rng if rng is not None else random.Random(0)
        if pattern == "hotspot":
            default = [topology.num_nodes // 2]
            self.hotspot_nodes = list(hotspot_nodes) if hotspot_nodes else default
        else:
            self.hotspot_nodes = []
        self.hotspot_fraction = hotspot_fraction
        self.packets_generated = 0

    # ------------------------------------------------------------------
    def _destination(self, src: int) -> Optional[int]:
        if self.pattern == "hotspot":
            if self.rng.random() < self.hotspot_fraction:
                dest = self.rng.choice(self.hotspot_nodes)
                return None if dest == src else dest
            return destination_for("uniform", self.topology, src, self.rng)
        return destination_for(self.pattern, self.topology, src, self.rng)

    def packets_for_cycle(self, now: int) -> List[Packet]:
        """New packets every source decides to inject this cycle."""
        packets = []
        for src in range(self.topology.num_nodes):
            if self.rng.random() >= self.injection_rate:
                continue
            dest = self._destination(src)
            if dest is None:
                continue
            payloads = [
                self.rng.getrandbits(self.flit_bits) for _ in range(self.packet_size)
            ]
            packets.append(
                Packet(src, dest, self.packet_size, self.flit_bits, now, payloads)
            )
            self.packets_generated += 1
        return packets
