"""PARSEC-like application traces, synthesized statistically.

**Substitution notice (see DESIGN.md §4).**  The paper replays real
PARSEC traces captured from a full-system simulation; those files are not
redistributable and not reproducible without the authors' gem5/Booksim
setup.  We instead *synthesize* traces whose first- and second-order
statistics match published NoC characterizations of the PARSEC suite:

* per-benchmark mean injection rate (communication intensity);
* burstiness, modelled as a per-node on/off Markov-modulated process
  (bursty benchmarks like x264 and canneal spend short periods at a
  multiple of their mean rate);
* spatial locality, modelled as a mixture of uniform, near-neighbour,
  and hotspot (shared-data / memory-controller) components.

The fault-tolerant control policies only observe aggregate per-router
load, NACK rates and temperature, so matching these statistics exercises
the same state space and trade-offs as the original traces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.noc.topology import MeshTopology
from repro.traffic.trace import TraceRecord

__all__ = ["BenchmarkProfile", "PARSEC_PROFILES", "ParsecTraceSynthesizer"]


@dataclass(frozen=True)
class BenchmarkProfile:
    """Statistical fingerprint of one application's NoC traffic.

    Attributes
    ----------
    name:
        Benchmark name.
    injection_rate:
        Mean packets per node per cycle in the *off* (baseline) state.
    burst_factor:
        Rate multiplier while a node is bursting.
    burst_on_probability:
        Per-cycle probability an idle node enters a burst.
    burst_off_probability:
        Per-cycle probability a bursting node returns to baseline.
    locality:
        Mixture weights ``(uniform, neighbour, hotspot)``; must sum to 1.
    packet_size:
        Flits per packet (Table II: 4).
    """

    name: str
    injection_rate: float
    burst_factor: float = 1.0
    burst_on_probability: float = 0.0
    burst_off_probability: float = 1.0
    locality: Sequence[float] = (1.0, 0.0, 0.0)
    packet_size: int = 4

    def __post_init__(self) -> None:
        if not 0.0 <= self.injection_rate <= 1.0:
            raise ValueError("injection rate must be in [0, 1]")
        if self.burst_factor < 1.0:
            raise ValueError("burst factor cannot shrink the rate")
        if abs(sum(self.locality) - 1.0) > 1e-9 or any(w < 0 for w in self.locality):
            raise ValueError("locality must be a 3-way probability mixture")
        if self.packet_size <= 0:
            raise ValueError("packet size must be positive")

    @property
    def mean_rate(self) -> float:
        """Long-run packets/node/cycle including bursts."""
        p_on = self.burst_on_probability
        p_off = self.burst_off_probability
        if p_on == 0.0:
            duty = 0.0
        else:
            duty = p_on / (p_on + p_off)
        return self.injection_rate * (1.0 + duty * (self.burst_factor - 1.0))


#: Traffic fingerprints of the ten PARSEC benchmarks the paper plots.
#: Intensities are ordered per published characterizations (blackscholes
#: and swaptions lightest; canneal and streamcluster heaviest; x264 and
#: fluidanimate notably bursty) and scaled so the heaviest benchmarks
#: approach the paper's observed 0.3 flits/cycle peak link utilization.
PARSEC_PROFILES: Dict[str, BenchmarkProfile] = {
    "blackscholes": BenchmarkProfile(
        "blackscholes", 0.005, locality=(0.70, 0.20, 0.10)
    ),
    "bodytrack": BenchmarkProfile(
        "bodytrack", 0.012, 2.0, 0.004, 0.08, locality=(0.60, 0.25, 0.15)
    ),
    "canneal": BenchmarkProfile(
        "canneal", 0.024, 2.5, 0.008, 0.06, locality=(0.80, 0.05, 0.15)
    ),
    "dedup": BenchmarkProfile(
        "dedup", 0.018, 2.0, 0.006, 0.10, locality=(0.55, 0.25, 0.20)
    ),
    "ferret": BenchmarkProfile(
        "ferret", 0.014, 1.8, 0.005, 0.10, locality=(0.60, 0.20, 0.20)
    ),
    "fluidanimate": BenchmarkProfile(
        "fluidanimate", 0.008, 3.0, 0.003, 0.05, locality=(0.40, 0.45, 0.15)
    ),
    "streamcluster": BenchmarkProfile(
        "streamcluster", 0.022, 1.5, 0.010, 0.10, locality=(0.65, 0.15, 0.20)
    ),
    "swaptions": BenchmarkProfile(
        "swaptions", 0.006, locality=(0.75, 0.15, 0.10)
    ),
    "vips": BenchmarkProfile(
        "vips", 0.015, 2.0, 0.005, 0.09, locality=(0.60, 0.20, 0.20)
    ),
    "x264": BenchmarkProfile(
        "x264", 0.016, 3.5, 0.006, 0.04, locality=(0.55, 0.20, 0.25)
    ),
}


class ParsecTraceSynthesizer:
    """Generates trace records matching a benchmark profile."""

    def __init__(
        self,
        profile: BenchmarkProfile,
        topology: MeshTopology,
        rng: Optional[random.Random] = None,
        hotspot_nodes: Optional[Sequence[int]] = None,
    ) -> None:
        self.profile = profile
        self.topology = topology
        self.rng = rng if rng is not None else random.Random(0)
        if hotspot_nodes is None:
            # Default shared-data hotspots: the four centre tiles, the
            # usual placement of shared cache banks / directory nodes.
            cx, cy = topology.width // 2, topology.height // 2
            hotspot_nodes = [
                topology.node_id(cx - 1, cy - 1),
                topology.node_id(cx, cy - 1),
                topology.node_id(cx - 1, cy),
                topology.node_id(cx, cy),
            ]
        self.hotspot_nodes = list(hotspot_nodes)
        self._bursting = [False] * topology.num_nodes

    # ------------------------------------------------------------------
    def _pick_destination(self, src: int) -> int:
        w_uniform, w_neighbour, _w_hotspot = self.profile.locality
        roll = self.rng.random()
        topo = self.topology
        if roll < w_uniform:
            dest = self.rng.randrange(topo.num_nodes - 1)
            return dest if dest < src else dest + 1
        if roll < w_uniform + w_neighbour:
            x, y = topo.coordinates(src)
            options = []
            for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                nx, ny = x + dx, y + dy
                if 0 <= nx < topo.width and 0 <= ny < topo.height:
                    options.append(topo.node_id(nx, ny))
            return self.rng.choice(options)
        candidates = [h for h in self.hotspot_nodes if h != src]
        if not candidates:
            dest = self.rng.randrange(topo.num_nodes - 1)
            return dest if dest < src else dest + 1
        return self.rng.choice(candidates)

    def _advance_burst_state(self, node: int) -> float:
        p = self.profile
        if self._bursting[node]:
            if self.rng.random() < p.burst_off_probability:
                self._bursting[node] = False
        else:
            if self.rng.random() < p.burst_on_probability:
                self._bursting[node] = True
        rate = p.injection_rate
        if self._bursting[node]:
            rate *= p.burst_factor
        return min(1.0, rate)

    # ------------------------------------------------------------------
    def synthesize(self, cycles: int) -> List[TraceRecord]:
        """Generate a full trace spanning ``cycles`` injection cycles."""
        if cycles <= 0:
            raise ValueError("trace must span at least one cycle")
        records = []
        for cycle in range(cycles):
            for node in range(self.topology.num_nodes):
                rate = self._advance_burst_state(node)
                if self.rng.random() < rate:
                    dest = self._pick_destination(node)
                    records.append(
                        TraceRecord(cycle, node, dest, self.profile.packet_size)
                    )
        return records
