"""Automatic Retransmission Query (ARQ) protocol objects.

In the ARQ+ECC scheme (paper Section II), every flit sent over an
ECC-protected link is held in a retransmission buffer at the sender until
the downstream router acknowledges it.  On an ACK the copy is released; on
a NACK (uncorrectable error at the receiver) the copy is retransmitted.

The classes here are protocol bookkeeping only — they know nothing about
routers or cycles beyond opaque timestamps — which keeps them unit-testable
and lets :mod:`repro.noc.router` wire them to real channels.

Two small pieces live here:

* :class:`RetransmissionBuffer` — the per-output-port sender-side window
  of unacknowledged flits (stop-and-wait generalized to a window).
* :class:`AckMessage` — the sideband ACK/NACK token exchanged between
  adjacent routers, carrying the sequence number it refers to.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Generic, Iterator, Optional, Tuple, TypeVar

__all__ = ["AckKind", "AckMessage", "RetransmissionBuffer", "ArqError"]

T = TypeVar("T")


class ArqError(Exception):
    """Protocol violation (duplicate sequence, unknown ACK, overflow)."""


@dataclass(frozen=True)
class AckKind:
    """Namespace of ACK polarity constants."""

    ACK = "ack"
    NACK = "nack"


class AckMessage:
    """A sideband acknowledgement for one transmitted flit.

    Hand-written slotted value class (dataclass ``slots=True`` needs
    Python 3.10, and one of these is allocated per protected flit, so it
    sits on the hot path).

    Attributes
    ----------
    seq:
        Sender-side sequence number being acknowledged.
    kind:
        ``AckKind.ACK`` (release the copy) or ``AckKind.NACK``
        (retransmit the copy).
    created_at:
        Cycle the receiver generated the message (for latency accounting).
    """

    __slots__ = ("seq", "kind", "created_at")

    def __init__(self, seq: int, kind: str, created_at: int = 0) -> None:
        self.seq = seq
        self.kind = kind
        self.created_at = created_at

    @property
    def is_nack(self) -> bool:
        return self.kind == AckKind.NACK

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AckMessage):
            return NotImplemented
        return (
            self.seq == other.seq
            and self.kind == other.kind
            and self.created_at == other.created_at
        )

    def __hash__(self) -> int:
        return hash((self.seq, self.kind, self.created_at))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AckMessage(seq={self.seq}, kind={self.kind!r}, created_at={self.created_at})"

    def __getstate__(self):
        return (self.seq, self.kind, self.created_at)

    def __setstate__(self, state) -> None:
        self.seq, self.kind, self.created_at = state


class RetransmissionBuffer(Generic[T]):
    """Sender-side window of flits awaiting acknowledgement.

    Parameters
    ----------
    capacity:
        Maximum number of simultaneously unacknowledged entries.  When the
        buffer is full the sender must stall — the router checks
        :meth:`is_full` before link traversal.

    Entries are keyed by a monotonically increasing sequence number issued
    by :meth:`push`.  Iteration order is insertion (i.e. transmission)
    order, which the router relies on when draining retransmissions.
    """

    __slots__ = (
        "capacity",
        "_entries",
        "_next_seq",
        "total_pushed",
        "total_acked",
        "total_nacked",
    )

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[int, T]" = OrderedDict()
        self._next_seq = 0
        # Statistics
        self.total_pushed = 0
        self.total_acked = 0
        self.total_nacked = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Tuple[int, T]]:
        return iter(self._entries.items())

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._entries

    @property
    def occupancy(self) -> float:
        """Fraction of the window currently in use (0..1)."""
        return len(self._entries) / self.capacity

    # ------------------------------------------------------------------
    def push(self, item: T) -> int:
        """Record a transmitted flit; returns its sequence number.

        Raises :class:`ArqError` if the window is full — callers must
        check :attr:`is_full` first, mirroring the hardware's back-pressure.
        """
        if self.is_full:
            raise ArqError("retransmission buffer overflow")
        seq = self._next_seq
        self._next_seq += 1
        self._entries[seq] = item
        self.total_pushed += 1
        return seq

    @property
    def next_seq(self) -> int:
        """Sequence number the next :meth:`push` will assign.

        Lets the sender construct the stored copy already carrying its
        own sequence number instead of pushing and rewriting it.
        """
        return self._next_seq

    def ack(self, seq: int) -> T:
        """Positive acknowledgement: release and return the stored copy."""
        try:
            item = self._entries.pop(seq)
        except KeyError:
            raise ArqError(f"ACK for unknown sequence {seq}") from None
        self.total_acked += 1
        return item

    def nack(self, seq: int) -> T:
        """Negative acknowledgement: return the copy for retransmission.

        The entry stays buffered (the retransmitted flit may itself be
        corrupted and NACKed again); it is only released by a later ACK.
        """
        try:
            item = self._entries[seq]
        except KeyError:
            raise ArqError(f"NACK for unknown sequence {seq}") from None
        self.total_nacked += 1
        return item

    def peek(self, seq: int) -> Optional[T]:
        """Return the stored copy without touching statistics."""
        return self._entries.get(seq)

    def handle(self, message: AckMessage) -> Tuple[bool, T]:
        """Apply an :class:`AckMessage`; returns ``(retransmit, item)``."""
        if message.is_nack:
            return True, self.nack(message.seq)
        return False, self.ack(message.seq)

    def flush(self) -> None:
        """Drop all pending entries (used when a link is reconfigured)."""
        self._entries.clear()
