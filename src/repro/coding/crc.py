"""Cyclic Redundancy Check (CRC) codes over integer payloads.

The paper's baseline router protects packets end-to-end with CRC: every
flit of a packet is encoded by a CRC encoder at the source network
interface and checked by a decoder at the destination.  A failed check
triggers a full packet retransmission from the source (Section II,
Fig. 1(b)).

This module implements table-driven CRCs generically over arbitrary-width
integer payloads, plus the handful of standard polynomials used in on-chip
and off-chip links.  Payloads are plain Python integers interpreted as
bit-vectors (bit 0 = LSB), which is also how :mod:`repro.noc.packet`
stores flit payloads, so encoding/checking never needs byte conversion.

Example
-------
>>> crc = CRC.crc8()
>>> word = 0xDEADBEEF
>>> check = crc.compute(word, 32)
>>> crc.verify(word, 32, check)
True
>>> crc.verify(word ^ (1 << 7), 32, check)   # single bit flip is caught
False
"""

from __future__ import annotations

import binascii
from dataclasses import dataclass, field
from typing import List

__all__ = [
    "CRC",
    "CRC8_POLY",
    "CRC16_CCITT_POLY",
    "CRC32_POLY",
]

#: CRC-8/ATM polynomial x^8 + x^2 + x + 1.
CRC8_POLY = 0x07

#: CRC-16-CCITT polynomial x^16 + x^12 + x^5 + 1.
CRC16_CCITT_POLY = 0x1021

#: IEEE 802.3 CRC-32 polynomial (normal representation).
CRC32_POLY = 0x04C11DB7


def _build_table(poly: int, width: int) -> List[int]:
    """Build the 256-entry byte-at-a-time CRC lookup table."""
    top_bit = 1 << (width - 1)
    mask = (1 << width) - 1
    table = []
    for byte in range(256):
        register = byte << (width - 8) if width >= 8 else byte
        for _ in range(8):
            if register & top_bit:
                register = ((register << 1) ^ poly) & mask
            else:
                register = (register << 1) & mask
        table.append(register)
    return table


@dataclass(frozen=True)
class CRC:
    """A table-driven CRC with a given generator polynomial.

    Parameters
    ----------
    poly:
        Generator polynomial in "normal" (MSB-first) representation,
        without the implicit top bit.
    width:
        Number of check bits produced (degree of the polynomial).
    init:
        Initial shift-register value.
    name:
        Human-readable identifier used in reports.
    """

    poly: int
    width: int
    init: int = 0
    name: str = "crc"
    _table: List[int] = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        if self.width < 8:
            raise ValueError("CRC widths below 8 bits are not supported")
        if not 0 < self.poly < (1 << self.width):
            raise ValueError(f"polynomial 0x{self.poly:x} out of range for width {self.width}")
        object.__setattr__(self, "_table", _build_table(self.poly, self.width))

    # ------------------------------------------------------------------
    # Standard instances
    # ------------------------------------------------------------------
    @classmethod
    def crc8(cls) -> "CRC":
        """CRC-8/ATM — the lightweight check used per flit in examples."""
        return cls(poly=CRC8_POLY, width=8, name="crc8")

    @classmethod
    def crc16(cls) -> "CRC":
        """CRC-16-CCITT — the default end-to-end packet check."""
        return cls(poly=CRC16_CCITT_POLY, width=16, name="crc16")

    @classmethod
    def crc32(cls) -> "CRC":
        """IEEE CRC-32 — strongest (and most expensive) option."""
        return cls(poly=CRC32_POLY, width=32, name="crc32")

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def compute(self, payload: int, payload_bits: int) -> int:
        """Compute the CRC of ``payload`` interpreted as ``payload_bits`` bits.

        The payload is consumed MSB-first in whole bytes; widths that are
        not byte multiples are zero-padded at the top, which is the usual
        hardware convention for fixed-width buses.
        """
        if payload < 0:
            raise ValueError("payload must be non-negative")
        if payload_bits <= 0:
            raise ValueError("payload_bits must be positive")
        if payload >= (1 << payload_bits):
            raise ValueError(f"payload does not fit in {payload_bits} bits")

        n_bytes = (payload_bits + 7) // 8
        if self.poly == CRC16_CCITT_POLY and self.width == 16:
            # binascii.crc_hqx is this exact CRC (0x1021, MSB-first, no
            # reflection, no final xor) in C — bit-identical results.
            return binascii.crc_hqx(payload.to_bytes(n_bytes, "big"), self.init)
        register = self.init
        mask = (1 << self.width) - 1
        shift = self.width - 8
        table = self._table
        # to_bytes + byte iteration keeps every shift on the small
        # register instead of repeatedly shifting the multi-word payload
        # integer — measurably faster for wide flit payloads.
        for byte in payload.to_bytes(n_bytes, "big"):
            register = ((register << 8) ^ table[((register >> shift) ^ byte) & 0xFF]) & mask
        return register

    def verify(self, payload: int, payload_bits: int, check: int) -> bool:
        """Return ``True`` iff ``check`` matches the CRC of ``payload``."""
        return self.compute(payload, payload_bits) == check

    def detects(self, error_mask: int, payload_bits: int) -> bool:
        """Return ``True`` iff the error pattern ``error_mask`` is detected.

        CRC is linear: an error is undetected exactly when the error
        polynomial is a multiple of the generator, i.e. when the CRC of
        the error mask alone (with zero init) is zero.
        """
        zero_init = CRC(self.poly, self.width, init=0, name=self.name)
        return zero_init.compute(error_mask, payload_bits) != 0 if error_mask else False
