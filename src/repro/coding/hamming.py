"""SECDED extended Hamming codes.

The ARQ+ECC link protection in the paper (Section II, Fig. 1(c)) adds
redundant bits to every flit so the receiving router can perform
**single-error correction, double-error detection** (SECDED).  A corrected
flit is consumed and acknowledged (ACK); a flit with a detected-but-
uncorrectable error triggers a NACK and a per-hop retransmission from the
upstream router's ARQ buffer.

This module implements a parameterized extended Hamming code over integer
payloads of any width (e.g. (72, 64) for 64-bit words, (137, 128) for the
paper's 128-bit flits).  Encoding produces a codeword integer; decoding
classifies the received word as clean / corrected / uncorrectable and
returns the (possibly corrected) data.

The layout follows the classic hardware convention: parity bits occupy
power-of-two positions 1, 2, 4, ... of the 1-indexed codeword, data bits
fill the rest, and one extra overall-parity bit extends the code for
double-error detection.

Example
-------
>>> code = SecdedCode(data_bits=8)
>>> cw = code.encode(0b1011_0010)
>>> code.decode(cw).data == 0b1011_0010
True
>>> result = code.decode(cw ^ (1 << 3))     # flip one codeword bit
>>> result.status is DecodeStatus.CORRECTED
True
>>> result.data == 0b1011_0010
True
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

__all__ = ["DecodeStatus", "DecodeResult", "SecdedCode"]


class DecodeStatus(enum.Enum):
    """Outcome classes of a SECDED decode."""

    #: Codeword passed all checks unchanged.
    CLEAN = "clean"
    #: Exactly one bit error was detected and corrected.
    CORRECTED = "corrected"
    #: A double (even-weight) error was detected; data is unreliable.
    DETECTED = "detected"


@dataclass(frozen=True)
class DecodeResult:
    """Result of decoding one codeword.

    Attributes
    ----------
    status:
        Classification of the received word.
    data:
        Decoded data bits.  Valid for CLEAN and CORRECTED; for DETECTED it
        is the best-effort extraction and must not be trusted.
    """

    status: DecodeStatus
    data: int

    @property
    def ok(self) -> bool:
        """Whether the data can be consumed (clean or corrected)."""
        return self.status is not DecodeStatus.DETECTED


class SecdedCode:
    """Extended Hamming SECDED code for a fixed data width.

    Parameters
    ----------
    data_bits:
        Payload width in bits (``k``).  The codeword width is
        ``k + r + 1`` where ``r`` is the smallest integer with
        ``2**r >= k + r + 1``.
    """

    def __init__(self, data_bits: int) -> None:
        if data_bits <= 0:
            raise ValueError("data_bits must be positive")
        self.data_bits = data_bits
        self.parity_bits = self._required_parity_bits(data_bits)
        #: total codeword width including the overall parity bit
        self.codeword_bits = data_bits + self.parity_bits + 1
        # 1-indexed positions of data bits inside the Hamming core
        # (positions that are not powers of two).
        self._data_positions: List[int] = []
        pos = 1
        while len(self._data_positions) < data_bits:
            if pos & (pos - 1):  # not a power of two
                self._data_positions.append(pos)
            pos += 1
        self._core_bits = pos - 1  # highest used 1-indexed position
        self._parity_positions = [1 << i for i in range(self.parity_bits)]

    # ------------------------------------------------------------------
    @staticmethod
    def _required_parity_bits(data_bits: int) -> int:
        r = 1
        while (1 << r) < data_bits + r + 1:
            r += 1
        return r

    @property
    def overhead_bits(self) -> int:
        """Number of redundant bits added per payload."""
        return self.codeword_bits - self.data_bits

    @property
    def code_rate(self) -> float:
        """Fraction of the codeword that carries data."""
        return self.data_bits / self.codeword_bits

    # ------------------------------------------------------------------
    def encode(self, data: int) -> int:
        """Encode ``data`` into a SECDED codeword integer.

        Bit ``i`` of the returned integer is 1-indexed codeword position
        ``i + 1``; the overall-parity bit is the top bit.
        """
        if not 0 <= data < (1 << self.data_bits):
            raise ValueError(f"data does not fit in {self.data_bits} bits")

        core = 0
        for i, pos in enumerate(self._data_positions):
            if (data >> i) & 1:
                core |= 1 << (pos - 1)

        # Hamming parity bits: parity bit at position 2^j covers positions
        # whose 1-indexed value has bit j set.
        for j, ppos in enumerate(self._parity_positions):
            parity = 0
            for pos in range(1, self._core_bits + 1):
                if pos & ppos and (core >> (pos - 1)) & 1:
                    parity ^= 1
            if parity:
                core |= 1 << (ppos - 1)

        overall = bin(core).count("1") & 1
        return core | (overall << (self.codeword_bits - 1))

    def decode(self, codeword: int) -> DecodeResult:
        """Decode a received codeword, correcting single-bit errors."""
        if not 0 <= codeword < (1 << self.codeword_bits):
            raise ValueError(f"codeword does not fit in {self.codeword_bits} bits")

        overall_rx = (codeword >> (self.codeword_bits - 1)) & 1
        core = codeword & ((1 << (self.codeword_bits - 1)) - 1)

        syndrome = 0
        for j, ppos in enumerate(self._parity_positions):
            parity = 0
            for pos in range(1, self._core_bits + 1):
                if pos & ppos and (core >> (pos - 1)) & 1:
                    parity ^= 1
            if parity:
                syndrome |= 1 << j

        overall_calc = bin(core).count("1") & 1
        overall_ok = overall_calc == overall_rx

        if syndrome == 0 and overall_ok:
            return DecodeResult(DecodeStatus.CLEAN, self._extract(core))

        if syndrome == 0 and not overall_ok:
            # Error in the overall parity bit itself: data is intact.
            return DecodeResult(DecodeStatus.CORRECTED, self._extract(core))

        if syndrome != 0 and not overall_ok:
            # Odd number of errors; assume single and correct it.
            if syndrome <= self._core_bits:
                core ^= 1 << (syndrome - 1)
                return DecodeResult(DecodeStatus.CORRECTED, self._extract(core))
            # Syndrome points outside the codeword: multi-bit error.
            return DecodeResult(DecodeStatus.DETECTED, self._extract(core))

        # syndrome != 0 and overall parity consistent: double error.
        return DecodeResult(DecodeStatus.DETECTED, self._extract(core))

    # ------------------------------------------------------------------
    def _extract(self, core: int) -> int:
        data = 0
        for i, pos in enumerate(self._data_positions):
            if (core >> (pos - 1)) & 1:
                data |= 1 << i
        return data
