"""Error-control-coding substrate: CRC, SECDED Hamming, and ARQ.

These are the building blocks of the three link-protection schemes the
paper compares (CRC end-to-end, ARQ+ECC per hop, and the proposed
dynamically-switched design).
"""

from repro.coding.arq import AckKind, AckMessage, ArqError, RetransmissionBuffer
from repro.coding.crc import CRC
from repro.coding.hamming import DecodeResult, DecodeStatus, SecdedCode

__all__ = [
    "AckKind",
    "AckMessage",
    "ArqError",
    "RetransmissionBuffer",
    "CRC",
    "DecodeResult",
    "DecodeStatus",
    "SecdedCode",
]
