"""Tabular Q-learning (Section IV-A).

The paper uses the classic tabular algorithm [Sutton & Barto]: a
state-action mapping table per router, updated with the temporal-
difference rule

    Q(s, a) <- (1 - alpha) Q(s, a) + alpha [r + gamma max_a' Q(s', a')]

with alpha = 0.1, gamma = 0.5, epsilon-greedy exploration at
epsilon = 0.1, and Q initialized to zero (Section IV-C).  The table is a
dictionary keyed by the discretized state tuple, so only visited states
occupy memory — the hardware analogue is the per-router SRAM Q-table
whose area the paper budgets at 2360 um^2 together with the update ALU.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, List, Optional, Tuple

__all__ = ["QLearningAgent"]

State = Hashable


class QLearningAgent:
    """One tabular Q-learning agent over a fixed discrete action set."""

    def __init__(
        self,
        num_actions: int,
        alpha: float = 0.1,
        gamma: float = 0.5,
        epsilon: float = 0.1,
        q_init: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if num_actions <= 0:
            raise ValueError("need at least one action")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if not 0.0 <= gamma <= 1.0:
            raise ValueError("gamma must be in [0, 1]")
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        self.num_actions = num_actions
        self.alpha = alpha
        self.gamma = gamma
        self.epsilon = epsilon
        self.q_init = q_init
        self.rng = rng if rng is not None else random.Random(0)
        self._table: Dict[State, List[float]] = {}
        self.updates = 0

    # ------------------------------------------------------------------
    def _row(self, state: State) -> List[float]:
        row = self._table.get(state)
        if row is None:
            row = [self.q_init] * self.num_actions
            self._table[state] = row
        return row

    def q_values(self, state: State) -> Tuple[float, ...]:
        """Current Q-values of a state (zeros if unvisited)."""
        return tuple(self._table.get(state, [self.q_init] * self.num_actions))

    def best_action(self, state: State) -> int:
        """Greedy action; exact ties are broken uniformly at random so a
        fresh state does not systematically favour action 0."""
        row = self._table.get(state)
        if row is None:
            return self.rng.randrange(self.num_actions)
        best = max(row)
        winners = [a for a, q in enumerate(row) if q == best]
        if len(winners) == 1:
            return winners[0]
        return winners[self.rng.randrange(len(winners))]

    def select_action(self, state: State) -> int:
        """Epsilon-greedy action selection."""
        if self.epsilon > 0.0 and self.rng.random() < self.epsilon:
            return self.rng.randrange(self.num_actions)
        return self.best_action(state)

    def update(self, state: State, action: int, reward: float, next_state: State) -> None:
        """Apply the temporal-difference rule (paper equation 2)."""
        if not 0 <= action < self.num_actions:
            raise ValueError(f"action {action} outside the action space")
        row = self._row(state)
        bootstrap = max(self._row(next_state))
        row[action] = (1.0 - self.alpha) * row[action] + self.alpha * (
            reward + self.gamma * bootstrap
        )
        self.updates += 1

    # ------------------------------------------------------------------
    @property
    def states_visited(self) -> int:
        return len(self._table)

    def greedy_policy(self) -> Dict[State, int]:
        """Snapshot of the current greedy policy over visited states."""
        return {state: self.best_action(state) for state in self._table}

    def set_epsilon(self, epsilon: float) -> None:
        """Adjust exploration (e.g. anneal to 0 after pre-training)."""
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        self.epsilon = epsilon

    def set_alpha(self, alpha: float) -> None:
        """Adjust the learning rate (the paper notes alpha may be reduced
        over time to aid convergence)."""
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
