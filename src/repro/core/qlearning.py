"""Tabular Q-learning (Section IV-A).

The paper uses the classic tabular algorithm [Sutton & Barto]: a
state-action mapping table per router, updated with the temporal-
difference rule

    Q(s, a) <- (1 - alpha) Q(s, a) + alpha [r + gamma max_a' Q(s', a')]

with alpha = 0.1, gamma = 0.5, epsilon-greedy exploration at
epsilon = 0.1, and Q initialized to zero (Section IV-C).  The table is a
dictionary keyed by the discretized state tuple, so only visited states
occupy memory — the hardware analogue is the per-router SRAM Q-table
whose area the paper budgets at 2360 um^2 together with the update ALU.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Hashable, List, Optional, Tuple

__all__ = ["AgentStateError", "QLearningAgent"]

State = Hashable


class AgentStateError(ValueError):
    """A serialized Q-table failed validation (NaN/inf values, wrong
    action count, malformed rows).  Callers treat the table as lost and
    fall back to safe-mode control rather than loading poison."""


class QLearningAgent:
    """One tabular Q-learning agent over a fixed discrete action set."""

    def __init__(
        self,
        num_actions: int,
        alpha: float = 0.1,
        gamma: float = 0.5,
        epsilon: float = 0.1,
        q_init: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if num_actions <= 0:
            raise ValueError("need at least one action")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if not 0.0 <= gamma <= 1.0:
            raise ValueError("gamma must be in [0, 1]")
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        self.num_actions = num_actions
        self.alpha = alpha
        self.gamma = gamma
        self.epsilon = epsilon
        self.q_init = q_init
        self.rng = rng if rng is not None else random.Random(0)
        self._table: Dict[State, List[float]] = {}
        self.updates = 0

    # ------------------------------------------------------------------
    def _row(self, state: State) -> List[float]:
        row = self._table.get(state)
        if row is None:
            row = [self.q_init] * self.num_actions
            self._table[state] = row
        return row

    def q_values(self, state: State) -> Tuple[float, ...]:
        """Current Q-values of a state (zeros if unvisited)."""
        return tuple(self._table.get(state, [self.q_init] * self.num_actions))

    def best_action(self, state: State) -> int:
        """Greedy action; exact ties are broken uniformly at random so a
        fresh state does not systematically favour action 0."""
        row = self._table.get(state)
        if row is None:
            return self.rng.randrange(self.num_actions)
        best = max(row)
        winners = [a for a, q in enumerate(row) if q == best]
        if len(winners) == 1:
            return winners[0]
        return winners[self.rng.randrange(len(winners))]

    def select_action(self, state: State) -> int:
        """Epsilon-greedy action selection."""
        if self.epsilon > 0.0 and self.rng.random() < self.epsilon:
            return self.rng.randrange(self.num_actions)
        return self.best_action(state)

    def update(self, state: State, action: int, reward: float, next_state: State) -> None:
        """Apply the temporal-difference rule (paper equation 2)."""
        if not 0 <= action < self.num_actions:
            raise ValueError(f"action {action} outside the action space")
        row = self._row(state)
        bootstrap = max(self._row(next_state))
        row[action] = (1.0 - self.alpha) * row[action] + self.alpha * (
            reward + self.gamma * bootstrap
        )
        self.updates += 1

    # ------------------------------------------------------------------
    @property
    def states_visited(self) -> int:
        return len(self._table)

    def greedy_policy(self) -> Dict[State, int]:
        """Snapshot of the current greedy policy over visited states."""
        return {state: self.best_action(state) for state in self._table}

    def set_epsilon(self, epsilon: float) -> None:
        """Adjust exploration (e.g. anneal to 0 after pre-training)."""
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        self.epsilon = epsilon

    def set_alpha(self, alpha: float) -> None:
        """Adjust the learning rate (the paper notes alpha may be reduced
        over time to aid convergence)."""
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha

    # ------------------------------------------------------------------
    # Durable state (checkpoint/resume)
    # ------------------------------------------------------------------
    def to_state(self) -> Dict[str, object]:
        """Serializable snapshot of everything the agent has learned.

        The snapshot carries the hyper-parameters, the full Q-table, the
        update counter, and the exploration RNG state, so
        ``from_state(to_state())`` resumes action selection and learning
        bit-identically to the original agent.
        """
        return {
            "num_actions": self.num_actions,
            "alpha": self.alpha,
            "gamma": self.gamma,
            "epsilon": self.epsilon,
            "q_init": self.q_init,
            "updates": self.updates,
            "rng_state": self.rng.getstate(),
            "table": {state: list(row) for state, row in self._table.items()},
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "QLearningAgent":
        """Rebuild an agent from :meth:`to_state`, rejecting poison.

        Raises :class:`AgentStateError` when the snapshot is malformed,
        carries NaN/inf Q-values, or its rows do not match the declared
        action count — a corrupted table must never drive a live router.
        """
        if not isinstance(state, dict):
            raise AgentStateError(f"agent state must be a dict, got {type(state).__name__}")
        try:
            num_actions = int(state["num_actions"])
            table = state["table"]
        except (KeyError, TypeError, ValueError) as exc:
            raise AgentStateError(f"agent state missing required field: {exc}") from None
        if num_actions <= 0:
            raise AgentStateError(f"invalid action count {num_actions}")
        if not isinstance(table, dict):
            raise AgentStateError("Q-table must be a dict of state -> row")
        validated: Dict[State, List[float]] = {}
        for key, row in table.items():
            if not isinstance(row, (list, tuple)) or len(row) != num_actions:
                raise AgentStateError(
                    f"Q-row for state {key!r} has {len(row) if isinstance(row, (list, tuple)) else 'non-sequence'} "
                    f"entries, expected {num_actions}"
                )
            values = []
            for q in row:
                q = float(q)
                if not math.isfinite(q):
                    raise AgentStateError(f"non-finite Q-value {q!r} for state {key!r}")
                values.append(q)
            validated[key] = values
        try:
            agent = cls(
                num_actions=num_actions,
                alpha=float(state.get("alpha", 0.1)),
                gamma=float(state.get("gamma", 0.5)),
                epsilon=float(state.get("epsilon", 0.1)),
                q_init=float(state.get("q_init", 0.0)),
            )
        except ValueError as exc:
            raise AgentStateError(f"invalid hyper-parameters: {exc}") from None
        agent._table = validated
        agent.updates = int(state.get("updates", 0))
        rng_state = state.get("rng_state")
        if rng_state is not None:
            try:
                agent.rng.setstate(rng_state)
            except (TypeError, ValueError) as exc:
                raise AgentStateError(f"invalid RNG state: {exc}") from None
        return agent
