"""Tabular Q-learning (Section IV-A).

The paper uses the classic tabular algorithm [Sutton & Barto]: a
state-action mapping table per router, updated with the temporal-
difference rule

    Q(s, a) <- (1 - alpha) Q(s, a) + alpha [r + gamma max_a' Q(s', a')]

with alpha = 0.1, gamma = 0.5, epsilon-greedy exploration at
epsilon = 0.1, and Q initialized to zero (Section IV-C).  The table is a
dictionary keyed by the discretized state tuple, so only visited states
occupy memory — the hardware analogue is the per-router SRAM Q-table
whose area the paper budgets at 2360 um^2 together with the update ALU.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Hashable, List, Optional, Tuple

from repro.coding.hamming import DecodeStatus, SecdedCode

__all__ = ["AgentStateError", "QLearningAgent", "QTableStorage"]

State = Hashable


class AgentStateError(ValueError):
    """A serialized Q-table failed validation (NaN/inf values, wrong
    action count, malformed rows).  Callers treat the table as lost and
    fall back to safe-mode control rather than loading poison."""


class QTableStorage:
    """Fixed-point SRAM backing store for one agent's Q-table.

    The paper budgets the Q-table as per-router SRAM, and SRAM takes
    single-event upsets (:mod:`repro.faults.softerrors`).  This layer
    models the physical storage so upsets have somewhere real to land:
    every Q-entry is a signed :attr:`DATA_BITS`-bit fixed-point word
    (:attr:`FRAC_BITS` fractional bits, saturating), stored either as a
    SECDED codeword (``ecc=True``, the defended layout — 39 bits per
    32-bit word via :class:`repro.coding.hamming.SecdedCode`) or as the
    raw word (``ecc=False``, the ``--no-ecc`` strawman).

    Contract with the owning :class:`QLearningAgent`:

    * The agent's float ``_table`` becomes a decoded *cache* of this
      store: every write is quantized, encoded, stored, and the
      quantized value written back to the cache, so the learning loop
      always sees exactly what the SRAM holds.  Reads stay plain dict
      lookups — zero overhead on the hot path.
    * :meth:`flip_bit` (the SEU injection point) corrupts the stored
      word and refreshes the cache with its *decoded* view: under ECC a
      single-bit error decodes to the original data (corrected on read,
      invisible to behaviour, not tallied); without ECC the corrupted
      word's value lands straight in the cache and drives the policy.
    * :meth:`scrub` is the periodic repair pass: it re-checks every
      word flipped since the last scrub (writes always store valid
      codewords, so only flips can dirty a word — checking the dirty
      set is outcome-identical to walking the whole memory), corrects
      and re-encodes single-bit errors, and quarantines rows holding
      uncorrectable words by re-initializing them to ``q_init`` —
      the learned row is lost, never silently wrong.

    Everything (words, tallies, dirty set) pickles with the agent, and
    :meth:`to_state`/:meth:`from_state` carry the codewords verbatim, so
    checkpointed campaigns resume bit-identically mid-corruption.
    """

    DATA_BITS = 32
    FRAC_BITS = 10
    #: quarantined rows before the owning router should degrade to safe mode
    QUARANTINE_LIMIT = 4

    _SCALE = 1 << FRAC_BITS
    _WORD_MAX = (1 << (DATA_BITS - 1)) - 1
    _WORD_MIN = -(1 << (DATA_BITS - 1))

    def __init__(self, ecc: bool = True) -> None:
        self.ecc = ecc
        self.code: Optional[SecdedCode] = SecdedCode(self.DATA_BITS) if ecc else None
        self.word_bits = self.code.codeword_bits if ecc else self.DATA_BITS
        self.agent: Optional["QLearningAgent"] = None
        self.num_actions = 0
        #: stored words per state row (codewords with ECC, raw without)
        self._words: Dict[State, List[int]] = {}
        #: row keys in insertion order, for O(1) global bit addressing
        self._row_order: List[State] = []
        #: (state, action) words flipped since the last scrub, in order
        self._dirty: List[Tuple[State, int]] = []
        self._dirty_set: set = set()
        # cumulative tallies (mirrored into the run's metric registry)
        self.corrected = 0
        self.detected = 0
        self.quarantined_rows = 0
        self.scrubs = 0

    # ------------------------------------------------------------------
    # fixed-point codec
    # ------------------------------------------------------------------
    @classmethod
    def quantize(cls, value: float) -> float:
        """Value as actually representable in the fixed-point word."""
        if math.isnan(value):
            value = 0.0
        word = int(round(min(max(value * cls._SCALE, cls._WORD_MIN), cls._WORD_MAX)))
        return word / cls._SCALE

    def _encode(self, value: float) -> int:
        word = int(round(min(max(value * self._SCALE, self._WORD_MIN), self._WORD_MAX)))
        unsigned = word & ((1 << self.DATA_BITS) - 1)
        return self.code.encode(unsigned) if self.ecc else unsigned

    def _data_value(self, data: int) -> float:
        if data >= 1 << (self.DATA_BITS - 1):
            data -= 1 << self.DATA_BITS
        return data / self._SCALE

    def _decode(self, stored: int) -> float:
        """Best-effort value of a stored word (the read-path view)."""
        if not self.ecc:
            return self._data_value(stored)
        return self._data_value(self.code.decode(stored).data)

    # ------------------------------------------------------------------
    # agent-facing writes
    # ------------------------------------------------------------------
    def bind(self, agent: "QLearningAgent") -> None:
        """Adopt an agent: encode its existing rows and take over writes."""
        self.agent = agent
        self.num_actions = agent.num_actions
        for state in list(agent._table):
            agent._table[state] = self.init_row(state, agent._table[state])

    def init_row(self, state: State, values: List[float]) -> List[float]:
        """Store a fresh row; returns the quantized cache row."""
        if state not in self._words:
            self._row_order.append(state)
        self._words[state] = [self._encode(v) for v in values]
        return [self.quantize(v) for v in values]

    def store(self, state: State, action: int, value: float) -> float:
        """Store one Q-write; returns the quantized value for the cache."""
        self._words[state][action] = self._encode(value)
        return self.quantize(value)

    # ------------------------------------------------------------------
    # SEU injection surface
    # ------------------------------------------------------------------
    def bit_count(self) -> int:
        """Total stored bits, the SEU model's address space."""
        return len(self._row_order) * self.num_actions * self.word_bits

    def flip_bit(self, index: int) -> Tuple[State, int]:
        """Flip one stored bit by global index; returns the word's key."""
        word_index, bit = divmod(index, self.word_bits)
        row_index, action = divmod(word_index, self.num_actions)
        state = self._row_order[row_index]
        self._words[state][action] ^= 1 << bit
        key = (state, action)
        if key not in self._dirty_set:
            self._dirty_set.add(key)
            self._dirty.append(key)
        # The cache tracks the (decoded) SRAM contents, corruption included.
        self.agent._table[state][action] = self._decode(self._words[state][action])
        return key

    # ------------------------------------------------------------------
    # scrub pass (the defense)
    # ------------------------------------------------------------------
    def scrub(self) -> Dict[str, int]:
        """Check and repair every word dirtied since the last scrub.

        Single-bit errors are corrected in place and re-encoded;
        uncorrectable words quarantine their whole row back to
        ``q_init``.  Returns this pass's tallies; cumulative counts
        accumulate on the instance.  Without ECC there is nothing to
        check — the pass only advances the scrub counter.
        """
        stats = {"corrected": 0, "detected": 0, "quarantined_rows": 0}
        self.scrubs += 1
        if not self.ecc:
            self._dirty.clear()
            self._dirty_set.clear()
            return stats
        q_init = self.quantize(self.agent.q_init)
        for state, action in self._dirty:
            result = self.code.decode(self._words[state][action])
            if result.status is DecodeStatus.CLEAN:
                continue
            if result.status is DecodeStatus.CORRECTED:
                self._words[state][action] = self.code.encode(result.data)
                self.agent._table[state][action] = self._data_value(result.data)
                stats["corrected"] += 1
                continue
            # DETECTED: the word is unrecoverable — lose the row loudly.
            self._words[state] = [self._encode(q_init)] * self.num_actions
            self.agent._table[state] = [q_init] * self.num_actions
            stats["detected"] += 1
            stats["quarantined_rows"] += 1
        self._dirty.clear()
        self._dirty_set.clear()
        self.corrected += stats["corrected"]
        self.detected += stats["detected"]
        self.quarantined_rows += stats["quarantined_rows"]
        return stats

    # ------------------------------------------------------------------
    # durable state
    # ------------------------------------------------------------------
    def to_state(self) -> Dict[str, object]:
        """Codewords + tallies, verbatim — resumes mid-corruption."""
        return {
            "ecc": self.ecc,
            "frac_bits": self.FRAC_BITS,
            "words": {state: list(row) for state, row in self._words.items()},
            "dirty": list(self._dirty),
            "corrected": self.corrected,
            "detected": self.detected,
            "quarantined_rows": self.quarantined_rows,
            "scrubs": self.scrubs,
        }

    @classmethod
    def from_state(
        cls, state: Dict[str, object], agent: "QLearningAgent"
    ) -> "QTableStorage":
        """Rebuild a storage snapshot and attach it to ``agent``.

        The float cache is recomputed by decoding the stored words, so a
        snapshot taken mid-corruption (flipped, not yet scrubbed) resumes
        with the cache bit-identical to the original process.
        """
        if int(state.get("frac_bits", cls.FRAC_BITS)) != cls.FRAC_BITS:
            raise AgentStateError(
                f"storage fixed-point layout mismatch: snapshot has "
                f"{state.get('frac_bits')} fractional bits, expected {cls.FRAC_BITS}"
            )
        storage = cls(ecc=bool(state.get("ecc", True)))
        storage.agent = agent
        storage.num_actions = agent.num_actions
        words = state.get("words", {})
        if not isinstance(words, dict):
            raise AgentStateError("storage words must be a dict of state -> row")
        limit = 1 << storage.word_bits
        for key, row in words.items():
            if not isinstance(row, (list, tuple)) or len(row) != agent.num_actions:
                raise AgentStateError(f"storage row for state {key!r} is malformed")
            clean: List[int] = []
            for word in row:
                word = int(word)
                if not 0 <= word < limit:
                    raise AgentStateError(
                        f"stored word {word!r} does not fit in {storage.word_bits} bits"
                    )
                clean.append(word)
            storage._words[key] = clean
            storage._row_order.append(key)
        for key in state.get("dirty", []):
            pair = (key[0], int(key[1]))
            if pair[0] in storage._words and pair not in storage._dirty_set:
                storage._dirty_set.add(pair)
                storage._dirty.append(pair)
        storage.corrected = int(state.get("corrected", 0))
        storage.detected = int(state.get("detected", 0))
        storage.quarantined_rows = int(state.get("quarantined_rows", 0))
        storage.scrubs = int(state.get("scrubs", 0))
        agent.storage = storage
        agent._table = {
            s: [storage._decode(w) for w in row] for s, row in storage._words.items()
        }
        return storage


class QLearningAgent:
    """One tabular Q-learning agent over a fixed discrete action set."""

    def __init__(
        self,
        num_actions: int,
        alpha: float = 0.1,
        gamma: float = 0.5,
        epsilon: float = 0.1,
        q_init: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if num_actions <= 0:
            raise ValueError("need at least one action")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if not 0.0 <= gamma <= 1.0:
            raise ValueError("gamma must be in [0, 1]")
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        self.num_actions = num_actions
        self.alpha = alpha
        self.gamma = gamma
        self.epsilon = epsilon
        self.q_init = q_init
        self.rng = rng if rng is not None else random.Random(0)
        self._table: Dict[State, List[float]] = {}
        self.updates = 0
        #: optional fixed-point/ECC backing store (soft-error campaigns);
        #: ``None`` keeps the plain float table bit-identical to before
        self.storage: Optional[QTableStorage] = None

    # ------------------------------------------------------------------
    def attach_storage(self, storage: QTableStorage) -> None:
        """Back this agent's table with a :class:`QTableStorage`."""
        self.storage = storage
        storage.bind(self)

    def _row(self, state: State) -> List[float]:
        row = self._table.get(state)
        if row is None:
            row = [self.q_init] * self.num_actions
            if self.storage is not None:
                row = self.storage.init_row(state, row)
            self._table[state] = row
        return row

    def q_values(self, state: State) -> Tuple[float, ...]:
        """Current Q-values of a state (zeros if unvisited)."""
        return tuple(self._table.get(state, [self.q_init] * self.num_actions))

    def best_action(self, state: State) -> int:
        """Greedy action; exact ties are broken uniformly at random so a
        fresh state does not systematically favour action 0."""
        row = self._table.get(state)
        if row is None:
            return self.rng.randrange(self.num_actions)
        best = max(row)
        winners = [a for a, q in enumerate(row) if q == best]
        if len(winners) == 1:
            return winners[0]
        return winners[self.rng.randrange(len(winners))]

    def select_action(self, state: State) -> int:
        """Epsilon-greedy action selection."""
        if self.epsilon > 0.0 and self.rng.random() < self.epsilon:
            return self.rng.randrange(self.num_actions)
        return self.best_action(state)

    def update(self, state: State, action: int, reward: float, next_state: State) -> None:
        """Apply the temporal-difference rule (paper equation 2)."""
        if not 0 <= action < self.num_actions:
            raise ValueError(f"action {action} outside the action space")
        row = self._row(state)
        bootstrap = max(self._row(next_state))
        value = (1.0 - self.alpha) * row[action] + self.alpha * (
            reward + self.gamma * bootstrap
        )
        if self.storage is not None:
            # Write-through: the cache keeps exactly what the SRAM holds,
            # so learning dynamics see the quantized value, not the ideal.
            value = self.storage.store(state, action, value)
        row[action] = value
        self.updates += 1

    # ------------------------------------------------------------------
    @property
    def states_visited(self) -> int:
        return len(self._table)

    def greedy_policy(self) -> Dict[State, int]:
        """Snapshot of the current greedy policy over visited states."""
        return {state: self.best_action(state) for state in self._table}

    def set_epsilon(self, epsilon: float) -> None:
        """Adjust exploration (e.g. anneal to 0 after pre-training)."""
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        self.epsilon = epsilon

    def set_alpha(self, alpha: float) -> None:
        """Adjust the learning rate (the paper notes alpha may be reduced
        over time to aid convergence)."""
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha

    # ------------------------------------------------------------------
    # Durable state (checkpoint/resume)
    # ------------------------------------------------------------------
    def to_state(self) -> Dict[str, object]:
        """Serializable snapshot of everything the agent has learned.

        The snapshot carries the hyper-parameters, the full Q-table, the
        update counter, and the exploration RNG state, so
        ``from_state(to_state())`` resumes action selection and learning
        bit-identically to the original agent.
        """
        state: Dict[str, object] = {
            "num_actions": self.num_actions,
            "alpha": self.alpha,
            "gamma": self.gamma,
            "epsilon": self.epsilon,
            "q_init": self.q_init,
            "updates": self.updates,
            "rng_state": self.rng.getstate(),
            "table": {state: list(row) for state, row in self._table.items()},
        }
        if self.storage is not None:
            state["storage"] = self.storage.to_state()
        return state

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "QLearningAgent":
        """Rebuild an agent from :meth:`to_state`, rejecting poison.

        Raises :class:`AgentStateError` when the snapshot is malformed,
        carries NaN/inf Q-values, or its rows do not match the declared
        action count — a corrupted table must never drive a live router.
        """
        if not isinstance(state, dict):
            raise AgentStateError(f"agent state must be a dict, got {type(state).__name__}")
        try:
            num_actions = int(state["num_actions"])
            table = state["table"]
        except (KeyError, TypeError, ValueError) as exc:
            raise AgentStateError(f"agent state missing required field: {exc}") from None
        if num_actions <= 0:
            raise AgentStateError(f"invalid action count {num_actions}")
        if not isinstance(table, dict):
            raise AgentStateError("Q-table must be a dict of state -> row")
        validated: Dict[State, List[float]] = {}
        for key, row in table.items():
            if not isinstance(row, (list, tuple)) or len(row) != num_actions:
                raise AgentStateError(
                    f"Q-row for state {key!r} has {len(row) if isinstance(row, (list, tuple)) else 'non-sequence'} "
                    f"entries, expected {num_actions}"
                )
            values = []
            for q in row:
                q = float(q)
                if not math.isfinite(q):
                    raise AgentStateError(f"non-finite Q-value {q!r} for state {key!r}")
                values.append(q)
            validated[key] = values
        try:
            agent = cls(
                num_actions=num_actions,
                alpha=float(state.get("alpha", 0.1)),
                gamma=float(state.get("gamma", 0.5)),
                epsilon=float(state.get("epsilon", 0.1)),
                q_init=float(state.get("q_init", 0.0)),
            )
        except ValueError as exc:
            raise AgentStateError(f"invalid hyper-parameters: {exc}") from None
        agent._table = validated
        agent.updates = int(state.get("updates", 0))
        rng_state = state.get("rng_state")
        if rng_state is not None:
            try:
                agent.rng.setstate(rng_state)
            except (TypeError, ValueError) as exc:
                raise AgentStateError(f"invalid RNG state: {exc}") from None
        storage_state = state.get("storage")
        if storage_state is not None:
            if not isinstance(storage_state, dict):
                raise AgentStateError("storage state must be a dict")
            # Restores the codewords verbatim and rebuilds the float
            # cache from them, overriding the validated table copy above.
            QTableStorage.from_state(storage_state, agent)
        return agent
