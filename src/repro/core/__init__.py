"""The paper's primary contribution: the proactive fault-tolerant scheme
(four operation modes) and its RL-based per-router control policy."""

from repro.core.controller import ControlPolicy, compute_reward
from repro.core.modes import MODE_BEHAVIOUR, ModeBehaviour, OperationMode
from repro.core.qlearning import QLearningAgent
from repro.core.rl_policy import RLControlPolicy
from repro.core.state import DiscretizationConfig, RouterObservation, observe_router

__all__ = [
    "ControlPolicy",
    "compute_reward",
    "MODE_BEHAVIOUR",
    "ModeBehaviour",
    "OperationMode",
    "QLearningAgent",
    "RLControlPolicy",
    "DiscretizationConfig",
    "RouterObservation",
    "observe_router",
]
