"""The proposed RL-based fault-tolerant control policy (Section IV).

Per-router tabular Q-learning agents observe the discretized Table I
state, pick one of the four operation modes epsilon-greedily from their
state-action mapping table, and update the table with the reward
``1 / (E2E_latency x Power)`` at every control epoch.  Initialization
follows Section IV-C: Q = 0, alpha = 0.1, gamma = 0.5, epsilon = 0.1,
all routers starting in mode 0.

``share_table=True`` lets all routers update one common Q-table.  The
paper's agents are strictly per-router (the default); sharing is a
documented scaled-down-run accelerator — 64 routers then contribute
experience to the same table, converging in proportionally fewer epochs
while learning the same state -> mode mapping, since the state already
encodes everything router-specific the reward depends on.
"""

from __future__ import annotations

import logging
import random
from typing import Dict, List, Optional, Set

from repro.core.controller import ControlPolicy
from repro.core.modes import OperationMode
from repro.core.qlearning import AgentStateError, QLearningAgent, QTableStorage
from repro.core.state import RouterObservation
from repro.power.orion import DesignPowerProfile

__all__ = ["RLControlPolicy", "SAFE_MODE"]

logger = logging.getLogger("repro.core.rl_policy")

#: The conservative fallback: mode 3 (timing relaxation) makes errors and
#: retransmissions essentially vanish at a known latency cost — the right
#: posture for a router whose learned table is lost or suspect.
SAFE_MODE = OperationMode.MODE_3


class RLControlPolicy(ControlPolicy):
    """Per-router Q-learning over the four fault-tolerant modes."""

    def __init__(
        self,
        alpha: float = 0.1,
        gamma: float = 0.5,
        epsilon: float = 0.02,
        pretrain_alpha: float = 0.2,
        pretrain_epsilon: float = 0.4,
        share_table: bool = False,
        seed: int = 0,
    ) -> None:
        """``alpha`` is the paper's testing-phase value; ``epsilon``
        defaults well below the paper's 0.1 because in the scaled error
        regime a single explored mode-0 epoch on a 90 C router costs a
        burst of end-to-end retransmissions that a short measurement
        window cannot amortize (set 0.1 for the literal configuration).
        ``pretrain_alpha``/``pretrain_epsilon`` apply during the synthetic
        pre-training phase and are annealed down at :meth:`freeze`.  The
        paper notes the learning rate "can be reduced over time"
        (Section IV-A); the aggressive pre-training exploration is the
        scaled-run counterpart of its 1M-cycle synthetic phase — without
        it, epsilon-greedy at 0.1 cannot overcome the pessimistic Q=0
        initialization within a shortened run."""
        self.profile = DesignPowerProfile.rl()
        self.alpha = alpha
        self.gamma = gamma
        self.epsilon = epsilon
        self.pretrain_alpha = pretrain_alpha
        self.pretrain_epsilon = pretrain_epsilon
        self.share_table = share_table
        self.seed = seed
        self._agents: List[QLearningAgent] = []
        #: routers degraded to SAFE_MODE (rejected table / invariant trip)
        self.safe_mode_routers: Set[int] = set()
        #: structured log of every degradation, for reports and tests
        self.safe_mode_events: List[Dict[str, object]] = []

    # ------------------------------------------------------------------
    @property
    def trainable(self) -> bool:
        return True

    def reset(self, num_routers: int) -> None:
        if num_routers <= 0:
            raise ValueError("need at least one router")
        if self._agents and len(self._agents) == num_routers:
            # Keep the learned tables: a policy pre-trained on synthetic
            # traffic is reused across benchmark runs (it keeps adapting
            # online), mirroring the paper's pretrain-once-then-test flow
            # without repaying the pre-training phase per benchmark.
            return
        if self.share_table:
            shared = QLearningAgent(
                num_actions=len(OperationMode),
                alpha=self.pretrain_alpha,
                gamma=self.gamma,
                epsilon=self.pretrain_epsilon,
                rng=random.Random(self.seed),
            )
            self._agents = [shared] * num_routers
        else:
            self._agents = [
                QLearningAgent(
                    num_actions=len(OperationMode),
                    alpha=self.pretrain_alpha,
                    gamma=self.gamma,
                    epsilon=self.pretrain_epsilon,
                    rng=random.Random(self.seed + i),
                )
                for i in range(num_routers)
            ]

    def _agent(self, router_id: int) -> QLearningAgent:
        if not self._agents:
            raise RuntimeError("policy not reset for a router count")
        return self._agents[router_id]

    # ------------------------------------------------------------------
    def select(self, router_id: int, observation: RouterObservation) -> OperationMode:
        if router_id in self.safe_mode_routers:
            return SAFE_MODE
        if observation is None or not observation.discrete:
            # A missing or undiscretizable observation (telemetry path
            # failure upstream of the guard) gets the conservative mode
            # for one epoch rather than an arbitrary Q-table row.
            return SAFE_MODE
        action = self._agent(router_id).select_action(observation.discrete)
        return OperationMode(action)

    def q_values(self, router_id: int, state) -> Optional[tuple]:
        """Read-only Q-row for telemetry; never touches the RNG."""
        if not self._agents:
            return None
        return self._agent(router_id).q_values(state)

    def learn(
        self,
        router_id: int,
        observation: RouterObservation,
        action: OperationMode,
        reward: float,
        next_observation: RouterObservation,
    ) -> None:
        if router_id in self.safe_mode_routers:
            # A degraded router is pinned, not learning: its table is
            # gone or suspect, and feeding it transitions taken under
            # forced SAFE_MODE would only bake the degradation in.
            return
        if (
            observation is None
            or next_observation is None
            or not observation.discrete
            or not next_observation.discrete
        ):
            # Never learn from a transition whose endpoints are missing:
            # a corrupted observation must not write into the Q-table.
            return
        self._agent(router_id).update(
            observation.discrete, int(action), reward, next_observation.discrete
        )

    def freeze(self) -> None:
        """End of pre-training: anneal to the paper's testing-phase
        parameters (alpha = 0.1, epsilon = 0.1).  The policy keeps
        learning and exploring during testing, exactly as the paper
        describes — only the DT baseline actually freezes its model."""
        for agent in self._unique_agents():
            agent.set_alpha(self.alpha)
            agent.set_epsilon(self.epsilon)

    def _unique_agents(self) -> List[QLearningAgent]:
        seen: Dict[int, QLearningAgent] = {}
        for agent in self._agents:
            seen[id(agent)] = agent
        return list(seen.values())

    # ------------------------------------------------------------------
    # Soft-error surface: fixed-point/ECC Q-table storage
    # ------------------------------------------------------------------
    def attach_q_storages(self, ecc: bool = True) -> List[QTableStorage]:
        """Back every unique agent's table with a :class:`QTableStorage`.

        Idempotent; call after :meth:`reset`.  With per-router agents the
        returned list is aligned with router ids; with ``share_table``
        there is a single storage serving every router.
        """
        storages: List[QTableStorage] = []
        for agent in self._unique_agents():
            if agent.storage is None:
                agent.attach_storage(QTableStorage(ecc=ecc))
            storages.append(agent.storage)
        return storages

    def q_storages(self) -> List[QTableStorage]:
        return [a.storage for a in self._unique_agents() if a.storage is not None]

    # ------------------------------------------------------------------
    # Resilience: safe-mode degradation and durable state
    # ------------------------------------------------------------------
    def enter_safe_mode(self, router_id: int, reason: str) -> bool:
        """Pin ``router_id`` to SAFE_MODE and log the degradation.

        Called when the router's loaded Q-table was rejected or a
        runtime invariant watchdog tripped mid-epoch.  Idempotent.
        """
        if router_id not in self.safe_mode_routers:
            self.safe_mode_routers.add(router_id)
            self.safe_mode_events.append(
                {"router": router_id, "mode": int(SAFE_MODE), "reason": reason}
            )
            logger.warning(
                "router %d degraded to mode %d (safe mode): %s",
                router_id, int(SAFE_MODE), reason,
            )
        return True

    def to_state(self) -> Dict[str, object]:
        """Durable snapshot: hyper-parameters plus every agent's table.

        With ``share_table`` the single shared agent is stored once and
        re-fanned-out on load, mirroring :meth:`reset`.
        """
        agents = self._unique_agents()
        return {
            "policy": self.name,
            "share_table": self.share_table,
            "num_routers": len(self._agents),
            "seed": self.seed,
            "safe_mode_routers": sorted(self.safe_mode_routers),
            "agents": [agent.to_state() for agent in agents],
        }

    def load_state(self, state: Optional[Dict[str, object]]) -> None:
        """Restore a :meth:`to_state` snapshot, degrading instead of dying.

        Every agent table is validated through
        :meth:`QLearningAgent.from_state`; a rejected table does not
        raise — the affected router(s) are pinned to SAFE_MODE via
        :meth:`enter_safe_mode` and keep running with a fresh table, so
        one corrupted row cannot take down a resumed run.
        """
        if not state:
            return
        num_routers = int(state.get("num_routers", 0))
        if num_routers <= 0:
            return
        self.share_table = bool(state.get("share_table", self.share_table))
        self.safe_mode_routers = set()
        self.safe_mode_events = []
        agent_states = state.get("agents", [])
        self._agents = []
        self.reset(num_routers)

        def restore(index: int, agent_state, routers: List[int]) -> Optional[QLearningAgent]:
            try:
                return QLearningAgent.from_state(agent_state)
            except AgentStateError as exc:
                for router_id in routers:
                    self.enter_safe_mode(router_id, f"rejected Q-table: {exc}")
                return None

        if self.share_table:
            if agent_states:
                agent = restore(0, agent_states[0], list(range(num_routers)))
                if agent is not None:
                    self._agents = [agent] * num_routers
        else:
            for i, agent_state in enumerate(agent_states[:num_routers]):
                agent = restore(i, agent_state, [i])
                if agent is not None:
                    self._agents[i] = agent
        for router_id in state.get("safe_mode_routers", []):
            self.enter_safe_mode(int(router_id), "degraded before snapshot")

    # ------------------------------------------------------------------
    # Introspection helpers for examples/benches
    # ------------------------------------------------------------------
    def total_updates(self) -> int:
        return sum(a.updates for a in self._unique_agents())

    def states_visited(self) -> int:
        return sum(a.states_visited for a in self._unique_agents())

    def mode_distribution(self) -> Dict[OperationMode, int]:
        """How many (state, router) pairs currently prefer each mode."""
        counts = {mode: 0 for mode in OperationMode}
        for agent in self._unique_agents():
            for action in agent.greedy_policy().values():
                counts[OperationMode(action)] += 1
        return counts
