"""The four fault-tolerant operation modes (paper Section III).

Each router dynamically deploys one of four modes for its *output*
-Links (its ECC encoders plus the paired decoders at the downstream
routers).  The modes trade fault-tolerance capability, retransmission
traffic, latency, and energy:

=========  =============  ==========================================
Mode       Error level    Behaviour
=========  =============  ==========================================
MODE_0     minimum        -Links disabled: no ECC energy/latency;
                          errors escape to the destination CRC and
                          cost a full end-to-end packet retransmission.
MODE_1     low            -Links enabled: SECDED corrects single-bit
                          errors in place; double-bit errors NACK and
                          retransmit one flit from the upstream router.
MODE_2     medium         MODE_1 plus *flit pre-retransmission*: every
                          flit is speculatively resent one cycle after
                          the original, hiding the NACK round trip at
                          the price of link bandwidth.
MODE_3     high           MODE_1 plus timing relaxation: two extra
                          cycles before each transfer relax the timing
                          constraint so errors (and retransmissions)
                          essentially vanish, at a per-hop latency and
                          throughput cost.
=========  =============  ==========================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

__all__ = ["OperationMode", "ModeBehaviour", "MODE_BEHAVIOUR", "TmrModeBank"]


class OperationMode(enum.IntEnum):
    """Action space of the per-router fault-tolerant controller."""

    MODE_0 = 0
    MODE_1 = 1
    MODE_2 = 2
    MODE_3 = 3


@dataclass(frozen=True)
class ModeBehaviour:
    """Mechanical consequences of a mode for the router datapath.

    Attributes
    ----------
    ecc_enabled:
        Whether the output -Links (encoder + downstream decoder) are on.
    pre_retransmit:
        Whether every flit is followed by a speculative duplicate
        (mode 2's flit pre-retransmission, 1-cycle gap).
    extra_cycles_before_send:
        Stall cycles inserted before each transfer (mode 3: one control
        cycle + one stall cycle = 2).
    timing_relaxed:
        Whether the transfer enjoys the relaxed timing constraint that
        collapses the timing-error probability.
    link_slots_per_flit:
        Output-link occupancy per flit, in cycles — the throughput cost
        of the mode (mode 2's duplicate, mode 3's stalls).
    """

    ecc_enabled: bool
    pre_retransmit: bool
    extra_cycles_before_send: int
    timing_relaxed: bool

    @property
    def link_slots_per_flit(self) -> int:
        slots = 1 + self.extra_cycles_before_send
        if self.pre_retransmit:
            slots += 1
        return slots


class TmrModeBank:
    """Triple-modular-redundant per-router mode registers.

    The 2-bit mode register drives the router datapath between control
    epochs, and in SRAM/flop form it takes single-event upsets just like
    the Q-table (:mod:`repro.faults.softerrors`).  The defended layout
    keeps three copies per router: the policy's write syncs all three,
    an upset flips a bit in one copy, and :meth:`read` returns the
    per-bit majority — so a single upset is outvoted and never reaches
    the datapath.  :meth:`vote` is the scrub-time resync: it rewrites
    every copy with the majority value and reports how many copies it
    repaired.  Only two upsets landing in distinct copies of the same
    register between scrubs can corrupt the majority.

    Plain lists of ints throughout: the bank pickles inside the
    simulator and resumes bit-identically.
    """

    __slots__ = ("copies", "votes", "upsets")

    COPIES = 3
    REGISTER_BITS = 2

    def __init__(self, num_routers: int, initial: int = 0) -> None:
        if num_routers <= 0:
            raise ValueError("need at least one router")
        self.copies: List[List[int]] = [
            [int(initial)] * self.COPIES for _ in range(num_routers)
        ]
        #: cumulative copies repaired by majority votes
        self.votes = 0
        #: cumulative upsets injected into the bank
        self.upsets = 0

    def write(self, router: int, mode: int) -> None:
        """Policy write: all three copies latch the commanded mode."""
        self.copies[router] = [int(mode)] * self.COPIES

    def upset(self, router: int, bit: int, copy: int) -> None:
        """SEU: flip one bit of one copy."""
        self.copies[router][copy % self.COPIES] ^= 1 << (bit % self.REGISTER_BITS)
        self.upsets += 1

    def read(self, router: int) -> int:
        """Per-bit majority over the three copies (the datapath view)."""
        regs = self.copies[router]
        value = 0
        for bit in range(self.REGISTER_BITS):
            if sum((reg >> bit) & 1 for reg in regs) >= 2:
                value |= 1 << bit
        return value

    def vote(self) -> int:
        """Resync every register to its majority; returns copies repaired."""
        repaired = 0
        for router, regs in enumerate(self.copies):
            value = self.read(router)
            for i, reg in enumerate(regs):
                if reg != value:
                    regs[i] = value
                    repaired += 1
        self.votes += repaired
        return repaired


#: Mode semantics table used by the router datapath.
MODE_BEHAVIOUR = {
    OperationMode.MODE_0: ModeBehaviour(
        ecc_enabled=False,
        pre_retransmit=False,
        extra_cycles_before_send=0,
        timing_relaxed=False,
    ),
    OperationMode.MODE_1: ModeBehaviour(
        ecc_enabled=True,
        pre_retransmit=False,
        extra_cycles_before_send=0,
        timing_relaxed=False,
    ),
    OperationMode.MODE_2: ModeBehaviour(
        ecc_enabled=True,
        pre_retransmit=True,
        extra_cycles_before_send=0,
        timing_relaxed=False,
    ),
    OperationMode.MODE_3: ModeBehaviour(
        ecc_enabled=True,
        pre_retransmit=False,
        extra_cycles_before_send=2,
        timing_relaxed=True,
    ),
}
