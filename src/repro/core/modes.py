"""The four fault-tolerant operation modes (paper Section III).

Each router dynamically deploys one of four modes for its *output*
-Links (its ECC encoders plus the paired decoders at the downstream
routers).  The modes trade fault-tolerance capability, retransmission
traffic, latency, and energy:

=========  =============  ==========================================
Mode       Error level    Behaviour
=========  =============  ==========================================
MODE_0     minimum        -Links disabled: no ECC energy/latency;
                          errors escape to the destination CRC and
                          cost a full end-to-end packet retransmission.
MODE_1     low            -Links enabled: SECDED corrects single-bit
                          errors in place; double-bit errors NACK and
                          retransmit one flit from the upstream router.
MODE_2     medium         MODE_1 plus *flit pre-retransmission*: every
                          flit is speculatively resent one cycle after
                          the original, hiding the NACK round trip at
                          the price of link bandwidth.
MODE_3     high           MODE_1 plus timing relaxation: two extra
                          cycles before each transfer relax the timing
                          constraint so errors (and retransmissions)
                          essentially vanish, at a per-hop latency and
                          throughput cost.
=========  =============  ==========================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["OperationMode", "ModeBehaviour", "MODE_BEHAVIOUR"]


class OperationMode(enum.IntEnum):
    """Action space of the per-router fault-tolerant controller."""

    MODE_0 = 0
    MODE_1 = 1
    MODE_2 = 2
    MODE_3 = 3


@dataclass(frozen=True)
class ModeBehaviour:
    """Mechanical consequences of a mode for the router datapath.

    Attributes
    ----------
    ecc_enabled:
        Whether the output -Links (encoder + downstream decoder) are on.
    pre_retransmit:
        Whether every flit is followed by a speculative duplicate
        (mode 2's flit pre-retransmission, 1-cycle gap).
    extra_cycles_before_send:
        Stall cycles inserted before each transfer (mode 3: one control
        cycle + one stall cycle = 2).
    timing_relaxed:
        Whether the transfer enjoys the relaxed timing constraint that
        collapses the timing-error probability.
    link_slots_per_flit:
        Output-link occupancy per flit, in cycles — the throughput cost
        of the mode (mode 2's duplicate, mode 3's stalls).
    """

    ecc_enabled: bool
    pre_retransmit: bool
    extra_cycles_before_send: int
    timing_relaxed: bool

    @property
    def link_slots_per_flit(self) -> int:
        slots = 1 + self.extra_cycles_before_send
        if self.pre_retransmit:
            slots += 1
        return slots


#: Mode semantics table used by the router datapath.
MODE_BEHAVIOUR = {
    OperationMode.MODE_0: ModeBehaviour(
        ecc_enabled=False,
        pre_retransmit=False,
        extra_cycles_before_send=0,
        timing_relaxed=False,
    ),
    OperationMode.MODE_1: ModeBehaviour(
        ecc_enabled=True,
        pre_retransmit=False,
        extra_cycles_before_send=0,
        timing_relaxed=False,
    ),
    OperationMode.MODE_2: ModeBehaviour(
        ecc_enabled=True,
        pre_retransmit=True,
        extra_cycles_before_send=0,
        timing_relaxed=False,
    ),
    OperationMode.MODE_3: ModeBehaviour(
        ecc_enabled=True,
        pre_retransmit=False,
        extra_cycles_before_send=2,
        timing_relaxed=True,
    ),
}
