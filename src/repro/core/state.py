"""RL state space: Table I features and their discretization.

Each router observes six classes of NoC attributes (Table I):

1. input buffer utilization — occupied input VCs, per port;
2. input link utilization — input flits/cycle, per port;
3. output link utilization — output flits/cycle, per port;
4. input NACK rate — NACKs received / flits sent, per port;
5. output NACK rate — NACKs sent / flits received, per port;
6. local router temperature.

Continuous features are discretized exactly as Section IV-B prescribes:
features 1-3 and 6 into five bins, features 4-5 into four; utilization
bins are equal in linear space against the observed 0.3 flits/cycle
maximum, NACK-rate bins are equal in log space, and temperature bins
cover the observed [50, 100] C range evenly.

Two encodings are offered:

* ``full`` — the paper's literal state: one bin per feature per port
  (26 dimensions), faithful but slow to explore in scaled-down runs;
* ``compact`` — per-feature aggregates across ports (6 dimensions),
  which preserves the decision-relevant signal (error level, load,
  temperature) and is the default for the shortened benchmark runs.
  DESIGN.md documents this substitution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.noc.router import Router

__all__ = [
    "NUM_PORTS",
    "DiscretizationConfig",
    "RouterObservation",
    "discretize_observation",
    "observe_router",
]

#: Number of router ports (LOCAL + 4 directions).
NUM_PORTS = 5
_NUM_PORTS = NUM_PORTS


@dataclass(frozen=True)
class DiscretizationConfig:
    """Bin boundaries of the Table I feature space."""

    #: maximum link utilization observed in the paper's benchmarks
    max_link_utilization: float = 0.3
    #: linear bins for features 1-3 and 6
    utilization_bins: int = 5
    #: log-space thresholds for NACK rates (4 bins: below first = 0 ...)
    nack_thresholds: Tuple[float, float, float] = (1e-3, 1e-2, 1e-1)
    temperature_range: Tuple[float, float] = (50.0, 100.0)
    temperature_bins: int = 5
    #: VCs per port, for the buffer-utilization bin ceiling
    num_vcs: int = 4

    def utilization_bin(self, value: float) -> int:
        """Linear-space bin of a link utilization (flits/cycle).

        Total over the full float range: NaN reads as "no signal" (bin
        0), +inf saturates into the top bin, so a corrupted sensor can
        never crash discretization (bins unchanged for finite inputs).
        """
        if value != value or value <= 0.0:  # NaN or non-positive
            return 0
        fraction = min(value / self.max_link_utilization, 1.0)
        return min(int(fraction * self.utilization_bins), self.utilization_bins - 1)

    def buffer_bin(self, occupied_vcs: float) -> int:
        """Bin of an occupied-VC count (already near-discrete); total."""
        if occupied_vcs != occupied_vcs or occupied_vcs <= 0:  # NaN or <= 0
            return 0
        if occupied_vcs >= self.num_vcs:
            # Full — or corrupted high (huge finite values would overflow
            # the scaling multiply, +inf cannot reach math.ceil): top bin.
            return self.utilization_bins - 1
        scaled = occupied_vcs * (self.utilization_bins - 1) / self.num_vcs
        return min(int(math.ceil(scaled)), self.utilization_bins - 1)

    def nack_bin(self, rate: float) -> int:
        """Log-space bin of a NACK rate in [0, 1].

        Already total: every comparison against NaN is False, so NaN
        (like any rate at or above the last threshold) lands in the top
        bin, and -inf/0.0 land in bin 0.
        """
        for i, threshold in enumerate(self.nack_thresholds):
            if rate < threshold:
                return i
        return len(self.nack_thresholds)

    def temperature_bin(self, temperature: float) -> int:
        """Linear-space bin over ``temperature_range``; total (NaN -> 0)."""
        lo, hi = self.temperature_range
        if temperature != temperature or temperature <= lo:  # NaN or cold
            return 0
        fraction = min((temperature - lo) / (hi - lo), 1.0)
        return min(int(fraction * self.temperature_bins), self.temperature_bins - 1)


@dataclass
class RouterObservation:
    """One router's view of the NoC at an epoch boundary.

    Carries both the raw continuous features (used by the decision-tree
    baseline, which regresses on them) and the discretized state tuple
    (used as the Q-table key by the RL policy).
    """

    router_id: int
    occupied_vcs: List[int]
    input_utilization: List[float]
    output_utilization: List[float]
    input_nack_rate: List[float]
    output_nack_rate: List[float]
    temperature: float
    #: discretized Q-table key, filled by :func:`observe_router`
    discrete: Tuple[int, ...] = field(default_factory=tuple)
    #: ground-truth mean timing-error probability of this router's output
    #: channels, attached by the simulator for supervised baselines
    true_error_probability: float = 0.0

    def raw_vector(self) -> List[float]:
        """The 26-dimensional continuous feature vector (Table I order)."""
        return (
            [float(v) for v in self.occupied_vcs]
            + list(self.input_utilization)
            + list(self.output_utilization)
            + list(self.input_nack_rate)
            + list(self.output_nack_rate)
            + [self.temperature]
        )


def discretize_observation(
    obs: RouterObservation,
    config: DiscretizationConfig,
    compact: bool = True,
    mode: Optional[int] = None,
) -> Tuple[int, ...]:
    """Discretize an observation's raw features into a Q-table key.

    The single binning path shared by :func:`observe_router` (fresh
    telemetry) and the observation guard (re-binning after a sensor
    reading was repaired), so both always agree.  ``mode`` appends the
    router's operation mode when the state encoding includes it.
    """
    cfg = config
    if compact:
        bins = [
            cfg.buffer_bin(max(obs.occupied_vcs)),
            cfg.utilization_bin(sum(obs.input_utilization) / _NUM_PORTS),
            cfg.utilization_bin(sum(obs.output_utilization) / _NUM_PORTS),
            cfg.nack_bin(max(obs.input_nack_rate)),
            cfg.nack_bin(max(obs.output_nack_rate)),
            cfg.temperature_bin(obs.temperature),
        ]
    else:
        bins = []
        bins.extend(cfg.buffer_bin(v) for v in obs.occupied_vcs)
        bins.extend(cfg.utilization_bin(u) for u in obs.input_utilization)
        bins.extend(cfg.utilization_bin(u) for u in obs.output_utilization)
        bins.extend(cfg.nack_bin(r) for r in obs.input_nack_rate)
        bins.extend(cfg.nack_bin(r) for r in obs.output_nack_rate)
        bins.append(cfg.temperature_bin(obs.temperature))
    if mode is not None:
        bins.append(int(mode))
    return tuple(bins)


def observe_router(
    router: Router,
    epoch_cycles: int,
    config: Optional[DiscretizationConfig] = None,
    compact: bool = True,
    include_mode: bool = True,
) -> RouterObservation:
    """Build one router's observation from its epoch counters.

    ``compact`` selects the aggregated 6-dimensional discrete encoding
    (benchmark default); ``compact=False`` produces the paper's literal
    26-dimensional per-port state.

    ``include_mode`` appends the router's *current* operation mode to the
    discrete state.  Table I does not list it, but without it the state
    is non-Markov: "no NACKs at high temperature" is indistinguishable
    between a mode-3 router (protected and genuinely quiet) and a mode-0
    router (unprotected, errors simply invisible until the destination
    CRC fires), which systematically mis-values actions.  The hardware
    knows its own mode for free; the ablation bench quantifies the
    effect of turning this off.
    """
    if epoch_cycles <= 0:
        raise ValueError("epoch must span at least one cycle")
    cfg = config if config is not None else DiscretizationConfig(num_vcs=router.num_vcs)
    epoch = router.epoch
    obs = RouterObservation(
        router_id=router.id,
        occupied_vcs=router.occupied_input_vcs(),
        input_utilization=epoch.input_link_utilization(epoch_cycles),
        output_utilization=epoch.output_link_utilization(epoch_cycles),
        input_nack_rate=epoch.input_nack_rate(),
        output_nack_rate=epoch.output_nack_rate(),
        temperature=router.temperature,
    )
    obs.discrete = discretize_observation(
        obs, cfg, compact=compact, mode=int(router.mode) if include_mode else None
    )
    return obs
