"""Fault-tolerant control policy interface.

Every compared design — static CRC, static ARQ+ECC, the decision-tree
predictor, and the proposed RL controller — implements this small
protocol.  The simulator drives it once per control epoch for every
router:

1. :meth:`learn` delivers the transition the router just experienced
   (previous observation, the mode that was active, the reward defined
   by paper equation 3, and the fresh observation);
2. :meth:`select` asks for the mode to apply for the next epoch.

Static policies ignore :meth:`learn`; the DT baseline uses it only
during its pre-training phase (after which its model is frozen,
Section V-B); the RL policy applies the temporal-difference rule on
every call, which is what makes it adapt online.
"""

from __future__ import annotations

import abc
import math
from typing import Dict, Optional

from repro.core.modes import OperationMode
from repro.core.state import RouterObservation
from repro.power.orion import DesignPowerProfile

__all__ = ["ControlPolicy", "RewardGuard", "REWARD_GUARD", "compute_reward"]


class RewardGuard:
    """Counts non-finite reward inputs clamped by :func:`compute_reward`.

    A NaN latency or power measurement would flow straight through
    ``max()`` (NaN comparisons are False, so ``max(nan, floor)`` returns
    NaN) into the Q-update and poison the table permanently.  The guard
    clamps such inputs to the idle-epoch floors and keeps a per-process
    tally so harnesses can surface that the platform produced garbage.
    """

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events = 0

    def reset(self) -> int:
        """Zero the tally; returns the count consumed."""
        count = self.events
        self.events = 0
        return count


#: Process-wide tally of clamped non-finite reward inputs.
REWARD_GUARD = RewardGuard()


def compute_reward(
    mean_latency_cycles: float,
    power_watts: float,
    counter=None,
) -> float:
    """Paper equation 3: ``r = [E2E_latency(i) * Power(i)]^-1``.

    Latency is the average end-to-end latency of packets that traversed
    the router during the epoch; power is the router's average total
    (static + dynamic) power over the same epoch.  Both are floored to
    keep the reward finite on idle epochs; non-finite inputs (NaN/inf
    from a broken sensor path) are clamped to the same floors and
    counted so they can never poison a Q-table.

    ``counter`` is any object with an ``inc()`` method (e.g. a
    ``repro.obs.metrics.Counter`` from a per-run registry, which resets
    cleanly between runs).  The process-wide :data:`REWARD_GUARD` is
    still bumped as well, for callers without a registry.
    """
    if not math.isfinite(mean_latency_cycles):
        REWARD_GUARD.events += 1
        if counter is not None:
            counter.inc()
        mean_latency_cycles = 1.0
    if not math.isfinite(power_watts):
        REWARD_GUARD.events += 1
        if counter is not None:
            counter.inc()
        power_watts = 1e-6
    latency = max(mean_latency_cycles, 1.0)
    power = max(power_watts, 1e-6)
    return 1.0 / (latency * power)


class ControlPolicy(abc.ABC):
    """Per-design mode-selection policy."""

    #: power/area profile of the router design this policy runs on
    profile: DesignPowerProfile

    @property
    def name(self) -> str:
        return self.profile.name

    @property
    def trainable(self) -> bool:
        """Whether the policy has a learning phase at all."""
        return False

    def reset(self, num_routers: int) -> None:
        """Prepare per-router state before a simulation run."""

    @abc.abstractmethod
    def select(self, router_id: int, observation: RouterObservation) -> OperationMode:
        """Mode to apply to ``router_id`` for the next epoch."""

    def learn(
        self,
        router_id: int,
        observation: RouterObservation,
        action: OperationMode,
        reward: float,
        next_observation: RouterObservation,
    ) -> None:
        """Consume one transition; no-op for non-learning policies."""

    def q_values(self, router_id: int, state) -> Optional[tuple]:
        """Per-action value estimates for telemetry, or ``None``.

        Value-based policies override this so the trace layer can record
        *why* an action was chosen; policies without action-value
        estimates (static designs, the DT baseline) return ``None``.
        Must be side-effect free: introspection never advances RNG or
        learning state, or traced runs would diverge from untraced ones.
        """
        return None

    def freeze(self) -> None:
        """End of pre-training: stop exploring / stop updating models.

        The DT baseline freezes its trained tree here (its training
        result "is no longer updated during testing", Section V-B);
        the RL policy keeps learning, exactly as the paper describes.
        """

    # ------------------------------------------------------------------
    # Resilience hooks (checkpoint/resume and graceful degradation)
    # ------------------------------------------------------------------
    def enter_safe_mode(self, router_id: int, reason: str) -> bool:
        """A runtime invariant tripped (or a loaded table was rejected)
        for ``router_id``.  Policies that can degrade gracefully pin the
        router to a conservative mode and return True; the default
        returns False, telling the simulator to pin the mode itself.
        """
        return False

    def to_state(self) -> Dict[str, object]:
        """Durable snapshot of the policy's learned state (checkpoints).

        Stateless policies carry only their name; learning policies
        override this with their full model state.
        """
        return {"policy": self.name}

    def load_state(self, state: Optional[Dict[str, object]]) -> None:
        """Restore (and validate) a :meth:`to_state` snapshot.

        The default is a no-op — stateless policies have nothing to
        restore.  Implementations must *validate* before trusting the
        state and degrade to safe-mode control instead of raising when a
        router's table is rejected.
        """
