"""Fault-tolerant control policy interface.

Every compared design — static CRC, static ARQ+ECC, the decision-tree
predictor, and the proposed RL controller — implements this small
protocol.  The simulator drives it once per control epoch for every
router:

1. :meth:`learn` delivers the transition the router just experienced
   (previous observation, the mode that was active, the reward defined
   by paper equation 3, and the fresh observation);
2. :meth:`select` asks for the mode to apply for the next epoch.

Static policies ignore :meth:`learn`; the DT baseline uses it only
during its pre-training phase (after which its model is frozen,
Section V-B); the RL policy applies the temporal-difference rule on
every call, which is what makes it adapt online.
"""

from __future__ import annotations

import abc
import math
from typing import Dict, List, Optional, Set, Tuple

from repro.core.modes import OperationMode
from repro.core.state import (
    NUM_PORTS,
    DiscretizationConfig,
    RouterObservation,
    discretize_observation,
)
from repro.power.orion import DesignPowerProfile

__all__ = [
    "ControlPolicy",
    "GuardReport",
    "ObservationGuard",
    "RewardGuard",
    "REWARD_GUARD",
    "compute_reward",
]


class RewardGuard:
    """Counts non-finite reward inputs clamped by :func:`compute_reward`.

    A NaN latency or power measurement would flow straight through
    ``max()`` (NaN comparisons are False, so ``max(nan, floor)`` returns
    NaN) into the Q-update and poison the table permanently.  The guard
    clamps such inputs to the idle-epoch floors and keeps a per-process
    tally so harnesses can surface that the platform produced garbage.
    """

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events = 0

    def reset(self) -> int:
        """Zero the tally; returns the count consumed."""
        count = self.events
        self.events = 0
        return count


#: Process-wide tally of clamped non-finite reward inputs.
REWARD_GUARD = RewardGuard()


def compute_reward(
    mean_latency_cycles: float,
    power_watts: float,
    counter=None,
) -> float:
    """Paper equation 3: ``r = [E2E_latency(i) * Power(i)]^-1``.

    Latency is the average end-to-end latency of packets that traversed
    the router during the epoch; power is the router's average total
    (static + dynamic) power over the same epoch.  Both are floored to
    keep the reward finite on idle epochs; non-finite inputs (NaN/inf
    from a broken sensor path) are clamped to the same floors and
    counted so they can never poison a Q-table.

    ``counter`` is any object with an ``inc()`` method (e.g. a
    ``repro.obs.metrics.Counter`` from a per-run registry, which resets
    cleanly between runs).  The process-wide :data:`REWARD_GUARD` is
    still bumped as well, for callers without a registry.
    """
    if not math.isfinite(mean_latency_cycles):
        REWARD_GUARD.events += 1
        if counter is not None:
            counter.inc()
        mean_latency_cycles = 1.0
    if not math.isfinite(power_watts):
        REWARD_GUARD.events += 1
        if counter is not None:
            counter.inc()
        power_watts = 1e-6
    latency = max(mean_latency_cycles, 1.0)
    power = max(power_watts, 1e-6)
    return 1.0 / (latency * power)


class GuardReport:
    """What :meth:`ObservationGuard.inspect` did to one observation."""

    __slots__ = ("holds", "clamps", "defaults", "rejected", "quarantined")

    def __init__(self) -> None:
        self.holds = 0        # fields repaired from the last good reading
        self.clamps = 0       # finite but out-of-range fields clamped
        self.defaults = 0     # fields with no recent good reading, zeroed
        self.rejected = False  # any field was invalid this epoch
        self.quarantined = False  # this inspect crossed the escalation bar

    @property
    def dirty(self) -> bool:
        return bool(self.holds or self.clamps or self.defaults)


class ObservationGuard:
    """Consumer-side hardening of the telemetry -> policy path.

    Sits between :func:`repro.core.state.observe_router` and
    ``ControlPolicy.select``/``learn`` and enforces, per router:

    * **validation** — every Table I field must be present (not ``None``)
      and finite; invalid fields mark the observation *rejected*;
    * **last-good hold** — a rejected field is repaired from the last
      valid reading if one was seen within ``hold_ttl`` epochs,
      otherwise replaced by a conservative default (idle counters,
      ambient temperature);
    * **range clamping** — finite but out-of-range values (negative
      utilization, NACK rate above 1, absurd temperatures) are clamped
      and tallied instead of flowing into discretization;
    * **quarantine** — ``quarantine_after`` *consecutive* rejected
      observations escalate the router into the safe-mode fallback
      (the caller routes this to ``ControlPolicy.enter_safe_mode``).

    A healthy observation passes through untouched — the guard touches
    no RNG and only re-discretizes when it actually repaired something,
    so golden trace digests of fault-free runs are unchanged.  All
    state (last-good store, reject streaks, quarantine set) pickles
    with the simulator, keeping resumed runs bit-identical.
    """

    #: (attribute, kind) pairs; kind selects validation + clamp rules
    _FIELDS: Tuple[Tuple[str, str], ...] = (
        ("occupied_vcs", "buf"),
        ("input_utilization", "util"),
        ("output_utilization", "util"),
        ("input_nack_rate", "nack"),
        ("output_nack_rate", "nack"),
        ("temperature", "temp"),
    )
    #: physically plausible ceiling for an on-die temperature reading
    MAX_TEMPERATURE = 250.0

    def __init__(
        self,
        num_routers: int,
        state_config: Optional[DiscretizationConfig] = None,
        compact: bool = True,
        include_mode: bool = True,
        hold_ttl: int = 3,
        quarantine_after: int = 8,
        default_temperature: float = 45.0,
    ) -> None:
        if num_routers <= 0:
            raise ValueError("need at least one router")
        if hold_ttl < 1:
            raise ValueError("hold_ttl must be at least one epoch")
        if quarantine_after < 1:
            raise ValueError("quarantine_after must be at least 1")
        self.state_config = state_config or DiscretizationConfig()
        self.compact = compact
        self.include_mode = include_mode
        self.hold_ttl = hold_ttl
        self.quarantine_after = quarantine_after
        self.default_temperature = default_temperature
        #: per router: attribute -> (epoch_seen, value) of last valid reading
        self._last_good: List[Dict[str, Tuple[int, object]]] = [
            {} for _ in range(num_routers)
        ]
        #: consecutive rejected observations per router
        self._streak: List[int] = [0] * num_routers
        self.quarantined: Set[int] = set()

    # ------------------------------------------------------------------
    @staticmethod
    def _valid_list(value: object) -> bool:
        if not isinstance(value, list) or len(value) != NUM_PORTS:
            return False
        try:
            return all(math.isfinite(el) for el in value)
        except TypeError:
            return False

    @staticmethod
    def _valid_scalar(value: object) -> bool:
        return isinstance(value, (int, float)) and math.isfinite(value)

    def _default_for(self, attr: str, kind: str) -> object:
        if kind == "temp":
            return self.default_temperature
        if kind == "buf":
            return [0] * NUM_PORTS
        return [0.0] * NUM_PORTS

    def _clamp(self, kind: str, value: object) -> Tuple[object, int]:
        """Clamp a *valid* field into its physical range; returns
        (possibly-new value, number of elements clamped)."""
        if kind == "temp":
            clamped = min(max(value, 0.0), self.MAX_TEMPERATURE)
            return clamped, int(clamped != value)
        if kind == "buf":
            lo, hi = 0, self.state_config.num_vcs
        elif kind == "nack":
            lo, hi = 0.0, 1.0
        else:  # util: non-negative, no hard ceiling (binning saturates)
            lo, hi = 0.0, None
        out = None
        hits = 0
        for i, el in enumerate(value):
            fixed = lo if el < lo else (hi if (hi is not None and el > hi) else el)
            if fixed != el:
                if out is None:
                    out = list(value)
                out[i] = fixed
                hits += 1
        return (out if out is not None else value), hits

    def inspect(
        self,
        router_id: int,
        mode: int,
        obs: RouterObservation,
        epoch_index: int,
    ) -> GuardReport:
        """Validate/repair one observation in place; returns the report.

        Must be called once per router per epoch so the reject streaks
        and hold TTLs advance correctly.
        """
        report = GuardReport()
        last_good = self._last_good[router_id]
        for attr, kind in self._FIELDS:
            value = getattr(obs, attr)
            valid = self._valid_scalar(value) if kind == "temp" else self._valid_list(value)
            if not valid:
                report.rejected = True
                held = last_good.get(attr)
                if held is not None and epoch_index - held[0] <= self.hold_ttl:
                    replacement = held[1]
                    report.holds += 1
                else:
                    replacement = self._default_for(attr, kind)
                    report.defaults += 1
                setattr(
                    obs, attr,
                    list(replacement) if isinstance(replacement, list) else replacement,
                )
                continue
            clamped, hits = self._clamp(kind, value)
            if hits:
                report.clamps += hits
                setattr(obs, attr, clamped)
            last_good[attr] = (
                epoch_index,
                list(clamped) if isinstance(clamped, list) else clamped,
            )
        if report.rejected:
            self._streak[router_id] += 1
            if (
                self._streak[router_id] >= self.quarantine_after
                and router_id not in self.quarantined
            ):
                self.quarantined.add(router_id)
                report.quarantined = True
        else:
            self._streak[router_id] = 0
        if report.dirty:
            obs.discrete = discretize_observation(
                obs,
                self.state_config,
                compact=self.compact,
                mode=mode if self.include_mode else None,
            )
        return report


class ControlPolicy(abc.ABC):
    """Per-design mode-selection policy."""

    #: power/area profile of the router design this policy runs on
    profile: DesignPowerProfile

    @property
    def name(self) -> str:
        return self.profile.name

    @property
    def trainable(self) -> bool:
        """Whether the policy has a learning phase at all."""
        return False

    def reset(self, num_routers: int) -> None:
        """Prepare per-router state before a simulation run."""

    @abc.abstractmethod
    def select(self, router_id: int, observation: RouterObservation) -> OperationMode:
        """Mode to apply to ``router_id`` for the next epoch."""

    def learn(
        self,
        router_id: int,
        observation: RouterObservation,
        action: OperationMode,
        reward: float,
        next_observation: RouterObservation,
    ) -> None:
        """Consume one transition; no-op for non-learning policies."""

    def q_values(self, router_id: int, state) -> Optional[tuple]:
        """Per-action value estimates for telemetry, or ``None``.

        Value-based policies override this so the trace layer can record
        *why* an action was chosen; policies without action-value
        estimates (static designs, the DT baseline) return ``None``.
        Must be side-effect free: introspection never advances RNG or
        learning state, or traced runs would diverge from untraced ones.
        """
        return None

    def freeze(self) -> None:
        """End of pre-training: stop exploring / stop updating models.

        The DT baseline freezes its trained tree here (its training
        result "is no longer updated during testing", Section V-B);
        the RL policy keeps learning, exactly as the paper describes.
        """

    # ------------------------------------------------------------------
    # Resilience hooks (checkpoint/resume and graceful degradation)
    # ------------------------------------------------------------------
    def attach_q_storages(self, ecc: bool = True) -> List[object]:
        """Back the policy's learned state with fixed-point (optionally
        SECDED-protected) storages so soft-error campaigns have real SRAM
        bits to upset.  Policies without learned SRAM state (the static
        designs, the frozen DT baseline) have nothing to protect and
        return an empty list.
        """
        return []

    def q_storages(self) -> List[object]:
        """The storages attached by :meth:`attach_q_storages` (or none),
        in a stable order; the simulator addresses SEUs and schedules
        scrubs through this list every epoch.
        """
        return []

    def enter_safe_mode(self, router_id: int, reason: str) -> bool:
        """A runtime invariant tripped (or a loaded table was rejected)
        for ``router_id``.  Policies that can degrade gracefully pin the
        router to a conservative mode and return True; the default
        returns False, telling the simulator to pin the mode itself.
        """
        return False

    def to_state(self) -> Dict[str, object]:
        """Durable snapshot of the policy's learned state (checkpoints).

        Stateless policies carry only their name; learning policies
        override this with their full model state.
        """
        return {"policy": self.name}

    def load_state(self, state: Optional[Dict[str, object]]) -> None:
        """Restore (and validate) a :meth:`to_state` snapshot.

        The default is a no-op — stateless policies have nothing to
        restore.  Implementations must *validate* before trusting the
        state and degrade to safe-mode control instead of raising when a
        router's table is rejected.
        """
