"""From-scratch CART regression trees.

The decision-tree baseline of DiTomaso et al. (MICRO 2016) predicts each
link's timing-error rate from router metrics with trees trained offline.
No sklearn is available in this environment, so this module implements
the Classification And Regression Tree algorithm directly: greedy
binary splits on numeric features minimizing weighted child variance,
with the usual depth / minimum-leaf-size stopping rules.

The implementation is generic (it regresses any ``y`` on any numeric
``X``) and is property-tested against exact-fit and monotonicity
invariants in ``tests/baselines/test_cart.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["TreeNode", "RegressionTree"]


@dataclass
class TreeNode:
    """One node of a fitted tree; leaves carry a prediction."""

    prediction: float
    feature: Optional[int] = None
    threshold: Optional[float] = None
    left: Optional["TreeNode"] = None
    right: Optional["TreeNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None

    # ------------------------------------------------------------------
    # Durable state (checkpoint / artifact round-trips)
    # ------------------------------------------------------------------
    def to_state(self) -> Dict[str, object]:
        """JSON-able nested dict; inverse of :meth:`from_state`."""
        state: Dict[str, object] = {"prediction": self.prediction}
        if not self.is_leaf:
            state["feature"] = self.feature
            state["threshold"] = self.threshold
            state["left"] = self.left.to_state()
            state["right"] = self.right.to_state()
        return state

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "TreeNode":
        """Rebuild a node (and its subtree) from :meth:`to_state`.

        Raises ``ValueError``/``TypeError``/``KeyError`` on a malformed
        snapshot — an internal node missing a child, a non-numeric
        threshold — rather than building a tree that dies at predict().
        """
        prediction = float(state["prediction"])
        if state.get("feature") is None:
            return cls(prediction=prediction)
        feature = int(state["feature"])
        if feature < 0:
            raise ValueError(f"negative feature index {feature}")
        return cls(
            prediction=prediction,
            feature=feature,
            threshold=float(state["threshold"]),
            left=cls.from_state(state["left"]),
            right=cls.from_state(state["right"]),
        )


def _variance_sums(values: Sequence[float]) -> Tuple[float, float]:
    total = sum(values)
    squares = sum(v * v for v in values)
    return total, squares


def _sse(total: float, squares: float, n: int) -> float:
    """Sum of squared errors around the mean, from running sums."""
    if n == 0:
        return 0.0
    return squares - total * total / n


class RegressionTree:
    """CART regression tree with variance-reduction splitting."""

    def __init__(
        self,
        max_depth: int = 6,
        min_samples_leaf: int = 8,
        min_variance_reduction: float = 1e-12,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be at least 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_variance_reduction = min_variance_reduction
        self.root: Optional[TreeNode] = None
        self.n_features: Optional[int] = None

    # ------------------------------------------------------------------
    def fit(self, x: Sequence[Sequence[float]], y: Sequence[float]) -> "RegressionTree":
        if len(x) != len(y):
            raise ValueError("X and y must have the same length")
        if not x:
            raise ValueError("cannot fit on an empty dataset")
        widths = {len(row) for row in x}
        if len(widths) != 1:
            raise ValueError("all feature rows must have the same width")
        self.n_features = widths.pop()
        if self.n_features == 0:
            raise ValueError("need at least one feature")
        indices = list(range(len(x)))
        self.root = self._build(x, y, indices, depth=0)
        return self

    def _build(
        self,
        x: Sequence[Sequence[float]],
        y: Sequence[float],
        indices: List[int],
        depth: int,
    ) -> TreeNode:
        values = [y[i] for i in indices]
        prediction = sum(values) / len(values)
        if depth >= self.max_depth or len(indices) < 2 * self.min_samples_leaf:
            return TreeNode(prediction)

        split = self._best_split(x, y, indices)
        if split is None:
            return TreeNode(prediction)
        feature, threshold, left_idx, right_idx = split
        return TreeNode(
            prediction=prediction,
            feature=feature,
            threshold=threshold,
            left=self._build(x, y, left_idx, depth + 1),
            right=self._build(x, y, right_idx, depth + 1),
        )

    def _best_split(
        self,
        x: Sequence[Sequence[float]],
        y: Sequence[float],
        indices: List[int],
    ) -> Optional[Tuple[int, float, List[int], List[int]]]:
        n = len(indices)
        parent_total, parent_squares = _variance_sums([y[i] for i in indices])
        parent_sse = _sse(parent_total, parent_squares, n)
        best = None
        best_gain = self.min_variance_reduction
        for feature in range(self.n_features):
            order = sorted(indices, key=lambda i: x[i][feature])
            left_total = left_squares = 0.0
            for pos in range(1, n):
                value = y[order[pos - 1]]
                left_total += value
                left_squares += value * value
                # No split between identical feature values.
                if x[order[pos - 1]][feature] == x[order[pos]][feature]:
                    continue
                if pos < self.min_samples_leaf or n - pos < self.min_samples_leaf:
                    continue
                right_total = parent_total - left_total
                right_squares = parent_squares - left_squares
                gain = parent_sse - (
                    _sse(left_total, left_squares, pos)
                    + _sse(right_total, right_squares, n - pos)
                )
                if gain > best_gain:
                    threshold = 0.5 * (
                        x[order[pos - 1]][feature] + x[order[pos]][feature]
                    )
                    best_gain = gain
                    best = (feature, threshold, order[:pos], order[pos:])
        return best

    # ------------------------------------------------------------------
    def predict(self, row: Sequence[float]) -> float:
        if self.root is None:
            raise RuntimeError("tree has not been fitted")
        if len(row) != self.n_features:
            raise ValueError(f"expected {self.n_features} features")
        node = self.root
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.prediction

    def predict_many(self, rows: Sequence[Sequence[float]]) -> List[float]:
        return [self.predict(row) for row in rows]

    @property
    def depth(self) -> int:
        def walk(node: Optional[TreeNode]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self.root)

    @property
    def n_leaves(self) -> int:
        def walk(node: Optional[TreeNode]) -> int:
            if node is None:
                return 0
            if node.is_leaf:
                return 1
            return walk(node.left) + walk(node.right)

        return walk(self.root)

    # ------------------------------------------------------------------
    # Durable state (checkpoint / artifact round-trips)
    # ------------------------------------------------------------------
    def to_state(self) -> Dict[str, object]:
        """JSON-able snapshot of the hyper-parameters and fitted tree."""
        return {
            "max_depth": self.max_depth,
            "min_samples_leaf": self.min_samples_leaf,
            "min_variance_reduction": self.min_variance_reduction,
            "n_features": self.n_features,
            "root": self.root.to_state() if self.root is not None else None,
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "RegressionTree":
        """Rebuild a tree from :meth:`to_state`; a clone predicts
        identically to the snapshotted original.

        Raises ``ValueError``/``TypeError``/``KeyError`` on malformed
        state, the same contract as :meth:`TreeNode.from_state`.
        """
        tree = cls(
            max_depth=int(state["max_depth"]),
            min_samples_leaf=int(state["min_samples_leaf"]),
            min_variance_reduction=float(state["min_variance_reduction"]),
        )
        n_features = state.get("n_features")
        root = state.get("root")
        if root is not None:
            if n_features is None or int(n_features) < 1:
                raise ValueError("fitted tree state must carry n_features")
            tree.n_features = int(n_features)
            tree.root = TreeNode.from_state(root)
        return tree
