"""Static baseline policies: CRC-only and always-on ARQ+ECC.

These are the two reactive designs of Section II.  The CRC design has no
link-level protection at all — every router stays in mode 0 forever, and
faults are caught only by the destination NI's CRC, triggering full
end-to-end packet retransmissions.  The ARQ+ECC design keeps every
-Link permanently enabled (mode 1): single-bit errors are corrected per
hop, double-bit errors cost a per-hop flit retransmission, and the ECC
hardware burns power on every transfer whether or not errors occur.
"""

from __future__ import annotations

from repro.core.controller import ControlPolicy
from repro.core.modes import OperationMode
from repro.core.state import RouterObservation
from repro.power.orion import DesignPowerProfile

__all__ = ["StaticPolicy", "crc_policy", "arq_ecc_policy"]


class StaticPolicy(ControlPolicy):
    """Pins every router to one operation mode."""

    def __init__(self, mode: OperationMode, profile: DesignPowerProfile) -> None:
        self.mode = mode
        self.profile = profile

    def select(self, router_id: int, observation: RouterObservation) -> OperationMode:
        return self.mode


def crc_policy() -> StaticPolicy:
    """The reactive CRC baseline (normalization reference of Figs 6-10)."""
    return StaticPolicy(OperationMode.MODE_0, DesignPowerProfile.crc())


def arq_ecc_policy() -> StaticPolicy:
    """The reactive per-hop ARQ+ECC baseline."""
    return StaticPolicy(OperationMode.MODE_1, DesignPowerProfile.arq_ecc())
