"""Comparison designs: static CRC, static ARQ+ECC, and the DT baseline."""

from repro.baselines.cart import RegressionTree, TreeNode
from repro.baselines.decision_tree import DEFAULT_THRESHOLDS, DecisionTreePolicy
from repro.baselines.static import StaticPolicy, arq_ecc_policy, crc_policy

__all__ = [
    "RegressionTree",
    "TreeNode",
    "DEFAULT_THRESHOLDS",
    "DecisionTreePolicy",
    "StaticPolicy",
    "arq_ecc_policy",
    "crc_policy",
]
