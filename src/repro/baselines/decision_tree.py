"""Decision-tree baseline policy (DiTomaso et al., MICRO 2016 style).

The supervised-learning comparison point of Section V-B: a regression
tree is trained — during a pre-training phase on synthetic traffic — to
predict each router's timing-error rate from the same Table I features
the RL agent observes; the operation mode is then chosen by thresholding
the predicted error rate against hand-engineered levels (the "human
engineering" of the control policy the paper contrasts RL against).
After pre-training the tree is frozen and "no longer updated during [the]
testing phase".

Training labels are the ground-truth per-transfer timing-error
probabilities of the router's output channels, which the simulator
attaches to every observation — mirroring the offline full-visibility
training of the original work.
"""

from __future__ import annotations

import logging
from typing import Dict, List, Optional, Tuple

from repro.baselines.cart import RegressionTree
from repro.core.controller import ControlPolicy
from repro.core.modes import OperationMode
from repro.core.state import RouterObservation
from repro.power.orion import DesignPowerProfile

__all__ = ["DecisionTreePolicy", "DEFAULT_THRESHOLDS"]

logger = logging.getLogger("repro.baselines.decision_tree")

#: Hand-engineered error-rate levels separating the four modes:
#: below minimum -> mode 0, low -> mode 1, medium -> mode 2, high -> mode 3.
DEFAULT_THRESHOLDS: Tuple[float, float, float] = (2e-3, 3e-2, 1.2e-1)


class DecisionTreePolicy(ControlPolicy):
    """Predict the error rate with a CART tree; threshold into a mode."""

    def __init__(
        self,
        thresholds: Tuple[float, float, float] = DEFAULT_THRESHOLDS,
        max_depth: int = 6,
        min_samples_leaf: int = 8,
        training_mode: OperationMode = OperationMode.MODE_1,
    ) -> None:
        if not thresholds[0] < thresholds[1] < thresholds[2]:
            raise ValueError("thresholds must be strictly increasing")
        self.profile = DesignPowerProfile.decision_tree()
        self.thresholds = thresholds
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        #: safe mode used while collecting training data
        self.training_mode = training_mode
        self._samples_x: List[List[float]] = []
        self._samples_y: List[float] = []
        self._tree: RegressionTree = None
        self._frozen = False

    # ------------------------------------------------------------------
    @property
    def trainable(self) -> bool:
        return True

    @property
    def is_fitted(self) -> bool:
        return self._tree is not None

    @property
    def training_samples(self) -> int:
        return len(self._samples_y)

    def reset(self, num_routers: int) -> None:
        # Per-run transient state only; the fitted tree survives resets
        # so one pre-trained tree can be evaluated across benchmarks.
        pass

    # ------------------------------------------------------------------
    def select(self, router_id: int, observation: RouterObservation) -> OperationMode:
        if not self.is_fitted:
            return self.training_mode
        predicted = self._tree.predict(observation.raw_vector())
        low, medium, high = self.thresholds
        if predicted < low:
            return OperationMode.MODE_0
        if predicted < medium:
            return OperationMode.MODE_1
        if predicted < high:
            return OperationMode.MODE_2
        return OperationMode.MODE_3

    def learn(
        self,
        router_id: int,
        observation: RouterObservation,
        action: OperationMode,
        reward: float,
        next_observation: RouterObservation,
    ) -> None:
        if self._frozen:
            return  # Section V-B: no updates during the testing phase
        self._samples_x.append(observation.raw_vector())
        self._samples_y.append(observation.true_error_probability)

    def freeze(self) -> None:
        """Fit the tree on the collected samples and stop learning."""
        if not self._frozen:
            if len(self._samples_y) >= 2 * self.min_samples_leaf:
                self._tree = RegressionTree(
                    max_depth=self.max_depth,
                    min_samples_leaf=self.min_samples_leaf,
                ).fit(self._samples_x, self._samples_y)
            self._frozen = True

    # ------------------------------------------------------------------
    def predicted_error_rate(self, observation: RouterObservation) -> float:
        """Expose the raw prediction for inspection/benchmarks."""
        if not self.is_fitted:
            raise RuntimeError("decision tree has not been trained")
        return self._tree.predict(observation.raw_vector())

    # ------------------------------------------------------------------
    # Durable state (checkpoints and pretrained campaign artifacts)
    # ------------------------------------------------------------------
    def to_state(self) -> Dict[str, object]:
        """Durable snapshot: thresholds, the fitted tree, and — so a
        mid-pretrain checkpoint round-trips exactly — the training
        samples collected so far."""
        return {
            "policy": self.name,
            "thresholds": list(self.thresholds),
            "training_mode": int(self.training_mode),
            "frozen": self._frozen,
            "samples_x": [list(row) for row in self._samples_x],
            "samples_y": list(self._samples_y),
            "tree": self._tree.to_state() if self._tree is not None else None,
        }

    def load_state(self, state: Optional[Dict[str, object]]) -> None:
        """Restore a :meth:`to_state` snapshot, degrading instead of dying.

        The snapshot is validated in full before any field is applied; a
        malformed one (non-numeric thresholds, a torn tree, mismatched
        sample arrays) is rejected with a warning and the policy keeps
        its current model — the unfitted fallback still controls every
        router via ``training_mode``.
        """
        if not state:
            return
        try:
            thresholds = tuple(float(t) for t in state.get("thresholds", self.thresholds))
            if len(thresholds) != 3 or not thresholds[0] < thresholds[1] < thresholds[2]:
                raise ValueError("thresholds must be three strictly increasing values")
            training_mode = OperationMode(
                int(state.get("training_mode", int(self.training_mode)))
            )
            samples_x = [
                [float(v) for v in row] for row in state.get("samples_x", [])
            ]
            samples_y = [float(v) for v in state.get("samples_y", [])]
            if len(samples_x) != len(samples_y):
                raise ValueError("sample features and labels disagree in length")
            tree_state = state.get("tree")
            tree = (
                RegressionTree.from_state(tree_state)
                if tree_state is not None
                else None
            )
        except (KeyError, TypeError, ValueError) as exc:
            logger.warning(
                "rejected decision-tree state (%s); keeping the current model", exc
            )
            return
        self.thresholds = thresholds
        self.training_mode = training_mode
        self._samples_x = samples_x
        self._samples_y = samples_y
        self._tree = tree
        self._frozen = bool(state.get("frozen", False))
