"""Packets and flits.

Data in the NoC travels as packets segmented into flits (Section II of the
paper).  The paper's configuration (Table II) uses 128-bit flits and
4-flit packets; both are configurable here.

Payloads are plain integers interpreted as bit-vectors, which lets the
fault injector flip bits with XOR masks and lets the real CRC/SECDED codes
from :mod:`repro.coding` operate on them directly.  Each flit accumulates
an ``error_mask`` of the bit errors that have survived link-level
protection; the destination network interface checks the CRC over
``payload ^ error_mask`` exactly as the hardware would see it.
"""

from __future__ import annotations

import enum
from typing import List, Optional

__all__ = ["FlitType", "Flit", "Packet"]


class FlitType(enum.Enum):
    """Position of a flit within its packet."""

    HEAD = "head"
    BODY = "body"
    TAIL = "tail"
    #: single-flit packet: simultaneously head and tail
    HEAD_TAIL = "head_tail"

    @property
    def is_head(self) -> bool:
        return self in (FlitType.HEAD, FlitType.HEAD_TAIL)

    @property
    def is_tail(self) -> bool:
        return self in (FlitType.TAIL, FlitType.HEAD_TAIL)


class Flit:
    """One flow-control unit.

    Attributes
    ----------
    packet:
        Owning :class:`Packet` (shared by all sibling flits).
    index:
        Position within the packet, ``0 .. packet.size - 1``.
    ftype:
        Head/body/tail classification.
    payload:
        Data bits as a non-negative integer.
    error_mask:
        Accumulated uncorrected bit errors (XOR mask over ``payload``).
    vc:
        Virtual channel currently holding the flit (set by the router).
    hops:
        Number of router-to-router channels traversed so far.
    """

    __slots__ = (
        "packet",
        "index",
        "ftype",
        "payload",
        "error_mask",
        "vc",
        "hops",
        "injected_at",
        "ghost",
        "is_head",
        "is_tail",
    )

    def __init__(
        self,
        packet: "Packet",
        index: int,
        ftype: FlitType,
        payload: int = 0,
    ) -> None:
        self.packet = packet
        self.index = index
        self.ftype = ftype
        #: head/tail classification cached as plain attributes — these
        #: are read in every pipeline stage, and enum-property chains
        #: showed up in the cycle-kernel profile
        self.is_head = ftype.is_head
        self.is_tail = ftype.is_tail
        self.payload = payload
        self.error_mask = 0
        self.vc: Optional[int] = None
        self.hops = 0
        self.injected_at: Optional[int] = None
        #: synthesized tail standing in for flits destroyed by a hard
        #: fault — keeps wormhole state machines consistent while the
        #: truncated packet drains toward discard
        self.ghost = False

    # ------------------------------------------------------------------
    @property
    def received_payload(self) -> int:
        """The payload as the receiver sees it (errors applied)."""
        return self.payload ^ self.error_mask

    @property
    def is_corrupted(self) -> bool:
        """Whether any uncorrected bit errors are present."""
        return self.error_mask != 0

    @property
    def dest(self) -> int:
        return self.packet.dest

    @property
    def src(self) -> int:
        return self.packet.src

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Flit(pkt={self.packet.pid}, idx={self.index}, "
            f"{self.ftype.value}, {self.src}->{self.dest})"
        )


class Packet:
    """A multi-flit message between two network interfaces.

    Attributes
    ----------
    pid:
        Unique packet id (unique per *transmission attempt*; a source
        retransmission creates a fresh :class:`Packet` sharing
        ``message_id``).
    message_id:
        Identity of the logical message, stable across end-to-end
        retransmissions.
    src, dest:
        Source and destination router/core ids.
    size:
        Number of flits.
    created_at:
        Cycle the message was first handed to the source NI (stable
        across retransmissions — end-to-end latency is measured from it).
    crc_check:
        CRC check bits computed by the source NI over the concatenated
        payloads.
    retransmission:
        How many end-to-end retransmissions preceded this attempt.
    """

    __slots__ = (
        "pid",
        "message_id",
        "src",
        "dest",
        "size",
        "flit_bits",
        "created_at",
        "injected_at",
        "crc_check",
        "retransmission",
        "payloads",
        "flits",
        "path",
        "lost",
    )

    _next_pid = 0

    def __init__(
        self,
        src: int,
        dest: int,
        size: int,
        flit_bits: int,
        created_at: int,
        payloads: Optional[List[int]] = None,
        message_id: Optional[int] = None,
        retransmission: int = 0,
    ) -> None:
        if size <= 0:
            raise ValueError("packet size must be at least one flit")
        if src == dest:
            raise ValueError("source and destination must differ")
        self.pid = Packet._next_pid
        Packet._next_pid += 1
        self.message_id = self.pid if message_id is None else message_id
        self.src = src
        self.dest = dest
        self.size = size
        self.flit_bits = flit_bits
        self.created_at = created_at
        self.injected_at: Optional[int] = None
        self.crc_check: Optional[int] = None
        self.retransmission = retransmission
        if payloads is None:
            payloads = [0] * size
        if len(payloads) != size:
            raise ValueError("one payload per flit required")
        self.payloads = payloads
        #: router ids visited by the head flit (filled in by RC); used to
        #: attribute delivered-packet latency to routers for the RL reward
        self.path: List[int] = []
        #: set when a hard fault destroyed part of this transmission
        #: attempt — surviving flits keep flowing (wormhole state must
        #: stay consistent) but the destination NI discards the carcass
        self.lost = False
        self.flits = [
            Flit(self, i, self._flit_type(i, size), payloads[i]) for i in range(size)
        ]

    # ------------------------------------------------------------------
    @staticmethod
    def _flit_type(index: int, size: int) -> FlitType:
        if size == 1:
            return FlitType.HEAD_TAIL
        if index == 0:
            return FlitType.HEAD
        if index == size - 1:
            return FlitType.TAIL
        return FlitType.BODY

    @property
    def total_bits(self) -> int:
        return self.size * self.flit_bits

    def combined_payload(self, received: bool = False) -> int:
        """Concatenate flit payloads into one integer (flit 0 lowest).

        With ``received=True`` the accumulated error masks are applied,
        giving the word the destination CRC checker actually sees.
        """
        word = 0
        for i, flit in enumerate(self.flits):
            bits = flit.received_payload if received else flit.payload
            word |= bits << (i * self.flit_bits)
        return word

    def make_ghost_tail(self) -> Flit:
        """Synthesize a tail flit to terminate a fault-truncated worm.

        Pushed by the network's kill sweep in place of flits that died on
        a dead link, so every downstream VC still sees a tail and can
        release; the packet is already marked :attr:`lost`, so the
        destination NI discards the fragment instead of reassembling it.
        """
        flit = Flit(self, self.size - 1, FlitType.TAIL)
        flit.ghost = True
        return flit

    def clone_for_retransmission(self, now: int) -> "Packet":
        """Build a fresh copy for an end-to-end retransmission."""
        clone = Packet(
            src=self.src,
            dest=self.dest,
            size=self.size,
            flit_bits=self.flit_bits,
            created_at=self.created_at,
            payloads=list(self.payloads),
            message_id=self.message_id,
            retransmission=self.retransmission + 1,
        )
        clone.crc_check = self.crc_check
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(pid={self.pid}, msg={self.message_id}, "
            f"{self.src}->{self.dest}, size={self.size}, "
            f"retx={self.retransmission})"
        )
