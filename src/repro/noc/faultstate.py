"""Shared hard-fault state: which links and routers are dead.

The soft-error substrate (:mod:`repro.faults.injector`) perturbs *bits*;
this module tracks *permanent* topology damage — links and routers
killed by :meth:`repro.noc.network.Network.kill_link` /
:meth:`~repro.noc.network.Network.kill_router`.  One :class:`FaultState`
instance is shared by the network, every router's route-computation
stage, and the fault-aware routing policy, so a single kill is
immediately visible everywhere.

Reachability and next-hop queries run on the *alive* subgraph.  Distance
tables are computed lazily per destination with a reverse BFS and cached
until the next kill; on the paper's mesh sizes this is microseconds.

The adaptive next-hop rule only ever moves to a neighbour strictly
closer (on the alive graph) to the destination, so routes cannot cycle:
fault-aware adaptive routing is livelock-free by construction.  Deadlock
freedom of the turn model can no longer be guaranteed once arbitrary
links disappear — that residual risk is exactly what the network's
invariant watchdog (:mod:`repro.noc.watchdog`) is there to catch.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.noc.topology import OPPOSITE_PORT, MeshTopology, Port

__all__ = ["FaultState"]

#: Direction ports in canonical tie-break order.
_DIRECTIONS = (Port.EAST, Port.WEST, Port.NORTH, Port.SOUTH)


class FaultState:
    """Hard-fault bookkeeping over one topology instance."""

    __slots__ = ("topology", "dead_links", "dead_nodes", "version", "_dist_cache")

    def __init__(self, topology: MeshTopology) -> None:
        self.topology = topology
        #: directed dead links as (source node, output port int)
        self.dead_links: Set[Tuple[int, int]] = set()
        self.dead_nodes: Set[int] = set()
        #: bumped on every kill; lets observers cheaply detect changes
        self.version = 0
        self._dist_cache: Dict[int, Dict[int, int]] = {}

    # ------------------------------------------------------------------
    @property
    def any_faults(self) -> bool:
        return bool(self.dead_links or self.dead_nodes)

    def kill_link(self, node: int, port: int) -> None:
        """Mark one directed link dead (state only; the Network sweeps)."""
        self.dead_links.add((node, int(port)))
        self._invalidate()

    def kill_node(self, node: int) -> None:
        self.dead_nodes.add(node)
        self._invalidate()

    def _invalidate(self) -> None:
        self.version += 1
        self._dist_cache.clear()

    # ------------------------------------------------------------------
    def node_alive(self, node: int) -> bool:
        return node not in self.dead_nodes

    def link_alive(self, node: int, port: int) -> bool:
        """Whether ``node`` can currently send through ``port``."""
        port = int(port)
        if (node, port) in self.dead_links or node in self.dead_nodes:
            return False
        neighbour = self.topology.neighbour(node, Port(port))
        return neighbour is not None and neighbour not in self.dead_nodes

    def alive_ports(self, node: int) -> List[Port]:
        return [p for p in _DIRECTIONS if self.link_alive(node, p)]

    # ------------------------------------------------------------------
    def _dist(self, dest: int) -> Dict[int, int]:
        """Hop count to ``dest`` over alive links, for reachable nodes."""
        table = self._dist_cache.get(dest)
        if table is not None:
            return table
        table = {}
        if self.node_alive(dest):
            table[dest] = 0
            frontier = deque([dest])
            topology = self.topology
            while frontier:
                node = frontier.popleft()
                d = table[node]
                # Predecessors: neighbours v whose link toward ``node``
                # (the opposite of our port toward them) is alive.
                for port in _DIRECTIONS:
                    v = topology.neighbour(node, port)
                    if v is None or v in table:
                        continue
                    if self.link_alive(v, OPPOSITE_PORT[port]):
                        table[v] = d + 1
                        frontier.append(v)
        self._dist_cache[dest] = table
        return table

    def reachable(self, src: int, dest: int) -> bool:
        """Whether a packet at ``src`` can still reach ``dest``."""
        if not self.node_alive(src) or not self.node_alive(dest):
            return False
        return src == dest or src in self._dist(dest)

    def next_hop(self, node: int, dest: int, prefer: Optional[Port] = None) -> Optional[Port]:
        """A productive alive output port, or None if ``dest`` is cut off.

        Only strictly distance-decreasing hops are returned (livelock
        freedom); among them ``prefer`` (typically the minimal XY port)
        wins, then the canonical E/W/N/S order breaks remaining ties
        deterministically.
        """
        if node == dest:
            return Port.LOCAL
        dist = self._dist(dest)
        d = dist.get(node)
        if d is None:
            return None
        topology = self.topology
        candidates = _DIRECTIONS if prefer is None else (prefer,) + _DIRECTIONS
        for port in candidates:
            if not self.link_alive(node, port):
                continue
            if dist.get(topology.neighbour(node, port)) == d - 1:
                return port
        return None  # unreachable in practice: d finite implies a hop exists

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultState(dead_links={sorted(self.dead_links)}, "
            f"dead_nodes={sorted(self.dead_nodes)})"
        )
