"""Mesh/torus topology: node coordinates, ports, and channel wiring.

The paper evaluates an 8x8 2D mesh (Table II) and illustrates a 4x4 mesh
(Fig. 1(a)).  Each router has five ports: one local (core) port plus the
four cardinal directions.  This module owns the coordinate arithmetic and
the list of directed inter-router channels; it knows nothing about flits
or cycles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["Port", "ChannelSpec", "MeshTopology", "OPPOSITE_PORT"]


class Port(enum.IntEnum):
    """Router port identifiers.

    The integer values index per-port arrays throughout the simulator;
    keep LOCAL at 0 so directions form a contiguous 1..4 range.
    """

    LOCAL = 0
    EAST = 1   # +X
    WEST = 2   # -X
    NORTH = 3  # +Y
    SOUTH = 4  # -Y


#: Port on the neighbouring router that faces back at us.
OPPOSITE_PORT: Dict[Port, Port] = {
    Port.EAST: Port.WEST,
    Port.WEST: Port.EAST,
    Port.NORTH: Port.SOUTH,
    Port.SOUTH: Port.NORTH,
}

#: Coordinate deltas for each direction port.
_PORT_DELTA: Dict[Port, Tuple[int, int]] = {
    Port.EAST: (1, 0),
    Port.WEST: (-1, 0),
    Port.NORTH: (0, 1),
    Port.SOUTH: (0, -1),
}


@dataclass(frozen=True)
class ChannelSpec:
    """A directed inter-router channel.

    ``src`` sends through its ``src_port``; ``dst`` receives on
    ``dst_port``.  The paper calls the channel from router *i* to *i+1*
    "channel i" and its protection hardware "-Link i" (Section III).
    """

    src: int
    src_port: Port
    dst: int
    dst_port: Port


class MeshTopology:
    """A ``width`` x ``height`` 2D mesh (optionally a torus).

    Node ids are ``y * width + x`` with (0, 0) at the south-west corner,
    matching the usual Booksim convention.
    """

    def __init__(self, width: int, height: int, torus: bool = False) -> None:
        if width < 2 or height < 2:
            raise ValueError("mesh must be at least 2x2")
        self.width = width
        self.height = height
        self.torus = torus
        self.num_nodes = width * height
        self.num_ports = len(Port)
        self._channels: List[ChannelSpec] = []
        self._neighbour: Dict[Tuple[int, Port], int] = {}
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        for node in range(self.num_nodes):
            x, y = self.coordinates(node)
            for port, (dx, dy) in _PORT_DELTA.items():
                nx, ny = x + dx, y + dy
                if self.torus:
                    nx %= self.width
                    ny %= self.height
                elif not (0 <= nx < self.width and 0 <= ny < self.height):
                    continue
                neighbour = self.node_id(nx, ny)
                self._neighbour[(node, port)] = neighbour
                self._channels.append(
                    ChannelSpec(node, port, neighbour, OPPOSITE_PORT[port])
                )

    # ------------------------------------------------------------------
    def node_id(self, x: int, y: int) -> int:
        """Node id at coordinates (x, y)."""
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"coordinates ({x}, {y}) outside mesh")
        return y * self.width + x

    def coordinates(self, node: int) -> Tuple[int, int]:
        """Coordinates (x, y) of a node id."""
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} outside mesh")
        return node % self.width, node // self.width

    def neighbour(self, node: int, port: Port) -> Optional[int]:
        """Node on the far side of ``port``, or None at a mesh edge."""
        return self._neighbour.get((node, port))

    def channels(self) -> Iterator[ChannelSpec]:
        """All directed inter-router channels."""
        return iter(self._channels)

    @property
    def num_channels(self) -> int:
        return len(self._channels)

    def hop_distance(self, src: int, dest: int) -> int:
        """Minimal hop count between two nodes (Manhattan on a mesh)."""
        sx, sy = self.coordinates(src)
        dx, dy = self.coordinates(dest)
        span_x = abs(sx - dx)
        span_y = abs(sy - dy)
        if self.torus:
            span_x = min(span_x, self.width - span_x)
            span_y = min(span_y, self.height - span_y)
        return span_x + span_y

    def ports_of(self, node: int) -> List[Port]:
        """Ports of ``node`` that are wired (LOCAL plus real neighbours)."""
        ports = [Port.LOCAL]
        ports.extend(p for p in _PORT_DELTA if (node, p) in self._neighbour)
        return ports

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "torus" if self.torus else "mesh"
        return f"MeshTopology({self.width}x{self.height} {kind})"
