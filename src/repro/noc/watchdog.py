"""Runtime invariant watchdogs: conservation, deadlock, livelock.

A NoC that can lose links must prove, continuously, that it is not
quietly wedging: every watchdog here turns a silent hang or a slow leak
into a structured exception carrying a machine-readable ``report``
dictionary that names the stuck routers, ports, VCs, and packets.

Three invariants are polled every ``interval`` cycles from
:meth:`repro.noc.network.Network.cycle`:

* **packet conservation** — messages created must equal messages
  delivered plus messages dropped plus messages still outstanding at
  their source NIs.  Any imbalance means the protocol lost or duplicated
  a message, and is reported immediately;
* **deadlock** — messages are outstanding but no buffer has moved a flit
  for ``deadlock_cycles``: classic cyclic-dependency deadlock (or a
  protocol stall).  The report dumps every non-idle VC;
* **livelock / starvation** — some message has been outstanding longer
  than ``max_packet_age`` cycles even though the network is still
  moving: packets are circulating (or endlessly retransmitted) without
  delivering.

Watchdogs are cheap: one pass over the NIs plus integer compares, a few
hundred times per million cycles.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.noc.buffers import VCState

__all__ = [
    "NoCInvariantError",
    "ConservationError",
    "DeadlockError",
    "LivelockError",
    "UnreachableDestinationError",
    "NetworkWatchdog",
]


class NoCInvariantError(RuntimeError):
    """Base class: a runtime network invariant was violated.

    ``report`` is a JSON-serializable diagnosis (cycle, counters, stuck
    resources) for logs and chaos-campaign result payloads.
    """

    def __init__(self, message: str, report: Optional[Dict] = None) -> None:
        super().__init__(message)
        self.report = report if report is not None else {}


class ConservationError(NoCInvariantError):
    """created != delivered + dropped + outstanding."""


class DeadlockError(NoCInvariantError):
    """Flits in flight but nothing has moved for the detection window."""


class LivelockError(NoCInvariantError):
    """A message exceeded the maximum age while the network still moves."""


class UnreachableDestinationError(NoCInvariantError):
    """A packet's destination was cut off from its current position."""


class NetworkWatchdog:
    """Polls the three invariants over one :class:`Network` instance."""

    __slots__ = (
        "network",
        "interval",
        "deadlock_cycles",
        "max_packet_age",
        "checks",
        "_last_activity",
        "_last_progress_cycle",
    )

    def __init__(
        self,
        network,
        interval: int = 256,
        deadlock_cycles: int = 4096,
        max_packet_age: int = 500_000,
    ) -> None:
        if interval < 0 or deadlock_cycles <= 0:
            raise ValueError("watchdog windows must be positive")
        self.network = network
        #: cycles between polls; 0 disables the watchdog entirely
        self.interval = interval
        self.deadlock_cycles = deadlock_cycles
        #: 0 disables the livelock check only
        self.max_packet_age = max_packet_age
        self.checks = 0
        self._last_activity = -1
        self._last_progress_cycle = 0

    # ------------------------------------------------------------------
    def _activity(self) -> int:
        """Monotonic count of buffer/link events since the run started.

        Harvested epochs contribute through the network's folded
        ``buffer_ops`` counter; the live (unharvested) epoch counters are
        added on top, so the sum never decreases across epoch resets.
        """
        live = 0
        for router in self.network.routers:
            epoch = router.epoch
            live += epoch.buffer_writes + epoch.buffer_reads + epoch.flit_retransmissions
        return self.network.stats.buffer_ops + live

    def _trip(self, now: int, kind: str) -> None:
        tracer = self.network.tracer
        if tracer is not None:
            tracer.emit(now, "watchdog", "trip", error=kind)

    def check(self, now: int) -> None:
        """Run all enabled invariant checks; raises on violation."""
        self.checks += 1
        network = self.network
        stats = network.stats
        outstanding = sum(ni.outstanding_messages for ni in network.interfaces)
        tracer = network.tracer
        if tracer is not None:
            tracer.emit(now, "watchdog", "check", outstanding=outstanding)

        # The O(1) quiescence counter must agree with the ground-truth
        # NI scan — a divergence means an enqueue/release/drop path
        # forgot its increment and the drain loop would mis-terminate.
        if stats.outstanding_messages != outstanding:
            self._trip(now, "outstanding_counter")
            raise ConservationError(
                f"outstanding-message counter diverged at cycle {now}: "
                f"counter {stats.outstanding_messages} != scan {outstanding}",
                report={
                    "kind": "outstanding_counter",
                    "cycle": now,
                    "counter": stats.outstanding_messages,
                    "scan": outstanding,
                },
            )

        expected = stats.messages_created - stats.packets_delivered - stats.messages_dropped
        if expected != outstanding:
            self._trip(now, "conservation")
            raise ConservationError(
                f"packet conservation violated at cycle {now}: created "
                f"{stats.messages_created} != delivered {stats.packets_delivered} "
                f"+ dropped {stats.messages_dropped} + outstanding {outstanding}",
                report={
                    "kind": "conservation",
                    "cycle": now,
                    "messages_created": stats.messages_created,
                    "packets_delivered": stats.packets_delivered,
                    "messages_dropped": stats.messages_dropped,
                    "outstanding": outstanding,
                },
            )

        if outstanding == 0:
            self._last_activity = self._activity()
            self._last_progress_cycle = now
            return

        activity = self._activity()
        if activity != self._last_activity:
            self._last_activity = activity
            self._last_progress_cycle = now
        elif now - self._last_progress_cycle >= self.deadlock_cycles:
            self._trip(now, "deadlock")
            raise DeadlockError(
                f"deadlock: {outstanding} message(s) outstanding but no flit "
                f"moved for {now - self._last_progress_cycle} cycles",
                report=self._stall_report("deadlock", now, outstanding),
            )

        if self.max_packet_age:
            oldest_age = 0
            oldest: List[Dict] = []
            for ni in network.interfaces:
                for message_id, packet in ni._store.items():
                    age = now - packet.created_at
                    if age > self.max_packet_age:
                        oldest.append(
                            {
                                "message_id": message_id,
                                "src": packet.src,
                                "dest": packet.dest,
                                "age": age,
                                "retransmission": packet.retransmission,
                            }
                        )
                        oldest_age = max(oldest_age, age)
            if oldest:
                report = self._stall_report("livelock", now, outstanding)
                report["overage_messages"] = sorted(
                    oldest, key=lambda m: -m["age"]
                )[:16]
                self._trip(now, "livelock")
                raise LivelockError(
                    f"livelock/starvation: {len(oldest)} message(s) older than "
                    f"{self.max_packet_age} cycles (oldest {oldest_age})",
                    report=report,
                )

    def rearm(self, now: int) -> None:
        """Restart the progress window after a handled trip.

        A supervisor that catches an invariant error and intervenes
        (safe-mode degradation, mode pinning) calls this so the network
        gets one fresh ``deadlock_cycles`` window to start moving again
        — otherwise the very next poll would re-raise the same stall.
        """
        self._last_activity = -1
        self._last_progress_cycle = now

    # ------------------------------------------------------------------
    def _stall_report(self, kind: str, now: int, outstanding: int) -> Dict:
        """Dump every non-idle VC and pending ARQ window for diagnosis."""
        stuck: List[Dict] = []
        for router in self.network.routers:
            for port in router.inputs:
                for vc in port.vcs:
                    if vc.state is VCState.IDLE and not vc.fifo:
                        continue
                    packet = vc.current_packet
                    stuck.append(
                        {
                            "router": router.id,
                            "port": port.port.name,
                            "vc": vc.vc_id,
                            "state": vc.state.value,
                            "occupancy": len(vc.fifo),
                            "out_port": None if vc.out_port is None else int(vc.out_port),
                            "packet": None
                            if packet is None
                            else {
                                "pid": packet.pid,
                                "src": packet.src,
                                "dest": packet.dest,
                                "age": now - packet.created_at,
                                "lost": packet.lost,
                            },
                        }
                    )
            for port, link in router.outputs.items():
                if link.pending_retx or not link.arq.is_empty:
                    stuck.append(
                        {
                            "router": router.id,
                            "output_port": int(port),
                            "pending_retx": len(link.pending_retx),
                            "arq_occupancy": len(link.arq),
                            "alive": link.alive,
                        }
                    )
        return {
            "kind": kind,
            "cycle": now,
            "outstanding": outstanding,
            "stuck": stuck[:64],
            "stuck_total": len(stuck),
        }
