"""Cycle-level NoC substrate: topology, routers, channels, interfaces.

This package is the reproduction's stand-in for Booksim2 — a from-scratch
cycle-level simulator of the paper's platform: an 8x8 2D mesh of 4-stage
virtual-channel routers with XY routing, credit-based flow control, and
the fault-tolerant extensions of the proposed design (per-hop ARQ+ECC
links, flit pre-retransmission, timing-relaxed transfers).
"""

from repro.noc.arbiters import MatrixArbiter, RoundRobinArbiter
from repro.noc.buffers import InputPort, OutputQueue, VCState, VirtualChannel
from repro.noc.channel import Channel, ChannelErrorModel, Transmission
from repro.noc.faultstate import FaultState
from repro.noc.interface import NetworkInterface
from repro.noc.network import Network
from repro.noc.packet import Flit, FlitType, Packet
from repro.noc.router import Router
from repro.noc.routing import (
    ROUTING_FUNCTIONS,
    RoutingPolicy,
    make_adaptive_route,
    minimal_ports,
    resolve_routing_policy,
    xy_route,
    yx_route,
)
from repro.noc.stats import LatencyAccumulator, NetworkStats, RouterEpochStats
from repro.noc.topology import ChannelSpec, MeshTopology, Port
from repro.noc.watchdog import (
    ConservationError,
    DeadlockError,
    LivelockError,
    NetworkWatchdog,
    NoCInvariantError,
    UnreachableDestinationError,
)

__all__ = [
    "FaultState",
    "ROUTING_FUNCTIONS",
    "RoutingPolicy",
    "make_adaptive_route",
    "resolve_routing_policy",
    "ConservationError",
    "DeadlockError",
    "LivelockError",
    "NetworkWatchdog",
    "NoCInvariantError",
    "UnreachableDestinationError",
    "MatrixArbiter",
    "RoundRobinArbiter",
    "InputPort",
    "OutputQueue",
    "VCState",
    "VirtualChannel",
    "Channel",
    "ChannelErrorModel",
    "Transmission",
    "NetworkInterface",
    "Network",
    "Flit",
    "FlitType",
    "Packet",
    "Router",
    "minimal_ports",
    "xy_route",
    "yx_route",
    "LatencyAccumulator",
    "NetworkStats",
    "RouterEpochStats",
    "ChannelSpec",
    "MeshTopology",
    "Port",
]
