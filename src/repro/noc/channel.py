"""Inter-router channels: data wires plus sideband ACK/credit wires.

A :class:`Channel` is the directed link the paper calls "channel i"
(Section III).  It carries:

* data transmissions (flits, possibly ECC-protected, possibly mode-2
  duplicates), delivered after ``latency`` cycles;
* the sideband acknowledgement wire back to the sender (ACK/NACK flits of
  the ARQ protocol, Fig. 1(c));
* the credit-return wire of the VC flow control.

Error injection happens at *delivery* time through the channel's
:attr:`error_model`, which the fault substrate refreshes every control
epoch with the current temperature-dependent probabilities
(:mod:`repro.faults.varius`).  The channel itself is agnostic about where
those probabilities come from.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.coding.arq import AckMessage
from repro.noc.packet import Flit
from repro.noc.topology import ChannelSpec

__all__ = ["Transmission", "ChannelErrorModel", "Channel"]


class Transmission:
    """One flit in flight on a channel."""

    __slots__ = (
        "flit",
        "seq",
        "vc",
        "protected",
        "relaxed",
        "duplicate",
        "paired",
        "arrive_at",
    )

    def __init__(
        self,
        flit: Flit,
        seq: Optional[int],
        vc: int,
        protected: bool,
        relaxed: bool,
        duplicate: bool,
        arrive_at: int,
        paired: bool = False,
    ) -> None:
        self.flit = flit
        #: ARQ sequence number (None on unprotected channels)
        self.seq = seq
        #: downstream input VC the flit was allocated to
        self.vc = vc
        #: whether the -Link (ECC encoder/decoder pair) is enabled
        self.protected = protected
        #: whether mode-3 timing relaxation applies to this transfer
        self.relaxed = relaxed
        #: whether this is a mode-2 pre-retransmission copy
        self.duplicate = duplicate
        #: whether a pre-retransmission copy follows this transmission.
        #: Duplicates carry no credit of their own, so the credit-refund
        #: rules differ for each member of the pair (see Router).
        self.paired = paired
        self.arrive_at = arrive_at


class ChannelErrorModel:
    """Per-channel timing-error sampler.

    ``event_probability`` is the chance a flit transfer suffers a timing
    error event; ``severity`` gives the distribution of the number of bit
    errors per event ``(P[1 bit], P[2 bits], P[3+ bits])``.  Mode-3
    relaxed transfers scale the event probability by ``relax_factor``
    (near zero — the paper says timing relaxation brings the error
    probability "near to zero").
    """

    __slots__ = ("event_probability", "severity", "relax_factor", "_rng", "_bits")

    def __init__(
        self,
        rng,
        flit_bits: int,
        event_probability: float = 0.0,
        severity: Tuple[float, float, float] = (0.33, 0.47, 0.20),
        relax_factor: float = 1e-4,
    ) -> None:
        if not 0.0 <= event_probability <= 1.0:
            raise ValueError("event probability must be in [0, 1]")
        if abs(sum(severity) - 1.0) > 1e-9 or any(s < 0 for s in severity):
            raise ValueError("severity must be a probability distribution")
        self.event_probability = event_probability
        self.severity = severity
        self.relax_factor = relax_factor
        self._rng = rng
        self._bits = flit_bits

    def sample_error_bits(self, relaxed: bool) -> int:
        """Number of bit errors for one flit transfer (0 = clean)."""
        p = self.event_probability * (self.relax_factor if relaxed else 1.0)
        if p <= 0.0 or self._rng.random() >= p:
            return 0
        roll = self._rng.random()
        if roll < self.severity[0]:
            return 1
        if roll < self.severity[0] + self.severity[1]:
            return 2
        return 3

    def sample_mask(self, n_errors: int) -> int:
        """Random XOR mask with ``n_errors`` distinct flipped bits."""
        mask = 0
        while bin(mask).count("1") < n_errors:
            mask |= 1 << self._rng.randrange(self._bits)
        return mask


class Channel:
    """A directed inter-router channel with its sideband wires."""

    __slots__ = (
        "spec",
        "latency",
        "error_model",
        "alive",
        "_data",
        "_acks",
        "_credits",
    )

    def __init__(self, spec: ChannelSpec, latency: int, error_model: ChannelErrorModel) -> None:
        if latency < 1:
            raise ValueError("channel latency must be at least one cycle")
        self.spec = spec
        self.latency = latency
        self.error_model = error_model
        #: cleared by Network.kill_link — a dead channel swallows all
        #: traffic (data and sideband) instead of delivering it
        self.alive = True
        self._data: List[Transmission] = []
        #: (deliver_cycle, AckMessage) back toward the sender
        self._acks: List[Tuple[int, AckMessage]] = []
        #: (deliver_cycle, vc) credit returns toward the sender
        self._credits: List[Tuple[int, int]] = []

    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        """Whether anything (data or sideband) is in flight."""
        return bool(self._data or self._acks or self._credits)

    def send(self, transmission: Transmission) -> None:
        if self.alive:
            self._data.append(transmission)

    def send_ack(self, message: AckMessage, deliver_at: int) -> None:
        if self.alive:
            self._acks.append((deliver_at, message))

    def send_credit(self, vc: int, deliver_at: int) -> None:
        if self.alive:
            self._credits.append((deliver_at, vc))

    # ------------------------------------------------------------------
    def pop_arrivals(self, now: int) -> List[Transmission]:
        """Remove and return data transmissions due at ``now``."""
        if not self._data:
            return []
        due = [t for t in self._data if t.arrive_at <= now]
        if due:
            self._data = [t for t in self._data if t.arrive_at > now]
            due.sort(key=lambda t: t.arrive_at)
        return due

    def pop_acks(self, now: int) -> List[AckMessage]:
        """Remove and return sideband ACK/NACKs due at ``now``."""
        if not self._acks:
            return []
        due = [m for t, m in self._acks if t <= now]
        if due:
            self._acks = [(t, m) for t, m in self._acks if t > now]
        return due

    def pop_credits(self, now: int) -> List[int]:
        """Remove and return credit returns due at ``now``."""
        if not self._credits:
            return []
        due = [vc for t, vc in self._credits if t <= now]
        if due:
            self._credits = [(t, vc) for t, vc in self._credits if t > now]
        return due
