"""Inter-router channels: data wires plus sideband ACK/credit wires.

A :class:`Channel` is the directed link the paper calls "channel i"
(Section III).  It carries:

* data transmissions (flits, possibly ECC-protected, possibly mode-2
  duplicates), delivered after ``latency`` cycles;
* the sideband acknowledgement wire back to the sender (ACK/NACK flits of
  the ARQ protocol, Fig. 1(c));
* the credit-return wire of the VC flow control.

Error injection happens at *delivery* time through the channel's
:attr:`error_model`, which the fault substrate refreshes every control
epoch with the current temperature-dependent probabilities
(:mod:`repro.faults.varius`).  The channel itself is agnostic about where
those probabilities come from.
"""

from __future__ import annotations

import math
import operator
from typing import List, Optional, Set, Tuple

from repro.coding.arq import AckMessage
from repro.noc.packet import Flit
from repro.noc.topology import ChannelSpec

__all__ = ["Transmission", "ChannelErrorModel", "Channel"]

#: sentinel gap meaning "no error will ever fire" (probability <= 0);
#: distinct from ``None`` which means "gap not drawn yet"
_GAP_NEVER = -1

#: gaps beyond this are indistinguishable from "never" on any run length
#: and guard the float -> int conversion against overflow
_GAP_MAX = float(2**62)

#: stable sort key for due transmissions (C-level attrgetter beats a
#: lambda in the per-cycle arrival pop)
_arrive_key = operator.attrgetter("arrive_at")


class Transmission:
    """One flit in flight on a channel."""

    __slots__ = (
        "flit",
        "seq",
        "vc",
        "protected",
        "relaxed",
        "duplicate",
        "paired",
        "arrive_at",
    )

    def __init__(
        self,
        flit: Flit,
        seq: Optional[int],
        vc: int,
        protected: bool,
        relaxed: bool,
        duplicate: bool,
        arrive_at: int,
        paired: bool = False,
    ) -> None:
        self.flit = flit
        #: ARQ sequence number (None on unprotected channels)
        self.seq = seq
        #: downstream input VC the flit was allocated to
        self.vc = vc
        #: whether the -Link (ECC encoder/decoder pair) is enabled
        self.protected = protected
        #: whether mode-3 timing relaxation applies to this transfer
        self.relaxed = relaxed
        #: whether this is a mode-2 pre-retransmission copy
        self.duplicate = duplicate
        #: whether a pre-retransmission copy follows this transmission.
        #: Duplicates carry no credit of their own, so the credit-refund
        #: rules differ for each member of the pair (see Router).
        self.paired = paired
        self.arrive_at = arrive_at


class ChannelErrorModel:
    """Per-channel timing-error sampler with geometric skip-sampling.

    ``event_probability`` is the chance a flit transfer suffers a timing
    error event; ``severity`` gives the distribution of the number of bit
    errors per event ``(P[1 bit], P[2 bits], P[3+ bits])``.  Mode-3
    relaxed transfers scale the event probability by ``relax_factor``
    (near zero — the paper says timing relaxation brings the error
    probability "near to zero").

    Instead of one Bernoulli draw per protected flit, the sampler draws
    the *gap* to the next error event once — the number of clean
    transfers before the faulty one, geometrically distributed as
    ``floor(ln(U)/ln(1-p))`` — and counts flits down to it.  Relaxed and
    unrelaxed transfers see different probabilities, so each stream keeps
    its own countdown.  The geometric distribution is memoryless, so a
    countdown stays valid as long as its probability is unchanged; the
    property setters invalidate it only on an actual change, and the next
    ``sample_error_bits`` call lazily redraws.  That lazy redraw is what
    keeps the RNG stream deterministic: draws happen only at flit
    arrivals, which every kernel processes in the same global order.
    """

    __slots__ = (
        "_event_probability",
        "severity",
        "_relax_factor",
        "_rng",
        "_bits",
        "_gap",
        "_gap_relaxed",
    )

    def __init__(
        self,
        rng,
        flit_bits: int,
        event_probability: float = 0.0,
        severity: Tuple[float, float, float] = (0.33, 0.47, 0.20),
        relax_factor: float = 1e-4,
    ) -> None:
        if not 0.0 <= event_probability <= 1.0:
            raise ValueError("event probability must be in [0, 1]")
        if abs(sum(severity) - 1.0) > 1e-9 or any(s < 0 for s in severity):
            raise ValueError("severity must be a probability distribution")
        self._event_probability = event_probability
        self.severity = severity
        self._relax_factor = relax_factor
        self._rng = rng
        self._bits = flit_bits
        #: clean transfers remaining before the next unrelaxed error
        #: (None = not drawn yet, _GAP_NEVER = probability is zero)
        self._gap: Optional[int] = None
        #: same countdown for the mode-3 relaxed stream
        self._gap_relaxed: Optional[int] = None

    # -- probability knobs (setters invalidate the countdowns) ---------
    @property
    def event_probability(self) -> float:
        return self._event_probability

    @event_probability.setter
    def event_probability(self, value: float) -> None:
        if value != self._event_probability:
            self._event_probability = value
            self._gap = None
            self._gap_relaxed = None

    @property
    def relax_factor(self) -> float:
        return self._relax_factor

    @relax_factor.setter
    def relax_factor(self, value: float) -> None:
        if value != self._relax_factor:
            self._relax_factor = value
            self._gap_relaxed = None

    def set_probabilities(self, event_probability: float, relax_factor: float) -> None:
        """Epoch refresh entry point used by the fault injector."""
        self.event_probability = event_probability
        self.relax_factor = relax_factor

    # ------------------------------------------------------------------
    def _draw_gap(self, p: float) -> int:
        """Clean transfers before the next error, geometrically sampled."""
        if p <= 0.0:
            return _GAP_NEVER
        u = self._rng.random()
        if p >= 1.0 or u <= 0.0:
            return 0
        # log1p keeps precision for tiny p; denormal p can still make the
        # divisor 0.0 (or the quotient overflow a double), which just means
        # the gap exceeds any simulable horizon.
        log1mp = math.log1p(-p)
        if log1mp == 0.0:
            return _GAP_NEVER
        gap = math.log(u) / log1mp
        if gap >= _GAP_MAX:
            return _GAP_NEVER
        return int(gap)

    def sample_error_bits(self, relaxed: bool) -> int:
        """Number of bit errors for one flit transfer (0 = clean)."""
        if relaxed:
            gap = self._gap_relaxed
            if gap is None:
                gap = self._draw_gap(self._event_probability * self._relax_factor)
            if gap != 0:
                self._gap_relaxed = gap if gap == _GAP_NEVER else gap - 1
                return 0
            self._gap_relaxed = self._draw_gap(
                self._event_probability * self._relax_factor
            )
        else:
            gap = self._gap
            if gap is None:
                gap = self._draw_gap(self._event_probability)
            if gap != 0:
                self._gap = gap if gap == _GAP_NEVER else gap - 1
                return 0
            self._gap = self._draw_gap(self._event_probability)
        roll = self._rng.random()
        if roll < self.severity[0]:
            return 1
        if roll < self.severity[0] + self.severity[1]:
            return 2
        return 3

    # -- pickling (checkpoints must capture the countdown state) -------
    def __getstate__(self):
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state) -> None:
        for name in self.__slots__:
            setattr(self, name, state[name])

    def sample_mask(self, n_errors: int) -> int:
        """Random XOR mask with ``n_errors`` distinct flipped bits."""
        mask = 0
        while bin(mask).count("1") < n_errors:
            mask |= 1 << self._rng.randrange(self._bits)
        return mask


class Channel:
    """A directed inter-router channel with its sideband wires."""

    __slots__ = (
        "spec",
        "latency",
        "error_model",
        "alive",
        "index",
        "_active",
        "_data",
        "_acks",
        "_credits",
    )

    def __init__(self, spec: ChannelSpec, latency: int, error_model: ChannelErrorModel) -> None:
        if latency < 1:
            raise ValueError("channel latency must be at least one cycle")
        self.spec = spec
        self.latency = latency
        self.error_model = error_model
        #: cleared by Network.kill_link — a dead channel swallows all
        #: traffic (data and sideband) instead of delivering it
        self.alive = True
        #: creation-order index assigned by the owning Network; the
        #: activity kernel iterates channels sorted by it so the shared
        #: RNG is consumed in the same order as a full scan
        self.index = -1
        #: Network-owned set of active channel indices (None when the
        #: channel lives outside a Network, e.g. in unit tests)
        self._active: Optional[Set[int]] = None
        self._data: List[Transmission] = []
        #: (deliver_cycle, AckMessage) back toward the sender
        self._acks: List[Tuple[int, AckMessage]] = []
        #: (deliver_cycle, vc) credit returns toward the sender
        self._credits: List[Tuple[int, int]] = []

    # ------------------------------------------------------------------
    def bind_activity(self, index: int, active: Set[int]) -> None:
        """Attach this channel to its Network's active-channel set."""
        self.index = index
        self._active = active

    @property
    def busy(self) -> bool:
        """Whether anything (data or sideband) is in flight."""
        return bool(self._data or self._acks or self._credits)

    @property
    def has_pending_data(self) -> bool:
        """Whether data transmissions are in flight."""
        return bool(self._data)

    @property
    def has_pending_acks(self) -> bool:
        """Whether sideband ACK/NACKs are in flight."""
        return bool(self._acks)

    @property
    def has_pending_credits(self) -> bool:
        """Whether sideband credit returns are in flight."""
        return bool(self._credits)

    def send(self, transmission: Transmission) -> None:
        if self.alive:
            self._data.append(transmission)
            if self._active is not None:
                self._active.add(self.index)

    def send_ack(self, message: AckMessage, deliver_at: int) -> None:
        if self.alive:
            self._acks.append((deliver_at, message))
            if self._active is not None:
                self._active.add(self.index)

    def send_credit(self, vc: int, deliver_at: int) -> None:
        if self.alive:
            self._credits.append((deliver_at, vc))
            if self._active is not None:
                self._active.add(self.index)

    # ------------------------------------------------------------------
    def pop_arrivals(self, now: int) -> List[Transmission]:
        """Remove and return data transmissions due at ``now``."""
        data = self._data
        if not data:
            return []
        if len(data) == 1:
            # One in-flight flit is the saturation-steady-state norm.
            if data[0].arrive_at <= now:
                due = [data[0]]
                data.clear()
                return due
            return []
        due = [t for t in data if t.arrive_at <= now]
        if due:
            # Everything-due is the common case (latency-1 links): skip
            # the second scan and keep the (empty) list object.
            if len(due) == len(data):
                data.clear()
            else:
                self._data = [t for t in data if t.arrive_at > now]
            due.sort(key=_arrive_key)
        return due

    def pop_acks(self, now: int) -> List[AckMessage]:
        """Remove and return sideband ACK/NACKs due at ``now``."""
        acks = self._acks
        if not acks:
            return []
        if len(acks) == 1:
            if acks[0][0] <= now:
                due = [acks[0][1]]
                acks.clear()
                return due
            return []
        due = [m for t, m in acks if t <= now]
        if due:
            if len(due) == len(acks):
                acks.clear()
            else:
                self._acks = [(t, m) for t, m in acks if t > now]
        return due

    def pop_credits(self, now: int) -> List[int]:
        """Remove and return credit returns due at ``now``."""
        credits = self._credits
        if not credits:
            return []
        if len(credits) == 1:
            if credits[0][0] <= now:
                due = [credits[0][1]]
                credits.clear()
                return due
            return []
        due = [vc for t, vc in credits if t <= now]
        if due:
            if len(due) == len(credits):
                credits.clear()
            else:
                self._credits = [(t, vc) for t, vc in credits if t > now]
        return due
