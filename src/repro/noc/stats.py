"""Statistics counters for routers and the whole network.

Two granularities matter:

* **Epoch counters** (:class:`RouterEpochStats`) — reset every control
  epoch; they feed the RL state features of Table I (link utilization,
  NACK rates, buffer occupancy) and the per-router reward (E2E latency of
  packets that traversed the router, power).
* **Run counters** (:class:`NetworkStats`) — accumulated over the whole
  measurement phase; they produce the evaluation metrics of Section VI
  (retransmissions, latency, execution time, energy).
"""

from __future__ import annotations

from typing import Dict, List

from repro.noc.topology import Port

__all__ = ["RouterEpochStats", "NetworkStats", "LatencyAccumulator"]

_NUM_PORTS = len(Port)


class LatencyAccumulator:
    """Streaming mean/min/max/histogram of packet latencies."""

    __slots__ = ("count", "total", "minimum", "maximum", "_buckets")

    #: histogram bucket upper bounds in cycles (last bucket = overflow)
    BUCKET_BOUNDS = (16, 32, 64, 128, 256, 512, 1024, 4096)

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.minimum = None
        self.maximum = None
        self._buckets = [0] * (len(self.BUCKET_BOUNDS) + 1)

    def record(self, latency: int) -> None:
        if latency < 0:
            raise ValueError("latency cannot be negative")
        self.count += 1
        self.total += latency
        if self.minimum is None or latency < self.minimum:
            self.minimum = latency
        if self.maximum is None or latency > self.maximum:
            self.maximum = latency
        for i, bound in enumerate(self.BUCKET_BOUNDS):
            if latency <= bound:
                self._buckets[i] += 1
                break
        else:
            self._buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def histogram(self) -> List[int]:
        return list(self._buckets)

    def merge(self, other: "LatencyAccumulator") -> None:
        self.count += other.count
        self.total += other.total
        if other.minimum is not None:
            self.minimum = (
                other.minimum if self.minimum is None else min(self.minimum, other.minimum)
            )
        if other.maximum is not None:
            self.maximum = (
                other.maximum if self.maximum is None else max(self.maximum, other.maximum)
            )
        for i, n in enumerate(other._buckets):
            self._buckets[i] += n


class RouterEpochStats:
    """Per-router counters reset at every control epoch.

    The per-port arrays are indexed by :class:`~repro.noc.topology.Port`
    values; they directly back the Table I state features.
    """

    __slots__ = (
        "flits_in",
        "flits_out",
        "nacks_in",
        "nacks_out",
        "acks_in",
        "acks_out",
        "flit_retransmissions",
        "corrected_errors",
        "escaped_errors",
        "delivered_latency_total",
        "delivered_packets",
        "buffer_writes",
        "buffer_reads",
        "crossbar_traversals",
        "arbitration_ops",
        "ecc_encodes",
        "ecc_decodes",
        "arq_buffer_ops",
        "duplicate_flits",
        "dropped_flits",
        "crc_ops",
        "core_activity_flits",
        "reroutes",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.flits_in = [0] * _NUM_PORTS
        self.flits_out = [0] * _NUM_PORTS
        self.nacks_in = [0] * _NUM_PORTS   # NACKs received (per output port)
        self.nacks_out = [0] * _NUM_PORTS  # NACKs sent (per input port)
        self.acks_in = [0] * _NUM_PORTS
        self.acks_out = [0] * _NUM_PORTS
        self.flit_retransmissions = 0
        self.corrected_errors = 0
        self.escaped_errors = 0
        #: summed E2E latency / count of packets that traversed this router
        self.delivered_latency_total = 0
        self.delivered_packets = 0
        # Energy-model event counters
        self.buffer_writes = 0
        self.buffer_reads = 0
        self.crossbar_traversals = 0
        self.arbitration_ops = 0
        self.ecc_encodes = 0
        self.ecc_decodes = 0
        self.arq_buffer_ops = 0
        self.duplicate_flits = 0
        self.dropped_flits = 0
        self.crc_ops = 0
        #: flits of *unique* work at the local NI (first-attempt
        #: injections + deliveries) — drives the core-power proxy without
        #: letting NoC retransmissions heat the core
        self.core_activity_flits = 0
        #: route computations diverted from the fault-free XY choice by a
        #: hard fault (graceful-degradation metric)
        self.reroutes = 0

    # ------------------------------------------------------------------
    def input_link_utilization(self, epoch_cycles: int) -> List[float]:
        """Input flits/cycle per port (Table I feature 2)."""
        return [n / epoch_cycles for n in self.flits_in]

    def output_link_utilization(self, epoch_cycles: int) -> List[float]:
        """Output flits/cycle per port (Table I feature 3)."""
        return [n / epoch_cycles for n in self.flits_out]

    def input_nack_rate(self) -> List[float]:
        """NACKs received as a fraction of flits sent, per output port
        (Table I feature 4: percentage rate of NACK received)."""
        return [
            self.nacks_in[p] / self.flits_out[p] if self.flits_out[p] else 0.0
            for p in range(_NUM_PORTS)
        ]

    def output_nack_rate(self) -> List[float]:
        """NACKs sent as a fraction of flits received, per input port
        (Table I feature 5: percentage rate of NACK sent)."""
        return [
            self.nacks_out[p] / self.flits_in[p] if self.flits_in[p] else 0.0
            for p in range(_NUM_PORTS)
        ]

    def mean_delivered_latency(self, default: float) -> float:
        """Average E2E latency of packets that traversed this router."""
        if self.delivered_packets == 0:
            return default
        return self.delivered_latency_total / self.delivered_packets


class NetworkStats:
    """Whole-run counters for the evaluation metrics of Section VI."""

    __slots__ = (
        "cycles",
        "packets_injected",
        "packets_delivered",
        "flits_delivered",
        "packet_retransmissions",
        "flit_retransmissions",
        "corrected_errors",
        "escaped_errors",
        "crc_failures",
        "duplicate_flits",
        "dropped_flits",
        "silent_corruptions",
        "latency",
        "mode_cycles",
        "messages_created",
        "messages_dropped",
        "packets_dropped",
        "unreachable_drops",
        "reroutes",
        "fault_recoveries",
        "link_kills",
        "router_kills",
        "buffer_ops",
        "outstanding_messages",
    )

    def __init__(self) -> None:
        self.cycles = 0
        self.packets_injected = 0
        self.packets_delivered = 0
        self.flits_delivered = 0
        #: end-to-end packet retransmissions triggered by the destination CRC
        self.packet_retransmissions = 0
        #: per-hop flit retransmissions triggered by ARQ NACKs
        self.flit_retransmissions = 0
        self.corrected_errors = 0
        self.escaped_errors = 0
        self.crc_failures = 0
        self.duplicate_flits = 0
        self.dropped_flits = 0
        self.silent_corruptions = 0
        self.latency = LatencyAccumulator()
        #: cycles spent in each operation mode, summed over routers
        self.mode_cycles: Dict[int, int] = {0: 0, 1: 0, 2: 0, 3: 0}
        # Hard-fault accounting.  The conservation invariant the
        # watchdog enforces is:
        #   messages_created == packets_delivered + messages_dropped
        #                       + outstanding (summed over source NIs)
        #: logical messages handed to source NIs
        self.messages_created = 0
        #: messages abandoned (destination unreachable or source dead)
        self.messages_dropped = 0
        #: in-network transmission attempts destroyed by hard faults
        self.packets_dropped = 0
        #: packets dropped specifically because no alive path existed
        self.unreachable_drops = 0
        #: route computations diverted from the XY choice by faults
        self.reroutes = 0
        #: fault-truncated attempts recovered by source retransmission
        self.fault_recoveries = 0
        self.link_kills = 0
        self.router_kills = 0
        #: harvested buffer read/write/retransmission events — the
        #: monotonic activity signal the deadlock watchdog compares
        self.buffer_ops = 0
        #: live count of messages accepted by source NIs and not yet
        #: confirmed/abandoned — maintained incrementally so the drain
        #: loop's quiescence check is O(1) instead of an all-NI scan
        #: (the watchdog cross-checks it against the scan); deliberately
        #: not part of :meth:`as_dict` — it is bookkeeping, not a metric
        self.outstanding_messages = 0

    # ------------------------------------------------------------------
    @property
    def retransmission_events(self) -> int:
        """Fault-caused retransmissions (Fig. 6's metric): one event per
        end-to-end packet retransmission or per-hop flit retransmission."""
        return self.packet_retransmissions + self.flit_retransmissions

    @property
    def mean_latency(self) -> float:
        return self.latency.mean

    @property
    def throughput(self) -> float:
        """Delivered flits per cycle across the whole network."""
        return self.flits_delivered / self.cycles if self.cycles else 0.0

    @property
    def delivered_fraction(self) -> float:
        """Messages delivered / messages created (graceful degradation)."""
        if self.messages_created == 0:
            return 1.0
        return self.packets_delivered / self.messages_created

    def as_dict(self) -> Dict[str, float]:
        """Flat summary used by the experiment harness and benches."""
        return {
            "cycles": self.cycles,
            "packets_injected": self.packets_injected,
            "packets_delivered": self.packets_delivered,
            "flits_delivered": self.flits_delivered,
            "packet_retransmissions": self.packet_retransmissions,
            "flit_retransmissions": self.flit_retransmissions,
            "retransmission_events": self.retransmission_events,
            "corrected_errors": self.corrected_errors,
            "escaped_errors": self.escaped_errors,
            "crc_failures": self.crc_failures,
            "duplicate_flits": self.duplicate_flits,
            "dropped_flits": self.dropped_flits,
            "silent_corruptions": self.silent_corruptions,
            "mean_latency": self.mean_latency,
            "throughput": self.throughput,
            "messages_created": self.messages_created,
            "messages_dropped": self.messages_dropped,
            "packets_dropped": self.packets_dropped,
            "unreachable_drops": self.unreachable_drops,
            "reroutes": self.reroutes,
            "fault_recoveries": self.fault_recoveries,
            "link_kills": self.link_kills,
            "router_kills": self.router_kills,
            "delivered_fraction": self.delivered_fraction,
        }
