"""The network: routers, channels, NIs, and the cycle loop.

:class:`Network` wires a :class:`~repro.noc.topology.MeshTopology` into
routers and channels, owns the per-cycle event ordering, and aggregates
statistics.  It is deliberately policy-free: operation modes are set from
outside (by a controller through :meth:`set_mode`), and channel error
probabilities are refreshed from outside (by the fault substrate through
:meth:`channel_models`).  The full closed loop — traffic, faults,
thermal, power, control — is assembled in :mod:`repro.sim.simulator`.

Cycle ordering (one call to :meth:`cycle`):

1. sideband delivery — credits, then ACK/NACKs, reach the senders;
2. data delivery — in-flight flits reach receivers (error injection,
   ECC decode classification, ARQ accept/drop happen here);
3. NI ejection processing — tail flits complete packets, CRC checks run;
4. NI injection — one flit per NI into the local port;
5. router pipelines step (retransmission drain, SA/ST, VA, RC).

This ordering guarantees a flit advances at most one pipeline stage per
cycle while letting sideband responses generated in step 2 be consumed at
the earliest one cycle later.
"""

from __future__ import annotations

import os
import random
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.coding.crc import CRC
from repro.core.modes import OperationMode
from repro.noc.channel import Channel, ChannelErrorModel
from repro.noc.faultstate import FaultState
from repro.noc.interface import SIDEBAND_BASE_LATENCY, NetworkInterface
from repro.noc.packet import Packet
from repro.noc.router import OutputLink, Router
from repro.noc.routing import RoutingFunction, resolve_routing_policy, xy_route
from repro.noc.stats import NetworkStats
from repro.noc.topology import OPPOSITE_PORT, MeshTopology, Port
from repro.noc.watchdog import NetworkWatchdog, UnreachableDestinationError

__all__ = ["Network", "resolve_kernel"]

#: Directed links a router terminates (LOCAL has no channel).
_LINK_PORTS = (Port.EAST, Port.WEST, Port.NORTH, Port.SOUTH)

#: Environment switch selecting the reference full-scan kernel.
NAIVE_KERNEL_ENV = "REPRO_NAIVE_KERNEL"


def resolve_kernel(kernel: Optional[str]) -> str:
    """Resolve a cycle-kernel name, honouring ``REPRO_NAIVE_KERNEL``.

    ``None`` defers to the environment (any value other than empty/``0``
    selects the naive reference kernel); explicit names win over it.
    The choice is deliberately *not* part of ``SimulationConfig`` — both
    kernels are bit-identical, so cache keys must not depend on it.
    """
    if kernel is None:
        flag = os.environ.get(NAIVE_KERNEL_ENV, "").strip()
        return "naive" if flag not in ("", "0") else "fast"
    if kernel not in ("fast", "naive"):
        raise ValueError(f"unknown cycle kernel {kernel!r} (expected 'fast' or 'naive')")
    return kernel


class _ActivityState:
    """Active-entity registries driving the O(active) cycle kernel.

    Channels, routers, and NIs register themselves (by creation index /
    id) when an event gives them work; the kernel deregisters them
    lazily once their work is gone.  Registration is therefore always a
    *superset* of the truly-active entities, which makes the sets safe
    across kernel switches and checkpoint resume — a stale registration
    costs one no-op visit, never a missed event.

    The ``*_visits`` counters record how many entity-steps each phase
    actually executed (the naive kernel counts its full sweeps), and
    ``fast_forwarded`` counts cycles skipped wholesale by
    :meth:`Network.run`'s idle early-out; ``repro run --profile``
    surfaces both.
    """

    __slots__ = (
        "channels",
        "routers",
        "ni_eject",
        "ni_inject",
        "channel_visits",
        "router_visits",
        "ni_eject_visits",
        "ni_inject_visits",
        "fast_forwarded",
    )

    def __init__(self) -> None:
        self.channels: Set[int] = set()
        self.routers: Set[int] = set()
        self.ni_eject: Set[int] = set()
        self.ni_inject: Set[int] = set()
        self.channel_visits = 0
        self.router_visits = 0
        self.ni_eject_visits = 0
        self.ni_inject_visits = 0
        self.fast_forwarded = 0

    @property
    def any_active(self) -> bool:
        return bool(self.channels or self.routers or self.ni_eject or self.ni_inject)

    def counters(self) -> Dict[str, int]:
        """Per-stage activity counters for the profiling report."""
        return {
            "channel_visits": self.channel_visits,
            "router_visits": self.router_visits,
            "ni_eject_visits": self.ni_eject_visits,
            "ni_inject_visits": self.ni_inject_visits,
            "fast_forwarded_cycles": self.fast_forwarded,
        }

    def __getstate__(self):
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state) -> None:
        for name in self.__slots__:
            setattr(self, name, state[name])


class Network:
    """A complete mesh NoC instance."""

    def __init__(
        self,
        topology: MeshTopology,
        routing_fn: RoutingFunction = xy_route,
        num_vcs: int = 4,
        vc_depth: int = 4,
        flit_bits: int = 128,
        arq_capacity: int = 8,
        channel_latency: int = 1,
        crc: Optional[CRC] = None,
        rng: Optional[random.Random] = None,
        error_severity: Tuple[float, float, float] = (0.33, 0.47, 0.20),
        relax_factor: float = 1e-4,
        routing_seed: int = 0,
        watchdog_interval: int = 256,
        deadlock_cycles: int = 4096,
        max_packet_age: int = 500_000,
        unreachable_action: str = "drop",
        kernel: Optional[str] = None,
    ) -> None:
        if unreachable_action not in ("drop", "raise"):
            raise ValueError("unreachable_action must be 'drop' or 'raise'")
        self.topology = topology
        self.flit_bits = flit_bits
        self.rng = rng if rng is not None else random.Random(0)
        self.stats = NetworkStats()
        self.now = 0
        self.unreachable_action = unreachable_action
        #: "fast" (activity-driven) or "naive" (reference full scan)
        self.kernel = resolve_kernel(kernel)
        #: active-entity registries; hooks in channels/routers/NIs keep
        #: them current regardless of which kernel consumes them
        self.activity = _ActivityState()

        #: live hard-fault topology shared by routers and routing functions
        self.fault_state = FaultState(topology)
        self.routing_policy = resolve_routing_policy(routing_fn)
        self.routers: List[Router] = [
            Router(
                i,
                topology,
                self.routing_policy.build(topology, i, routing_seed, self.fault_state),
                num_vcs,
                vc_depth,
                arq_capacity,
                fault_state=self.fault_state,
            )
            for i in range(topology.num_nodes)
        ]
        for router in self.routers:
            router.drop_sink = self._rc_drop

        self.watchdog: Optional[NetworkWatchdog] = (
            NetworkWatchdog(
                self,
                interval=watchdog_interval,
                deadlock_cycles=deadlock_cycles,
                max_packet_age=max_packet_age,
            )
            if watchdog_interval > 0
            else None
        )
        #: optional hard-fault campaign ticked at the top of every cycle
        self.hard_faults = None
        #: optional repro.obs.TraceBuffer — ``None`` keeps every hook a
        #: single ``is not None`` test (see attach_tracer)
        self.tracer = None

        #: channels keyed by (source router, source port)
        self.channels: Dict[Tuple[int, int], Channel] = {}
        #: per-channel delivery tuples in creation-index order, split by
        #: kernel phase so each phase unpacks exactly what it touches:
        #: sideband = (channel, src router, src port int), data =
        #: (channel, dst router, dst port int).  The fast kernel iterates
        #: active indices *sorted*, which equals the naive kernel's
        #: dict-insertion-order scan — that keeps the shared error RNG
        #: consumed in an identical order.
        self._meta_sideband: List[Tuple[Channel, Router, int]] = []
        self._meta_data: List[Tuple[Channel, Router, int]] = []
        for index, spec in enumerate(topology.channels()):
            model = ChannelErrorModel(
                self.rng, flit_bits, 0.0, error_severity, relax_factor
            )
            channel = Channel(spec, channel_latency, model)
            channel.bind_activity(index, self.activity.channels)
            self.channels[(spec.src, spec.src_port)] = channel
            self._meta_sideband.append(
                (channel, self.routers[spec.src], int(spec.src_port))
            )
            self._meta_data.append(
                (channel, self.routers[spec.dst], int(spec.dst_port))
            )
            self.routers[spec.src].outputs[int(spec.src_port)] = OutputLink(
                spec.src_port, channel, num_vcs, vc_depth, arq_capacity
            )
            self.routers[spec.dst].in_channels[int(spec.dst_port)] = channel
        for router in self.routers:
            router.bind_activity(self.activity.routers)
        #: precomputed sorted index lists — the fast kernel substitutes
        #: these for ``sorted(active_set)`` when every entity is active
        #: (the saturation steady state), skipping the per-cycle sort
        self._all_channels = list(range(len(self._meta_data)))
        self._all_nodes = list(range(topology.num_nodes))

        crc = crc if crc is not None else CRC.crc16()
        self.interfaces: List[NetworkInterface] = [
            NetworkInterface(i, self.routers[i], topology, crc, self.stats)
            for i in range(topology.num_nodes)
        ]
        # Bound methods (not lambdas) so a Network snapshot pickles —
        # checkpoint/resume serializes the whole object graph.
        for ni in self.interfaces:
            ni.peer = self._peer_lookup
            ni._router_lookup = self._router_lookup
            ni.bind_activity(self.activity.ni_inject, self.activity.ni_eject)

    def _peer_lookup(self, node: int) -> NetworkInterface:
        return self.interfaces[node]

    def _router_lookup(self, router_id: int) -> Router:
        return self.routers[router_id]

    def _clock(self) -> int:
        return self.now

    def attach_tracer(self, tracer) -> None:
        """Attach (or detach, with ``None``) an event tracer.

        Routers and NIs don't hold a back-reference to the network, so
        they get the tracer plus the bound ``_clock`` method (bound
        methods pickle, keeping checkpoint/resume working; lambdas do
        not — same idiom as ``ni.peer`` above).  Hook sites only fire at
        event frequency, so tracing is zero-cost when detached.
        """
        self.tracer = tracer
        clock = self._clock if tracer is not None else None
        for router in self.routers:
            router.tracer = tracer
            router.trace_clock = clock
        for ni in self.interfaces:
            ni.tracer = tracer

    # ------------------------------------------------------------------
    # External control surface
    # ------------------------------------------------------------------
    def set_mode(self, router_id: int, mode: OperationMode) -> None:
        """Request an operation mode for one router's output -Links."""
        self.routers[router_id].request_mode(mode)

    def set_all_modes(self, mode: OperationMode) -> None:
        for router in self.routers:
            router.request_mode(mode)

    def channel_models(self) -> Iterable[Tuple[Tuple[int, int], ChannelErrorModel]]:
        """(key, error model) pairs for the fault substrate to refresh."""
        return ((key, ch.error_model) for key, ch in self.channels.items())

    def inject(self, packet: Packet) -> None:
        """Hand a new message to its source NI."""
        self.interfaces[packet.src].enqueue(packet)

    # ------------------------------------------------------------------
    # Cycle loop
    # ------------------------------------------------------------------
    def cycle(self) -> None:
        now = self.now
        if self.hard_faults is not None:
            self.hard_faults.tick(now)

        if self.kernel == "naive":
            self._cycle_naive(now)
        else:
            self._cycle_fast(now)

        self.now = now + 1
        self.stats.cycles += 1
        watchdog = self.watchdog
        if watchdog is not None and self.now % watchdog.interval == 0:
            watchdog.check(self.now)

    def _cycle_naive(self, now: int) -> None:
        """Reference kernel: full sweep of every entity, every cycle.

        Kept verbatim (modulo the public ``has_pending_*`` accessors) as
        the golden-equivalence baseline and the bench's "before" side.
        """
        act = self.activity
        act.channel_visits += len(self.channels)
        for (src, src_port), channel in self.channels.items():
            if channel.has_pending_credits or channel.has_pending_acks:
                sender = self.routers[src]
                for vc in channel.pop_credits(now):
                    sender.receive_credit(int(src_port), vc)
                for message in channel.pop_acks(now):
                    sender.receive_ack(int(src_port), message)

        for channel in self.channels.values():
            if channel.has_pending_data:
                arrivals = channel.pop_arrivals(now)
                if arrivals:
                    self.routers[channel.spec.dst].receive_transmissions(
                        int(channel.spec.dst_port), arrivals, now
                    )

        act.ni_eject_visits += len(self.interfaces)
        for ni in self.interfaces:
            ni.step_eject(now)
        act.ni_inject_visits += len(self.interfaces)
        for ni in self.interfaces:
            ni.step_inject(now)

        act.router_visits += len(self.routers)
        for router in self.routers:
            router.step(now)

    def _cycle_fast(self, now: int) -> None:
        """Activity-driven kernel: O(active) work per cycle.

        Phase order and per-phase iteration order match the naive scan
        exactly (sorted registration indices == dict insertion order),
        so both kernels consume the shared error RNG identically.  Each
        phase snapshots its registry just before running, so work created
        by an earlier phase in the same cycle is picked up exactly when
        the naive sweep would have; deregistration is lazy, after an
        entity's step confirms it has nothing left.

        The activity predicates (``Channel.busy``, ``has_pending_*``,
        ``NetworkInterface.needs_*``, ``Router.needs_step``) are inlined
        here as direct slot reads — at saturation the descriptor-call
        overhead of the property forms is a measurable slice of the
        cycle.  Each inline must mirror its property exactly.
        """
        act = self.activity

        if act.channels:
            # Phase 1 never enqueues sideband/data, so one snapshot
            # safely serves both channel phases.
            if len(act.channels) == len(self._all_channels):
                snapshot = self._all_channels
            else:
                snapshot = sorted(act.channels)
            act.channel_visits += len(snapshot)
            sideband = self._meta_sideband
            for index in snapshot:
                channel, sender, src_port = sideband[index]
                if channel._credits or channel._acks:
                    for vc in channel.pop_credits(now):
                        sender.receive_credit(src_port, vc)
                    for message in channel.pop_acks(now):
                        sender.receive_ack(src_port, message)

            active_channels = act.channels
            data = self._meta_data
            for index in snapshot:
                channel, receiver, dst_port = data[index]
                if channel._data:
                    arrivals = channel.pop_arrivals(now)
                    if arrivals:
                        # May push sideband back onto this same channel
                        # (ACK/NACK/credit) — re-read below (`busy`).
                        receiver.receive_transmissions(dst_port, arrivals, now)
                if not (channel._data or channel._acks or channel._credits):
                    active_channels.discard(index)

        if act.ni_eject:
            interfaces = self.interfaces
            active_eject = act.ni_eject
            if len(active_eject) == len(self._all_nodes):
                snapshot = self._all_nodes
            else:
                snapshot = sorted(active_eject)
            act.ni_eject_visits += len(snapshot)
            for nid in snapshot:
                ni = interfaces[nid]
                ni.step_eject(now)
                if not ni._eject_queue:  # needs_eject
                    active_eject.discard(nid)

        if act.ni_inject:
            interfaces = self.interfaces
            active_inject = act.ni_inject
            if len(active_inject) == len(self._all_nodes):
                snapshot = self._all_nodes
            else:
                snapshot = sorted(active_inject)
            act.ni_inject_visits += len(snapshot)
            for nid in snapshot:
                ni = interfaces[nid]
                ni.step_inject(now)
                if not (  # needs_inject
                    ni._retx_due or ni._inject_queue or ni._current is not None
                ):
                    active_inject.discard(nid)

        if act.routers:
            routers = self.routers
            active_routers = act.routers
            if len(active_routers) == len(self._all_nodes):
                snapshot = self._all_nodes
            else:
                snapshot = sorted(active_routers)
            act.router_visits += len(snapshot)
            for rid in snapshot:
                router = routers[rid]
                router.step(now)
                if not (  # needs_step
                    router._routing
                    or router._waiting
                    or router._active
                    or router._draining
                    or router._retx_ports
                    or router._pending_mode is not None
                ):
                    active_routers.discard(rid)

    def run(self, cycles: int) -> None:
        """Advance ``cycles`` cycles, fast-forwarding fully idle spans.

        With the fast kernel, a span where every active set is empty
        cannot change any entity state — every phase of :meth:`cycle`
        would be a no-op — so only the clocks, the watchdog polls, and
        the hard-fault schedule observe those cycles.  The early-out
        advances the clocks in bulk, still runs the *real* watchdog
        check at every interval boundary (identical state, identical
        verdicts — including raising on a wedged network), and never
        jumps past the next scheduled hard-fault event.
        """
        end = self.now + cycles
        if self.kernel == "naive":
            while self.now < end:
                self.cycle()
            return
        act = self.activity
        while self.now < end:
            if act.any_active:
                self.cycle()
                continue
            target = end
            if self.hard_faults is not None:
                next_fault = self.hard_faults.next_event_cycle()
                if next_fault is not None and next_fault < target:
                    target = next_fault
            if target <= self.now:
                self.cycle()
                continue
            self._fast_forward(target)

    def _fast_forward(self, target: int) -> None:
        """Jump the clocks to ``target``, honouring watchdog cadence."""
        act = self.activity
        stats = self.stats
        watchdog = self.watchdog
        while self.now < target:
            if watchdog is None:
                stop = target
            else:
                interval = watchdog.interval
                next_check = (self.now // interval + 1) * interval
                stop = min(target, next_check)
            act.fast_forwarded += stop - self.now
            stats.cycles += stop - self.now
            self.now = stop
            if watchdog is not None and self.now % watchdog.interval == 0:
                watchdog.check(self.now)

    # ------------------------------------------------------------------
    # Hard faults
    # ------------------------------------------------------------------
    def _drop_message(self, packet: Packet) -> bool:
        """Abandon ``packet``'s message at its source NI (idempotent)."""
        return self.interfaces[packet.src].drop_message(packet.message_id)

    def _rc_drop(self, packet: Packet, router_id: int, unreachable: bool) -> None:
        """Router RC stage hit a dead port / unreachable destination.

        The in-network attempt is destroyed either way.  RC drops are
        *permanent* message drops — a deterministic router would hit the
        same dead port on every retry, so retrying would never converge.
        """
        self.stats.packets_dropped += 1
        if unreachable:
            self.stats.unreachable_drops += 1
        self._drop_message(packet)
        if self.tracer is not None:
            # message_id, not pid: pids come from a process-global
            # counter, so they differ across runs in one process and
            # would break golden-trace digests.
            self.tracer.emit(
                self.now,
                "fault",
                "rc_drop",
                subject=router_id,
                message=packet.message_id,
                src=packet.src,
                dest=packet.dest,
                unreachable=unreachable,
            )
        if unreachable and self.unreachable_action == "raise":
            raise UnreachableDestinationError(
                f"packet {packet.pid} at router {router_id}: destination "
                f"{packet.dest} unreachable from {packet.src}",
                report={
                    "kind": "unreachable_destination",
                    "router": router_id,
                    "packet": packet.pid,
                    "src": packet.src,
                    "dest": packet.dest,
                    "cycle": self.now,
                    "dead_links": sorted(self.fault_state.dead_links),
                    "dead_nodes": sorted(self.fault_state.dead_nodes),
                },
            )

    def _recover_or_drop(self, packet: Packet, now: int) -> None:
        """A hard fault destroyed this in-flight attempt.

        If the source still holds the message and an alive path exists,
        schedule one source retransmission (the paper's end-to-end
        recovery, reused for hard faults); otherwise abandon the message.
        """
        self.stats.packets_dropped += 1
        source = self.interfaces[packet.src]
        if (
            source.alive
            and packet.message_id in source._store
            and self.fault_state.reachable(packet.src, packet.dest)
        ):
            self.stats.fault_recoveries += 1
            delay = (
                self.topology.hop_distance(packet.src, packet.dest)
                + SIDEBAND_BASE_LATENCY
            )
            source.schedule_retransmission(packet.message_id, now + delay)
            if self.tracer is not None:
                self.tracer.emit(
                    now,
                    "fault",
                    "recovery",
                    subject=packet.src,
                    message=packet.message_id,
                    dest=packet.dest,
                    due=now + delay,
                )
        else:
            dropped = self._drop_message(packet)
            if self.tracer is not None and dropped:
                self.tracer.emit(
                    now,
                    "fault",
                    "message_drop",
                    subject=packet.src,
                    message=packet.message_id,
                    dest=packet.dest,
                )

    def kill_link(self, src: int, port: Port) -> bool:
        """Permanently kill the directed link ``src -> port``.

        Sweeps every place a flit of a now-truncated worm can live —
        in-flight on the channel, unacknowledged in the sender's ARQ
        buffer, queued in sender/receiver VCs — marks the affected
        packets lost, and routes each through recover-or-drop.  Returns
        False if the link does not exist or is already dead.
        """
        port = Port(port)
        channel = self.channels.get((src, port))
        if channel is None or not channel.alive:
            return False
        now = self.now
        self.fault_state.kill_link(src, int(port))
        if self.tracer is not None:
            self.tracer.emit(
                now,
                "fault",
                "link_kill",
                subject=src,
                port=port.name,
                dst=channel.spec.dst,
            )

        lost: List[Packet] = []

        def mark(packet: Optional[Packet]) -> None:
            if packet is not None and not packet.lost:
                packet.lost = True
                lost.append(packet)

        sender = self.routers[src]
        receiver = self.routers[channel.spec.dst]
        dst_port = int(channel.spec.dst_port)

        # 1. In-flight traffic dies on the wire.  Mode-2 duplicates carry
        # no credit and may shadow an already-accepted original, so only
        # primary transmissions mark their packet lost.
        for t in channel._data:
            if not t.duplicate:
                mark(t.flit.packet)
        channel._data.clear()
        channel._acks.clear()
        channel._credits.clear()
        channel.alive = False

        # 2. Sender link state: every ARQ entry the receiver has not yet
        # accepted is a flit that will never cross.
        link = sender.outputs[int(port)]
        link.alive = False
        expected = receiver.expected_seq[dst_port]
        for seq, t in link.arq:
            if seq >= expected:
                mark(t.flit.packet)
        link.arq.flush()
        link.pending_retx.clear()
        if int(port) in sender._retx_ports:
            sender._retx_ports.remove(int(port))
        link.vc_allocated = [False] * len(link.vc_allocated)
        link.vc_draining = [False] * len(link.vc_draining)

        # 3/4. Pipeline sweeps: unwind or truncate worms on both ends.
        sender.handle_dead_output(int(port), now, mark)
        receiver.handle_dead_input(dst_port, now)

        self.stats.link_kills += 1
        for packet in lost:
            self._recover_or_drop(packet, now)
        return True

    def kill_router(self, node: int) -> bool:
        """Permanently kill router ``node``, its NI, and incident links."""
        if node in self.fault_state.dead_nodes:
            return False
        now = self.now
        self.fault_state.kill_node(node)
        if self.tracer is not None:
            self.tracer.emit(now, "fault", "router_kill", subject=node)
        for port in _LINK_PORTS:
            self.kill_link(node, port)
            neighbour = self.topology.neighbour(node, port)
            if neighbour is not None:
                self.kill_link(neighbour, OPPOSITE_PORT[port])

        lost: List[Packet] = []

        def mark(packet: Optional[Packet]) -> None:
            if packet is not None and not packet.lost:
                packet.lost = True
                lost.append(packet)

        self.routers[node].flush_all(mark)
        self.interfaces[node].retire(mark)
        self.stats.router_kills += 1
        for packet in lost:
            self._recover_or_drop(packet, now)
        return True

    # ------------------------------------------------------------------
    # Bookkeeping helpers
    # ------------------------------------------------------------------
    @property
    def quiescent(self) -> bool:
        """No outstanding messages anywhere (trace fully delivered).

        O(1): reads the incrementally-maintained counter instead of
        scanning every NI — drain loops poll this every cycle.  The
        watchdog cross-checks the counter against the scan.
        """
        return self.stats.outstanding_messages == 0

    def scan_outstanding(self) -> int:
        """Ground-truth outstanding-message count (full NI scan)."""
        return sum(ni.outstanding_messages for ni in self.interfaces)

    def harvest_epoch_counters(self, epoch_cycles: int) -> None:
        """Fold per-router epoch counters into the run statistics and
        account mode residency.  Called by the simulator at each epoch
        boundary *after* the controller has consumed the counters."""
        for router in self.routers:
            epoch = router.epoch
            self.stats.flit_retransmissions += epoch.flit_retransmissions
            self.stats.corrected_errors += epoch.corrected_errors
            self.stats.escaped_errors += epoch.escaped_errors
            self.stats.duplicate_flits += epoch.duplicate_flits
            self.stats.dropped_flits += epoch.dropped_flits
            self.stats.reroutes += epoch.reroutes
            # Monotonic activity base for the deadlock watchdog: epoch
            # resets must never make observed activity go backwards.
            self.stats.buffer_ops += (
                epoch.buffer_writes + epoch.buffer_reads + epoch.flit_retransmissions
            )
            self.stats.mode_cycles[int(router.mode)] += epoch_cycles

    def reset_epoch_counters(self) -> None:
        for router in self.routers:
            router.epoch.reset()

    def drain(self, max_cycles: int, poll: int = 64) -> int:
        """Run until every message is delivered; returns cycles spent.

        Raises ``RuntimeError`` if the network fails to drain within
        ``max_cycles`` — which in a correct configuration indicates a
        protocol bug, so it is loud by design.
        """
        start = self.now
        while not self.quiescent:
            if self.now - start >= max_cycles:
                outstanding = self.scan_outstanding()
                raise RuntimeError(
                    f"network failed to drain: {outstanding} messages "
                    f"outstanding after {max_cycles} cycles"
                )
            for _ in range(poll):
                self.cycle()
        return self.now - start
