"""The network: routers, channels, NIs, and the cycle loop.

:class:`Network` wires a :class:`~repro.noc.topology.MeshTopology` into
routers and channels, owns the per-cycle event ordering, and aggregates
statistics.  It is deliberately policy-free: operation modes are set from
outside (by a controller through :meth:`set_mode`), and channel error
probabilities are refreshed from outside (by the fault substrate through
:meth:`channel_models`).  The full closed loop — traffic, faults,
thermal, power, control — is assembled in :mod:`repro.sim.simulator`.

Cycle ordering (one call to :meth:`cycle`):

1. sideband delivery — credits, then ACK/NACKs, reach the senders;
2. data delivery — in-flight flits reach receivers (error injection,
   ECC decode classification, ARQ accept/drop happen here);
3. NI ejection processing — tail flits complete packets, CRC checks run;
4. NI injection — one flit per NI into the local port;
5. router pipelines step (retransmission drain, SA/ST, VA, RC).

This ordering guarantees a flit advances at most one pipeline stage per
cycle while letting sideband responses generated in step 2 be consumed at
the earliest one cycle later.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.coding.crc import CRC
from repro.core.modes import OperationMode
from repro.noc.channel import Channel, ChannelErrorModel
from repro.noc.interface import NetworkInterface
from repro.noc.packet import Packet
from repro.noc.router import OutputLink, Router
from repro.noc.routing import RoutingFunction, xy_route
from repro.noc.stats import NetworkStats
from repro.noc.topology import MeshTopology, Port

__all__ = ["Network"]


class Network:
    """A complete mesh NoC instance."""

    def __init__(
        self,
        topology: MeshTopology,
        routing_fn: RoutingFunction = xy_route,
        num_vcs: int = 4,
        vc_depth: int = 4,
        flit_bits: int = 128,
        arq_capacity: int = 8,
        channel_latency: int = 1,
        crc: Optional[CRC] = None,
        rng: Optional[random.Random] = None,
        error_severity: Tuple[float, float, float] = (0.33, 0.47, 0.20),
        relax_factor: float = 1e-4,
    ) -> None:
        self.topology = topology
        self.flit_bits = flit_bits
        self.rng = rng if rng is not None else random.Random(0)
        self.stats = NetworkStats()
        self.now = 0

        self.routers: List[Router] = [
            Router(i, topology, routing_fn, num_vcs, vc_depth, arq_capacity)
            for i in range(topology.num_nodes)
        ]

        #: channels keyed by (source router, source port)
        self.channels: Dict[Tuple[int, int], Channel] = {}
        for spec in topology.channels():
            model = ChannelErrorModel(
                self.rng, flit_bits, 0.0, error_severity, relax_factor
            )
            channel = Channel(spec, channel_latency, model)
            self.channels[(spec.src, spec.src_port)] = channel
            self.routers[spec.src].outputs[int(spec.src_port)] = OutputLink(
                spec.src_port, channel, num_vcs, vc_depth, arq_capacity
            )
            self.routers[spec.dst].in_channels[int(spec.dst_port)] = channel

        crc = crc if crc is not None else CRC.crc16()
        self.interfaces: List[NetworkInterface] = [
            NetworkInterface(i, self.routers[i], topology, crc, self.stats)
            for i in range(topology.num_nodes)
        ]
        for ni in self.interfaces:
            ni.peer = lambda n: self.interfaces[n]
            ni._router_lookup = lambda r: self.routers[r]

    # ------------------------------------------------------------------
    # External control surface
    # ------------------------------------------------------------------
    def set_mode(self, router_id: int, mode: OperationMode) -> None:
        """Request an operation mode for one router's output -Links."""
        self.routers[router_id].request_mode(mode)

    def set_all_modes(self, mode: OperationMode) -> None:
        for router in self.routers:
            router.request_mode(mode)

    def channel_models(self) -> Iterable[Tuple[Tuple[int, int], ChannelErrorModel]]:
        """(key, error model) pairs for the fault substrate to refresh."""
        return ((key, ch.error_model) for key, ch in self.channels.items())

    def inject(self, packet: Packet) -> None:
        """Hand a new message to its source NI."""
        self.interfaces[packet.src].enqueue(packet)

    # ------------------------------------------------------------------
    # Cycle loop
    # ------------------------------------------------------------------
    def cycle(self) -> None:
        now = self.now

        for (src, src_port), channel in self.channels.items():
            if channel._credits or channel._acks:
                sender = self.routers[src]
                for vc in channel.pop_credits(now):
                    sender.receive_credit(int(src_port), vc)
                for message in channel.pop_acks(now):
                    sender.receive_ack(int(src_port), message)

        for channel in self.channels.values():
            if channel._data:
                arrivals = channel.pop_arrivals(now)
                if arrivals:
                    self.routers[channel.spec.dst].receive_transmissions(
                        int(channel.spec.dst_port), arrivals, now
                    )

        for ni in self.interfaces:
            ni.step_eject(now)
        for ni in self.interfaces:
            ni.step_inject(now)

        for router in self.routers:
            router.step(now)

        self.now = now + 1
        self.stats.cycles += 1

    def run(self, cycles: int) -> None:
        for _ in range(cycles):
            self.cycle()

    # ------------------------------------------------------------------
    # Bookkeeping helpers
    # ------------------------------------------------------------------
    @property
    def quiescent(self) -> bool:
        """No outstanding messages anywhere (trace fully delivered)."""
        return all(ni.outstanding_messages == 0 for ni in self.interfaces)

    def harvest_epoch_counters(self, epoch_cycles: int) -> None:
        """Fold per-router epoch counters into the run statistics and
        account mode residency.  Called by the simulator at each epoch
        boundary *after* the controller has consumed the counters."""
        for router in self.routers:
            epoch = router.epoch
            self.stats.flit_retransmissions += epoch.flit_retransmissions
            self.stats.corrected_errors += epoch.corrected_errors
            self.stats.escaped_errors += epoch.escaped_errors
            self.stats.duplicate_flits += epoch.duplicate_flits
            self.stats.dropped_flits += epoch.dropped_flits
            self.stats.mode_cycles[int(router.mode)] += epoch_cycles

    def reset_epoch_counters(self) -> None:
        for router in self.routers:
            router.epoch.reset()

    def drain(self, max_cycles: int, poll: int = 64) -> int:
        """Run until every message is delivered; returns cycles spent.

        Raises ``RuntimeError`` if the network fails to drain within
        ``max_cycles`` — which in a correct configuration indicates a
        protocol bug, so it is loud by design.
        """
        start = self.now
        while not self.quiescent:
            if self.now - start >= max_cycles:
                outstanding = sum(ni.outstanding_messages for ni in self.interfaces)
                raise RuntimeError(
                    f"network failed to drain: {outstanding} messages "
                    f"outstanding after {max_cycles} cycles"
                )
            for _ in range(poll):
                self.cycle()
        return self.now - start
