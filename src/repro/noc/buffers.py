"""Virtual-channel input buffers and output staging buffers.

Each router input port owns ``num_vcs`` virtual channels, each a FIFO of
``depth`` flits (Table II: 4 VCs per port).  A VC also carries the
per-packet routing state machine used by the four-stage pipeline:

``IDLE -> ROUTING -> WAITING_VC -> ACTIVE -> IDLE``

The proposed router additionally has *output flit buffers* (Fig. 2) that
hold copies for ARQ retransmission and the mode-2 pre-retransmission
duplicates; those are :class:`repro.coding.RetransmissionBuffer` plus the
small :class:`OutputQueue` staging FIFO defined here.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, List, Optional

from repro.noc.packet import Flit
from repro.noc.topology import Port

__all__ = ["VCState", "VirtualChannel", "InputPort", "OutputQueue"]


class VCState(enum.Enum):
    """Pipeline state of the packet occupying a virtual channel."""

    IDLE = "idle"
    #: head flit buffered, awaiting route computation (RC stage)
    ROUTING = "routing"
    #: route known, awaiting a downstream VC grant (VA stage)
    WAITING_VC = "waiting_vc"
    #: downstream VC allocated; flits compete in switch allocation (SA)
    ACTIVE = "active"
    #: hard-fault path: the packet is being discarded in place — flits
    #: are popped and dropped (credits still refunded upstream) until the
    #: tail arrives, then the VC returns to IDLE
    DRAINING = "draining"


class VirtualChannel:
    """One FIFO lane of an input port with its pipeline state."""

    __slots__ = (
        "port",
        "port_index",
        "vc_id",
        "line",
        "depth",
        "fifo",
        "state",
        "out_port",
        "out_vc",
        "stage_ready_cycle",
        "current_packet",
        "sent",
    )

    def __init__(self, port: Port, vc_id: int, depth: int, num_vcs: int = 0) -> None:
        if depth <= 0:
            raise ValueError("VC depth must be positive")
        self.port = port
        #: ``int(port)`` cached — enum conversion is measurable in the
        #: per-cycle allocation stages
        self.port_index = int(port)
        self.vc_id = vc_id
        #: flat arbiter request-line index (stable for this VC's lifetime)
        self.line = self.port_index * num_vcs + vc_id
        self.depth = depth
        self.fifo: Deque[Flit] = deque()
        self.state = VCState.IDLE
        self.out_port: Optional[Port] = None
        self.out_vc: Optional[int] = None
        #: earliest cycle the *next* pipeline stage may act on this VC —
        #: enforces the one-stage-per-cycle timing of the 4-stage router.
        self.stage_ready_cycle = 0
        #: packet occupying this VC (set at head arrival) — lets the
        #: hard-fault sweep and the watchdog identify worms in place
        self.current_packet = None
        #: flits of the current packet already forwarded out of this VC
        self.sent = 0

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return len(self.fifo)

    @property
    def is_full(self) -> bool:
        return len(self.fifo) >= self.depth

    @property
    def is_empty(self) -> bool:
        return not self.fifo

    @property
    def front(self) -> Optional[Flit]:
        return self.fifo[0] if self.fifo else None

    def push(self, flit: Flit) -> None:
        """Buffer write (BW stage).  Overflow is a flow-control bug."""
        if len(self.fifo) >= self.depth:
            raise OverflowError(
                f"VC overflow at port {self.port.name} vc {self.vc_id}: "
                "credit protocol violated"
            )
        flit.vc = self.vc_id
        self.fifo.append(flit)

    def pop(self) -> Flit:
        """Buffer read as the flit wins switch allocation."""
        if not self.fifo:
            raise IndexError("pop from empty VC")
        return self.fifo.popleft()

    def release(self) -> None:
        """Return to IDLE after the tail flit departs."""
        self.state = VCState.IDLE
        self.out_port = None
        self.out_vc = None
        self.current_packet = None
        self.sent = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VC({self.port.name}.{self.vc_id}, {self.state.value}, "
            f"{len(self.fifo)}/{self.depth})"
        )


class InputPort:
    """All virtual channels of one router input port."""

    __slots__ = ("port", "vcs")

    def __init__(self, port: Port, num_vcs: int, depth: int) -> None:
        if num_vcs <= 0:
            raise ValueError("need at least one VC")
        self.port = port
        self.vcs: List[VirtualChannel] = [
            VirtualChannel(port, v, depth, num_vcs) for v in range(num_vcs)
        ]

    @property
    def occupied_vcs(self) -> int:
        """Number of VCs currently holding a packet (Table I feature 1)."""
        return sum(1 for vc in self.vcs if vc.state is not VCState.IDLE or vc.fifo)

    @property
    def buffered_flits(self) -> int:
        return sum(len(vc.fifo) for vc in self.vcs)

    def free_vc_for_head(self) -> Optional[VirtualChannel]:
        """An idle, empty VC that can accept a new packet's head flit."""
        for vc in self.vcs:
            if vc.state is VCState.IDLE and vc.is_empty:
                return vc
        return None


class OutputQueue:
    """Small staging FIFO in front of an output link.

    Holds flits that won switch allocation while the link is busy with a
    retransmission, a mode-2 duplicate, or a mode-3 stall; drained at one
    flit per free link slot.  This models the "output buffer" block the
    proposed router adds in Fig. 2.
    """

    __slots__ = ("depth", "fifo")

    def __init__(self, depth: int) -> None:
        if depth <= 0:
            raise ValueError("output queue depth must be positive")
        self.depth = depth
        self.fifo: Deque[object] = deque()

    def __len__(self) -> int:
        return len(self.fifo)

    @property
    def is_full(self) -> bool:
        return len(self.fifo) >= self.depth

    @property
    def is_empty(self) -> bool:
        return not self.fifo

    def push(self, item: object) -> None:
        if self.is_full:
            raise OverflowError("output queue overflow")
        self.fifo.append(item)

    def front(self) -> object:
        return self.fifo[0]

    def pop(self) -> object:
        return self.fifo.popleft()
