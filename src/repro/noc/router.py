"""The fault-tolerant router (paper Fig. 2).

A four-stage virtual-channel router — buffer write / route computation
(BW/RC), VC allocation (VA), switch allocation (SA), switch + link
traversal (ST/LT) — extended with the paper's per-router fault-tolerant
machinery:

* per-output-port ARQ retransmission buffers ("output flit buffers");
* ECC (-Link) enable/disable under control of the operation mode;
* mode-2 flit pre-retransmission (speculative duplicates);
* mode-3 pre-transmission stall cycles with relaxed timing;
* the per-hop ACK/NACK sideband and a go-back-N recovery protocol that
  preserves flit order within each channel.

The router's :attr:`mode` governs its *output* links (-Link_i consists of
router i's encoder and router i+1's decoder, switched together —
Section III), so a transmission carries its protection flag with it and
the receiver never needs to know the upstream router's mode.

Timing-error injection happens at flit delivery via the channel's error
model; the decode outcome is classified by the number of bit errors in
that hop (0 clean / 1 corrected / 2 NACK / 3+ escapes past SECDED), which
matches the real :class:`repro.coding.SecdedCode` behaviour validated in
the unit tests without paying for per-hop bit-level re-encoding.

Implementation note: the pipeline stages iterate over dictionaries of
VCs keyed by pipeline state (``_routing`` / ``_waiting`` / ``_active``)
rather than scanning every (port, VC) pair each cycle — iteration order
is insertion order, keeping runs bit-reproducible while making idle
routers nearly free.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Set

from repro.coding.arq import AckKind, AckMessage, RetransmissionBuffer
from repro.core.modes import MODE_BEHAVIOUR, ModeBehaviour, OperationMode
from repro.noc.arbiters import RoundRobinArbiter
from repro.noc.buffers import InputPort, VCState, VirtualChannel
from repro.noc.channel import Channel, Transmission
from repro.noc.faultstate import FaultState
from repro.noc.packet import Flit, Packet
from repro.noc.routing import RoutingFunction, xy_route
from repro.noc.stats import RouterEpochStats
from repro.noc.topology import MeshTopology, Port

__all__ = ["OutputLink", "Router", "ECC_PIPELINE_CYCLES"]

#: Extra cycles a protected (ECC) transfer spends in the encoder/decoder.
ECC_PIPELINE_CYCLES = 1

_NUM_PORTS = len(Port)
_LOCAL = int(Port.LOCAL)
#: rotating output-port scan orders for SA, indexed by ``now % N`` —
#: precomputed so the hot loop does no per-step modular arithmetic
_PORT_ORDERS = tuple(
    tuple((start + k) % _NUM_PORTS for k in range(_NUM_PORTS))
    for start in range(_NUM_PORTS)
)


class OutputLink:
    """Sender-side state of one inter-router output port."""

    __slots__ = (
        "port",
        "channel",
        "arq",
        "credits",
        "vc_allocated",
        "vc_draining",
        "free_at",
        "pending_retx",
        "alive",
    )

    def __init__(
        self, port: Port, channel: Channel, num_vcs: int, vc_depth: int, arq_capacity: int
    ) -> None:
        self.port = port
        self.channel = channel
        #: cleared by the network's hard-fault sweep when the link dies
        self.alive = True
        self.arq: RetransmissionBuffer[Transmission] = RetransmissionBuffer(arq_capacity)
        self.credits = [vc_depth] * num_vcs
        self.vc_allocated = [False] * num_vcs
        self.vc_draining = [False] * num_vcs
        #: first cycle the link is free for a new transfer
        self.free_at = 0
        #: sequence numbers scheduled for go-back-N retransmission
        self.pending_retx: Deque[int] = deque()


class Router:
    """One mesh router with the proposed fault-tolerant extensions."""

    def __init__(
        self,
        router_id: int,
        topology: MeshTopology,
        routing_fn: RoutingFunction,
        num_vcs: int,
        vc_depth: int,
        arq_capacity: int = 8,
        fault_state: Optional[FaultState] = None,
    ) -> None:
        self.id = router_id
        self.topology = topology
        self.routing_fn = routing_fn
        self.num_vcs = num_vcs
        self.vc_depth = vc_depth
        self.arq_capacity = arq_capacity
        #: shared hard-fault state (None only for standalone router tests)
        self.fault_state = fault_state
        self._fault_aware = bool(getattr(routing_fn, "fault_aware", False))
        #: ``(packet, router_id, unreachable)`` callback installed by the
        #: Network; invoked when RC discards an unroutable packet so the
        #: network can do message-level accounting
        self.drop_sink: Optional[Callable[[Packet, int, bool], None]] = None

        self.inputs: List[InputPort] = [
            InputPort(Port(p), num_vcs, vc_depth) for p in range(_NUM_PORTS)
        ]
        #: sender-side output links, wired by the Network (LOCAL excluded)
        self.outputs: Dict[int, OutputLink] = {}
        #: channels arriving here, for returning ACKs/credits (by input port)
        self.in_channels: Dict[int, Channel] = {}
        #: receiver-side next expected ARQ sequence number per input port
        self.expected_seq: List[int] = [0] * _NUM_PORTS
        #: ejection callback ``(flit, deliver_at)`` installed by the Network
        self.ejection_sink: Optional[Callable[[Flit, int], None]] = None

        self._local_vc_allocated = [False] * num_vcs

        self.mode = OperationMode.MODE_0
        self.behaviour: ModeBehaviour = MODE_BEHAVIOUR[self.mode]
        self._pending_mode: Optional[OperationMode] = None

        self._va_arbiters = [RoundRobinArbiter(_NUM_PORTS * num_vcs) for _ in range(_NUM_PORTS)]
        self._sa_arbiters = [RoundRobinArbiter(_NUM_PORTS * num_vcs) for _ in range(_NUM_PORTS)]

        # Pipeline-state indices: VCs currently in each stage, in
        # insertion order (deterministic).
        self._routing: Dict[VirtualChannel, None] = {}
        self._waiting: Dict[VirtualChannel, None] = {}
        self._active: Dict[VirtualChannel, None] = {}
        #: VCs discarding a fault-killed packet in place (see VCState)
        self._draining: Dict[VirtualChannel, None] = {}
        #: output ports with a non-empty go-back-N rewind queue
        self._retx_ports: List[int] = []

        self.epoch = RouterEpochStats()
        #: local temperature in degrees C, refreshed by the thermal model
        self.temperature = 50.0
        #: lifetime count of applied operation-mode changes (flap metric)
        self.mode_switches = 0

        #: observability hooks installed by Network.attach_tracer; the
        #: router has no network back-reference, so it also gets the
        #: network's bound clock method for timestamps
        self.tracer = None
        self.trace_clock: Optional[Callable[[], int]] = None

        #: Network-owned set of router ids whose ``step`` must run; None
        #: for standalone routers (unit tests).  Events that create
        #: pipeline work re-register the router here; the cycle kernel
        #: deregisters lazily once :attr:`needs_step` goes False.
        self._active_set: Optional[Set[int]] = None

    def bind_activity(self, active: Set[int]) -> None:
        """Attach this router to its Network's active-router set."""
        self._active_set = active

    def _wake(self) -> None:
        if self._active_set is not None:
            self._active_set.add(self.id)

    @property
    def needs_step(self) -> bool:
        """Whether :meth:`step` would do any work this cycle.

        Mirrors the guards inside :meth:`step`: pipeline stages, the
        go-back-N rewind queue, fault drains, and a deferred mode switch.
        A non-empty ARQ window alone does *not* require stepping — its
        entries are released by sideband ACKs, not by the pipeline.
        """
        return bool(
            self._routing
            or self._waiting
            or self._active
            or self._draining
            or self._retx_ports
            or self._pending_mode is not None
        )

    # ------------------------------------------------------------------
    # Mode control
    # ------------------------------------------------------------------
    def request_mode(self, mode: OperationMode) -> None:
        """Ask for an operation-mode change.

        Turning ECC *off* is deferred until every output ARQ buffer has
        drained, so in-flight protected flits keep their ordered go-back-N
        recovery; all other transitions apply immediately.
        """
        if mode == self.mode:
            self._pending_mode = None
            return
        needs_drain = self.behaviour.ecc_enabled and not MODE_BEHAVIOUR[mode].ecc_enabled
        if needs_drain and not self._arq_quiescent():
            self._pending_mode = mode
            self._wake()  # step() applies the switch once the ARQ drains
            return
        self._apply_mode(mode)

    def _apply_mode(self, mode: OperationMode) -> None:
        if mode != self.mode:
            self.mode_switches += 1
            if self.tracer is not None:
                self.tracer.emit(
                    self.trace_clock() if self.trace_clock is not None else 0,
                    "mode",
                    "transition",
                    subject=self.id,
                    old=int(self.mode),
                    new=int(mode),
                    deferred=self._pending_mode is not None,
                )
        self.mode = mode
        self.behaviour = MODE_BEHAVIOUR[mode]
        self._pending_mode = None

    def _arq_quiescent(self) -> bool:
        return all(
            link.arq.is_empty and not link.pending_retx for link in self.outputs.values()
        )

    # ------------------------------------------------------------------
    # Sideband receivers (called by the Network during delivery)
    # ------------------------------------------------------------------
    def receive_credit(self, port: int, vc: int) -> None:
        link = self.outputs[port]
        link.credits[vc] += 1
        if link.credits[vc] > self.vc_depth:
            raise RuntimeError(
                f"router {self.id} port {Port(port).name} vc {vc}: credit overflow"
            )
        self._maybe_release_output_vc(link, vc)

    def receive_ack(self, port: int, message: AckMessage) -> None:
        link = self.outputs[port]
        if message.is_nack:
            self.epoch.nacks_in[port] += 1
            # Go-back-N rewind: schedule the NACKed flit and everything
            # sent after it (still unacknowledged) for in-order resend.
            link.pending_retx = deque(seq for seq, _ in link.arq if seq >= message.seq)
            if link.pending_retx and port not in self._retx_ports:
                self._retx_ports.append(port)
                self._wake()
        else:
            self.epoch.acks_in[port] += 1
            if self._pending_mode is not None:
                # This ACK may be the one that drains the window and
                # unblocks the deferred mode switch in step().
                self._wake()
            if link.arq.peek(message.seq) is not None:
                item = link.arq.ack(message.seq)
                self.epoch.arq_buffer_ops += 1
                # The ACK may complete a draining packet's in-flight set.
                self._maybe_release_output_vc(link, item.vc)
            if message.seq in link.pending_retx:
                # A mode-2 duplicate repaired the flit before the rewind
                # resent it — cancel the now-pointless retransmission.
                link.pending_retx = deque(s for s in link.pending_retx if s != message.seq)

    # ------------------------------------------------------------------
    # Data delivery (called by the Network for each arriving transmission)
    # ------------------------------------------------------------------
    def receive_transmissions(self, port: int, arrivals: List[Transmission], now: int) -> None:
        channel = self.in_channels[port]
        epoch = self.epoch
        error_model = channel.error_model
        flits_in = epoch.flits_in
        for t in arrivals:
            flits_in[port] += 1
            errors = error_model.sample_error_bits(t.relaxed)
            if not t.protected:
                if errors:
                    t.flit.error_mask ^= error_model.sample_mask(errors)
                    epoch.escaped_errors += 1
                self._accept(port, t, now)
                continue

            # Protected arrival: the -Link decoder runs on every transfer.
            epoch.ecc_decodes += 1
            expected = self.expected_seq[port]
            if t.seq != expected:
                # Out-of-order under go-back-N (already-accepted duplicate
                # or a rewound resend of an accepted flit): drop silently.
                # Duplicates never carried a credit, so only refund for
                # credit-bearing transmissions.
                if not t.duplicate:
                    channel.send_credit(t.vc, now + 1)
                epoch.dropped_flits += 1
                continue
            if errors == 0:
                self._ack(channel, port, t, now)
                self._accept(port, t, now)
                self.expected_seq[port] = expected + 1
            elif errors == 1:
                epoch.corrected_errors += 1
                self._ack(channel, port, t, now)
                self._accept(port, t, now)
                self.expected_seq[port] = expected + 1
            elif errors == 2:
                # Detected, uncorrectable: drop and NACK.  The credit is
                # refunded by exactly one member of a mode-2 pair: a
                # paired original defers to its duplicate (which may yet
                # deliver into the reserved slot); a corrupted duplicate
                # at the expected sequence means both copies died, so the
                # credit comes back here.
                channel.send_ack(AckMessage(t.seq, AckKind.NACK, now), now + 1)
                if not t.paired:
                    channel.send_credit(t.vc, now + 1)
                epoch.nacks_out[port] += 1
                epoch.dropped_flits += 1
            else:
                # Beyond SECDED: mis-correction corrupts the payload and
                # escapes to the destination CRC.
                t.flit.error_mask ^= error_model.sample_mask(errors)
                epoch.escaped_errors += 1
                self._ack(channel, port, t, now)
                self._accept(port, t, now)
                self.expected_seq[port] = expected + 1

    def _ack(self, channel: Channel, port: int, t: Transmission, now: int) -> None:
        channel.send_ack(AckMessage(t.seq, AckKind.ACK, now), now + 1)
        self.epoch.acks_out[port] += 1

    def _accept(self, port: int, t: Transmission, now: int) -> None:
        flit = t.flit
        flit.hops += 1
        vc = self.inputs[port].vcs[t.vc]
        vc.push(flit)
        self.epoch.buffer_writes += 1
        if flit.is_head:
            if vc.state is not VCState.IDLE:
                raise RuntimeError(
                    f"router {self.id}: head flit arrived at busy VC "
                    f"{vc.port.name}.{vc.vc_id}"
                )
            vc.state = VCState.ROUTING
            vc.current_packet = flit.packet
            vc.stage_ready_cycle = now + 1
            self._routing[vc] = None
            self._wake()

    # ------------------------------------------------------------------
    # Injection from the local network interface
    # ------------------------------------------------------------------
    def try_inject_head(self, flit: Flit, now: int) -> Optional[int]:
        """Inject a head flit from the NI; returns the VC used, or None."""
        local = self.inputs[_LOCAL]
        vc = local.free_vc_for_head()
        if vc is None:
            return None
        vc.push(flit)
        vc.state = VCState.ROUTING
        vc.current_packet = flit.packet
        vc.stage_ready_cycle = now + 1
        self._routing[vc] = None
        self._wake()
        self.epoch.buffer_writes += 1
        self.epoch.flits_in[_LOCAL] += 1
        return vc.vc_id

    def try_inject_body(self, flit: Flit, vc_id: int) -> bool:
        """Inject a body/tail flit on the packet's VC; False if full."""
        vc = self.inputs[_LOCAL].vcs[vc_id]
        if vc.is_full:
            return False
        vc.push(flit)
        self.epoch.buffer_writes += 1
        self.epoch.flits_in[_LOCAL] += 1
        return True

    # ------------------------------------------------------------------
    # Pipeline step (called once per cycle, after deliveries)
    # ------------------------------------------------------------------
    def step(self, now: int) -> None:
        if self._pending_mode is not None and self._arq_quiescent():
            self._apply_mode(self._pending_mode)
        if self._draining:
            self._stage_drain(now)
        if self._retx_ports:
            used_output = self._stage_retransmissions(now)
        else:
            used_output = None
        if self._active:
            self._stage_switch_allocation(now, used_output)
        if self._waiting:
            self._stage_vc_allocation(now)
        if self._routing:
            self._stage_route_computation(now)

    # -- ST (retransmission drain has priority on each output link) ------
    def _stage_retransmissions(self, now: int) -> List[bool]:
        used_output = [False] * _NUM_PORTS
        for port in list(self._retx_ports):
            link = self.outputs[port]
            # Entries ACKed in the meantime (mode-2 duplicates) are stale.
            while link.pending_retx and link.arq.peek(link.pending_retx[0]) is None:
                link.pending_retx.popleft()
            if not link.pending_retx:
                self._retx_ports.remove(port)
                continue
            # The rewound window has exclusive priority on this link: new
            # flits (with later sequence numbers) must not leapfrog it, or
            # the in-order receiver would silently drop them forever.
            used_output[port] = True
            if link.free_at > now:
                continue
            seq = link.pending_retx[0]
            original = link.arq.peek(seq)
            if link.credits[original.vc] <= 0:
                continue  # wait for the refund credit
            link.pending_retx.popleft()
            if not link.pending_retx:
                self._retx_ports.remove(port)
            link.credits[original.vc] -= 1
            behaviour = self.behaviour
            retx = Transmission(
                flit=original.flit,
                seq=seq,
                vc=original.vc,
                protected=True,
                relaxed=behaviour.timing_relaxed,
                duplicate=False,
                arrive_at=now
                + link.channel.latency
                + ECC_PIPELINE_CYCLES
                + behaviour.extra_cycles_before_send,
            )
            link.channel.send(retx)
            link.free_at = now + 1 + behaviour.extra_cycles_before_send
            link.arq.nack(seq)  # counts the retransmission in ARQ stats
            self.epoch.flit_retransmissions += 1
            self.epoch.flits_out[port] += 1
            self.epoch.arq_buffer_ops += 1
            self.epoch.ecc_encodes += 1
        return used_output

    # -- SA + ST ---------------------------------------------------------
    def _stage_switch_allocation(self, now: int, used_output: Optional[List[bool]]) -> None:
        outputs = self.outputs
        ecc = self.behaviour.ecc_enabled
        by_port: Dict[int, List[VirtualChannel]] = {}
        for vc in self._active:
            if vc.fifo and vc.stage_ready_cycle <= now:
                out_port = vc.out_port
                if used_output is not None and used_output[out_port]:
                    continue
                # Inlined _sa_resources_free (hottest loop in the router).
                if out_port != _LOCAL:
                    link = outputs[out_port]
                    if link.credits[vc.out_vc] <= 0:
                        continue
                    if ecc and link.arq.is_full:
                        continue
                candidates = by_port.get(out_port)
                if candidates is None:
                    by_port[out_port] = [vc]
                else:
                    candidates.append(vc)
        if not by_port:
            return
        arbiters = self._sa_arbiters
        epoch = self.epoch
        if len(by_port) == 1:
            # Common case: every ready VC wants the same output port.
            # One grant happens, so the input-port exclusion mask and the
            # rotating output-port order cannot change the outcome.
            out_port, candidates = by_port.popitem()
            if out_port != _LOCAL and outputs[out_port].free_at > now:
                return
            epoch.arbitration_ops += 1
            if len(candidates) == 1:
                vc = candidates[0]
                arbiters[out_port].take(vc.line)
                self._traverse(vc, out_port, now)
                return
            line = arbiters[out_port].grant_from([vc.line for vc in candidates])
            for vc in candidates:
                if vc.line == line:
                    self._traverse(vc, out_port, now)
                    return
            return
        used_input = [False] * _NUM_PORTS
        for out_port in _PORT_ORDERS[now % _NUM_PORTS]:
            candidates = by_port.get(out_port)
            if not candidates:
                continue
            if out_port != _LOCAL and outputs[out_port].free_at > now:
                continue
            if len(candidates) == 1:
                vc = candidates[0]
                if used_input[vc.port_index]:
                    continue
                epoch.arbitration_ops += 1
                arbiters[out_port].take(vc.line)
                used_input[vc.port_index] = True
                self._traverse(vc, out_port, now)
                continue
            eligible = [vc.line for vc in candidates if not used_input[vc.port_index]]
            if not eligible:
                continue
            epoch.arbitration_ops += 1
            line = arbiters[out_port].grant_from(eligible)
            if line is None:
                continue
            for vc in candidates:
                if vc.line == line:
                    used_input[vc.port_index] = True
                    self._traverse(vc, out_port, now)
                    break

    def _sa_resources_free(self, out_port: int, vc: VirtualChannel) -> bool:
        if out_port == _LOCAL:
            return True
        link = self.outputs[out_port]
        if link.credits[vc.out_vc] <= 0:
            return False
        if self.behaviour.ecc_enabled and link.arq.is_full:
            return False
        return True

    def _traverse(self, vc: VirtualChannel, out_port: int, now: int) -> None:
        flit = vc.pop()
        vc.sent += 1
        epoch = self.epoch
        epoch.buffer_reads += 1
        epoch.crossbar_traversals += 1
        epoch.flits_out[out_port] += 1
        if vc.port_index != _LOCAL:
            # The flit freed one slot of this input VC: return the credit
            # to the upstream sender over the channel's sideband wire.
            self.in_channels[vc.port_index].send_credit(vc.vc_id, now + 1)

        if out_port == _LOCAL:
            if self.ejection_sink is None:
                raise RuntimeError(f"router {self.id} has no ejection sink")
            self.ejection_sink(flit, now + 1)
        else:
            link = self.outputs[out_port]
            behaviour = self.behaviour
            protected = behaviour.ecc_enabled
            out_vc = vc.out_vc
            link.credits[out_vc] -= 1
            arrive = (
                now
                + link.channel.latency
                + behaviour.extra_cycles_before_send
                + (ECC_PIPELINE_CYCLES if protected else 0)
            )
            duplicated = behaviour.pre_retransmit and protected
            if protected:
                # The ARQ window stores the sent transmission itself (its
                # consumers read only .flit and .vc), so the rewind logic
                # can resend it without a second allocation per flit.
                sent = Transmission(
                    flit,
                    link.arq.next_seq,
                    out_vc,
                    True,
                    behaviour.timing_relaxed,
                    False,
                    arrive,
                    paired=duplicated,
                )
                seq = link.arq.push(sent)
                epoch.arq_buffer_ops += 1
                epoch.ecc_encodes += 1
            else:
                seq = None
                sent = Transmission(
                    flit,
                    None,
                    out_vc,
                    False,
                    behaviour.timing_relaxed,
                    False,
                    arrive,
                    paired=duplicated,
                )
            link.channel.send(sent)
            link.free_at = now + behaviour.link_slots_per_flit
            if duplicated:
                # Mode 2: speculative duplicate one cycle behind.
                link.channel.send(
                    Transmission(
                        flit,
                        seq,
                        out_vc,
                        True,
                        behaviour.timing_relaxed,
                        True,
                        arrive + 1,
                    )
                )
                epoch.duplicate_flits += 1
                epoch.ecc_encodes += 1

        if flit.is_tail:
            out_vc = vc.out_vc
            if out_port == _LOCAL:
                self._local_vc_allocated[out_vc] = False
            else:
                link = self.outputs[out_port]
                link.vc_draining[out_vc] = True
                self._maybe_release_output_vc(link, out_vc)
            vc.release()
            del self._active[vc]
        # Body flits remain eligible next cycle; no stage_ready bump needed.

    def _maybe_release_output_vc(self, link: OutputLink, vc: int) -> None:
        # The downstream VC is reusable only when every flit of the old
        # packet is out of flight: all credits home AND no ARQ entry for
        # this VC awaits acknowledgement.  Credits alone are insufficient
        # — a NACKed (refunded) flit still has a pending retransmission
        # that will occupy the downstream buffer later.
        if not (link.vc_draining[vc] and link.credits[vc] == self.vc_depth):
            return
        if any(t.vc == vc for _seq, t in link.arq):
            return
        link.vc_draining[vc] = False
        link.vc_allocated[vc] = False

    # -- VA ---------------------------------------------------------------
    def _stage_vc_allocation(self, now: int) -> None:
        by_port: Dict[int, Dict[int, VirtualChannel]] = {}
        for vc in self._waiting:
            if vc.stage_ready_cycle <= now:
                by_port.setdefault(vc.out_port, {})[vc.line] = vc
        for out_port, candidates in by_port.items():
            free_vcs = self._free_output_vcs(out_port)
            if not free_vcs:
                continue
            eligible = list(candidates)
            for out_vc in free_vcs:
                if not eligible:
                    break
                self.epoch.arbitration_ops += 1
                line = self._va_arbiters[out_port].grant_from(eligible)
                if line is None:
                    break
                eligible.remove(line)
                winner = candidates[line]
                winner.out_vc = out_vc
                winner.state = VCState.ACTIVE
                winner.stage_ready_cycle = now + 1
                del self._waiting[winner]
                self._active[winner] = None
                if out_port == _LOCAL:
                    self._local_vc_allocated[out_vc] = True
                else:
                    self.outputs[out_port].vc_allocated[out_vc] = True

    def _free_output_vcs(self, out_port: int) -> List[int]:
        if out_port == _LOCAL:
            allocated = self._local_vc_allocated
        else:
            link = self.outputs.get(out_port)
            if link is None:
                return []
            allocated = link.vc_allocated
        return [v for v in range(self.num_vcs) if not allocated[v]]

    # -- RC ---------------------------------------------------------------
    def _stage_route_computation(self, now: int) -> None:
        fault_state = self.fault_state
        faulty = fault_state is not None and fault_state.any_faults
        for vc in list(self._routing):
            if vc.stage_ready_cycle <= now:
                head = vc.front
                out = int(self.routing_fn(self.topology, self.id, head.dest))
                if faulty:
                    if not fault_state.reachable(self.id, head.dest):
                        self._drop_in_routing(vc, now, unreachable=True)
                        continue
                    if out != _LOCAL and not fault_state.link_alive(self.id, out):
                        # A deterministic (non-fault-aware) policy steered
                        # the packet into a dead link: discard with
                        # accounting rather than wedging the buffer.
                        self._drop_in_routing(vc, now, unreachable=False)
                        continue
                    if self._fault_aware and out != int(
                        xy_route(self.topology, self.id, head.dest)
                    ):
                        self.epoch.reroutes += 1
                vc.out_port = out
                head.packet.path.append(self.id)
                vc.state = VCState.WAITING_VC
                vc.stage_ready_cycle = now + 1
                del self._routing[vc]
                self._waiting[vc] = None

    def _drop_in_routing(self, vc: VirtualChannel, now: int, unreachable: bool) -> None:
        """Discard the packet heading this VC before it allocates anything.

        The flits already buffered (and any still arriving from upstream)
        drain through the DRAINING state so wormhole flow control stays
        consistent; the message-level consequences (drop the source
        store entry, count the loss) go through the network's drop sink.
        """
        packet = vc.front.packet
        packet.lost = True
        del self._routing[vc]
        vc.state = VCState.DRAINING
        self._draining[vc] = None
        if self.drop_sink is not None:
            self.drop_sink(packet, self.id, unreachable)

    # -- fault drain ------------------------------------------------------
    def _stage_drain(self, now: int) -> None:
        """Discard flits of killed packets in place, refunding credits.

        A DRAINING VC behaves like a zero-latency sink: it consumes its
        FIFO (credits still flow upstream so the rest of the worm keeps
        arriving) and releases once the tail — real or ghost — passes.
        """
        for vc in list(self._draining):
            finished = False
            while vc.fifo:
                flit = vc.pop()
                self.epoch.buffer_reads += 1
                self.epoch.dropped_flits += 1
                if vc.port != Port.LOCAL:
                    self.in_channels[int(vc.port)].send_credit(vc.vc_id, now + 1)
                if flit.is_tail:
                    finished = True
                    break
            if finished:
                del self._draining[vc]
                vc.release()

    # ------------------------------------------------------------------
    # Hard-fault sweeps (called by Network.kill_link / kill_router)
    # ------------------------------------------------------------------
    def handle_dead_output(self, port: int, now: int, mark: Callable[[Packet], None]) -> None:
        """Unwind sender-side pipeline state after ``port``'s link died.

        Worms that have not pushed a single flit across the link are sent
        back to route computation (a fault-aware policy will pick a
        detour; XY will walk into the RC drop path).  Worms already
        partially across are truncated: their upstream remainder drains
        in place, and ``mark`` records the packet as lost so the network
        can decide between source retransmission and a counted drop.
        """
        self._wake()  # kill sweeps may move VCs back into live stages
        for vc in list(self._waiting):
            if vc.out_port == port:
                del self._waiting[vc]
                vc.state = VCState.ROUTING
                vc.out_port = None
                vc.stage_ready_cycle = now + 1
                self._routing[vc] = None
        for vc in list(self._active):
            if vc.out_port == port:
                del self._active[vc]
                if vc.sent == 0:
                    # Nothing crossed: the packet is intact; re-route it.
                    vc.state = VCState.ROUTING
                    vc.out_port = None
                    vc.out_vc = None
                    vc.stage_ready_cycle = now + 1
                    self._routing[vc] = None
                else:
                    mark(vc.current_packet)
                    vc.state = VCState.DRAINING
                    self._draining[vc] = None

    def handle_dead_input(self, port: int, now: int) -> None:
        """Repair receiver-side worms truncated by ``port``'s dead link.

        Packets whose missing flits died on the link can never complete;
        if this VC already forwarded part of the worm downstream, a ghost
        tail is appended so every later hop still sees a full worm.
        Packets not marked lost are complete up to their buffered tail
        and drain normally.
        """
        for vc in self.inputs[port].vcs:
            packet = vc.current_packet
            if packet is None or not packet.lost:
                continue
            if vc.state is VCState.ACTIVE and vc.sent > 0:
                while vc.fifo:
                    vc.pop()
                    self.epoch.dropped_flits += 1
                vc.push(packet.make_ghost_tail())
                self.epoch.buffer_writes += 1
            else:
                # Nothing escaped this VC (or it was already draining and
                # its tail died on the link): unwind it completely.
                while vc.fifo:
                    vc.pop()
                    self.epoch.dropped_flits += 1
                if vc.state is VCState.ACTIVE:
                    self._release_downstream(vc)
                self._routing.pop(vc, None)
                self._waiting.pop(vc, None)
                self._active.pop(vc, None)
                self._draining.pop(vc, None)
                vc.release()

    def flush_all(self, mark: Callable[[Packet], None]) -> int:
        """Hard-flush every VC (the router itself died); returns flits dropped.

        No credits are refunded and no ghosts are synthesized: every
        incident channel is already dead, so neighbours were repaired by
        the per-link sweeps and nothing can arrive here again.
        """
        dropped = 0
        for input_port in self.inputs:
            for vc in input_port.vcs:
                if vc.state is VCState.IDLE and not vc.fifo:
                    continue
                if vc.current_packet is not None:
                    mark(vc.current_packet)
                while vc.fifo:
                    flit = vc.pop()
                    mark(flit.packet)
                    dropped += 1
                vc.release()
        self._routing.clear()
        self._waiting.clear()
        self._active.clear()
        self._draining.clear()
        self._retx_ports.clear()
        self.epoch.dropped_flits += dropped
        return dropped

    def _release_downstream(self, vc: VirtualChannel) -> None:
        """Free the output VC an unwound ACTIVE worm had allocated."""
        out_port, out_vc = vc.out_port, vc.out_vc
        if out_port is None or out_vc is None:
            return
        if out_port == _LOCAL:
            self._local_vc_allocated[out_vc] = False
            return
        link = self.outputs[out_port]
        if link.alive:
            link.vc_draining[out_vc] = True
            self._maybe_release_output_vc(link, out_vc)
        else:
            link.vc_draining[out_vc] = False
            link.vc_allocated[out_vc] = False

    # ------------------------------------------------------------------
    def occupied_input_vcs(self) -> List[int]:
        """Occupied VC count per input port (Table I feature 1)."""
        return [port.occupied_vcs for port in self.inputs]

    @property
    def is_idle(self) -> bool:
        """No packet anywhere in this router's pipeline or ARQ windows."""
        return not (
            self._routing
            or self._waiting
            or self._active
            or self._draining
            or self._retx_ports
            or any(not link.arq.is_empty for link in self.outputs.values())
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Router({self.id}, mode={self.mode.name})"
