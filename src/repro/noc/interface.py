"""Network interfaces (NIs): packetization, CRC, source retransmission.

Every core attaches to its router through an NI.  Following the paper's
baseline protection (Section II, Fig. 1(b)):

* the **source NI** CRC-encodes each packet, keeps a copy of every
  in-flight message, and re-injects a fresh copy when the destination
  requests a retransmission;
* the **destination NI** reassembles flits, checks the CRC over the
  payload *as received* (accumulated uncorrected bit errors applied), and
  on a failure sends a retransmission request back to the source — the
  full-packet, end-to-end recovery that makes the CRC-only design slow
  and power-hungry under faults, which is exactly the behaviour the
  proposed RL design tries to avoid.

The retransmission request and the delivery notification travel on a
modelled sideband whose latency is the hop distance plus a small constant,
rather than through simulated flits — the standard simplification, since
these control messages are tiny compared to data packets.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.coding.crc import CRC
from repro.noc.packet import Flit, Packet
from repro.noc.router import Router
from repro.noc.stats import NetworkStats
from repro.noc.topology import MeshTopology

__all__ = ["NetworkInterface"]

#: Fixed component of the sideband retransmission-request latency.
SIDEBAND_BASE_LATENCY = 4


def _no_peer(_node: int) -> Optional["NetworkInterface"]:
    """Placeholder peer lookup before the Network wires the NIs together
    (module-level, so an unwired NI still pickles)."""
    return None


class NetworkInterface:
    """The NI of one core/router pair."""

    def __init__(
        self,
        node_id: int,
        router: Router,
        topology: MeshTopology,
        crc: CRC,
        stats: NetworkStats,
    ) -> None:
        self.id = node_id
        self.router = router
        self.topology = topology
        self.crc = crc
        self.stats = stats
        #: cleared when this NI's router is hard-killed
        self.alive = True
        router.ejection_sink = self._eject

        #: messages waiting to start injection (fresh plus retransmitted)
        self._inject_queue: Deque[Packet] = deque()
        #: the packet currently streaming flits into the router
        self._current: Optional[Packet] = None
        self._current_index = 0
        self._current_vc: Optional[int] = None
        #: source-side copies of in-flight messages, by message id
        self._store: Dict[int, Packet] = {}
        #: (due_cycle, message_id) retransmission requests received
        self._retx_due: List[Tuple[int, int]] = []
        #: flits ejected by the router, pending NI processing
        self._eject_queue: Deque[Tuple[int, Flit]] = deque()
        #: per-packet count of ejected flits, for reassembly bookkeeping
        self._rx_count: Dict[int, int] = {}
        #: peer lookup installed by the Network (node id -> NI)
        self.peer: Callable[[int], "NetworkInterface"] = _no_peer
        #: Network-owned active sets (None outside a Network); an NI is
        #: registered for injection while it holds source-side work and
        #: for ejection while router-ejected flits await processing
        self._act_inject: Optional[Set[int]] = None
        self._act_eject: Optional[Set[int]] = None
        #: observability hook installed by Network.attach_tracer
        self.tracer = None

    def bind_activity(self, inject: Set[int], eject: Set[int]) -> None:
        """Attach this NI to its Network's active-NI sets."""
        self._act_inject = inject
        self._act_eject = eject

    @property
    def needs_inject(self) -> bool:
        """Whether :meth:`step_inject` has (or may have) work to do."""
        return bool(self._retx_due or self._inject_queue or self._current is not None)

    @property
    def needs_eject(self) -> bool:
        """Whether :meth:`step_eject` has queued flits to consume."""
        return bool(self._eject_queue)

    def _wake_inject(self) -> None:
        if self._act_inject is not None:
            self._act_inject.add(self.id)

    # ------------------------------------------------------------------
    # Source side
    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet) -> None:
        """Accept a new message from the core for injection."""
        if packet.src != self.id:
            raise ValueError(f"packet source {packet.src} does not match NI {self.id}")
        self.stats.messages_created += 1
        if not self.alive:
            # A dead core cannot send: account the message as
            # immediately dropped so conservation still balances.
            self.stats.messages_dropped += 1
            return
        if packet.crc_check is None:
            packet.crc_check = self.crc.compute(
                packet.combined_payload(), packet.total_bits
            )
            self.router.epoch.crc_ops += packet.size
        self._store[packet.message_id] = packet
        self.stats.outstanding_messages += 1
        self._inject_queue.append(packet)
        self._wake_inject()

    def schedule_retransmission(self, message_id: int, due_cycle: int) -> None:
        """Destination asked for a fresh copy of ``message_id``."""
        if not self.alive:
            # A dead source can never retransmit: the message is lost.
            self.drop_message(message_id)
            return
        heapq.heappush(self._retx_due, (due_cycle, message_id))
        self._wake_inject()

    def release(self, message_id: int) -> None:
        """Delivery confirmed: drop the stored copy."""
        if self._store.pop(message_id, None) is not None:
            self.stats.outstanding_messages -= 1

    def drop_message(self, message_id: int) -> bool:
        """Abandon a message for good (unreachable or dead endpoint).

        Returns True if the message was still outstanding here; the
        messages_dropped counter moves only in that case, so a message is
        never double-counted between racing drop paths.
        """
        if self._store.pop(message_id, None) is None:
            return False
        self.stats.outstanding_messages -= 1
        self.stats.messages_dropped += 1
        return True

    def retire(self, mark) -> None:
        """This NI's router died: abandon all local work in progress.

        ``mark`` flags in-network packets as lost (the network then
        routes them through its recover-or-drop accounting); messages
        that exist only in local queues are dropped directly.
        """
        self.alive = False
        if self._current is not None:
            mark(self._current)
            self._current = None
            self._current_vc = None
        for packet in self._inject_queue:
            mark(packet)
        self._inject_queue.clear()
        while self._eject_queue:
            _, flit = self._eject_queue.popleft()
            mark(flit.packet)
        self._rx_count.clear()
        while self._retx_due:
            _, message_id = heapq.heappop(self._retx_due)
            self.drop_message(message_id)

    @property
    def outstanding_messages(self) -> int:
        """Messages accepted but not yet confirmed delivered."""
        return len(self._store)

    @property
    def inject_backlog(self) -> int:
        """Packets queued for injection (including the one in progress)."""
        return len(self._inject_queue) + (1 if self._current is not None else 0)

    def step_inject(self, now: int) -> None:
        """Inject at most one flit into the local router port."""
        if not self.alive:
            return
        while self._retx_due and self._retx_due[0][0] <= now:
            _, message_id = heapq.heappop(self._retx_due)
            original = self._store.get(message_id)
            if original is None:
                continue  # delivered in the meantime; request was stale
            clone = original.clone_for_retransmission(now)
            self._store[message_id] = clone
            self.router.epoch.crc_ops += clone.size
            self._inject_queue.appendleft(clone)

        if self._current is None:
            if not self._inject_queue:
                return
            self._current = self._inject_queue.popleft()
            self._current_index = 0
            self._current_vc = None

        packet = self._current
        flit = packet.flits[self._current_index]
        if flit.is_head and self._current_vc is None:
            vc = self.router.try_inject_head(flit, now)
            if vc is None:
                return  # all local input VCs busy; retry next cycle
            self._current_vc = vc
            packet.injected_at = now
            self.stats.packets_injected += 1
        else:
            if not self.router.try_inject_body(flit, self._current_vc):
                return  # VC full; retry next cycle
        flit.injected_at = now
        if packet.retransmission == 0:
            self.router.epoch.core_activity_flits += 1
        self._current_index += 1
        if self._current_index >= packet.size:
            self._current = None
            self._current_vc = None

    # ------------------------------------------------------------------
    # Destination side
    # ------------------------------------------------------------------
    def _eject(self, flit: Flit, deliver_at: int) -> None:
        self._eject_queue.append((deliver_at, flit))
        if self._act_eject is not None:
            self._act_eject.add(self.id)

    def step_eject(self, now: int) -> None:
        """Consume ejected flits; finish packets on their tail flit."""
        if not self.alive:
            return
        while self._eject_queue and self._eject_queue[0][0] <= now:
            _, flit = self._eject_queue.popleft()
            packet = flit.packet
            if packet.lost:
                # Hard-fault carcass (possibly terminated by a ghost
                # tail): the flit count cannot add up and the message is
                # already accounted for — discard, never reassemble.
                if flit.is_tail:
                    self._rx_count.pop(packet.pid, None)
                continue
            self._rx_count[packet.pid] = self._rx_count.get(packet.pid, 0) + 1
            if not flit.is_tail:
                continue
            received = self._rx_count.pop(packet.pid)
            if received != packet.size:
                raise RuntimeError(
                    f"NI {self.id}: packet {packet.pid} ejected {received} "
                    f"of {packet.size} flits"
                )
            self._finish_packet(packet, now)

    def _finish_packet(self, packet: Packet, now: int) -> None:
        self.router.epoch.crc_ops += packet.size
        word = packet.combined_payload(received=True)
        if self.crc.verify(word, packet.total_bits, packet.crc_check):
            corrupted = any(f.error_mask for f in packet.flits)
            if corrupted:
                # An escaped error pattern the CRC cannot see: silent
                # data corruption, worth tracking separately.
                self.stats.silent_corruptions += 1
            latency = now - packet.created_at
            self.router.epoch.core_activity_flits += packet.size
            self.stats.packets_delivered += 1
            self.stats.flits_delivered += packet.size
            self.stats.latency.record(latency)
            source = self.peer(packet.src)
            if source is not None:
                source.release(packet.message_id)
            router_lookup = self._router_lookup
            for router_id in set(packet.path):
                epoch = router_lookup(router_id).epoch
                epoch.delivered_latency_total += latency
                epoch.delivered_packets += 1
        else:
            self.stats.crc_failures += 1
            self.stats.packet_retransmissions += 1
            source = self.peer(packet.src)
            delay = (
                self.topology.hop_distance(packet.src, packet.dest)
                + SIDEBAND_BASE_LATENCY
            )
            source.schedule_retransmission(packet.message_id, now + delay)
            if self.tracer is not None:
                self.tracer.emit(
                    now,
                    "retx",
                    "crc_retransmission",
                    subject=self.id,
                    message=packet.message_id,
                    src=packet.src,
                    due=now + delay,
                )

    #: router lookup installed by the Network (router id -> Router)
    _router_lookup: Callable[[int], Router] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NetworkInterface({self.id})"
