"""Arbiters for virtual-channel and switch allocation.

The router uses separable allocation (standard for 4-stage VC routers):

* **VA** — packets whose head finished route computation request a free
  VC at their output port; a per-output round-robin arbiter grants one
  requester per free VC.
* **SA** — active VCs with a buffered flit and a downstream credit request
  their output port; a per-output round-robin arbiter grants one per port
  per cycle.

Round-robin is implemented exactly as the rotating-priority hardware:
the grant pointer advances past the winner so every requester is served
within N rounds (no starvation) — a property test pins this down.
A matrix (least-recently-served) arbiter is included as an alternative.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence, TypeVar

__all__ = ["RoundRobinArbiter", "MatrixArbiter"]

R = TypeVar("R", bound=Hashable)


class RoundRobinArbiter:
    """Rotating-priority arbiter over ``size`` request lines."""

    __slots__ = ("size", "_pointer")

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError("arbiter needs at least one input")
        self.size = size
        self._pointer = 0

    def grant(self, requests: Sequence[bool]) -> Optional[int]:
        """Grant one of the asserted request lines, or None.

        The search starts at the line after the previous winner, giving
        each line a fair turn.
        """
        if len(requests) != self.size:
            raise ValueError(f"expected {self.size} request lines")
        size = self.size
        pointer = self._pointer
        for line in range(pointer, size):
            if requests[line]:
                self._pointer = line + 1 if line + 1 < size else 0
                return line
        for line in range(pointer):
            if requests[line]:
                self._pointer = line + 1 if line + 1 < size else 0
                return line
        return None

    def grant_from(self, lines: Sequence[int]) -> Optional[int]:
        """Grant among asserted line *indices* instead of a request vector.

        Exactly equivalent to :meth:`grant` on the request vector with
        those lines asserted — the winner is the first asserted line at
        or after the rotating pointer — but O(candidates) instead of
        O(size), which matters in switch allocation where a 20-line
        vector usually carries one or two requests.
        """
        size = self.size
        pointer = self._pointer
        best = None
        best_rank = size
        for line in lines:
            rank = line - pointer
            if rank < 0:
                rank += size
            if rank < best_rank:
                best_rank = rank
                best = line
        if best is not None:
            self._pointer = best + 1 if best + 1 < size else 0
        return best

    def take(self, line: int) -> int:
        """Grant a known sole candidate: ``grant_from((line,))`` without
        the scan.  The caller asserts exactly one line is requesting."""
        self._pointer = line + 1 if line + 1 < self.size else 0
        return line

    def reset(self) -> None:
        self._pointer = 0


class MatrixArbiter:
    """Least-recently-served arbiter.

    Keeps a priority matrix ``w[i][j] = 1`` meaning *i beats j*; the winner
    clears its row and sets its column, becoming lowest priority.  Slightly
    fairer than round-robin under asymmetric request patterns; offered as
    the alternative arbiter for the ablation bench.
    """

    __slots__ = ("size", "_beats")

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError("arbiter needs at least one input")
        self.size = size
        # Upper triangle set: initial priority order 0 > 1 > ... > n-1.
        self._beats: List[List[bool]] = [
            [i < j for j in range(size)] for i in range(size)
        ]

    def grant(self, requests: Sequence[bool]) -> Optional[int]:
        if len(requests) != self.size:
            raise ValueError(f"expected {self.size} request lines")
        winner = None
        for i in range(self.size):
            if not requests[i]:
                continue
            if all(
                not (requests[j] and self._beats[j][i])
                for j in range(self.size)
                if j != i
            ):
                winner = i
                break
        if winner is not None:
            for j in range(self.size):
                if j != winner:
                    self._beats[winner][j] = False
                    self._beats[j][winner] = True
        return winner

    def reset(self) -> None:
        self._beats = [[i < j for j in range(self.size)] for i in range(self.size)]
