"""Routing functions.

The paper uses deterministic X-Y dimension-order routing (Table II), which
is deadlock-free on a mesh without extra virtual-channel classes.  A Y-X
variant and a minimal-adaptive O1TURN-style router are provided for the
extension benchmarks; both restrict themselves to minimal quadrants.

A routing function maps ``(topology, current_node, dest_node)`` to the
output :class:`~repro.noc.topology.Port` the head flit must request.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from repro.noc.topology import MeshTopology, Port

__all__ = [
    "RoutingFunction",
    "xy_route",
    "yx_route",
    "minimal_ports",
    "make_o1turn_route",
    "ROUTING_FUNCTIONS",
]

#: Signature shared by all routing functions.
RoutingFunction = Callable[[MeshTopology, int, int], Port]


def xy_route(topology: MeshTopology, node: int, dest: int) -> Port:
    """Dimension-order X-then-Y routing (the paper's configuration)."""
    if node == dest:
        return Port.LOCAL
    x, y = topology.coordinates(node)
    dx, dy = topology.coordinates(dest)
    if x != dx:
        return Port.EAST if dx > x else Port.WEST
    return Port.NORTH if dy > y else Port.SOUTH


def yx_route(topology: MeshTopology, node: int, dest: int) -> Port:
    """Dimension-order Y-then-X routing (used by the O1TURN variant)."""
    if node == dest:
        return Port.LOCAL
    x, y = topology.coordinates(node)
    dx, dy = topology.coordinates(dest)
    if y != dy:
        return Port.NORTH if dy > y else Port.SOUTH
    return Port.EAST if dx > x else Port.WEST


def minimal_ports(topology: MeshTopology, node: int, dest: int) -> List[Port]:
    """All productive (minimal-quadrant) output ports."""
    if node == dest:
        return [Port.LOCAL]
    x, y = topology.coordinates(node)
    dx, dy = topology.coordinates(dest)
    ports = []
    if dx > x:
        ports.append(Port.EAST)
    elif dx < x:
        ports.append(Port.WEST)
    if dy > y:
        ports.append(Port.NORTH)
    elif dy < y:
        ports.append(Port.SOUTH)
    return ports


def make_o1turn_route(selector: Sequence[int]) -> RoutingFunction:
    """O1TURN-style routing: pick XY or YX per packet.

    ``selector`` is any sequence consulted round-robin; in the simulator it
    is seeded per-router so the choice is deterministic and reproducible.
    Note: full O1TURN requires VC partitioning for deadlock freedom; the
    simulator assigns even VCs to XY and odd VCs to YX packets when this
    function is active.
    """
    state = {"i": 0}

    def route(topology: MeshTopology, node: int, dest: int) -> Port:
        choice = selector[state["i"] % len(selector)]
        state["i"] += 1
        return xy_route(topology, node, dest) if choice == 0 else yx_route(
            topology, node, dest
        )

    return route


#: Registry used by :class:`repro.sim.config.SimulationConfig`.
ROUTING_FUNCTIONS = {
    "xy": xy_route,
    "yx": yx_route,
}
