"""Routing functions and the named routing-policy registry.

The paper uses deterministic X-Y dimension-order routing (Table II), which
is deadlock-free on a mesh without extra virtual-channel classes.  A Y-X
variant and a minimal-adaptive O1TURN-style router are provided for the
extension benchmarks; both restrict themselves to minimal quadrants.

A routing function maps ``(topology, current_node, dest_node)`` to the
output :class:`~repro.noc.topology.Port` the head flit must request.
Because some policies need per-router state (the O1TURN selector) or
shared network state (the fault-aware adaptive policy reads the live
:class:`~repro.noc.faultstate.FaultState`), the registry holds
:class:`RoutingPolicy` factories; the network builds one concrete
routing function per router from ``(topology, router_id, seed,
fault_state)``.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence

from repro.noc.faultstate import FaultState
from repro.noc.topology import MeshTopology, Port

__all__ = [
    "RoutingFunction",
    "RoutingPolicy",
    "xy_route",
    "yx_route",
    "minimal_ports",
    "make_o1turn_route",
    "make_adaptive_route",
    "resolve_routing_policy",
    "ROUTING_FUNCTIONS",
]

#: Round-robin selector length for the seeded O1TURN variant.
O1TURN_SELECTOR_BITS = 1024

#: Signature shared by all routing functions.
RoutingFunction = Callable[[MeshTopology, int, int], Port]


def xy_route(topology: MeshTopology, node: int, dest: int) -> Port:
    """Dimension-order X-then-Y routing (the paper's configuration)."""
    if node == dest:
        return Port.LOCAL
    x, y = topology.coordinates(node)
    dx, dy = topology.coordinates(dest)
    if x != dx:
        return Port.EAST if dx > x else Port.WEST
    return Port.NORTH if dy > y else Port.SOUTH


def yx_route(topology: MeshTopology, node: int, dest: int) -> Port:
    """Dimension-order Y-then-X routing (used by the O1TURN variant)."""
    if node == dest:
        return Port.LOCAL
    x, y = topology.coordinates(node)
    dx, dy = topology.coordinates(dest)
    if y != dy:
        return Port.NORTH if dy > y else Port.SOUTH
    return Port.EAST if dx > x else Port.WEST


def minimal_ports(topology: MeshTopology, node: int, dest: int) -> List[Port]:
    """All productive (minimal-quadrant) output ports."""
    if node == dest:
        return [Port.LOCAL]
    x, y = topology.coordinates(node)
    dx, dy = topology.coordinates(dest)
    ports = []
    if dx > x:
        ports.append(Port.EAST)
    elif dx < x:
        ports.append(Port.WEST)
    if dy > y:
        ports.append(Port.NORTH)
    elif dy < y:
        ports.append(Port.SOUTH)
    return ports


class O1TurnRoute:
    """O1TURN-style routing: pick XY or YX per packet.

    ``selector`` is any sequence consulted round-robin; in the simulator it
    is seeded per-router so the choice is deterministic and reproducible.
    Note: full O1TURN requires VC partitioning for deadlock freedom; the
    simulator assigns even VCs to XY and odd VCs to YX packets when this
    function is active.

    A plain class (not a closure) so the consumed selector position
    survives a checkpoint pickle — resuming a run mid-flight must replay
    exactly the XY/YX choices an uninterrupted run would have made.
    """

    __slots__ = ("selector", "index")

    fault_aware = False

    def __init__(self, selector: Sequence[int]) -> None:
        self.selector = selector
        self.index = 0

    def __call__(self, topology: MeshTopology, node: int, dest: int) -> Port:
        choice = self.selector[self.index % len(self.selector)]
        self.index += 1
        return xy_route(topology, node, dest) if choice == 0 else yx_route(
            topology, node, dest
        )

    def __getstate__(self):
        return (self.selector, self.index)

    def __setstate__(self, state) -> None:
        self.selector, self.index = state


def make_o1turn_route(selector: Sequence[int]) -> RoutingFunction:
    """Build a round-robin XY/YX selector routing function."""
    return O1TurnRoute(selector)


class AdaptiveRoute:
    """Fault-aware minimal-adaptive routing over the alive subgraph.

    While the network is fault-free this is *exactly* ``xy_route`` (same
    ports, same determinism, turn-model deadlock freedom intact).  Once a
    link or router dies, each hop moves strictly closer to the
    destination on the alive graph — livelock-free by construction —
    preferring the minimal XY port whenever it is still alive, so the
    detour region around a fault stays as small as possible.  Routes
    squeezed around faults can make turns the XY model forbids; the
    network's invariant watchdog is the documented backstop for the
    residual deadlock risk (the same trade FASHION-style fault-tolerant
    routers make).

    Unreachable destinations return the nominal XY port; the router's RC
    stage checks reachability first and drops such packets with
    accounting, so the value is never used to move a flit.
    """

    __slots__ = ("fault_state",)

    fault_aware = True

    def __init__(self, fault_state: FaultState) -> None:
        self.fault_state = fault_state

    def __call__(self, topology: MeshTopology, node: int, dest: int) -> Port:
        if node == dest:
            return Port.LOCAL
        preferred = xy_route(topology, node, dest)
        if not self.fault_state.any_faults:
            return preferred
        port = self.fault_state.next_hop(node, dest, prefer=preferred)
        return preferred if port is None else port

    def __getstate__(self):
        return self.fault_state

    def __setstate__(self, state) -> None:
        self.fault_state = state


def make_adaptive_route(fault_state: FaultState) -> RoutingFunction:
    """Build a fault-aware adaptive routing function over ``fault_state``."""
    return AdaptiveRoute(fault_state)


class RoutingPolicy:
    """Named factory: builds one routing function per router.

    ``fault_aware`` marks policies that consult the shared
    :class:`FaultState` and can route around dead links; the router's RC
    stage uses it to count reroutes and to decide whether hitting a dead
    output port is expected (deterministic policies) or a bug.
    """

    __slots__ = ("name", "fault_aware", "_build")

    def __init__(
        self,
        name: str,
        build: Callable[[MeshTopology, int, int, FaultState], RoutingFunction],
        fault_aware: bool = False,
    ) -> None:
        self.name = name
        self.fault_aware = fault_aware
        self._build = build

    def build(
        self,
        topology: MeshTopology,
        router_id: int,
        seed: int = 0,
        fault_state: Optional[FaultState] = None,
    ) -> RoutingFunction:
        if fault_state is None:
            fault_state = FaultState(topology)
        return self._build(topology, router_id, seed, fault_state)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RoutingPolicy({self.name!r}, fault_aware={self.fault_aware})"


# Module-level builders (not lambdas) keep RoutingPolicy instances — and
# therefore checkpointed Network snapshots — picklable.
def _build_xy(
    topology: MeshTopology, router_id: int, seed: int, fault_state: FaultState
) -> RoutingFunction:
    return xy_route


def _build_yx(
    topology: MeshTopology, router_id: int, seed: int, fault_state: FaultState
) -> RoutingFunction:
    return yx_route


def _build_o1turn(
    topology: MeshTopology, router_id: int, seed: int, fault_state: FaultState
) -> RoutingFunction:
    # Arithmetic seed mixing (not hash()) keeps the selector identical
    # across interpreters/processes, which sweep caching depends on.
    rng = random.Random(seed * 1_000_003 + router_id * 7_919 + 17)
    selector = tuple(rng.randrange(2) for _ in range(O1TURN_SELECTOR_BITS))
    return make_o1turn_route(selector)


def _build_adaptive(
    topology: MeshTopology, router_id: int, seed: int, fault_state: FaultState
) -> RoutingFunction:
    return make_adaptive_route(fault_state)


#: Registry used by :class:`repro.sim.config.SimulationConfig`.
ROUTING_FUNCTIONS: Dict[str, RoutingPolicy] = {
    "xy": RoutingPolicy("xy", _build_xy),
    "yx": RoutingPolicy("yx", _build_yx),
    "o1turn": RoutingPolicy("o1turn", _build_o1turn),
    "adaptive": RoutingPolicy("adaptive", _build_adaptive, fault_aware=True),
}


def resolve_routing_policy(spec) -> RoutingPolicy:
    """Coerce a name, policy, or bare routing function into a policy.

    Bare callables (how tests drive custom routing) become anonymous
    policies whose every router shares the given function — the exact
    pre-registry behaviour.
    """
    if isinstance(spec, RoutingPolicy):
        return spec
    if isinstance(spec, str):
        try:
            return ROUTING_FUNCTIONS[spec]
        except KeyError:
            raise ValueError(
                f"unknown routing {spec!r}; pick one of "
                f"{', '.join(sorted(ROUTING_FUNCTIONS))}"
            ) from None
    if callable(spec):
        fault_aware = bool(getattr(spec, "fault_aware", False))
        name = getattr(spec, "__name__", "custom")
        return RoutingPolicy(name, lambda topo, rid, seed, fs: spec, fault_aware)
    raise TypeError(f"cannot interpret {spec!r} as a routing policy")
