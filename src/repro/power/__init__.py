"""Power/energy/area substrate (ORION 2.0 + Synopsys DC stand-ins)."""

from repro.power.area import AreaParams, RouterAreaModel
from repro.power.orion import (
    CorePowerParams,
    DesignPowerProfile,
    EnergyParams,
    EpochEnergy,
    RouterPowerModel,
)

__all__ = [
    "AreaParams",
    "RouterAreaModel",
    "CorePowerParams",
    "DesignPowerProfile",
    "EnergyParams",
    "EpochEnergy",
    "RouterPowerModel",
]
