"""Router area model (32 nm) and per-design overhead accounting.

The paper evaluates area with Synopsys Design Vision at 32 nm and reports
(Section VI-B): the RL control logic (output buffers + ALU for Q-value
computation + Q-table SRAM) adds 2360 um^2, which is a 5.5 % overhead
over the CRC router, 4.8 % over the ARQ+ECC router, and 4.5 % over the
DT router.  Those three ratios pin down the component areas used here:

* base (CRC) router — buffers, crossbar, allocators, CRC codecs:
  2360 / 0.055 = 42,909 um^2;
* ECC+ARQ blocks (encoders, decoders, retransmission buffers):
  2360 / 0.048 - 42,909 = 6,258 um^2;
* DT prediction logic: 2360 / 0.045 - 49,167 = 3,277 um^2;
* RL control logic: 2,360 um^2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["AreaParams", "RouterAreaModel"]


@dataclass(frozen=True)
class AreaParams:
    """Component areas in square micrometres (32 nm library)."""

    base_router_um2: float = 42_909.0
    ecc_arq_um2: float = 6_258.0
    dt_logic_um2: float = 3_277.0
    rl_logic_um2: float = 2_360.0


class RouterAreaModel:
    """Total area and overhead ratios for each compared router design."""

    #: component composition of each design
    _COMPOSITION = {
        "crc": ("base",),
        "arq_ecc": ("base", "ecc"),
        "dt": ("base", "ecc", "dt"),
        "rl": ("base", "ecc", "rl"),
    }

    def __init__(self, params: AreaParams = AreaParams()) -> None:
        self.params = params
        self._component_um2 = {
            "base": params.base_router_um2,
            "ecc": params.ecc_arq_um2,
            "dt": params.dt_logic_um2,
            "rl": params.rl_logic_um2,
        }

    def design_area_um2(self, design: str) -> float:
        """Total router area of one design ('crc', 'arq_ecc', 'dt', 'rl')."""
        try:
            parts = self._COMPOSITION[design]
        except KeyError:
            raise ValueError(f"unknown design {design!r}") from None
        return sum(self._component_um2[p] for p in parts)

    def rl_added_area_um2(self) -> float:
        """Extra silicon the RL control logic adds (the 2360 um^2 figure)."""
        return self.params.rl_logic_um2

    def rl_overhead_vs(self, design: str) -> float:
        """RL logic area as a fraction of a comparison design's router.

        Reproduces the paper's 5.5 % / 4.8 % / 4.5 % triplet against
        'crc' / 'arq_ecc' / 'dt'.
        """
        return self.params.rl_logic_um2 / self.design_area_um2(design)

    def summary(self) -> Dict[str, float]:
        """All design areas plus the three reported overhead ratios."""
        return {
            "crc_um2": self.design_area_um2("crc"),
            "arq_ecc_um2": self.design_area_um2("arq_ecc"),
            "dt_um2": self.design_area_um2("dt"),
            "rl_um2": self.design_area_um2("rl"),
            "rl_added_um2": self.rl_added_area_um2(),
            "overhead_vs_crc": self.rl_overhead_vs("crc"),
            "overhead_vs_arq_ecc": self.rl_overhead_vs("arq_ecc"),
            "overhead_vs_dt": self.rl_overhead_vs("dt"),
        }
