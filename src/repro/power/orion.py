"""ORION-style router power and energy model (32 nm, 2 GHz, 1.0 V).

The paper evaluates power with ORION 2.0 integrated in Booksim.  This
module provides the equivalent event-based model: each router reports its
per-epoch event counters (:class:`repro.noc.stats.RouterEpochStats`), and
the model converts them into dynamic energy via per-event energies plus
per-component static leakage over the epoch's wall-clock time.

Per-event constants are calibrated to the anchors the paper discloses:

* a baseline (CRC-design) router consumes ~13.33 pJ per flit hop
  (Section VI-B: the 0.16 pJ RL overhead is 1.2 % of the baseline);
* the RL control logic adds 0.16 pJ per flit (ALU + Q-table SRAM,
  amortized over the 1K-cycle epoch);
* ECC/ARQ and DT hardware add proportionally smaller increments, with
  ECC blocks power-gated whenever a mode disables them.

Only *relative* energies drive the paper's normalized figures, so the
decomposition below (typical of 32 nm ORION runs) is sufficient: buffer
write 2.0, buffer read 1.6, crossbar 3.0, arbitration 0.4 and link
traversal 5.73 pJ — 12.73 pJ per hop, plus 0.6 pJ of NI CRC amortized
over the average hop count, reproducing ~13.3 pJ/flit for the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.noc.stats import RouterEpochStats

__all__ = [
    "EnergyParams",
    "EpochEnergy",
    "RouterPowerModel",
    "DesignPowerProfile",
    "CorePowerParams",
]


@dataclass(frozen=True)
class EnergyParams:
    """Per-event energies (picojoules) and leakage (milliwatts)."""

    # Dynamic, per event (pJ)
    buffer_write_pj: float = 2.0
    buffer_read_pj: float = 1.6
    crossbar_pj: float = 3.0
    arbitration_pj: float = 0.4
    link_traversal_pj: float = 5.73
    crc_pj: float = 0.6
    ecc_encode_pj: float = 0.7
    ecc_decode_pj: float = 0.9
    arq_buffer_pj: float = 1.1
    ack_signal_pj: float = 0.12
    rl_per_flit_pj: float = 0.16
    dt_per_flit_pj: float = 0.12

    # Static leakage, per component (mW)
    base_leakage_mw: float = 2.0
    ecc_leakage_mw: float = 0.35
    arq_leakage_mw: float = 0.30
    rl_leakage_mw: float = 0.25
    dt_leakage_mw: float = 0.18

    clock_hz: float = 2.0e9


@dataclass(frozen=True)
class CorePowerParams:
    """Power of the processing core sharing each router's tile.

    The die temperature that drives the VARIUS error model is dominated
    by the cores, not the routers (a 32 nm OoO core burns hundreds of mW
    against the router's few mW).  The core's activity is approximated by
    the local NI traffic it generates/consumes: a tile injecting and
    ejecting ~0.2 flits/cycle runs near its busy power.  Calibrated so a
    light benchmark sits near 65 C and a heavily-loaded tile near 90 C
    under the default :class:`~repro.faults.thermal.ThermalGrid` —
    matching the [50, 100] C range the paper observes.  Only *unique*
    work feeds this proxy (see RouterEpochStats.core_activity_flits).
    """

    idle_watts: float = 0.24
    per_flit_rate_watts: float = 1.25
    max_watts: float = 0.5

    def core_power(self, local_flit_rate: float) -> float:
        """Core power given the tile's local flits/cycle (in + out)."""
        if local_flit_rate < 0:
            raise ValueError("flit rate cannot be negative")
        return min(self.max_watts, self.idle_watts + self.per_flit_rate_watts * local_flit_rate)


@dataclass(frozen=True)
class DesignPowerProfile:
    """Which power-consuming blocks a router design instantiates.

    ``ecc_gated`` marks designs whose ECC/ARQ blocks are power-gated when
    the current operation mode disables them (the proposed design);
    static designs either lack the blocks entirely (CRC) or keep them
    always on (ARQ+ECC, DT).
    """

    name: str
    has_ecc_hardware: bool
    ecc_gated: bool
    has_rl_logic: bool
    has_dt_logic: bool

    @classmethod
    def crc(cls) -> "DesignPowerProfile":
        return cls("crc", False, False, False, False)

    @classmethod
    def arq_ecc(cls) -> "DesignPowerProfile":
        return cls("arq_ecc", True, False, False, False)

    @classmethod
    def decision_tree(cls) -> "DesignPowerProfile":
        return cls("dt", True, True, False, True)

    @classmethod
    def rl(cls) -> "DesignPowerProfile":
        return cls("rl", True, True, True, False)


@dataclass
class EpochEnergy:
    """Energy of one router over one epoch, split by origin (pJ)."""

    dynamic_pj: float = 0.0
    static_pj: float = 0.0

    @property
    def total_pj(self) -> float:
        return self.dynamic_pj + self.static_pj


class RouterPowerModel:
    """Converts epoch event counters into energy figures."""

    def __init__(self, params: EnergyParams = EnergyParams()) -> None:
        self.params = params

    # ------------------------------------------------------------------
    def baseline_flit_energy_pj(self, mean_hops: float = 1.0) -> float:
        """Per-flit per-hop energy of the baseline (CRC) router.

        ``mean_hops`` amortizes the NI CRC encode+check over the hops a
        flit traverses; with the default 1.0 the full CRC cost is charged
        to a single hop, giving the paper's ~13.3 pJ anchor.
        """
        p = self.params
        return (
            p.buffer_write_pj
            + p.buffer_read_pj
            + p.crossbar_pj
            + p.arbitration_pj
            + p.link_traversal_pj
            + p.crc_pj / mean_hops
        )

    def epoch_energy(
        self,
        stats: RouterEpochStats,
        profile: DesignPowerProfile,
        ecc_enabled_now: bool,
        epoch_cycles: int,
    ) -> EpochEnergy:
        """Energy of one router for one epoch.

        ``ecc_enabled_now`` is the router's current mode's ECC state,
        used to gate ECC/ARQ leakage for gated designs.
        """
        if epoch_cycles <= 0:
            raise ValueError("epoch must span at least one cycle")
        p = self.params
        flits_out_total = sum(stats.flits_out)
        link_flits = flits_out_total - stats.flits_out[0] + stats.duplicate_flits

        dynamic = (
            stats.buffer_writes * p.buffer_write_pj
            + stats.buffer_reads * p.buffer_read_pj
            + stats.crossbar_traversals * p.crossbar_pj
            + stats.arbitration_ops * p.arbitration_pj
            + link_flits * p.link_traversal_pj
            + stats.crc_ops * p.crc_pj
            + stats.ecc_encodes * p.ecc_encode_pj
            + stats.ecc_decodes * p.ecc_decode_pj
            + stats.arq_buffer_ops * p.arq_buffer_pj
            + (sum(stats.acks_in) + sum(stats.nacks_in)) * p.ack_signal_pj
        )
        if profile.has_rl_logic:
            dynamic += flits_out_total * p.rl_per_flit_pj
        if profile.has_dt_logic:
            dynamic += flits_out_total * p.dt_per_flit_pj

        seconds = epoch_cycles / p.clock_hz
        leakage_mw = p.base_leakage_mw
        if profile.has_ecc_hardware:
            ecc_on = ecc_enabled_now or not profile.ecc_gated
            if ecc_on:
                leakage_mw += p.ecc_leakage_mw + p.arq_leakage_mw
        if profile.has_rl_logic:
            leakage_mw += p.rl_leakage_mw
        if profile.has_dt_logic:
            leakage_mw += p.dt_leakage_mw
        static = leakage_mw * 1e-3 * seconds * 1e12  # mW * s -> pJ

        return EpochEnergy(dynamic_pj=dynamic, static_pj=static)

    # ------------------------------------------------------------------
    @staticmethod
    def to_watts(energy_pj: float, cycles: int, clock_hz: float) -> float:
        """Average power in watts of an energy spent over some cycles."""
        if cycles <= 0:
            raise ValueError("cycles must be positive")
        return energy_pj * 1e-12 / (cycles / clock_hz)

    def rl_overhead_fraction(self) -> float:
        """Per-flit RL energy overhead vs the baseline router energy —
        the paper reports 0.16 pJ on ~13.3 pJ = 1.2 % (Section VI-B)."""
        return self.params.rl_per_flit_pj / self.baseline_flit_energy_pj()
