"""Experiment runner: the four-design comparison of Section VI.

Runs the same benchmark trace through all compared designs — static CRC,
static ARQ+ECC, the decision-tree baseline, and the proposed RL policy —
with identical phase structure (pre-train on synthetic traffic for the
learning designs, warm up, then the measured testing phase), and
normalizes every metric to the CRC baseline exactly as Figs 6-10 do.
"""

from __future__ import annotations

import logging
import math
import random
import zlib
from typing import Callable, Dict, Iterable, List, Optional

from repro.baselines.decision_tree import DecisionTreePolicy
from repro.baselines.static import arq_ecc_policy, crc_policy
from repro.core.controller import ControlPolicy
from repro.core.rl_policy import RLControlPolicy
from repro.noc.topology import MeshTopology
from repro.sim.config import SimulationConfig
from repro.sim.metrics import RunResult
from repro.sim.simulator import Simulator
from repro.traffic.parsec import PARSEC_PROFILES, ParsecTraceSynthesizer
from repro.traffic.trace import TraceRecord

__all__ = [
    "DESIGN_ORDER",
    "default_design_factories",
    "run_design_on_trace",
    "pretrain_policy",
    "snapshot_pretrained_policies",
    "clone_policy",
    "compare_designs",
    "benchmark_trace_seed",
    "run_parsec_suite",
    "normalize_to_baseline",
    "geometric_mean",
]

logger = logging.getLogger("repro.sim.experiment")

#: Plot order used by every figure in the paper.
DESIGN_ORDER = ("crc", "arq_ecc", "dt", "rl")


def default_design_factories(
    seed: int = 0, share_rl_table: bool = True
) -> Dict[str, Callable[[], ControlPolicy]]:
    """Fresh-policy factories for the four compared designs.

    ``share_rl_table`` defaults to the scaled-run accelerator (see
    :class:`repro.core.rl_policy.RLControlPolicy`); pass False for the
    paper's strictly per-router agents.
    """
    return {
        "crc": crc_policy,
        "arq_ecc": arq_ecc_policy,
        "dt": DecisionTreePolicy,
        "rl": lambda: RLControlPolicy(share_table=share_rl_table, seed=seed),
    }


def run_design_on_trace(
    policy: ControlPolicy,
    records: List[TraceRecord],
    config: SimulationConfig,
    benchmark: str = "trace",
    seed: int = 0,
    pretrained: bool = False,
) -> RunResult:
    """Full phase sequence for one design on one trace.

    ``pretrained=True`` skips the synthetic pre-training phase — used
    when the caller already pre-trained the policy (the trainable
    policies keep their learned models across runs).
    """
    sim = Simulator(config, policy, seed=seed)
    if policy.trainable and not pretrained:
        sim.pretrain()
        policy.freeze()
    sim.warmup()
    return sim.measure_trace(records, benchmark)


def pretrain_policy(policy: ControlPolicy, config: SimulationConfig, seed: int = 0) -> None:
    """Run the synthetic pre-training phase once on a throwaway platform."""
    if policy.trainable:
        sim = Simulator(config, policy, seed=seed)
        sim.pretrain()
    policy.freeze()


def snapshot_pretrained_policies(
    factories: Dict[str, Callable[[], ControlPolicy]],
    config: SimulationConfig,
    seed: int = 0,
) -> Dict[str, Dict[str, object]]:
    """Pre-train each design once; returns its frozen ``to_state`` snapshot.

    The snapshot — not the live policy object — is what evaluation cells
    should start from: cloning a fresh policy per cell keeps online
    adaptation cell-local instead of leaking across benchmarks.
    """
    snapshots = {}
    for name, factory in factories.items():
        policy = factory()
        pretrain_policy(policy, config, seed=seed)
        snapshots[name] = policy.to_state()
    return snapshots


def clone_policy(
    factory: Callable[[], ControlPolicy], state: Dict[str, object]
) -> ControlPolicy:
    """Fresh policy restored to a ``to_state`` snapshot.

    Learning policies serialize their full model plus RNG state, so a
    clone behaves bit-identically to the snapshotted original; stateless
    policies round-trip trivially (their snapshot is just the name).
    """
    policy = factory()
    policy.load_state(state)
    return policy


def compare_designs(
    records: List[TraceRecord],
    config: SimulationConfig,
    benchmark: str = "trace",
    seed: int = 0,
    designs: Optional[Dict[str, Callable[[], ControlPolicy]]] = None,
    policies: Optional[Dict[str, ControlPolicy]] = None,
) -> Dict[str, RunResult]:
    """Run every design on the same trace; returns results by design.

    Pass ``policies`` (already pre-trained) to skip the per-benchmark
    pre-training phase; otherwise fresh policies are built from
    ``designs`` factories and pre-trained individually.
    """
    results = {}
    if policies is not None:
        for name, policy in policies.items():
            results[name] = run_design_on_trace(
                policy, records, config, benchmark=benchmark, seed=seed, pretrained=True
            )
        return results
    factories = designs if designs is not None else default_design_factories(seed)
    for name, factory in factories.items():
        results[name] = run_design_on_trace(
            factory(), records, config, benchmark=benchmark, seed=seed
        )
    return results


def benchmark_trace_seed(benchmark: str, seed: int = 0) -> int:
    """Trace-RNG seed for one benchmark, stable across processes.

    zlib.crc32, not hash(): str hashing is salted per interpreter
    (PYTHONHASHSEED), which would give every process — and every sweep
    worker — a different trace for the same (benchmark, seed).  The full
    32-bit CRC is mixed in; folding it (an earlier ``% 1000``) would let
    distinct benchmark names collide onto identical traces.
    """
    return seed + zlib.crc32(benchmark.encode("utf-8"))


def synthesize_benchmark_trace(
    benchmark: str,
    config: SimulationConfig,
    cycles: int,
    seed: int = 0,
) -> List[TraceRecord]:
    """PARSEC-like trace for one benchmark on the configured mesh."""
    profile = PARSEC_PROFILES[benchmark]
    topology = MeshTopology(config.width, config.height)
    rng = random.Random(benchmark_trace_seed(benchmark, seed))
    synthesizer = ParsecTraceSynthesizer(profile, topology, rng)
    return synthesizer.synthesize(cycles)


def run_parsec_suite(
    config: SimulationConfig,
    trace_cycles: int,
    benchmarks: Optional[Iterable[str]] = None,
    seed: int = 0,
    designs: Optional[Dict[str, Callable[[], ControlPolicy]]] = None,
) -> Dict[str, Dict[str, RunResult]]:
    """The full evaluation grid: benchmarks x designs.

    Each design is pre-trained once on synthetic traffic and snapshotted;
    every benchmark cell then runs a fresh policy cloned from that frozen
    snapshot.  Learning policies keep adapting online *within* a cell,
    exactly as the paper describes — but the adaptation stays cell-local,
    so per-cell results are independent of benchmark iteration order
    (reusing one live policy object across benchmarks leaked the state
    benchmark N learned into benchmark N+1).
    """
    names = list(benchmarks) if benchmarks is not None else sorted(PARSEC_PROFILES)
    factories = designs if designs is not None else default_design_factories(seed)
    snapshots = snapshot_pretrained_policies(factories, config, seed=seed)
    suite = {}
    for benchmark in names:
        records = synthesize_benchmark_trace(benchmark, config, trace_cycles, seed)
        policies = {
            name: clone_policy(factories[name], snapshots[name]) for name in factories
        }
        suite[benchmark] = compare_designs(
            records, config, benchmark=benchmark, seed=seed, policies=policies
        )
    return suite


def normalize_to_baseline(
    results: Dict[str, RunResult],
    metric: Callable[[RunResult], float],
    baseline: str = "crc",
) -> Dict[str, float]:
    """Per-design metric values divided by the baseline's (Figs 6-10).

    A zero or non-finite baseline reference cannot anchor a ratio: every
    design then reports NaN.  (Reporting 0.0 — as an earlier version did
    — is indistinguishable from "every design measured zero", which
    silently poisoned downstream geomeans.)
    """
    reference = metric(results[baseline])
    if reference == 0 or not math.isfinite(reference):
        logger.warning(
            "baseline %r reference is %r; normalized metrics are undefined (NaN)",
            baseline, reference,
        )
        return {name: float("nan") for name in results}
    return {name: metric(result) / reference for name, result in results.items()}


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean over the positive, finite entries of ``values``.

    Non-positive and non-finite entries cannot enter a geometric mean;
    they are skipped with a counted warning instead of zeroing the whole
    figure (one degenerate cell used to silently report 0.0 for the
    entire suite).  Returns NaN when nothing survives.
    """
    values = [v for v in values]
    survivors = [v for v in values if v > 0 and math.isfinite(v)]
    skipped = len(values) - len(survivors)
    if skipped:
        logger.warning(
            "geometric_mean skipped %d non-positive/non-finite value(s) of %d",
            skipped, len(values),
        )
    if not survivors:
        return float("nan")
    product = 1.0
    for v in survivors:
        product *= v
    return product ** (1.0 / len(survivors))
