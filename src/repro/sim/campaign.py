"""Paper-figure campaign runner: pretrain once, evaluate everywhere.

The headline claims of the paper (Figs 6-10) are a benchmarks x designs
grid.  Running that grid naively has two failure modes this module
removes:

* **Repaid pre-training** — every invocation used to re-run the
  synthetic pre-training phase for every trainable design, even though
  the phase is a pure function of (config, design, seed).  A campaign
  pretrains each combination exactly once and persists the frozen
  policy as a versioned, CRC-guarded artifact (the PR-3 checkpoint
  container, ``ARTIFACT_VERSION`` body); later invocations — and every
  grid cell — reuse it.

* **Cross-benchmark state leakage** — chaining one live policy object
  across benchmarks leaked what benchmark N learned into benchmark N+1,
  making measured numbers depend on iteration order.  Each campaign
  cell clones a fresh policy from the pretrained artifact, so online
  adaptation stays cell-local and per-cell results are bit-identical
  across benchmark orderings and ``--jobs`` settings.

Cells execute through the :class:`~repro.sim.sweep.SweepRunner`
supervision machinery (timeouts, retries, quarantine, incremental cache
flushing), so a campaign is resumable: killed mid-flight, a rerun
replays finished cells from the result cache and reuses the artifacts.
``repro.sim.report`` turns the merged grid into the normalized Figs
6-10 tables; the ``repro campaign`` CLI command wires it all together.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.sim.checkpoint import (
    ARTIFACT_VERSION,
    CheckpointError,
    read_policy_artifact_meta,
    save_policy_artifact,
)
from repro.sim.config import SimulationConfig
from repro.sim.experiment import (
    DESIGN_ORDER,
    default_design_factories,
    pretrain_policy,
)
from repro.sim.metrics import RunResult
from repro.sim.sweep import (
    DEFAULT_CACHE_DIR,
    PointResult,
    SweepPoint,
    SweepProgress,
    SweepReport,
    SweepRunner,
)
from repro.traffic.parsec import PARSEC_PROFILES

__all__ = [
    "DEFAULT_ARTIFACT_DIR",
    "CampaignSpec",
    "CampaignGrid",
    "CampaignResult",
    "artifact_key",
    "artifact_file",
    "ensure_artifact",
    "build_artifacts",
    "run_campaign",
    "merge_campaign",
]

logger = logging.getLogger("repro.sim.campaign")

#: Artifacts live beside the point cache by default, so one
#: ``--cache-dir``-style override relocates the whole campaign state.
DEFAULT_ARTIFACT_DIR = str(Path(DEFAULT_CACHE_DIR) / "artifacts")


# ----------------------------------------------------------------------
# Artifact store
# ----------------------------------------------------------------------
def artifact_key(config: SimulationConfig, design: str, seed: int) -> str:
    """Content hash of everything a pretrained artifact depends on.

    The *full* config is hashed, not just the pre-training knobs: an
    artifact must never be served for a platform it was not trained on,
    and config fields are cheap to hash compared to diagnosing a
    silently mismatched mesh.
    """
    fingerprint = {
        "artifact_version": ARTIFACT_VERSION,
        "config": dataclasses.asdict(config),
        "design": design,
        "seed": seed,
    }
    blob = json.dumps(fingerprint, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:24]


def artifact_file(
    artifact_dir: Union[str, Path], design: str, seed: int, key: str
) -> Path:
    """Canonical artifact location; the key in the name makes a stale
    file for the same (design, seed) a cache miss, not a wrong hit."""
    return Path(artifact_dir) / f"{design}-s{seed}-{key}.ckpt"


def ensure_artifact(
    config: SimulationConfig,
    design: str,
    seed: int,
    artifact_dir: Union[str, Path] = DEFAULT_ARTIFACT_DIR,
    refresh: bool = False,
    tracer=None,
) -> Tuple[Path, str, bool]:
    """Build — or reuse — the pretrained artifact for one design.

    Returns ``(path, key, built)``.  An existing artifact is reused only
    when its container validates (magic, version, body CRC) AND its
    stored content key matches the requested one; anything suspect is
    rebuilt in place.  ``built=False`` is the warm-cache fast path that
    lets a campaign skip the entire pre-training phase.
    """
    key = artifact_key(config, design, seed)
    path = artifact_file(artifact_dir, design, seed, key)
    if not refresh:
        try:
            meta = read_policy_artifact_meta(path)
        except CheckpointError:
            pass  # missing, torn, or foreign-version artifact: rebuild
        else:
            if meta.get("key") == key:
                logger.info("reusing pretrained artifact %s", path)
                if tracer is not None:
                    tracer.emit(
                        0, "campaign", "artifact_reuse",
                        design=design, seed=seed, key=key,
                    )
                return path, key, False
    policy = default_design_factories(seed)[design]()
    started = time.perf_counter()
    pretrain_policy(policy, config, seed=seed)
    elapsed = time.perf_counter() - started
    save_policy_artifact(
        path,
        policy.to_state(),
        meta={
            "key": key,
            "design": design,
            "seed": seed,
            "policy": policy.name,
            "pretrain_cycles": config.pretrain_cycles,
            "pretrain_seconds": elapsed,
            "config": dataclasses.asdict(config),
        },
    )
    logger.info(
        "pretrained %s (seed %d) in %.1fs -> %s", design, seed, elapsed, path
    )
    if tracer is not None:
        tracer.emit(
            0, "campaign", "artifact_build", design=design, seed=seed, key=key,
        )
    return path, key, True


# ----------------------------------------------------------------------
# Campaign specification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignSpec:
    """Declarative benchmarks x designs paper-figure grid."""

    config: SimulationConfig
    benchmarks: Tuple[str, ...] = tuple(sorted(PARSEC_PROFILES))
    designs: Tuple[str, ...] = DESIGN_ORDER
    seed: int = 0
    trace_cycles: int = 3_000

    def __post_init__(self) -> None:
        if not self.benchmarks:
            raise ValueError("benchmarks cannot be empty")
        if not self.designs:
            raise ValueError("designs cannot be empty")
        for benchmark in self.benchmarks:
            if benchmark not in PARSEC_PROFILES:
                raise ValueError(
                    f"unknown benchmark {benchmark!r}; pick from "
                    f"{', '.join(sorted(PARSEC_PROFILES))}"
                )
        for design in self.designs:
            if design not in DESIGN_ORDER:
                raise ValueError(
                    f"unknown design {design!r}; pick one of {', '.join(DESIGN_ORDER)}"
                )
        if self.trace_cycles < 1:
            raise ValueError("trace_cycles must be positive")


@dataclass(frozen=True)
class CampaignGrid:
    """Pre-built campaign points behind the runner's spec interface.

    The generic :class:`~repro.sim.sweep.SweepSpec` cross product cannot
    carry per-design artifact bindings, so campaigns hand the runner an
    already-expanded point list through the same ``config`` +
    ``expand()`` surface.
    """

    config: SimulationConfig
    points: Tuple[SweepPoint, ...]

    def expand(self) -> List[SweepPoint]:
        return list(self.points)


def build_artifacts(
    spec: CampaignSpec,
    artifact_dir: Union[str, Path] = DEFAULT_ARTIFACT_DIR,
    refresh: bool = False,
    tracer=None,
) -> Dict[str, Tuple[Path, str, bool]]:
    """Phase 1: one pretrained artifact per *trainable* design.

    Stateless designs (crc, arq_ecc) have nothing to pre-train and get
    no artifact; their cells run directly from a fresh policy.
    """
    artifacts: Dict[str, Tuple[Path, str, bool]] = {}
    factories = default_design_factories(spec.seed)
    for design in spec.designs:
        if not factories[design]().trainable:
            continue
        artifacts[design] = ensure_artifact(
            spec.config, design, spec.seed, artifact_dir,
            refresh=refresh, tracer=tracer,
        )
    return artifacts


def campaign_points(
    spec: CampaignSpec, artifacts: Dict[str, Tuple[Path, str, bool]]
) -> Tuple[SweepPoint, ...]:
    """The grid's cells in deterministic order (benchmark outer, design
    inner — the same nesting convention ``SweepSpec.expand`` uses)."""
    points: List[SweepPoint] = []
    for benchmark in spec.benchmarks:
        for design in spec.designs:
            path, key, _built = artifacts.get(design, (None, "", False))
            points.append(
                SweepPoint(
                    kind="campaign",
                    design=design,
                    traffic=benchmark,
                    seed=spec.seed,
                    cycles=spec.trace_cycles,
                    artifact_hash=key,
                    artifact_path=str(path) if path is not None else "",
                )
            )
    return tuple(points)


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass
class CampaignResult:
    """Everything one campaign invocation produced."""

    spec: CampaignSpec
    #: {benchmark: {design: RunResult}} — ``run_parsec_suite``'s shape
    suite: Dict[str, Dict[str, RunResult]]
    #: {design: {"path", "key", "built"}} for the trainable designs
    artifacts: Dict[str, Dict[str, object]]
    #: raw per-cell results in grid order (None = quarantined)
    results: List[Optional[PointResult]]
    report: SweepReport
    elapsed_seconds: float = 0.0

    @property
    def succeeded(self) -> bool:
        return self.report.succeeded

    def counters(self) -> Dict[str, float]:
        """Flat campaign counters (``campaign.*`` gauges when ingested
        into a :class:`repro.obs.MetricRegistry`)."""
        built = sum(1 for a in self.artifacts.values() if a["built"])
        return {
            "artifacts_built": built,
            "artifacts_reused": len(self.artifacts) - built,
            "cells_total": self.report.total,
            "cells_executed": self.report.executed,
            "cells_cached": self.report.from_cache,
            "cells_quarantined": len(self.report.quarantined),
            "elapsed_seconds": self.elapsed_seconds,
        }


def merge_campaign(
    results: Sequence[Optional[PointResult]],
) -> Dict[str, Dict[str, RunResult]]:
    """Merge campaign cells into ``run_parsec_suite``'s
    {benchmark: {design: RunResult}} shape (quarantined cells skipped)."""
    suite: Dict[str, Dict[str, RunResult]] = {}
    for result in results:
        if result is None or result.run is None:
            continue
        suite.setdefault(result.point.traffic, {})[result.point.design] = result.run
    return suite


# ----------------------------------------------------------------------
# The campaign itself
# ----------------------------------------------------------------------
def run_campaign(
    spec: CampaignSpec,
    jobs: int = 1,
    artifact_dir: Union[str, Path] = DEFAULT_ARTIFACT_DIR,
    cache_dir: Union[str, Path] = DEFAULT_CACHE_DIR,
    use_cache: bool = True,
    refresh: bool = False,
    refresh_artifacts: bool = False,
    progress: Optional[Callable[[SweepProgress], None]] = None,
    point_timeout: Optional[float] = None,
    max_retries: int = 2,
    registry=None,
    tracer=None,
) -> CampaignResult:
    """Run the full paper-figure grid; returns a :class:`CampaignResult`.

    Phase 1 pretrains (or reuses) one frozen artifact per trainable
    design; phase 2 fans the benchmarks x designs cells out through
    :class:`SweepRunner` supervision, each cell cloning its policy from
    the artifact.  Per-cell results are a pure function of
    (config, cell, artifact content), so they are bit-identical across
    benchmark orderings and ``jobs`` settings, and replay from the point
    cache on reruns.  ``registry`` additionally absorbs ``campaign.*``
    counters; ``tracer`` receives artifact build/reuse events (campaign
    category).
    """
    started = time.monotonic()
    artifacts = build_artifacts(
        spec, artifact_dir, refresh=refresh_artifacts, tracer=tracer
    )
    grid = CampaignGrid(config=spec.config, points=campaign_points(spec, artifacts))
    runner = SweepRunner(
        grid,
        jobs=jobs,
        cache_dir=cache_dir,
        use_cache=use_cache,
        refresh=refresh,
        progress=progress,
        point_timeout=point_timeout,
        max_retries=max_retries,
        registry=registry,
    )
    results = runner.run()
    result = CampaignResult(
        spec=spec,
        suite=merge_campaign(results),
        artifacts={
            design: {"path": str(path), "key": key, "built": built}
            for design, (path, key, built) in artifacts.items()
        },
        results=results,
        report=runner.report,
        elapsed_seconds=time.monotonic() - started,
    )
    counters = result.counters()
    if registry is not None:
        registry.ingest("campaign", counters)
    if tracer is not None:
        tracer.emit(
            0, "campaign", "complete",
            cells=int(counters["cells_total"]),
            executed=int(counters["cells_executed"]),
            cached=int(counters["cells_cached"]),
            quarantined=int(counters["cells_quarantined"]),
        )
    return result
