"""The integrated closed-loop simulator.

Assembles every substrate into the paper's evaluation platform:

* the cycle-level NoC (:mod:`repro.noc`) carries the traffic;
* at every control epoch (Table II / Section V-B: 1K cycles), per-router
  power is computed from the epoch's event counters (ORION model), fed
  into the thermal RC grid (HotSpot stand-in), whose temperatures drive
  the VARIUS timing-error probabilities injected on every channel;
* the fault-tolerant control policy observes the fresh per-router state,
  receives the reward ``1/(E2E_latency x Power)`` for its previous
  action, and picks each router's operation mode for the next epoch.

Phases follow Section V-B: a pre-training phase on synthetic traffic
(learning enabled), a warm-up period, then the measured testing phase
replaying an application trace until every message is delivered.
"""

from __future__ import annotations

import logging
import random
from typing import Callable, Dict, List, Optional, Protocol, Sequence

from repro.core.controller import ControlPolicy, ObservationGuard, compute_reward
from repro.core.modes import OperationMode, TmrModeBank
from repro.core.state import (
    DiscretizationConfig,
    RouterObservation,
    discretize_observation,
    observe_router,
)
from repro.faults.hardfaults import HardFaultModel, HardFaultSchedule
from repro.faults.injector import FaultInjector
from repro.faults.sensors import SensorFaultModel, parse_sensor_spec
from repro.faults.softerrors import SoftErrorModel, parse_soft_error_spec
from repro.faults.thermal import ThermalGrid
from repro.faults.varius import VariusModel
from repro.noc.network import Network
from repro.noc.packet import Packet
from repro.noc.routing import ROUTING_FUNCTIONS
from repro.noc.topology import MeshTopology, Port
from repro.noc.watchdog import ConservationError, NoCInvariantError
from repro.obs.metrics import MetricRegistry
from repro.power.orion import CorePowerParams, EnergyParams, RouterPowerModel
from repro.sim.config import SimulationConfig
from repro.sim.metrics import RunResult, StatsSnapshot
from repro.traffic.synthetic import SyntheticTraffic
from repro.traffic.trace import TraceRecord, TraceReplayer

__all__ = ["TrafficSource", "Simulator"]

logger = logging.getLogger("repro.sim.simulator")

#: After this many handled invariant trips the run is declared wedged and
#: the original exception propagates — safe mode is a degradation path,
#: not an infinite retry loop.
MAX_SAFE_MODE_TRIPS = 16


class TrafficSource(Protocol):
    """Anything that can offer packets cycle by cycle."""

    def packets_for_cycle(self, now: int) -> List[Packet]: ...


class Simulator:
    """One (design, platform) instance with its full control loop."""

    def __init__(
        self,
        config: SimulationConfig,
        policy: ControlPolicy,
        seed: int = 0,
        energy_params: Optional[EnergyParams] = None,
        core_params: Optional[CorePowerParams] = None,
        kernel: Optional[str] = None,
        tracer=None,
    ) -> None:
        self.config = config
        self.policy = policy
        self.seed = seed

        topology = MeshTopology(config.width, config.height)
        self.network = Network(
            topology,
            routing_fn=ROUTING_FUNCTIONS[config.routing],
            num_vcs=config.num_vcs,
            vc_depth=config.vc_depth,
            flit_bits=config.flit_bits,
            arq_capacity=config.arq_capacity,
            channel_latency=config.channel_latency,
            rng=random.Random(seed),
            error_severity=config.error_severity,
            routing_seed=seed,
            watchdog_interval=config.watchdog_interval,
            deadlock_cycles=config.deadlock_cycles,
            max_packet_age=config.max_packet_age,
            # Deliberately NOT part of SimulationConfig: both kernels are
            # bit-identical, and sweep-cache keys hash the config.
            kernel=kernel,
        )
        #: hard-fault campaign (None when config.fault_spec is empty)
        self.hard_faults: Optional[HardFaultModel] = None
        if config.fault_spec:
            schedule = HardFaultSchedule.parse(config.fault_spec)
            self.hard_faults = HardFaultModel(self.network, schedule)
            self.network.hard_faults = self.hard_faults
        self.varius = VariusModel(config.width, config.height, seed=config.varius_seed)
        self.thermal = ThermalGrid(
            config.width,
            config.height,
            t_ambient=config.t_ambient,
            alpha=config.thermal_alpha,
        )
        #: per-run metric registry; counters here (unlike the module
        #: globals they replace) reset with the simulator instance
        self.metrics = MetricRegistry()
        self._reward_guard_counter = self.metrics.counter("reward.guard_clamps")
        self.injector = FaultInjector(
            self.network,
            self.varius,
            voltage=config.voltage,
            error_scale=config.error_scale,
            registry=self.metrics,
        )
        params = energy_params if energy_params is not None else EnergyParams(clock_hz=config.clock_hz)
        self.power_model = RouterPowerModel(params)
        self.core_params = core_params if core_params is not None else CorePowerParams()
        self.state_config = DiscretizationConfig(num_vcs=config.num_vcs)

        #: sensor-fault campaign (None when config.sensor_spec is empty)
        self.sensors: Optional[SensorFaultModel] = None
        if config.sensor_spec:
            self.sensors = SensorFaultModel(
                parse_sensor_spec(config.sensor_spec),
                topology.num_nodes,
                seed=seed + 404,
            )
        #: consumer-side telemetry hardening (None when defenses are off)
        self.obs_guard: Optional[ObservationGuard] = None
        if config.sensor_defenses:
            self.obs_guard = ObservationGuard(
                topology.num_nodes,
                state_config=self.state_config,
                compact=config.compact_state,
                include_mode=config.include_mode_in_state,
                hold_ttl=config.sensor_hold_ttl,
                quarantine_after=config.sensor_quarantine_k,
                default_temperature=config.t_ambient,
            )
        #: epoch counter for hold TTLs and mode-switch debouncing; rides
        #: the checkpoint pickle so resumed runs continue the sequence
        self._epoch_index = 0
        #: epoch index of each router's last applied mode switch (for
        #: mode_hysteresis_epochs; the sentinel never debounces the first)
        self._last_mode_switch: List[int] = [-(1 << 30)] * topology.num_nodes

        self.policy.reset(topology.num_nodes)

        #: memory soft-error campaign (None when config.soft_error_spec
        #: is empty — in which case no storage attaches and the learned
        #: state stays a plain float table, bit-identical to before)
        self.soft_errors: Optional[SoftErrorModel] = None
        #: TMR'd mode registers (None when unprotected or upset-free)
        self.mode_bank: Optional[TmrModeBank] = None
        #: storages already escalated to safe mode by ECC quarantines
        self._ecc_escalated: set = set()
        if config.soft_error_spec:
            self.soft_errors = SoftErrorModel(
                parse_soft_error_spec(config.soft_error_spec),
                topology.num_nodes,
                seed=seed + 505,
            )
            self.policy.attach_q_storages(ecc=config.ecc_protect)
            if config.ecc_protect:
                self.mode_bank = TmrModeBank(topology.num_nodes)

        self._prev_obs: Optional[List[RouterObservation]] = None
        self._prev_actions: Optional[List[OperationMode]] = None
        self._last_epoch_latency = 1.0
        self._latency_snapshot = (0, 0)  # (count, total) at last epoch

        #: when set, every router is pinned to this mode at each epoch —
        #: used by the pre-training curriculum to collect off-policy
        #: experience under consistent network-wide behaviour
        self.forced_mode: Optional[OperationMode] = None

        # Measurement accumulators (active between begin/end measurement)
        self._measuring = False
        self._measured_dynamic_pj = 0.0
        self._measured_static_pj = 0.0
        self._measured_epochs = 0
        self._measured_temp_sum = 0.0
        self._measured_error_sum = 0.0
        self._measure_before: Optional[StatsSnapshot] = None

        #: structured log of handled watchdog trips (safe-mode entries)
        self.safe_mode_events: List[Dict[str, object]] = []
        #: routers the *simulator* pins to mode 3 because the policy
        #: could not handle the degradation itself
        self._safe_routers: set = set()

        #: run-local message-id sequence for simulator-injected traffic.
        #: Generators leave ``message_id`` to default to the process-global
        #: pid, which drifts between runs in one process; trace events
        #: reference messages by id, so injection stamps them from this
        #: counter instead (monotonic in creation order, exactly like
        #: pids, so ARQ heap tie-breaking is unchanged).
        self._next_message_id = 0

        #: optional repro.obs.TraceBuffer, propagated to the network
        self.tracer = None
        if tracer is not None:
            self.attach_tracer(tracer)

        # Prime the fault model with the initial (ambient) thermal state.
        self.injector.refresh(self.thermal.as_list())

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def attach_tracer(self, tracer) -> None:
        """Attach (or detach, with ``None``) an event tracer end-to-end."""
        self.tracer = tracer
        self.network.attach_tracer(tracer)

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    @staticmethod
    def restore_packet_counter(next_pid: Optional[int]) -> None:
        """Restore the process-global packet-id counter from a snapshot.

        :class:`~repro.noc.packet.Packet` ids are issued by a class-level
        counter that resets with the process; a resumed run must continue
        the interrupted process's sequence or freshly injected packets
        would collide with the ids the pickled in-flight packets carry
        (the NI keys its reassembly and ARQ state by pid / message_id).
        Never moves the counter backward past ids already issued in this
        process, so resuming next to other live simulations stays safe.
        """
        if next_pid is None:
            return
        Packet._next_pid = max(Packet._next_pid, int(next_pid))

    # ------------------------------------------------------------------
    # Guarded cycle: invariant trips degrade instead of crashing
    # ------------------------------------------------------------------
    def _cycle(self) -> None:
        """One network cycle; watchdog trips enter safe mode when enabled.

        Packet-conservation violations always propagate — they indicate a
        protocol bug, not congestion, and no mode change can repair lost
        accounting.  Deadlock/livelock trips degrade the implicated
        routers to mode 3 (timing relaxation), re-arm the watchdog, and
        keep the run alive, up to :data:`MAX_SAFE_MODE_TRIPS`.
        """
        try:
            self.network.cycle()
        except ConservationError:
            raise
        except NoCInvariantError as exc:
            if not self.config.safe_mode:
                raise
            if len(self.safe_mode_events) >= MAX_SAFE_MODE_TRIPS:
                raise
            self._enter_safe_mode(exc)

    def _enter_safe_mode(self, exc: NoCInvariantError) -> None:
        network = self.network
        implicated = sorted(
            {
                entry["router"]
                for entry in exc.report.get("stuck", [])
                if "router" in entry
            }
        ) or [router.id for router in network.routers]
        reason = f"{type(exc).__name__} at cycle {network.now}: {exc}"
        for router_id in implicated:
            if not self.policy.enter_safe_mode(router_id, reason):
                self._safe_routers.add(router_id)
            network.set_mode(router_id, OperationMode.MODE_3)
        self.safe_mode_events.append(
            {
                "cycle": network.now,
                "error": type(exc).__name__,
                "routers": implicated,
                "report": exc.report,
            }
        )
        logger.warning(
            "invariant trip handled: %s — %d router(s) degraded to mode 3",
            type(exc).__name__, len(implicated),
        )
        self.metrics.counter("watchdog.safe_mode_entries").inc()
        if self.tracer is not None:
            self.tracer.emit(
                network.now,
                "watchdog",
                "safe_mode",
                error=type(exc).__name__,
                routers=implicated,
            )
        if network.watchdog is not None:
            network.watchdog.rearm(network.now)

    # ------------------------------------------------------------------
    # Control epoch
    # ------------------------------------------------------------------
    def _router_power_watts(self, span: int) -> List[float]:
        """Per-router total power over the epoch (or partial span) ended."""
        config = self.config
        powers = []
        for router in self.network.routers:
            energy = self.power_model.epoch_energy(
                router.epoch,
                self.policy.profile,
                router.behaviour.ecc_enabled,
                span,
            )
            powers.append(
                RouterPowerModel.to_watts(energy.total_pj, span, config.clock_hz)
            )
            if self._measuring:
                self._measured_dynamic_pj += energy.dynamic_pj
                self._measured_static_pj += energy.static_pj
        return powers

    def _tile_power_watts(self, router_powers: Sequence[float], span: int) -> List[float]:
        tiles = []
        for router, router_w in zip(self.network.routers, router_powers):
            rate = router.epoch.core_activity_flits / span
            tiles.append(self.core_params.core_power(rate) + router_w)
        return tiles

    def _epoch_network_latency(self) -> float:
        acc = self.network.stats.latency
        count0, total0 = self._latency_snapshot
        count = acc.count - count0
        total = acc.total - total0
        self._latency_snapshot = (acc.count, acc.total)
        if count > 0:
            self._last_epoch_latency = total / count
        return self._last_epoch_latency

    def _channel_error_by_router(self) -> Dict[int, float]:
        sums: Dict[int, List[float]] = {}
        for (src, _port), p in self.injector.current.items():
            sums.setdefault(src, []).append(p)
        return {src: sum(ps) / len(ps) for src, ps in sums.items()}

    def _epoch_boundary(self, learn: bool, span: Optional[int] = None) -> None:
        config = self.config
        network = self.network
        span = config.epoch_cycles if span is None else span

        router_powers = self._router_power_watts(span)
        tile_powers = self._tile_power_watts(router_powers, span)
        temperatures = self.thermal.step(tile_powers)
        for router, temperature in zip(network.routers, temperatures):
            router.temperature = float(temperature)
        self.injector.refresh(temperatures)

        default_latency = self._epoch_network_latency()
        error_by_router = self._channel_error_by_router()
        tracer = self.tracer
        trace_sensor = tracer is not None and tracer.wants("sensor")
        m = self.metrics
        sensors = self.sensors
        obs_guard = self.obs_guard
        observations = []
        for router in network.routers:
            obs = observe_router(
                router,
                span,
                self.state_config,
                config.compact_state,
                config.include_mode_in_state,
            )
            obs.true_error_probability = error_by_router.get(router.id, 0.0)
            corrupted = False
            if sensors is not None:
                events = sensors.corrupt(obs, network.now)
                if events:
                    corrupted = True
                    for kind, _field_name in events:
                        m.counter("sensor.injected." + kind).inc()
            if obs_guard is not None:
                report = obs_guard.inspect(
                    router.id, int(router.mode), obs, self._epoch_index
                )
                if report.holds:
                    m.counter("sensor.holds").inc(report.holds)
                if report.clamps:
                    m.counter("sensor.clamps").inc(report.clamps)
                if report.defaults:
                    m.counter("sensor.defaults").inc(report.defaults)
                if report.rejected:
                    m.counter("sensor.rejected_observations").inc()
                    if trace_sensor:
                        tracer.emit(
                            network.now,
                            "sensor",
                            "reject",
                            subject=router.id,
                            holds=report.holds,
                            defaults=report.defaults,
                        )
                if report.quarantined:
                    m.counter("sensor.quarantines").inc()
                    reason = (
                        f"sensor quarantine: {obs_guard.quarantine_after} "
                        "consecutive rejected observations"
                    )
                    if not self.policy.enter_safe_mode(router.id, reason):
                        self._safe_routers.add(router.id)
                    logger.warning(
                        "router %d quarantined at cycle %d: %s",
                        router.id, network.now, reason,
                    )
                    if trace_sensor:
                        tracer.emit(
                            network.now, "sensor", "quarantine", subject=router.id
                        )
                if corrupted and not report.dirty:
                    # Surviving corruption (in-range stuck/noisy values the
                    # guard cannot distinguish from real readings) must
                    # still reach the policy through the discrete state.
                    obs.discrete = discretize_observation(
                        obs,
                        self.state_config,
                        compact=config.compact_state,
                        mode=int(router.mode) if config.include_mode_in_state else None,
                    )
            elif corrupted:
                # Defenses disabled: the controller consumes exactly what
                # the corrupted sensors report (this may raise — the
                # hardened path exists precisely to prevent that).
                obs.discrete = discretize_observation(
                    obs,
                    self.state_config,
                    compact=config.compact_state,
                    mode=int(router.mode) if config.include_mode_in_state else None,
                )
            observations.append(obs)

        guard = self._reward_guard_counter
        if learn and self._prev_obs is not None:
            for router, obs, prev, action in zip(
                network.routers, observations, self._prev_obs, self._prev_actions
            ):
                before = guard.value
                reward = compute_reward(
                    router.epoch.mean_delivered_latency(default_latency),
                    router_powers[router.id],
                    counter=guard,
                )
                if tracer is not None and guard.value != before:
                    tracer.emit(
                        network.now,
                        "reward",
                        "guard_clamp",
                        subject=router.id,
                        clamps=guard.value - before,
                    )
                self.policy.learn(router.id, prev, action, reward, obs)

        trace_rl = tracer is not None and tracer.wants("rl")
        hysteresis = config.mode_hysteresis_epochs
        pinned: set = set()
        if hysteresis:
            # Debouncing never delays a degradation: quarantined/safe
            # routers must reach the conservative mode immediately.
            pinned |= self._safe_routers
            pinned |= getattr(self.policy, "safe_mode_routers", set())
            if obs_guard is not None:
                pinned |= obs_guard.quarantined
        actions = []
        for router, obs in zip(network.routers, observations):
            if self.forced_mode is not None:
                mode = self.forced_mode
            else:
                mode = self.policy.select(router.id, obs)
                if trace_rl:
                    q = self.policy.q_values(router.id, obs.discrete)
                    tracer.emit(
                        network.now,
                        "rl",
                        "decision",
                        subject=router.id,
                        action=int(mode),
                        state=list(obs.discrete),
                        q_values=None if q is None else [float(v) for v in q],
                    )
                if (
                    hysteresis
                    and mode != router.mode
                    and router.id not in pinned
                    and self._epoch_index - self._last_mode_switch[router.id]
                    < hysteresis
                ):
                    # Debounce: a fresh switch holds for the hysteresis
                    # window, so a flapping sensor cannot thrash modes.
                    m.counter("sensor.debounced_switches").inc()
                    if trace_sensor:
                        tracer.emit(
                            network.now,
                            "sensor",
                            "debounce",
                            subject=router.id,
                            held=int(router.mode),
                            wanted=int(mode),
                        )
                    mode = router.mode
            if router.id in self._safe_routers:
                # The policy could not degrade itself; the simulator pins
                # the router to the conservative mode on its behalf.
                mode = OperationMode.MODE_3
            if mode != router.mode:
                self._last_mode_switch[router.id] = self._epoch_index
            network.set_mode(router.id, mode)
            actions.append(mode)
        self._prev_obs = observations
        self._prev_actions = actions
        self._epoch_index += 1

        if self.mode_bank is not None:
            # The TMR register bank latches the commanded modes; upsets
            # land in the copies, the datapath reads the majority.
            for router_id, mode in enumerate(actions):
                self.mode_bank.write(router_id, int(mode))
        if self.soft_errors is not None:
            self._soft_error_epoch(network.now)

        if self._measuring:
            self._measured_epochs += 1
            self._measured_temp_sum += float(sum(temperatures)) / len(temperatures)
            self._measured_error_sum += self.injector.mean_probability()

        self._record_epoch_metrics(span, default_latency, temperatures, router_powers)

        network.harvest_epoch_counters(span)
        network.reset_epoch_counters()

    def _soft_error_epoch(self, now: int) -> None:
        """Inject this epoch's SEUs, then scrub on the configured cadence.

        Runs at the very end of the epoch boundary, after the policy's
        mode writes: corruption lands *after* this epoch's decisions and
        influences the next one — unless the scrub repairs it first
        (``scrub_every=1`` repairs every single-bit upset before it can
        ever drive behaviour, which is exactly the defended contract the
        acceptance suite pins down).
        """
        m = self.metrics
        network = self.network
        storages = self.policy.q_storages()

        def flip_mode(router_id: int, bit: int, copy: int) -> None:
            if self.mode_bank is not None:
                self.mode_bank.upset(router_id, bit, copy)
            else:
                # Unprotected register: the upset drives the datapath
                # until the policy's next write overwrites it.
                current = int(network.routers[router_id].mode)
                network.set_mode(router_id, OperationMode(current ^ (1 << bit)))

        stats = self.soft_errors.inject(now, storages, flip_mode)
        for kind in ("qtable", "mode", "burst"):
            if stats[kind]:
                m.counter("softerror.injected." + kind).inc(stats[kind])
        if stats["words_single"]:
            m.counter("softerror.words_single").inc(stats["words_single"])
        if stats["words_multi"]:
            m.counter("softerror.words_multi").inc(stats["words_multi"])

        scrub_every = self.config.scrub_every
        if scrub_every and self._epoch_index % scrub_every == 0:
            self._scrub(now, storages)

    def _scrub(self, now: int, storages) -> None:
        """One scrub pass over every Q storage plus the TMR mode bank."""
        m = self.metrics
        tracer = self.tracer
        trace_ecc = tracer is not None and tracer.wants("ecc")
        corrected = detected = quarantined = 0
        per_router = len(storages) == len(self.network.routers)
        for index, storage in enumerate(storages):
            stats = storage.scrub()
            corrected += stats["corrected"]
            detected += stats["detected"]
            quarantined += stats["quarantined_rows"]
            if stats["quarantined_rows"] and trace_ecc:
                tracer.emit(
                    now,
                    "ecc",
                    "quarantine",
                    subject=index if per_router else None,
                    rows=stats["quarantined_rows"],
                )
            if (
                per_router
                and index not in self._ecc_escalated
                and storage.quarantined_rows >= storage.QUARANTINE_LIMIT
            ):
                # The router's learned table is being eaten faster than
                # it can relearn: degrade it to the safe mode (with a
                # shared table there is no single router to blame, so
                # escalation is per-router-agent only).
                self._ecc_escalated.add(index)
                reason = (
                    f"ECC quarantine: {storage.quarantined_rows} Q-table "
                    "rows lost to uncorrectable soft errors"
                )
                if not self.policy.enter_safe_mode(index, reason):
                    self._safe_routers.add(index)
                m.counter("ecc.safe_mode_entries").inc()
                logger.warning(
                    "router %d degraded at cycle %d: %s", index, now, reason
                )
        mode_votes = 0
        if self.mode_bank is not None:
            mode_votes = self.mode_bank.vote()
            for router in self.network.routers:
                value = self.mode_bank.read(router.id)
                if value != int(router.mode):
                    # Majority corrupted (two copies upset between
                    # writes): the register output drives the datapath.
                    self.network.set_mode(router.id, OperationMode(value))
        m.counter("ecc.scrubs").inc()
        if corrected:
            m.counter("ecc.corrected").inc(corrected)
            if trace_ecc:
                tracer.emit(now, "ecc", "corrected", count=corrected)
        if detected:
            m.counter("ecc.detected").inc(detected)
            if trace_ecc:
                tracer.emit(now, "ecc", "detected", count=detected)
        if quarantined:
            m.counter("ecc.quarantined_rows").inc(quarantined)
        if mode_votes:
            m.counter("ecc.mode_votes").inc(mode_votes)
        if trace_ecc:
            tracer.emit(
                now,
                "ecc",
                "scrub",
                corrected=corrected,
                detected=detected,
                quarantined=quarantined,
                votes=mode_votes,
            )

    def _record_epoch_metrics(
        self,
        span: int,
        mean_latency: float,
        temperatures: Sequence[float],
        router_powers: Sequence[float],
    ) -> None:
        """Fold this epoch into the registry and append a timeline row.

        Runs at epoch frequency only, touches no RNG, and reads the same
        aggregates the control loop already computed — so it cannot
        perturb simulation results (the bench digest gates enforce it).
        """
        m = self.metrics
        m.counter("epochs").inc()
        m.gauge("epoch.span").set(span)
        m.gauge("epoch.mean_latency").set(mean_latency)
        m.histogram("epoch.latency").record(mean_latency)
        m.gauge("epoch.mean_temperature").set(
            float(sum(temperatures)) / len(temperatures)
        )
        m.gauge("epoch.mean_error_probability").set(self.injector.mean_probability())
        m.gauge("epoch.mean_router_power_watts").set(
            sum(router_powers) / len(router_powers)
        )
        m.gauge("watchdog.safe_mode_trips").set(len(self.safe_mode_events))
        if self.network.watchdog is not None:
            m.gauge("watchdog.checks").set(self.network.watchdog.checks)
        m.ingest("net", self.network.stats.as_dict())
        m.snapshot_epoch(self.network.now)

    # ------------------------------------------------------------------
    # Phase drivers
    # ------------------------------------------------------------------
    def run(
        self,
        source: Optional[TrafficSource],
        cycles: int,
        learn: bool = True,
        time_origin: Optional[int] = None,
        checkpoint_every: int = 0,
        on_checkpoint: Optional[Callable[[int], None]] = None,
    ) -> None:
        """Advance a fixed number of cycles, injecting from ``source``.

        With ``checkpoint_every=N`` (and a callback), ``on_checkpoint``
        fires after every N completed cycles with the count of cycles
        done so far — the hook :mod:`repro.sim.checkpoint` uses to
        serialize the run.  The callback must not mutate simulation
        state, so a checkpointed run and a plain one are bit-identical.
        """
        network = self.network
        epoch = self.config.epoch_cycles
        origin = network.now if time_origin is None else time_origin
        for done in range(1, cycles + 1):
            if source is not None:
                for packet in source.packets_for_cycle(network.now - origin):
                    # Sources see trace-relative time; latency accounting
                    # needs the absolute injection timestamp.
                    packet.created_at = network.now
                    packet.message_id = self._next_message_id
                    self._next_message_id += 1
                    network.inject(packet)
            self._cycle()
            if network.now % epoch == 0:
                self._epoch_boundary(learn)
            if (
                checkpoint_every
                and on_checkpoint is not None
                and done % checkpoint_every == 0
            ):
                on_checkpoint(done)

    def run_cycles(
        self,
        source: Optional[TrafficSource],
        cycles: int,
        learn: bool = True,
        time_origin: Optional[int] = None,
    ) -> None:
        """Advance a fixed number of cycles, injecting from ``source``."""
        self.run(source, cycles, learn=learn, time_origin=time_origin)

    def run_until_drained(
        self,
        source: TrafficSource,
        source_exhausted,
        learn: bool = True,
        time_origin: Optional[int] = None,
        checkpoint_every: int = 0,
        on_checkpoint: Optional[Callable[[int], None]] = None,
    ) -> int:
        """Inject a finite source and run until every message delivers.

        ``source_exhausted`` is a zero-argument callable (the replayer's
        ``exhausted`` flag).  Returns the cycles the whole trace took —
        the execution-time metric of Fig. 7.
        """
        network = self.network
        epoch = self.config.epoch_cycles
        origin = network.now if time_origin is None else time_origin
        start = network.now
        done = 0
        while not (source_exhausted() and network.quiescent):
            for packet in source.packets_for_cycle(network.now - origin):
                packet.created_at = network.now
                packet.message_id = self._next_message_id
                self._next_message_id += 1
                network.inject(packet)
            self._cycle()
            if network.now % epoch == 0:
                self._epoch_boundary(learn)
            if network.now - start > self.config.max_drain_cycles:
                raise RuntimeError(
                    "trace failed to drain within max_drain_cycles "
                    f"({self.config.max_drain_cycles})"
                )
            done += 1
            if (
                checkpoint_every
                and on_checkpoint is not None
                and done % checkpoint_every == 0
            ):
                on_checkpoint(done)
        return network.now - start

    # ------------------------------------------------------------------
    # Paper phases
    # ------------------------------------------------------------------
    def pretrain(self, cycles: Optional[int] = None) -> None:
        """Section V-B pre-training on synthetic traffic.

        The synthetic phase sweeps three load levels (light, nominal,
        heavy) so the learning policies visit the cool/quiet *and*
        hot/error-prone regions of the Table I state space before any
        application trace runs — the role the paper's 1M-cycle synthetic
        phase plays at full scale.

        Within each load level, the first part of the segment is a
        *curriculum*: the whole mesh is pinned to each operation mode in
        turn, so the (off-policy) Q-learning updates sample every action
        under consistent network-wide behaviour.  Without this, epsilon-
        greedy exploration in a shortened run cannot separate an action's
        effect from the congestion caused by 63 other exploring routers.
        The remainder of each segment runs free epsilon-greedy control.
        """
        cycles = self.config.pretrain_cycles if cycles is None else cycles
        if cycles <= 0 or not self.policy.trainable:
            return
        base = self.config.pretrain_injection_rate
        segments = [0.6 * base, base, 2.2 * base]
        span = cycles // len(segments)
        curriculum_share = 0.6
        forced_span = int(span * curriculum_share) // len(OperationMode)
        for i, rate in enumerate(segments):
            source = SyntheticTraffic(
                self.network.topology,
                pattern=self.config.pretrain_pattern,
                injection_rate=min(rate, 1.0),
                packet_size=self.config.packet_size,
                flit_bits=self.config.flit_bits,
                rng=random.Random(self.seed + 101 + i),
            )
            free_span = span - forced_span * len(OperationMode)
            for mode in OperationMode:
                self.forced_mode = mode
                self.run_cycles(source, forced_span, learn=True)
            self.forced_mode = None
            self.run_cycles(source, free_span, learn=True)
        # Let in-flight pretraining packets drain before the next phase.
        self.drain_epochs()

    def drain_epochs(self, learn: bool = True) -> None:
        """Run (with epoch boundaries) until no message is outstanding."""
        while not self.network.quiescent:
            self._cycle()
            if self.network.now % self.config.epoch_cycles == 0:
                self._epoch_boundary(learn=learn)

    def warmup(self, cycles: Optional[int] = None) -> None:
        """Section V-B warm-up period (no measurement)."""
        cycles = self.config.warmup_cycles if cycles is None else cycles
        if cycles <= 0:
            return
        source = SyntheticTraffic(
            self.network.topology,
            pattern=self.config.pretrain_pattern,
            injection_rate=self.config.pretrain_injection_rate,
            packet_size=self.config.packet_size,
            flit_bits=self.config.flit_bits,
            rng=random.Random(self.seed + 202),
        )
        self.run_cycles(source, cycles, learn=True)

    def make_replayer(self, records: List[TraceRecord]) -> TraceReplayer:
        """The measurement-phase trace replayer (seeded per Section V-B)."""
        return TraceReplayer(
            records,
            self.network.topology,
            flit_bits=self.config.flit_bits,
            rng=random.Random(self.seed + 303),
        )

    def begin_measurement(self) -> None:
        """Arm the measurement window: snapshot stats, zero accumulators."""
        self._measure_before = StatsSnapshot(self.network.stats)
        self._measuring = True
        self._measured_dynamic_pj = 0.0
        self._measured_static_pj = 0.0
        self._measured_epochs = 0
        self._measured_temp_sum = 0.0
        self._measured_error_sum = 0.0

    def measure_trace(self, records: List[TraceRecord], benchmark: str) -> RunResult:
        """The measured testing phase: replay a trace to completion."""
        replayer = self.make_replayer(records)
        self.begin_measurement()
        execution = self.run_until_drained(
            replayer, lambda: replayer.exhausted, learn=True
        )
        return self.finish_measurement(benchmark, execution)

    def finish_measurement(self, benchmark: str, execution: int) -> RunResult:
        """Close the measurement window and assemble the RunResult."""
        partial = self.network.now % self.config.epoch_cycles
        if partial:
            # Fold the final partial epoch into the measurement window.
            self._epoch_boundary(learn=True, span=partial)

        self._measuring = False
        after = StatsSnapshot(self.network.stats)
        window = self._measure_before.delta(after)
        epochs = max(self._measured_epochs, 1)
        return RunResult(
            design=self.policy.name,
            benchmark=benchmark,
            execution_cycles=execution,
            mean_latency=window["mean_latency"],
            packets_delivered=int(window["packets_delivered"]),
            flits_delivered=int(window["flits_delivered"]),
            packet_retransmissions=int(window["packet_retransmissions"]),
            flit_retransmissions=int(window["flit_retransmissions"]),
            corrected_errors=int(window["corrected_errors"]),
            escaped_errors=int(window["escaped_errors"]),
            silent_corruptions=int(window["silent_corruptions"]),
            duplicate_flits=int(window["duplicate_flits"]),
            dynamic_energy_pj=self._measured_dynamic_pj,
            static_energy_pj=self._measured_static_pj,
            clock_hz=self.config.clock_hz,
            mode_cycles=window["mode_cycles"],
            mean_temperature=self._measured_temp_sum / epochs,
            mean_error_probability=self._measured_error_sum / epochs,
            messages_created=int(window["messages_created"]),
            messages_dropped=int(window["messages_dropped"]),
            reroutes=int(window["reroutes"]),
            fault_recoveries=int(window["fault_recoveries"]),
            unreachable_drops=int(window["unreachable_drops"]),
            post_fault_latency=(
                self.hard_faults.post_fault_latency
                if self.hard_faults is not None
                else 0.0
            ),
            safe_mode_entries=int(
                self.metrics.peek("watchdog.safe_mode_entries")
                + self.metrics.peek("sensor.quarantines")
                + self.metrics.peek("ecc.safe_mode_entries")
            ),
            rejected_observations=int(
                self.metrics.peek("sensor.rejected_observations")
            ),
            sensor_holds=int(self.metrics.peek("sensor.holds")),
            sensor_clamps=int(self.metrics.peek("sensor.clamps")),
            mode_switches=sum(r.mode_switches for r in self.network.routers),
        )
