"""Figs 6-10 campaign reports: normalized per-benchmark + geomean tables.

Turns a campaign's merged {benchmark: {design: RunResult}} grid into the
normalized tables the paper's headline figures plot — retransmissions
(Fig 6), execution speed-up (Fig 7), end-to-end latency (Fig 8), energy
efficiency (Fig 9), and dynamic power (Fig 10) — every value normalized
to the CRC baseline and geomean-averaged across benchmarks, using the
same ``normalize_to_baseline`` / ``geometric_mean`` helpers (and the
same metric conventions, e.g. Laplace-smoothed retransmission counts)
as the ``benchmarks/`` figure suite, so the one-command ``repro
campaign`` output and the pytest-benchmark harness can never disagree.

The JSON form is schema-versioned (:data:`REPORT_SCHEMA`) so CI digest
gates can pin its shape; the Markdown form matches EXPERIMENTS.md's
headline tables.  Undefined cells (a zero baseline, a quarantined cell)
come out as ``None`` in JSON and ``n/a`` in Markdown — never as a
silent 0.0.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence

from repro.sim.experiment import geometric_mean, normalize_to_baseline
from repro.sim.metrics import RunResult

__all__ = [
    "REPORT_SCHEMA",
    "FIGURES",
    "campaign_report",
    "render_report_markdown",
]

#: Bump when the report JSON shape changes (CI gates pin this).
REPORT_SCHEMA = 1


def _retransmissions(result: RunResult) -> float:
    # +1 Laplace smoothing, exactly as benchmarks/bench_fig6 does: a
    # zero-retransmission baseline cell would otherwise make the whole
    # column's ratios undefined.
    return float(result.retransmission_events + 1)


#: The five headline figures: (key, title, metric, direction, invert).
#: ``direction`` says how to read the reported ratio ("lower" = below
#: 1.0 beats CRC); ``invert`` reports the reciprocal of the normalized
#: metric (Fig 7 plots speed-UP, i.e. crc_cycles / design_cycles).
FIGURES = (
    ("fig6", "Retransmissions", _retransmissions, "lower", False),
    ("fig7", "Execution speed-up", lambda r: float(r.execution_cycles), "higher", True),
    ("fig8", "End-to-end latency", lambda r: r.mean_latency, "lower", False),
    ("fig9", "Energy efficiency", lambda r: r.energy_efficiency, "higher", False),
    ("fig10", "Dynamic power", lambda r: r.dynamic_power_watts, "lower", False),
)


def _figure_ratios(
    results: Dict[str, RunResult],
    metric: Callable[[RunResult], float],
    invert: bool,
    baseline: str,
) -> Dict[str, float]:
    ratios = normalize_to_baseline(results, metric, baseline=baseline)
    if not invert:
        return ratios
    return {
        design: (1.0 / value if value and math.isfinite(value) else float("nan"))
        for design, value in ratios.items()
    }


def campaign_report(
    suite: Dict[str, Dict[str, RunResult]],
    baseline: str = "crc",
    designs: Optional[Sequence[str]] = None,
) -> Dict[str, object]:
    """Normalized Figs 6-10 tables for a campaign grid.

    ``suite`` is ``run_campaign``/``run_parsec_suite``'s
    {benchmark: {design: RunResult}} shape.  Benchmarks missing the
    baseline design (e.g. a quarantined cell) are dropped from every
    figure with per-design ``None`` placeholders kept out of the
    geomean.  Non-finite ratios serialize as ``None`` — valid JSON, and
    loudly absent rather than silently zero.
    """
    benchmarks = sorted(suite)
    if designs is None:
        seen: List[str] = []
        for results in suite.values():
            for design in results:
                if design not in seen:
                    seen.append(design)
        designs = seen
    designs = list(designs)

    figures: Dict[str, object] = {}
    for key, title, metric, direction, invert in FIGURES:
        per_benchmark: Dict[str, Dict[str, Optional[float]]] = {}
        columns: Dict[str, List[float]] = {design: [] for design in designs}
        for benchmark in benchmarks:
            results = suite[benchmark]
            if baseline not in results:
                continue
            ratios = _figure_ratios(results, metric, invert, baseline)
            row: Dict[str, Optional[float]] = {}
            for design in designs:
                value = ratios.get(design, float("nan"))
                row[design] = value if math.isfinite(value) else None
                if design in ratios:
                    columns[design].append(ratios[design])
            per_benchmark[benchmark] = row
        geomean: Dict[str, Optional[float]] = {}
        for design in designs:
            value = geometric_mean(columns[design])
            geomean[design] = value if math.isfinite(value) else None
        figures[key] = {
            "title": title,
            "direction": direction,
            "per_benchmark": per_benchmark,
            "geomean": geomean,
        }

    return {
        "schema": REPORT_SCHEMA,
        "baseline": baseline,
        "benchmarks": benchmarks,
        "designs": designs,
        "figures": figures,
    }


def _cell(value: Optional[float]) -> str:
    return f"{value:.3f}" if value is not None else "n/a"


def render_report_markdown(report: Dict[str, object]) -> str:
    """Markdown tables for a :func:`campaign_report` dict.

    One headline geomean table (a row per figure), then a per-benchmark
    table per figure — the shape EXPERIMENTS.md embeds.
    """
    designs: List[str] = list(report["designs"])
    baseline = report["baseline"]
    header = "| " + " | ".join([""] + designs) + " |"
    rule = "|" + "---|" * (len(designs) + 1)

    lines: List[str] = []
    lines.append(
        f"Normalized to the `{baseline}` baseline; geomean across "
        f"{len(report['benchmarks'])} benchmark(s)."
    )
    lines.append("")
    lines.append("| Figure | Direction | " + " | ".join(designs) + " |")
    lines.append("|" + "---|" * (len(designs) + 2))
    for key, figure in report["figures"].items():
        arrow = "better <1" if figure["direction"] == "lower" else "better >1"
        cells = " | ".join(_cell(figure["geomean"].get(d)) for d in designs)
        lines.append(f"| {figure['title']} ({key}) | {arrow} | {cells} |")
    for key, figure in report["figures"].items():
        lines.append("")
        lines.append(f"### {figure['title']} ({key}, normalized to `{baseline}`)")
        lines.append("")
        lines.append(header)
        lines.append(rule)
        for benchmark in report["benchmarks"]:
            row = figure["per_benchmark"].get(benchmark)
            if row is None:
                continue
            cells = " | ".join(_cell(row.get(d)) for d in designs)
            lines.append(f"| {benchmark} | {cells} |")
        cells = " | ".join(_cell(figure["geomean"].get(d)) for d in designs)
        lines.append(f"| **geomean** | {cells} |")
    lines.append("")
    return "\n".join(lines)
