"""Simulation configuration, including the paper's Table II parameters."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

__all__ = ["SimulationConfig", "paper_config", "scaled_config"]


@dataclass(frozen=True)
class SimulationConfig:
    """Everything needed to build one simulation instance.

    The defaults reproduce Table II: an 8x8 2D mesh of 4-stage routers
    with XY routing, 4 VCs per port, 128-bit flits, 4-flit packets, at
    1.0 V and 2.0 GHz in 32 nm; the RL temporal-difference rule is
    applied every 1K cycles, after 1M pre-training and 300K warm-up
    cycles of synthetic traffic (Section V-B).
    """

    # Topology / router microarchitecture (Table II)
    width: int = 8
    height: int = 8
    num_vcs: int = 4
    vc_depth: int = 4
    flit_bits: int = 128
    packet_size: int = 4
    routing: str = "xy"
    channel_latency: int = 1
    arq_capacity: int = 8

    # Electrical operating point (Table II)
    clock_hz: float = 2.0e9
    voltage: float = 1.0

    # Control-loop phases (Section V-B)
    epoch_cycles: int = 1000
    pretrain_cycles: int = 1_000_000
    warmup_cycles: int = 300_000

    # Fault model
    error_scale: float = 1.0
    error_severity: Tuple[float, float, float] = (0.33, 0.47, 0.20)
    varius_seed: int = 1

    # Thermal model
    t_ambient: float = 45.0
    thermal_alpha: float = 0.25

    # RL state encoding (see repro.core.state: compact vs full Table I,
    # and the Markov-completing current-mode feature)
    compact_state: bool = True
    include_mode_in_state: bool = True

    # Traffic / pretraining
    pretrain_pattern: str = "uniform"
    pretrain_injection_rate: float = 0.015

    # Safety valve for drain loops
    max_drain_cycles: int = 2_000_000

    # Hard faults / runtime invariants.  ``fault_spec`` is the campaign
    # spec string of repro.faults.hardfaults ("" = healthy baseline); the
    # watchdog knobs gate the conservation/deadlock/livelock checks
    # (watchdog_interval=0 disables them entirely).
    fault_spec: str = ""
    watchdog_interval: int = 256
    deadlock_cycles: int = 4096
    max_packet_age: int = 500_000
    #: Graceful degradation: when a deadlock/livelock watchdog trips
    #: mid-epoch, pin the implicated routers to mode 3 (timing
    #: relaxation) and keep running instead of crashing the simulation.
    #: Conservation violations always raise regardless of this flag.
    safe_mode: bool = True

    # Sensor faults / control-plane hardening.  ``sensor_spec`` is the
    # telemetry-corruption campaign of repro.faults.sensors ("" = healthy
    # sensor bank).  The defenses sit between observe_router and the
    # policy: last-good hold within ``sensor_hold_ttl`` epochs, per-router
    # quarantine into the safe-mode fallback after ``sensor_quarantine_k``
    # consecutive rejected observations, and mode-switch debouncing that
    # keeps a router's mode for ``mode_hysteresis_epochs`` epochs after a
    # switch (0 = off, the behavior-identical default).
    sensor_spec: str = ""
    sensor_defenses: bool = True
    sensor_hold_ttl: int = 3
    sensor_quarantine_k: int = 8
    mode_hysteresis_epochs: int = 0

    # Memory soft errors / ECC scrubbing.  ``soft_error_spec`` is the SEU
    # campaign of repro.faults.softerrors ("" = upset-free SRAM).  With
    # ``ecc_protect`` (the default) Q-tables are stored as SECDED
    # codewords and mode registers are TMR'd; a scrub pass every
    # ``scrub_every`` epochs (0 = never) corrects single-bit errors,
    # quarantines uncorrectable rows, and majority-votes the mode
    # copies.  ``ecc_protect=False`` is the deliberately unprotected
    # strawman (CLI ``--no-ecc``) whose degradation the acceptance tests
    # pin down.  Storage attaches only when ``soft_error_spec`` is
    # non-empty, so healthy-run behavior is bit-identical to before.
    soft_error_spec: str = ""
    ecc_protect: bool = True
    scrub_every: int = 1

    def __post_init__(self) -> None:
        if self.width < 2 or self.height < 2:
            raise ValueError("mesh must be at least 2x2")
        if self.epoch_cycles < 1:
            raise ValueError("epoch must span at least one cycle")
        if self.packet_size < 1:
            raise ValueError("packets need at least one flit")
        if self.routing not in ("xy", "yx", "o1turn", "adaptive"):
            raise ValueError(f"unknown routing {self.routing!r}")
        if self.watchdog_interval < 0:
            raise ValueError("watchdog_interval cannot be negative")
        if self.sensor_hold_ttl < 1:
            raise ValueError("sensor_hold_ttl must be at least one epoch")
        if self.sensor_quarantine_k < 1:
            raise ValueError("sensor_quarantine_k must be at least 1")
        if self.mode_hysteresis_epochs < 0:
            raise ValueError("mode_hysteresis_epochs cannot be negative")
        if self.scrub_every < 0:
            raise ValueError("scrub_every cannot be negative")

    @property
    def num_nodes(self) -> int:
        return self.width * self.height


def paper_config() -> SimulationConfig:
    """The full Table II configuration (expensive in pure Python)."""
    return SimulationConfig()


def scaled_config(
    epoch_cycles: int = 500,
    pretrain_cycles: int = 40_000,
    warmup_cycles: int = 4_000,
    **overrides,
) -> SimulationConfig:
    """Table II topology with shortened control-loop phases.

    The default scaled phases keep the same structure (pre-train ->
    warm-up -> test) at ~1/25 the paper's cycle counts, which the
    benches use to finish in minutes; a scaling sanity bench checks the
    relative results are stable under 2x longer phases.
    """
    return replace(
        SimulationConfig(),
        epoch_cycles=epoch_cycles,
        pretrain_cycles=pretrain_cycles,
        warmup_cycles=warmup_cycles,
        **overrides,
    )
