"""Integrated simulation harness: config, closed-loop sim, experiments."""

from repro.sim.checkpoint import (
    CheckpointError,
    ResumableRun,
    load_checkpoint,
    read_checkpoint_meta,
    save_checkpoint,
)
from repro.sim.config import SimulationConfig, paper_config, scaled_config
from repro.sim.experiment import (
    DESIGN_ORDER,
    compare_designs,
    default_design_factories,
    geometric_mean,
    normalize_to_baseline,
    pretrain_policy,
    run_design_on_trace,
    run_parsec_suite,
    synthesize_benchmark_trace,
)
from repro.sim.metrics import RunResult, StatsSnapshot
from repro.sim.simulator import Simulator
from repro.sim.sweep import (
    PointResult,
    SweepCache,
    SweepPoint,
    SweepProgress,
    SweepReport,
    SweepRunner,
    SweepSpec,
    merge_suite,
    merge_trace_grid,
    normalized_tables,
    point_cache_key,
    run_sweep_point,
    stderr_progress,
)

__all__ = [
    "SimulationConfig",
    "paper_config",
    "scaled_config",
    "CheckpointError",
    "ResumableRun",
    "load_checkpoint",
    "read_checkpoint_meta",
    "save_checkpoint",
    "DESIGN_ORDER",
    "compare_designs",
    "default_design_factories",
    "geometric_mean",
    "normalize_to_baseline",
    "pretrain_policy",
    "run_design_on_trace",
    "run_parsec_suite",
    "synthesize_benchmark_trace",
    "RunResult",
    "StatsSnapshot",
    "Simulator",
    "PointResult",
    "SweepCache",
    "SweepPoint",
    "SweepProgress",
    "SweepReport",
    "SweepRunner",
    "SweepSpec",
    "merge_suite",
    "merge_trace_grid",
    "normalized_tables",
    "point_cache_key",
    "run_sweep_point",
    "stderr_progress",
]
