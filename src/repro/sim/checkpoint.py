"""Crash-resilient checkpoint/resume for long simulation runs.

A multi-hour RL training run that evaporates on the first SIGKILL is not
a production harness.  This module makes the full ``run`` pipeline
(pre-train -> warm-up -> measured trace replay) durable:

* **Container format** — a checkpoint file is ``MAGIC | header-length |
  JSON header | pickle body``.  The header carries the format version, a
  CRC32 over the body, and human-readable metadata (design, benchmark,
  cycle), so tooling can inspect a snapshot without unpickling it and a
  torn or bit-rotted file is rejected loudly instead of resuming
  garbage.  Writes are atomic (unique tmp + ``os.replace``), so a kill
  mid-write never corrupts the previous snapshot.

* **Bit-identical resume** — the body pickles the entire
  :class:`~repro.sim.simulator.Simulator` object graph (network buffers,
  in-flight flits, RNG states, Q-tables, thermal state) plus the active
  traffic source and the run-plan cursor.  Because serialization never
  mutates state and restores it exactly, a run that is killed and
  resumed produces the same final metrics, bit for bit, as one that was
  never interrupted — the determinism contract the integration tests
  pin down.

* **Validated Q-state** — alongside the pickle, the policy's learned
  state is stored through ``ControlPolicy.to_state`` and re-loaded
  through ``load_state`` on resume, which routes every Q-table through
  :meth:`QLearningAgent.from_state` validation.  A table with NaN/inf
  entries or a wrong action count does not crash the resume: the
  affected router is pinned to safe mode (mode 3, timing relaxation)
  and the degradation is logged.

The run plan mirrors ``Simulator.pretrain`` / ``warmup`` /
``measure_trace`` exactly — same segment spans, same RNG seeds, same
epoch-boundary cadence — so ``ResumableRun`` with no checkpointing is
byte-equivalent to the classic ``repro run`` pipeline.
"""

from __future__ import annotations

import dataclasses
import json
import logging
import os
import pickle
import random
import struct
import uuid
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.modes import OperationMode
from repro.noc.network import resolve_kernel
from repro.noc.packet import Packet
from repro.sim.config import SimulationConfig
from repro.sim.experiment import (
    default_design_factories,
    synthesize_benchmark_trace,
)
from repro.sim.metrics import RunResult
from repro.sim.simulator import Simulator
from repro.traffic.synthetic import SyntheticTraffic

__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "ARTIFACT_VERSION",
    "CheckpointError",
    "save_checkpoint",
    "load_checkpoint",
    "read_checkpoint_meta",
    "save_policy_artifact",
    "load_policy_artifact",
    "read_policy_artifact_meta",
    "ResumableRun",
]

logger = logging.getLogger("repro.sim.checkpoint")

CHECKPOINT_MAGIC = b"RNOCCKPT"
#: Version 2: the pickled object graph gained the activity-driven kernel
#: state (active-set registries, skip-sampler gap countdowns, the O(1)
#: outstanding-message counter) and reshaped several slotted hot classes
#: — version-1 bodies cannot restore into this build, so they are
#: rejected by the header check instead of failing deep in pickle.
#: Version 3: the simulator gained the degraded-telemetry control plane
#: (sensor-fault model countdowns, observation-guard hold/quarantine
#: state, the epoch index and per-router mode-switch debounce clocks) —
#: version-2 bodies would restore into a simulator missing those
#: attributes and die at the first epoch boundary.
#: Version 4: the simulator gained the memory soft-error subsystem (SEU
#: model one-shot flags and master RNG, SECDED Q-table storages with
#: codeword tables and dirty sets, the TMR mode-register bank, ECC
#: escalation state) and the metric registry's instruments grew a
#: non-finite guard backref — version-3 bodies would restore into
#: objects missing those attributes and die at the first epoch boundary
#: or scrub pass.
CHECKPOINT_VERSION = 4

#: Pretrained-policy campaign artifacts share the container format but
#: version independently: an artifact body is a ``ControlPolicy.to_state``
#: snapshot, not a pickled Simulator graph, so simulator reshapes that
#: bump CHECKPOINT_VERSION do not invalidate artifacts (and vice versa).
#: Version 1: {"state": <policy.to_state()>} bodies.
ARTIFACT_VERSION = 1

_HEADER_LEN = struct.Struct("<I")


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, torn, corrupt, or incompatible."""


def save_checkpoint(
    path: Union[str, Path],
    payload: object,
    meta: Dict[str, object],
    version: int = CHECKPOINT_VERSION,
) -> Path:
    """Atomically write a versioned, CRC-guarded checkpoint.

    The body is pickled ``payload``; ``meta`` must be JSON-serializable
    and is readable later via :func:`read_checkpoint_meta` without
    touching the pickle.  The write goes to a uniquely-named temp file
    first and is published with ``os.replace``, so a crash mid-write
    leaves any previous checkpoint intact.  ``version`` defaults to the
    run-snapshot format; other container users (campaign artifacts)
    stamp their own version so readers reject foreign bodies cleanly.
    """
    path = Path(path)
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    header = json.dumps(
        {
            "version": version,
            "crc32": zlib.crc32(body) & 0xFFFFFFFF,
            "body_bytes": len(body),
            "meta": meta,
        },
        sort_keys=True,
    ).encode("utf-8")
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.{uuid.uuid4().hex}.tmp")
    try:
        with tmp.open("wb") as handle:
            handle.write(CHECKPOINT_MAGIC)
            handle.write(_HEADER_LEN.pack(len(header)))
            handle.write(header)
            handle.write(body)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # pragma: no cover - only on a failed write
            tmp.unlink()
    return path


def _read_container(
    path: Union[str, Path], version: int = CHECKPOINT_VERSION
) -> Tuple[Dict[str, object], bytes]:
    path = Path(path)
    try:
        blob = path.read_bytes()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from None
    if len(blob) < len(CHECKPOINT_MAGIC) + _HEADER_LEN.size:
        raise CheckpointError(f"{path} is truncated (not a checkpoint)")
    if not blob.startswith(CHECKPOINT_MAGIC):
        raise CheckpointError(f"{path} is not a repro checkpoint (bad magic)")
    offset = len(CHECKPOINT_MAGIC)
    (header_len,) = _HEADER_LEN.unpack_from(blob, offset)
    offset += _HEADER_LEN.size
    if offset + header_len > len(blob):
        raise CheckpointError(f"{path} is truncated (header cut short)")
    try:
        header = json.loads(blob[offset:offset + header_len].decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise CheckpointError(f"{path} has a corrupt header: {exc}") from None
    found = header.get("version")
    if found != version:
        raise CheckpointError(
            f"{path} is checkpoint version {found!r}; this reader expects "
            f"version {version}"
        )
    body = blob[offset + header_len:]
    if len(body) != header.get("body_bytes"):
        raise CheckpointError(
            f"{path} is truncated: body is {len(body)} bytes, header "
            f"promises {header.get('body_bytes')}"
        )
    if (zlib.crc32(body) & 0xFFFFFFFF) != header.get("crc32"):
        raise CheckpointError(f"{path} failed its CRC check (corrupt body)")
    return header, body


def read_checkpoint_meta(
    path: Union[str, Path], version: int = CHECKPOINT_VERSION
) -> Dict[str, object]:
    """Validate the container and return the JSON metadata only."""
    header, _ = _read_container(path, version=version)
    return dict(header.get("meta", {}))


def load_checkpoint(
    path: Union[str, Path], version: int = CHECKPOINT_VERSION
) -> Tuple[object, Dict[str, object]]:
    """Validate and unpickle a checkpoint; returns (payload, meta)."""
    header, body = _read_container(path, version=version)
    try:
        payload = pickle.loads(body)
    except Exception as exc:  # pickle raises a zoo of types
        raise CheckpointError(f"{path} body failed to unpickle: {exc}") from None
    return payload, dict(header.get("meta", {}))


# ----------------------------------------------------------------------
# Pretrained-policy campaign artifacts
# ----------------------------------------------------------------------
def save_policy_artifact(
    path: Union[str, Path], state: Dict[str, object], meta: Dict[str, object]
) -> Path:
    """Persist a frozen policy snapshot as a campaign artifact.

    Same atomic, CRC-guarded container as run checkpoints, stamped with
    :data:`ARTIFACT_VERSION`; ``state`` is a ``ControlPolicy.to_state``
    snapshot and ``meta`` should carry the campaign's content key so
    readers can verify they got the artifact they asked for.
    """
    return save_checkpoint(path, {"state": state}, meta, version=ARTIFACT_VERSION)


def load_policy_artifact(
    path: Union[str, Path],
) -> Tuple[Dict[str, object], Dict[str, object]]:
    """Validate an artifact and return ``(policy_state, meta)``."""
    payload, meta = load_checkpoint(path, version=ARTIFACT_VERSION)
    if not isinstance(payload, dict) or "state" not in payload:
        raise CheckpointError(f"{path} is not a policy artifact")
    return payload["state"], meta


def read_policy_artifact_meta(path: Union[str, Path]) -> Dict[str, object]:
    """Validate an artifact container and return its metadata only."""
    return read_checkpoint_meta(path, version=ARTIFACT_VERSION)


# ----------------------------------------------------------------------
# The resumable run plan
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Segment:
    """One deterministic slice of the run plan.

    ``new_source`` is ``(pattern, injection_rate, rng_seed)`` when the
    segment starts a fresh synthetic source (shared by the following
    segments until replaced); ``None`` keeps the current source.
    """

    phase: str  # pretrain | drain | freeze | warmup | measure
    cycles: int = 0
    forced_mode: Optional[int] = None
    new_source: Optional[Tuple[str, float, int]] = None


def _plan_segments(
    config: SimulationConfig, trainable: bool
) -> List[_Segment]:
    """The full run plan; mirrors Simulator.pretrain/warmup exactly."""
    segments: List[_Segment] = []
    cycles = config.pretrain_cycles
    if cycles > 0 and trainable:
        base = config.pretrain_injection_rate
        rates = [0.6 * base, base, 2.2 * base]
        span = cycles // len(rates)
        curriculum_share = 0.6
        forced_span = int(span * curriculum_share) // len(OperationMode)
        free_span = span - forced_span * len(OperationMode)
        for i, rate in enumerate(rates):
            source = (config.pretrain_pattern, min(rate, 1.0), 101 + i)
            for mode in OperationMode:
                segments.append(
                    _Segment(
                        "pretrain", forced_span, forced_mode=int(mode),
                        new_source=source,
                    )
                )
                source = None
            segments.append(_Segment("pretrain", free_span))
        segments.append(_Segment("drain"))
    segments.append(_Segment("freeze"))
    if config.warmup_cycles > 0:
        segments.append(
            _Segment(
                "warmup",
                config.warmup_cycles,
                new_source=(
                    config.pretrain_pattern,
                    config.pretrain_injection_rate,
                    202,
                ),
            )
        )
    segments.append(_Segment("measure"))
    return segments


class ResumableRun:
    """One checkpointable (design, benchmark) measurement run.

    Drives the same phase pipeline as ``repro run`` through an explicit
    segment cursor, snapshotting the whole simulation every
    ``checkpoint_every`` cycles (and at every segment boundary) when a
    ``checkpoint_path`` is set.  :meth:`resume` restores a snapshot and
    continues to the same final :class:`RunResult` an uninterrupted run
    produces.
    """

    def __init__(
        self,
        config: SimulationConfig,
        design: str,
        benchmark: str,
        seed: int = 0,
        trace_cycles: int = 3_000,
        checkpoint_path: Optional[Union[str, Path]] = None,
        checkpoint_every: int = 0,
    ) -> None:
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every cannot be negative")
        self.config = config
        self.design = design
        self.benchmark = benchmark
        self.seed = seed
        self.trace_cycles = trace_cycles
        self.checkpoint_path = (
            Path(checkpoint_path) if checkpoint_path is not None else None
        )
        self.checkpoint_every = checkpoint_every

        policy = default_design_factories(seed)[design]()
        self.sim = Simulator(config, policy, seed=seed)
        self.segments = _plan_segments(config, policy.trainable)
        self.segment_index = 0
        self.segment_offset = 0
        self.source = None
        self.measure_origin: Optional[int] = None
        self.measure_start: Optional[int] = None
        self.result: Optional[RunResult] = None
        self.checkpoints_written = 0

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _meta(self) -> Dict[str, object]:
        segment = (
            self.segments[self.segment_index].phase
            if self.segment_index < len(self.segments)
            else "done"
        )
        return {
            "design": self.design,
            "benchmark": self.benchmark,
            "seed": self.seed,
            "trace_cycles": self.trace_cycles,
            "cycle": self.sim.network.now,
            "segment": self.segment_index,
            "phase": segment,
            "finished": self.result is not None,
            "checkpoint_every": self.checkpoint_every,
            # Informational: which cycle kernel produced the snapshot.
            # Both kernels are bit-identical and the snapshot carries the
            # activity registries either way, so a checkpoint written
            # under one kernel resumes correctly under the other.
            "kernel": self.sim.network.kernel,
            "config": dataclasses.asdict(self.config),
        }

    def save(self, path: Optional[Union[str, Path]] = None) -> Path:
        """Snapshot the run (atomic, versioned, CRC-guarded)."""
        target = Path(path) if path is not None else self.checkpoint_path
        if target is None:
            raise ValueError("no checkpoint path configured")
        # Emit before pickling, so the snapshot's own trace buffer
        # already contains this save marker — a run that checkpoints and
        # one that checkpoints *and later resumes* then carry identical
        # save events (the canonical digest excludes the checkpoint
        # category anyway; see repro.obs.trace.DIGEST_EXCLUDE).
        tracer = getattr(self.sim, "tracer", None)
        if tracer is not None:
            tracer.emit(
                self.sim.network.now,
                "checkpoint",
                "save",
                segment=self.segment_index,
                offset=self.segment_offset,
            )
        payload = {
            "config": self.config,
            "design": self.design,
            "benchmark": self.benchmark,
            "seed": self.seed,
            "trace_cycles": self.trace_cycles,
            "sim": self.sim,
            "source": self.source,
            "segment_index": self.segment_index,
            "segment_offset": self.segment_offset,
            "measure_origin": self.measure_origin,
            "measure_start": self.measure_start,
            "result": self.result,
            "policy_state": self.sim.policy.to_state(),
            # Packet ids come from a process-global counter.  Without it
            # a fresh process would reissue ids already carried by the
            # pickled in-flight packets, and the NI reassembly / ARQ
            # bookkeeping (keyed by pid / message_id) would collide.
            "next_pid": Packet._next_pid,
        }
        saved = save_checkpoint(target, payload, self._meta())
        self.checkpoints_written += 1
        return saved

    @classmethod
    def resume(
        cls,
        path: Union[str, Path],
        checkpoint_path: Optional[Union[str, Path]] = None,
        checkpoint_every: Optional[int] = None,
    ) -> "ResumableRun":
        """Restore a snapshot; continues checkpointing to the same file
        (at the snapshot's cadence) unless ``checkpoint_path`` /
        ``checkpoint_every`` override it.

        The policy's learned state is re-validated on the way in: any
        rejected Q-table pins its router to safe mode instead of
        aborting the resume.
        """
        payload, meta = load_checkpoint(path)
        if not isinstance(payload, dict) or "sim" not in payload:
            raise CheckpointError(f"{path} is not a run checkpoint")
        run = cls.__new__(cls)
        run.config = payload["config"]
        run.design = payload["design"]
        run.benchmark = payload["benchmark"]
        run.seed = payload["seed"]
        run.trace_cycles = payload["trace_cycles"]
        run.checkpoint_path = (
            Path(checkpoint_path) if checkpoint_path is not None else Path(path)
        )
        run.checkpoint_every = (
            checkpoint_every
            if checkpoint_every is not None
            else int(meta.get("checkpoint_every", 0) or 0)
        )
        run.sim = payload["sim"]
        # The kernel choice is an execution detail, not simulation state:
        # re-resolve it for the resuming process (REPRO_NAIVE_KERNEL)
        # rather than pinning whatever the snapshotting process used.
        # Safe either way — the active-set registries in the snapshot are
        # always a superset of the live entities, and both kernels are
        # bit-identical.
        run.sim.network.kernel = resolve_kernel(None)
        run.source = payload["source"]
        run.segments = _plan_segments(run.config, run.sim.policy.trainable)
        run.segment_index = payload["segment_index"]
        run.segment_offset = payload["segment_offset"]
        run.measure_origin = payload["measure_origin"]
        run.measure_start = payload["measure_start"]
        run.result = payload["result"]
        run.checkpoints_written = 0
        # Restore the packet-id counter so ids issued after the resume
        # pick up exactly where the interrupted process left off — both
        # for bit-identity with the uninterrupted run and to keep new
        # pids disjoint from the pickled in-flight packets'.
        run.sim.restore_packet_counter(payload.get("next_pid"))
        # Route the learned state through validation: a poisoned table
        # degrades its router to safe mode rather than resuming garbage.
        run.sim.policy.load_state(payload.get("policy_state"))
        if getattr(run.sim.policy, "safe_mode_routers", None):
            logger.warning(
                "resume degraded %d router(s) to safe mode",
                len(run.sim.policy.safe_mode_routers),
            )
        # The trace buffer (if any) travelled inside the pickled sim; the
        # restore marker is the only event a resumed stream has that the
        # uninterrupted one lacks, and the canonical digest excludes it.
        tracer = getattr(run.sim, "tracer", None)
        if tracer is not None:
            tracer.emit(
                run.sim.network.now,
                "checkpoint",
                "restore",
                segment=run.segment_index,
                offset=run.segment_offset,
            )
        return run

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _checkpoint_cb(self, base_offset: int):
        if self.checkpoint_path is None or not self.checkpoint_every:
            return None, 0

        def callback(done: int) -> None:
            self.segment_offset = base_offset + done
            self.save()

        return callback, self.checkpoint_every

    def _build_source(self, spec: Tuple[str, float, int]) -> SyntheticTraffic:
        pattern, rate, seed_offset = spec
        return SyntheticTraffic(
            self.sim.network.topology,
            pattern=pattern,
            injection_rate=rate,
            packet_size=self.config.packet_size,
            flit_bits=self.config.flit_bits,
            rng=random.Random(self.seed + seed_offset),
        )

    def run(self) -> RunResult:
        """Execute (or continue) the plan to completion."""
        while self.result is None and self.segment_index < len(self.segments):
            segment = self.segments[self.segment_index]
            handler = getattr(self, f"_run_{segment.phase}")
            handler(segment)
            self.segment_index += 1
            self.segment_offset = 0
            if self.checkpoint_path is not None:
                self.save()
        if self.result is None:  # pragma: no cover - plan always measures
            raise RuntimeError("run plan finished without a measurement")
        return self.result

    def _run_pretrain(self, segment: _Segment) -> None:
        sim = self.sim
        if segment.new_source is not None and self.segment_offset == 0:
            self.source = self._build_source(segment.new_source)
        sim.forced_mode = (
            OperationMode(segment.forced_mode)
            if segment.forced_mode is not None
            else None
        )
        remaining = segment.cycles - self.segment_offset
        callback, every = self._checkpoint_cb(self.segment_offset)
        if remaining > 0:
            sim.run(
                self.source, remaining, learn=True,
                checkpoint_every=every, on_checkpoint=callback,
            )
        sim.forced_mode = None

    def _run_drain(self, segment: _Segment) -> None:
        sim = self.sim
        callback, every = self._checkpoint_cb(self.segment_offset)
        done = 0
        while not sim.network.quiescent:
            sim._cycle()
            if sim.network.now % self.config.epoch_cycles == 0:
                sim._epoch_boundary(learn=True)
            done += 1
            if every and callback is not None and done % every == 0:
                callback(done)

    def _run_freeze(self, segment: _Segment) -> None:
        self.sim.policy.freeze()

    def _run_warmup(self, segment: _Segment) -> None:
        sim = self.sim
        if segment.new_source is not None and self.segment_offset == 0:
            self.source = self._build_source(segment.new_source)
        remaining = segment.cycles - self.segment_offset
        callback, every = self._checkpoint_cb(self.segment_offset)
        if remaining > 0:
            sim.run(
                self.source, remaining, learn=True,
                checkpoint_every=every, on_checkpoint=callback,
            )

    def _run_measure(self, segment: _Segment) -> None:
        sim = self.sim
        if self.segment_offset == 0:
            records = synthesize_benchmark_trace(
                self.benchmark, self.config, self.trace_cycles, self.seed
            )
            self.source = sim.make_replayer(records)
            sim.begin_measurement()
            self.measure_origin = sim.network.now
            self.measure_start = sim.network.now
        replayer = self.source
        callback, every = self._checkpoint_cb(self.segment_offset)
        sim.run_until_drained(
            replayer,
            lambda: replayer.exhausted,
            learn=True,
            time_origin=self.measure_origin,
            checkpoint_every=every,
            on_checkpoint=callback,
        )
        execution = sim.network.now - self.measure_start
        self.result = sim.finish_measurement(self.benchmark, execution)
        self.source = None
