"""Run-level metric capture and the derived figures of merit.

The evaluation metrics of Section VI, computed over the measurement
(testing) phase only:

* retransmission events (Fig. 6) — end-to-end packet retransmissions
  plus per-hop flit retransmissions, each counted once;
* execution time (Fig. 7) — cycles from the start of the trace until
  every message is delivered; speed-up is its inverse ratio;
* mean end-to-end packet latency (Fig. 8);
* energy efficiency (Fig. 9) — delivered flits per microjoule of total
  (static + dynamic) NoC energy;
* dynamic power (Fig. 10) — dynamic NoC energy over the execution time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.noc.stats import NetworkStats

__all__ = ["RunResult", "StatsSnapshot"]


class StatsSnapshot:
    """Point-in-time copy of the monotonic network counters, so a
    measurement window can be expressed as a difference of snapshots."""

    _FIELDS = (
        "packets_injected",
        "packets_delivered",
        "flits_delivered",
        "packet_retransmissions",
        "flit_retransmissions",
        "corrected_errors",
        "escaped_errors",
        "crc_failures",
        "duplicate_flits",
        "dropped_flits",
        "silent_corruptions",
        "messages_created",
        "messages_dropped",
        "packets_dropped",
        "unreachable_drops",
        "reroutes",
        "fault_recoveries",
    )

    def __init__(self, stats: NetworkStats) -> None:
        for name in self._FIELDS:
            setattr(self, name, getattr(stats, name))
        self.latency_count = stats.latency.count
        self.latency_total = stats.latency.total
        self.mode_cycles = dict(stats.mode_cycles)

    def delta(self, later: "StatsSnapshot") -> Dict[str, float]:
        out = {
            name: getattr(later, name) - getattr(self, name) for name in self._FIELDS
        }
        count = later.latency_count - self.latency_count
        total = later.latency_total - self.latency_total
        out["delivered_in_window"] = count
        out["mean_latency"] = total / count if count else 0.0
        out["mode_cycles"] = {
            mode: later.mode_cycles[mode] - self.mode_cycles[mode]
            for mode in later.mode_cycles
        }
        return out


@dataclass
class RunResult:
    """Metrics of one (design, benchmark) measurement run."""

    design: str
    benchmark: str
    execution_cycles: int
    mean_latency: float
    packets_delivered: int
    flits_delivered: int
    packet_retransmissions: int
    flit_retransmissions: int
    corrected_errors: int
    escaped_errors: int
    silent_corruptions: int
    duplicate_flits: int
    dynamic_energy_pj: float
    static_energy_pj: float
    clock_hz: float
    mode_cycles: Dict[int, int] = field(default_factory=dict)
    mean_temperature: float = 0.0
    mean_error_probability: float = 0.0
    # Graceful-degradation metrics (defaulted so pre-fault-model payloads
    # still deserialize)
    messages_created: int = 0
    messages_dropped: int = 0
    reroutes: int = 0
    fault_recoveries: int = 0
    unreachable_drops: int = 0
    post_fault_latency: float = 0.0
    # Control-plane degradation metrics (defaulted so pre-sensor-fault
    # payloads still deserialize)
    safe_mode_entries: int = 0
    rejected_observations: int = 0
    sensor_holds: int = 0
    sensor_clamps: int = 0
    mode_switches: int = 0

    # ------------------------------------------------------------------
    @property
    def retransmission_events(self) -> int:
        """Fig. 6 metric: one event per packet or flit retransmission."""
        return self.packet_retransmissions + self.flit_retransmissions

    @property
    def delivered_fraction(self) -> float:
        """Messages delivered / messages created in the window (graceful
        degradation under hard faults; 1.0 for fault-free runs)."""
        if self.messages_created <= 0:
            return 1.0
        return self.packets_delivered / self.messages_created

    @property
    def total_energy_pj(self) -> float:
        return self.dynamic_energy_pj + self.static_energy_pj

    @property
    def execution_seconds(self) -> float:
        return self.execution_cycles / self.clock_hz

    @property
    def energy_efficiency(self) -> float:
        """Fig. 9 metric: delivered flits per microjoule."""
        if self.total_energy_pj <= 0:
            return 0.0
        return self.flits_delivered / (self.total_energy_pj * 1e-6)

    @property
    def dynamic_power_watts(self) -> float:
        """Fig. 10 metric: dynamic energy averaged over execution time."""
        if self.execution_cycles <= 0:
            return 0.0
        return self.dynamic_energy_pj * 1e-12 / self.execution_seconds

    @property
    def total_power_watts(self) -> float:
        if self.execution_cycles <= 0:
            return 0.0
        return self.total_energy_pj * 1e-12 / self.execution_seconds

    def constructor_dict(self) -> Dict[str, object]:
        """All constructor fields — lossless serialization round trip."""
        return {
            "design": self.design,
            "benchmark": self.benchmark,
            "execution_cycles": self.execution_cycles,
            "mean_latency": self.mean_latency,
            "packets_delivered": self.packets_delivered,
            "flits_delivered": self.flits_delivered,
            "packet_retransmissions": self.packet_retransmissions,
            "flit_retransmissions": self.flit_retransmissions,
            "corrected_errors": self.corrected_errors,
            "escaped_errors": self.escaped_errors,
            "silent_corruptions": self.silent_corruptions,
            "duplicate_flits": self.duplicate_flits,
            "dynamic_energy_pj": self.dynamic_energy_pj,
            "static_energy_pj": self.static_energy_pj,
            "clock_hz": self.clock_hz,
            "mode_cycles": {str(k): v for k, v in self.mode_cycles.items()},
            "mean_temperature": self.mean_temperature,
            "mean_error_probability": self.mean_error_probability,
            "messages_created": self.messages_created,
            "messages_dropped": self.messages_dropped,
            "reroutes": self.reroutes,
            "fault_recoveries": self.fault_recoveries,
            "unreachable_drops": self.unreachable_drops,
            "post_fault_latency": self.post_fault_latency,
            "safe_mode_entries": self.safe_mode_entries,
            "rejected_observations": self.rejected_observations,
            "sensor_holds": self.sensor_holds,
            "sensor_clamps": self.sensor_clamps,
            "mode_switches": self.mode_switches,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunResult":
        """Inverse of :meth:`constructor_dict`."""
        kwargs = dict(data)
        kwargs["mode_cycles"] = {int(k): v for k, v in data["mode_cycles"].items()}
        return cls(**kwargs)

    def as_dict(self) -> Dict[str, float]:
        return {
            "design": self.design,
            "benchmark": self.benchmark,
            "execution_cycles": self.execution_cycles,
            "mean_latency": self.mean_latency,
            "packets_delivered": self.packets_delivered,
            "flits_delivered": self.flits_delivered,
            "retransmission_events": self.retransmission_events,
            "packet_retransmissions": self.packet_retransmissions,
            "flit_retransmissions": self.flit_retransmissions,
            "corrected_errors": self.corrected_errors,
            "escaped_errors": self.escaped_errors,
            "silent_corruptions": self.silent_corruptions,
            "duplicate_flits": self.duplicate_flits,
            "total_energy_pj": self.total_energy_pj,
            "dynamic_energy_pj": self.dynamic_energy_pj,
            "energy_efficiency": self.energy_efficiency,
            "dynamic_power_watts": self.dynamic_power_watts,
            "total_power_watts": self.total_power_watts,
            "mean_temperature": self.mean_temperature,
            "mean_error_probability": self.mean_error_probability,
            "messages_created": self.messages_created,
            "messages_dropped": self.messages_dropped,
            "delivered_fraction": self.delivered_fraction,
            "reroutes": self.reroutes,
            "fault_recoveries": self.fault_recoveries,
            "unreachable_drops": self.unreachable_drops,
            "post_fault_latency": self.post_fault_latency,
            "safe_mode_entries": self.safe_mode_entries,
            "rejected_observations": self.rejected_observations,
            "sensor_holds": self.sensor_holds,
            "sensor_clamps": self.sensor_clamps,
            "mode_switches": self.mode_switches,
        }
