"""Parallel sweep orchestration with on-disk result caching.

The paper's evaluation (Figs 6-10) is a grid of (design x error-rate x
traffic x seed) measurement runs.  Each point is an independent,
deterministic simulation, so the grid parallelizes perfectly and every
completed point is worth persisting.  This module provides:

* :class:`SweepSpec` — a declarative grid specification that expands into
  :class:`SweepPoint` jobs, one per simulation;
* :func:`run_sweep_point` — the process-safe evaluator for a single
  point (also the ``--jobs 1`` serial path, so serial and parallel runs
  execute byte-identical code);
* :class:`SweepRunner` — fans pending points out over a
  ``multiprocessing`` pool, caches every result as JSON under
  ``.sweep_cache/`` keyed by a stable content hash of (config, point),
  and reports structured progress (done / cached / running, ETA).
  Re-running an identical grid — or resuming an interrupted one —
  replays cached points without executing a single simulation;
* merge helpers that aggregate point results back into the
  benchmarks-x-designs shape :mod:`repro.sim.experiment` produces, so
  the normalized-to-baseline tables come out identical.

Point kinds
-----------
``trace``
    One design replays one synthesized benchmark trace with the full
    phase structure (``experiment.run_design_on_trace``).
``load``
    The classic load sweep: one design under open-loop synthetic traffic
    at one injection rate; reports latency / throughput / saturation.
``suite``
    One design over an ordered benchmark list with a *single* shared
    pre-training phase and policy state carried across benchmarks —
    exactly ``experiment.run_parsec_suite``'s per-design chain, which
    cannot be split further without changing results.
``mode_error``
    The raw mode trade-off surface: the whole mesh pinned to one
    operation mode under a flat channel error probability (used by
    ``examples/fault_sweep.py``).

Determinism contract: every evaluator seeds all randomness from the
point's ``seed`` field (the simulators use only local
``random.Random`` instances), so a point's result is a pure function of
(config, point) — which is precisely what the cache key hashes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
import random
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.modes import OperationMode
from repro.faults.hardfaults import HardFaultModel, HardFaultSchedule
from repro.noc.network import Network
from repro.noc.packet import Packet
from repro.noc.routing import ROUTING_FUNCTIONS
from repro.noc.topology import MeshTopology
from repro.noc.watchdog import NoCInvariantError
from repro.sim.config import SimulationConfig
from repro.sim.experiment import (
    DESIGN_ORDER,
    default_design_factories,
    normalize_to_baseline,
    pretrain_policy,
    run_design_on_trace,
    synthesize_benchmark_trace,
)
from repro.sim.metrics import RunResult
from repro.sim.simulator import Simulator
from repro.traffic.synthetic import NullTraffic, SyntheticTraffic

__all__ = [
    "CACHE_SCHEMA",
    "DEFAULT_CACHE_DIR",
    "SweepPoint",
    "SweepSpec",
    "PointResult",
    "SweepProgress",
    "SweepCache",
    "SweepRunner",
    "point_cache_key",
    "run_sweep_point",
    "merge_trace_grid",
    "merge_suite",
    "normalized_tables",
    "stderr_progress",
]

#: Bump when an evaluator's semantics change, invalidating cached points.
#: Schema 2: hard-fault campaigns (``chaos`` kind, ``fault_spec`` field).
CACHE_SCHEMA = 2

DEFAULT_CACHE_DIR = ".sweep_cache"

POINT_KINDS = ("trace", "load", "suite", "mode_error", "chaos")

MODE_DESIGNS = tuple(f"mode{int(m)}" for m in OperationMode)


# ----------------------------------------------------------------------
# Grid specification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepPoint:
    """One independent simulation job of a sweep grid.

    ``traffic`` names a benchmark (``trace``), a synthetic pattern
    (``load`` / ``mode_error``), or a comma-joined ordered benchmark
    list (``suite``).  ``cycles`` is the trace injection span for trace
    kinds, the injection span for ``load``, and the packet count for
    ``mode_error``.  Unused numeric fields keep their defaults so cache
    keys stay stable across kinds.
    """

    kind: str
    design: str
    traffic: str
    seed: int
    cycles: int
    error_scale: float = 1.0
    rate: float = 0.0
    error_probability: float = 0.0
    #: hard-fault campaign spec ("" = healthy); part of the cache key, so
    #: identical schedules replay from cache and new ones re-simulate
    fault_spec: str = ""

    def __post_init__(self) -> None:
        if self.kind not in POINT_KINDS:
            raise ValueError(f"unknown point kind {self.kind!r}")
        if self.kind == "mode_error":
            if self.design not in MODE_DESIGNS:
                raise ValueError(
                    f"mode_error points take designs {MODE_DESIGNS}, got {self.design!r}"
                )
        elif self.kind == "chaos":
            # Chaos points compare routing policies, not RL designs.
            if self.design not in ROUTING_FUNCTIONS:
                raise ValueError(
                    f"chaos points take routings "
                    f"{tuple(sorted(ROUTING_FUNCTIONS))}, got {self.design!r}"
                )
        elif self.design not in DESIGN_ORDER:
            raise ValueError(
                f"unknown design {self.design!r}; pick one of {', '.join(DESIGN_ORDER)}"
            )
        if self.cycles < 1:
            raise ValueError("cycles must be positive")

    def label(self) -> str:
        """Short human-readable identifier used in progress lines."""
        parts = [self.kind, self.design, self.traffic, f"s{self.seed}"]
        if self.kind in ("load", "chaos") and self.rate:
            parts.append(f"r{self.rate:g}")
        if self.kind == "mode_error":
            parts.append(f"p{self.error_probability:g}")
        if self.error_scale != 1.0:
            parts.append(f"x{self.error_scale:g}")
        if self.fault_spec:
            parts.append(self.fault_spec)
        return ":".join(parts)


@dataclass(frozen=True)
class SweepSpec:
    """Declarative grid: the cross product expanded by :meth:`expand`.

    Expansion order is deterministic — traffic (outer), error scale,
    rate / error probability, seed, design (inner) — so result lists
    line up across runs and ``--jobs`` settings.
    """

    config: SimulationConfig
    kind: str = "trace"
    designs: Tuple[str, ...] = DESIGN_ORDER
    traffics: Tuple[str, ...] = ("canneal",)
    seeds: Tuple[int, ...] = (0,)
    error_scales: Tuple[float, ...] = (1.0,)
    rates: Tuple[float, ...] = (0.0,)
    error_probabilities: Tuple[float, ...] = (0.0,)
    #: hard-fault campaign axis (chaos kind only; "" = healthy baseline)
    fault_specs: Tuple[str, ...] = ("",)
    cycles: int = 3_000

    def __post_init__(self) -> None:
        if self.kind not in POINT_KINDS:
            raise ValueError(f"unknown sweep kind {self.kind!r}")
        for name in ("designs", "traffics", "seeds", "error_scales", "fault_specs"):
            if not getattr(self, name):
                raise ValueError(f"{name} cannot be empty")

    def expand(self) -> List[SweepPoint]:
        """The grid's jobs, in deterministic order."""
        points = []
        traffics = (",".join(self.traffics),) if self.kind == "suite" else self.traffics
        fault_specs = self.fault_specs if self.kind == "chaos" else ("",)
        for traffic in traffics:
            for scale in self.error_scales:
                for fault_spec in fault_specs:
                    for extra in self._extra_axis():
                        for seed in self.seeds:
                            for design in self.designs:
                                points.append(
                                    SweepPoint(
                                        kind=self.kind,
                                        design=design,
                                        traffic=traffic,
                                        seed=seed,
                                        cycles=self.cycles,
                                        error_scale=scale,
                                        rate=extra if self.kind in ("load", "chaos") else 0.0,
                                        error_probability=(
                                            extra if self.kind == "mode_error" else 0.0
                                        ),
                                        fault_spec=fault_spec,
                                    )
                                )
        return points

    def _extra_axis(self) -> Tuple[float, ...]:
        if self.kind in ("load", "chaos"):
            return self.rates
        if self.kind == "mode_error":
            return self.error_probabilities
        return (0.0,)

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        """JSON-able form (inverse of :meth:`from_dict`)."""
        out = dataclasses.asdict(self)
        out["config"] = dataclasses.asdict(self.config)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SweepSpec":
        """Build a spec from a plain dict (e.g. a JSON grid file)."""
        kwargs = dict(data)
        config = kwargs.pop("config", {})
        if not isinstance(config, SimulationConfig):
            config = dict(config)
            if "error_severity" in config:
                config["error_severity"] = tuple(config["error_severity"])
            config = SimulationConfig(**config)
        for name in ("designs", "traffics", "seeds", "error_scales",
                     "rates", "error_probabilities", "fault_specs"):
            if name in kwargs:
                kwargs[name] = tuple(kwargs[name])
        return cls(config=config, **kwargs)


# ----------------------------------------------------------------------
# Point evaluators (run inside worker processes — keep module-level)
# ----------------------------------------------------------------------
def _eval_trace(config: SimulationConfig, point: SweepPoint) -> Dict[str, object]:
    config = dataclasses.replace(config, error_scale=point.error_scale)
    policy = default_design_factories(point.seed)[point.design]()
    records = synthesize_benchmark_trace(point.traffic, config, point.cycles, point.seed)
    result = run_design_on_trace(
        policy, records, config, benchmark=point.traffic, seed=point.seed
    )
    return {"run": result.constructor_dict()}


def _eval_suite(config: SimulationConfig, point: SweepPoint) -> Dict[str, object]:
    config = dataclasses.replace(config, error_scale=point.error_scale)
    policy = default_design_factories(point.seed)[point.design]()
    pretrain_policy(policy, config, seed=point.seed)
    suite = {}
    for benchmark in point.traffic.split(","):
        records = synthesize_benchmark_trace(benchmark, config, point.cycles, point.seed)
        result = run_design_on_trace(
            policy, records, config,
            benchmark=benchmark, seed=point.seed, pretrained=True,
        )
        suite[benchmark] = result.constructor_dict()
    return {"suite": suite}


def _eval_load(config: SimulationConfig, point: SweepPoint) -> Dict[str, object]:
    config = dataclasses.replace(config, error_scale=point.error_scale)
    policy = default_design_factories(point.seed)[point.design]()
    sim = Simulator(config, policy, seed=point.seed)
    if sim.policy.trainable:
        sim.pretrain()
    sim.policy.freeze()
    source = SyntheticTraffic(
        sim.network.topology,
        pattern=point.traffic,
        injection_rate=point.rate,
        packet_size=config.packet_size,
        flit_bits=config.flit_bits,
        rng=random.Random(point.seed + 9),
    )
    sim.run_cycles(source, point.cycles, learn=True)
    try:
        sim.run_until_drained(NullTraffic(), lambda: True, learn=True)
    except RuntimeError:
        return {
            "load": {"rate": point.rate, "latency": None,
                     "throughput": 0.0, "saturated": True},
        }
    stats = sim.network.stats
    return {
        "load": {"rate": point.rate, "latency": stats.mean_latency,
                 "throughput": stats.throughput, "saturated": False},
    }


def _eval_mode_error(config: SimulationConfig, point: SweepPoint) -> Dict[str, object]:
    mode = OperationMode(int(point.design[len("mode"):]))
    rng = random.Random(point.seed)
    net = Network(
        MeshTopology(config.width, config.height), rng=random.Random(point.seed + 1)
    )
    net.set_all_modes(mode)
    for _, model in net.channel_models():
        model.event_probability = point.error_probability
    nodes = net.topology.num_nodes
    created = 0
    while created < point.cycles or not net.quiescent:
        if created < point.cycles and net.now % 2 == 0:
            src, dst = rng.randrange(nodes), rng.randrange(nodes)
            if src != dst:
                net.inject(
                    Packet(
                        src, dst, config.packet_size, config.flit_bits, net.now,
                        payloads=[
                            rng.getrandbits(config.flit_bits)
                            for _ in range(config.packet_size)
                        ],
                    )
                )
                created += 1
        net.cycle()
        if net.now > 500_000:
            raise RuntimeError("network failed to drain")
    net.harvest_epoch_counters(1)
    stats = net.stats
    return {
        "stats": {
            "mean_latency": stats.mean_latency,
            "retransmission_events": stats.retransmission_events,
            "corrected_errors": stats.corrected_errors,
            "escaped_errors": stats.escaped_errors,
            "duplicate_flits": stats.duplicate_flits,
        },
    }


def _eval_chaos(config: SimulationConfig, point: SweepPoint) -> Dict[str, object]:
    """Graceful-degradation run: one routing policy under a hard-fault
    campaign with open-loop uniform traffic.

    Invariant-watchdog trips do not fail the sweep — they come back as a
    structured ``diagnosis`` payload, because "this configuration
    deadlocks under this cut" *is* the measurement.
    """
    topology = MeshTopology(config.width, config.height)
    network = Network(
        topology,
        routing_fn=point.design,
        num_vcs=config.num_vcs,
        vc_depth=config.vc_depth,
        flit_bits=config.flit_bits,
        arq_capacity=config.arq_capacity,
        channel_latency=config.channel_latency,
        rng=random.Random(point.seed + 1),
        routing_seed=point.seed,
        watchdog_interval=config.watchdog_interval,
        deadlock_cycles=config.deadlock_cycles,
        max_packet_age=config.max_packet_age,
    )
    model = HardFaultModel(network, HardFaultSchedule.parse(point.fault_spec))
    network.hard_faults = model
    rate = point.rate if point.rate > 0.0 else 0.1
    rng = random.Random(point.seed + 7)
    nodes = topology.num_nodes
    diagnosis = None
    message_id = 0
    try:
        for _ in range(point.cycles):
            if rng.random() < rate:
                src = rng.randrange(nodes)
                dst = rng.randrange(nodes)
                if src != dst:
                    network.inject(
                        Packet(
                            src, dst, config.packet_size, config.flit_bits,
                            network.now, message_id=message_id,
                        )
                    )
                    message_id += 1
            network.cycle()
        deadline = network.now + config.max_drain_cycles
        while not network.quiescent and network.now < deadline:
            network.cycle()
    except NoCInvariantError as exc:
        diagnosis = {
            "error": type(exc).__name__,
            "message": str(exc),
            "report": exc.report,
        }
    network.harvest_epoch_counters(0)
    stats = network.stats
    outstanding = sum(ni.outstanding_messages for ni in network.interfaces)
    return {
        "chaos": {
            "routing": point.design,
            "fault_spec": point.fault_spec,
            "applied": list(model.applied),
            "delivered_fraction": stats.delivered_fraction,
            "messages_created": stats.messages_created,
            "packets_delivered": stats.packets_delivered,
            "messages_dropped": stats.messages_dropped,
            "packets_dropped": stats.packets_dropped,
            "unreachable_drops": stats.unreachable_drops,
            "reroutes": stats.reroutes,
            "fault_recoveries": stats.fault_recoveries,
            "link_kills": stats.link_kills,
            "router_kills": stats.router_kills,
            "outstanding": outstanding,
            "pre_fault_latency": model.pre_fault_latency,
            "post_fault_latency": model.post_fault_latency,
            "diagnosis": diagnosis,
        },
    }


_EVALUATORS = {
    "trace": _eval_trace,
    "load": _eval_load,
    "suite": _eval_suite,
    "mode_error": _eval_mode_error,
    "chaos": _eval_chaos,
}


def run_sweep_point(config: SimulationConfig, point: SweepPoint) -> Dict[str, object]:
    """Evaluate one point; the single code path for serial AND pooled runs."""
    started = time.perf_counter()
    payload = _EVALUATORS[point.kind](config, point)
    payload["elapsed"] = time.perf_counter() - started
    return payload


def _pool_worker(job: Tuple[int, SimulationConfig, SweepPoint]):
    index, config, point = job
    return index, run_sweep_point(config, point)


# ----------------------------------------------------------------------
# Cache
# ----------------------------------------------------------------------
def point_cache_key(config: SimulationConfig, point: SweepPoint) -> str:
    """Stable content hash of everything a point's result depends on."""
    fingerprint = {
        "schema": CACHE_SCHEMA,
        "config": dataclasses.asdict(config),
        "point": dataclasses.asdict(point),
    }
    blob = json.dumps(fingerprint, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:24]


class SweepCache:
    """One JSON file per completed point under ``root``.

    Files are written atomically (temp + rename) so an interrupted sweep
    never leaves a truncated entry; on resume, valid entries replay and
    only the missing points execute.
    """

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)

    def path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def load(self, key: str) -> Optional[Dict[str, object]]:
        path = self.path(key)
        try:
            with path.open() as handle:
                entry = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if entry.get("schema") != CACHE_SCHEMA:
            return None
        return entry.get("payload")

    def store(self, key: str, point: SweepPoint, payload: Dict[str, object]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        entry = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "point": dataclasses.asdict(point),
            "payload": payload,
        }
        tmp = self.path(key).with_suffix(".tmp")
        with tmp.open("w") as handle:
            json.dump(entry, handle, indent=2)
        os.replace(tmp, self.path(key))


# ----------------------------------------------------------------------
# Results and progress
# ----------------------------------------------------------------------
@dataclass
class PointResult:
    """One point's outcome, decoded back into rich objects."""

    point: SweepPoint
    cached: bool
    elapsed: float
    run: Optional[RunResult] = None
    suite: Optional[Dict[str, RunResult]] = None
    load: Optional[Dict[str, float]] = None
    mode_stats: Optional[Dict[str, float]] = None
    chaos: Optional[Dict[str, object]] = None


def _payload_to_result(
    point: SweepPoint, payload: Dict[str, object], cached: bool
) -> PointResult:
    result = PointResult(
        point=point, cached=cached, elapsed=float(payload.get("elapsed", 0.0))
    )
    if payload.get("run") is not None:
        result.run = RunResult.from_dict(payload["run"])
    if payload.get("suite") is not None:
        result.suite = {
            bench: RunResult.from_dict(data)
            for bench, data in payload["suite"].items()
        }
    if payload.get("load") is not None:
        load = dict(payload["load"])
        if load.get("saturated"):
            load["latency"] = float("inf")
        result.load = load
    if payload.get("stats") is not None:
        result.mode_stats = dict(payload["stats"])
    if payload.get("chaos") is not None:
        result.chaos = dict(payload["chaos"])
    return result


@dataclass
class SweepProgress:
    """Structured progress snapshot handed to the reporter callback."""

    total: int
    done: int = 0
    cached: int = 0
    running: int = 0
    executed_seconds: List[float] = field(default_factory=list)
    jobs: int = 1
    current: Optional[str] = None

    @property
    def pending(self) -> int:
        return self.total - self.done

    def eta_seconds(self) -> Optional[float]:
        """Wall-clock estimate for the remaining points, or None before
        the first executed point lands."""
        if not self.executed_seconds or not self.pending:
            return None
        mean = sum(self.executed_seconds) / len(self.executed_seconds)
        return mean * self.pending / max(1, self.jobs)


def stderr_progress(progress: SweepProgress) -> None:
    """Default human-readable reporter: one status line per event."""
    eta = progress.eta_seconds()
    eta_text = f", eta ~{eta:.0f}s" if eta is not None else ""
    tail = f" [{progress.current}]" if progress.current else ""
    print(
        f"[sweep] {progress.done}/{progress.total} done "
        f"({progress.cached} cached, {progress.running} running{eta_text}){tail}",
        file=sys.stderr,
    )


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
class SweepRunner:
    """Expand a spec, replay cached points, fan the rest over a pool.

    ``jobs=1`` runs pending points serially in-process through the exact
    same evaluator the workers use, so results are bit-identical across
    job counts.  ``use_cache=False`` disables both lookup and storage;
    ``refresh=True`` skips lookup but stores fresh results.  After
    :meth:`run`, ``executed`` counts simulations actually performed
    (i.e. cache misses).
    """

    def __init__(
        self,
        spec: SweepSpec,
        jobs: int = 1,
        cache_dir: Union[str, Path] = DEFAULT_CACHE_DIR,
        use_cache: bool = True,
        refresh: bool = False,
        progress: Optional[Callable[[SweepProgress], None]] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.spec = spec
        self.jobs = jobs
        self.cache = SweepCache(cache_dir) if use_cache else None
        self.refresh = refresh
        self.progress = progress
        self.executed = 0

    # ------------------------------------------------------------------
    def run(self) -> List[PointResult]:
        """Execute the grid; results are in spec expansion order."""
        points = self.spec.expand()
        results: List[Optional[PointResult]] = [None] * len(points)
        state = SweepProgress(total=len(points), jobs=self.jobs)
        self.executed = 0

        pending: List[Tuple[int, str, SweepPoint]] = []
        for index, point in enumerate(points):
            key = point_cache_key(self.spec.config, point)
            payload = (
                self.cache.load(key) if self.cache and not self.refresh else None
            )
            if payload is not None:
                results[index] = _payload_to_result(point, payload, cached=True)
                state.cached += 1
                state.done += 1
            else:
                pending.append((index, key, point))
        self._report(state)

        if not pending:
            return results

        if self.jobs == 1:
            for index, key, point in pending:
                state.running = 1
                state.current = point.label()
                self._report(state)
                payload = run_sweep_point(self.spec.config, point)
                state.running = 0
                self._finish(index, key, point, payload, results, state)
            return results

        keys = {index: key for index, key, _ in pending}
        jobs = [(index, self.spec.config, point) for index, _, point in pending]
        with multiprocessing.Pool(processes=min(self.jobs, len(jobs))) as pool:
            outstanding = len(jobs)
            state.running = min(self.jobs, outstanding)
            self._report(state)
            for index, payload in pool.imap_unordered(_pool_worker, jobs):
                outstanding -= 1
                state.running = min(self.jobs, outstanding)
                self._finish(index, keys[index], points[index], payload, results, state)
        return results

    # ------------------------------------------------------------------
    def _finish(self, index, key, point, payload, results, state) -> None:
        if self.cache:
            self.cache.store(key, point, payload)
        self.executed += 1
        state.executed_seconds.append(float(payload.get("elapsed", 0.0)))
        results[index] = _payload_to_result(point, payload, cached=False)
        state.done += 1
        state.current = point.label()
        self._report(state)

    def _report(self, state: SweepProgress) -> None:
        if self.progress is not None:
            self.progress(state)


# ----------------------------------------------------------------------
# Merging back into experiment.py shapes
# ----------------------------------------------------------------------
def merge_trace_grid(
    results: Sequence[PointResult],
) -> Dict[Tuple[str, float, int], Dict[str, RunResult]]:
    """Group trace-point results into (traffic, error_scale, seed) cells,
    each holding the per-design :class:`RunResult` map that
    ``experiment.compare_designs`` returns."""
    grid: Dict[Tuple[str, float, int], Dict[str, RunResult]] = {}
    for result in results:
        if result is None or result.run is None:
            continue
        cell = (result.point.traffic, result.point.error_scale, result.point.seed)
        grid.setdefault(cell, {})[result.point.design] = result.run
    return grid


def merge_suite(results: Sequence[PointResult]) -> Dict[str, Dict[str, RunResult]]:
    """Merge suite-point results into ``run_parsec_suite``'s
    {benchmark: {design: RunResult}} shape."""
    suite: Dict[str, Dict[str, RunResult]] = {}
    for result in results:
        if result is None or result.suite is None:
            continue
        for benchmark, run in result.suite.items():
            suite.setdefault(benchmark, {})[result.point.design] = run
    return suite


def normalized_tables(
    grid: Dict[Tuple[str, float, int], Dict[str, RunResult]],
    metrics: Dict[str, Callable[[RunResult], float]],
    baseline: str = "crc",
) -> Dict[Tuple[str, float, int], Dict[str, Dict[str, float]]]:
    """Per-cell normalized-to-baseline tables, via the same
    ``normalize_to_baseline`` the figures use."""
    return {
        cell: {
            name: normalize_to_baseline(designs, metric, baseline=baseline)
            for name, metric in metrics.items()
        }
        for cell, designs in grid.items()
    }
