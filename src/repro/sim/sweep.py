"""Parallel sweep orchestration with on-disk result caching.

The paper's evaluation (Figs 6-10) is a grid of (design x error-rate x
traffic x seed) measurement runs.  Each point is an independent,
deterministic simulation, so the grid parallelizes perfectly and every
completed point is worth persisting.  This module provides:

* :class:`SweepSpec` — a declarative grid specification that expands into
  :class:`SweepPoint` jobs, one per simulation;
* :func:`run_sweep_point` — the process-safe evaluator for a single
  point (also the ``--jobs 1`` serial path, so serial and parallel runs
  execute byte-identical code);
* :class:`SweepRunner` — fans pending points out over supervised
  ``multiprocessing`` workers, caches every result as JSON under
  ``.sweep_cache/`` keyed by a stable content hash of (config, point),
  and reports structured progress (done / cached / running, ETA).
  Re-running an identical grid — or resuming an interrupted one —
  replays cached points without executing a single simulation.

  The runner is a *supervisor*, not a fire-and-forget pool: each point
  runs in its own worker process with an optional wall-clock timeout,
  a crashed or killed worker is detected by its exit code and its slot
  replenished, and a failed point is retried with seeded exponential
  backoff before being quarantined.  Results flush to the cache the
  moment each point lands, so a SIGKILL mid-sweep loses at most the
  points in flight.  :attr:`SweepRunner.report` summarizes the outcome
  (completed / retried / quarantined / elapsed) as a
  :class:`SweepReport`;
* merge helpers that aggregate point results back into the
  benchmarks-x-designs shape :mod:`repro.sim.experiment` produces, so
  the normalized-to-baseline tables come out identical.

Point kinds
-----------
``trace``
    One design replays one synthesized benchmark trace with the full
    phase structure (``experiment.run_design_on_trace``).
``load``
    The classic load sweep: one design under open-loop synthetic traffic
    at one injection rate; reports latency / throughput / saturation.
``suite``
    One design over an ordered benchmark list: a single pre-training
    phase, snapshotted, then every benchmark runs a fresh clone of the
    frozen snapshot — exactly ``experiment.run_parsec_suite``'s
    per-design row, with online adaptation kept cell-local.
``campaign``
    One (benchmark, design) cell of the paper-figure campaign: the
    policy is cloned from a pretrained artifact on disk
    (``repro.sim.campaign``) instead of pre-training in-cell, so the
    grid pays each design's pre-training phase exactly once.
``mode_error``
    The raw mode trade-off surface: the whole mesh pinned to one
    operation mode under a flat channel error probability (used by
    ``examples/fault_sweep.py``).
``soft_error``
    One full closed-loop design under an SEU campaign that flips bits in
    the quantized Q-table SRAM and the per-router mode registers, with
    the SECDED/scrub/TMR defense layer on (``ecc_protect``) or off.

Determinism contract: every evaluator seeds all randomness from the
point's ``seed`` field (the simulators use only local
``random.Random`` instances), so a point's result is a pure function of
(config, point) — which is precisely what the cache key hashes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import multiprocessing
import os
import random
import sys
import time
import uuid
import zlib
from dataclasses import dataclass, field
from multiprocessing import connection
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.modes import OperationMode
from repro.faults.hardfaults import HardFaultModel, HardFaultSchedule
from repro.noc.network import Network
from repro.noc.packet import Packet
from repro.noc.routing import ROUTING_FUNCTIONS
from repro.noc.topology import MeshTopology
from repro.noc.watchdog import NoCInvariantError
from repro.sim.checkpoint import load_policy_artifact
from repro.sim.config import SimulationConfig
from repro.sim.experiment import (
    DESIGN_ORDER,
    clone_policy,
    default_design_factories,
    normalize_to_baseline,
    pretrain_policy,
    run_design_on_trace,
    synthesize_benchmark_trace,
)
from repro.sim.metrics import RunResult
from repro.sim.simulator import Simulator
from repro.traffic.synthetic import NullTraffic, SyntheticTraffic

__all__ = [
    "CACHE_SCHEMA",
    "DEFAULT_CACHE_DIR",
    "SweepPoint",
    "SweepSpec",
    "PointResult",
    "SweepProgress",
    "SweepReport",
    "SweepCache",
    "SweepRunner",
    "point_cache_key",
    "run_sweep_point",
    "merge_trace_grid",
    "merge_suite",
    "normalized_tables",
    "stderr_progress",
]

#: Bump when an evaluator's semantics change, invalidating cached points.
#: Schema 2: hard-fault campaigns (``chaos`` kind, ``fault_spec`` field).
#: Schema 3: entries carry a CRC32 over the canonical payload JSON, so a
#: bit-rotted or hand-mangled entry misses instead of replaying garbage.
#: Schema 4: sensor-fault campaigns (``sensor_chaos`` kind,
#: ``sensor_spec`` point field) — the key now hashes the sensor spec, so
#: a cached healthy point can never be served for a sensor-faulted one.
#: Schema 5: soft-error campaigns (``soft_error`` kind,
#: ``soft_error_spec`` point field) — SEU flips in Q-table SRAM and mode
#: registers change every evaluator's result surface, so the key hashes
#: the SEU spec (and the config now carries ecc_protect / scrub_every).
#: Schema 6: the paper-figure campaign (``campaign`` kind, with the
#: pretrained-artifact content hash in the key), the cross-benchmark
#: leakage fix (``suite`` cells now clone from a frozen post-pretrain
#: snapshot instead of chaining one live policy), and full-32-bit-CRC
#: benchmark trace seeding — every trace/suite result surface changed,
#: so schema-5 entries must miss.
CACHE_SCHEMA = 6

DEFAULT_CACHE_DIR = ".sweep_cache"

logger = logging.getLogger("repro.sim.sweep")

POINT_KINDS = (
    "trace", "load", "suite", "mode_error", "chaos", "sensor_chaos",
    "soft_error", "campaign",
)

MODE_DESIGNS = tuple(f"mode{int(m)}" for m in OperationMode)


# ----------------------------------------------------------------------
# Grid specification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepPoint:
    """One independent simulation job of a sweep grid.

    ``traffic`` names a benchmark (``trace``), a synthetic pattern
    (``load`` / ``mode_error``), or a comma-joined ordered benchmark
    list (``suite``).  ``cycles`` is the trace injection span for trace
    kinds, the injection span for ``load``, and the packet count for
    ``mode_error``.  Unused numeric fields keep their defaults so cache
    keys stay stable across kinds.
    """

    kind: str
    design: str
    traffic: str
    seed: int
    cycles: int
    error_scale: float = 1.0
    rate: float = 0.0
    error_probability: float = 0.0
    #: hard-fault campaign spec ("" = healthy); part of the cache key, so
    #: identical schedules replay from cache and new ones re-simulate
    fault_spec: str = ""
    #: sensor-fault campaign spec ("" = healthy telemetry); also part of
    #: the cache key (schema 4)
    sensor_spec: str = ""
    #: soft-error (SEU) campaign spec ("" = upset-free SRAM); part of the
    #: cache key (schema 5)
    soft_error_spec: str = ""
    #: content hash of the pretrained-policy artifact a ``campaign`` cell
    #: clones from ("" = stateless design); part of the cache key, so a
    #: cell retrained under a different config can never replay stale
    #: results
    artifact_hash: str = ""
    #: filesystem location of that artifact; deliberately NOT in the
    #: cache key — moving or renaming the artifact directory must not
    #: invalidate results whose content hash is unchanged
    artifact_path: str = ""

    def __post_init__(self) -> None:
        if self.kind not in POINT_KINDS:
            raise ValueError(f"unknown point kind {self.kind!r}")
        if self.kind == "mode_error":
            if self.design not in MODE_DESIGNS:
                raise ValueError(
                    f"mode_error points take designs {MODE_DESIGNS}, got {self.design!r}"
                )
        elif self.kind == "chaos":
            # Chaos points compare routing policies, not RL designs.
            if self.design not in ROUTING_FUNCTIONS:
                raise ValueError(
                    f"chaos points take routings "
                    f"{tuple(sorted(ROUTING_FUNCTIONS))}, got {self.design!r}"
                )
        elif self.design not in DESIGN_ORDER:
            raise ValueError(
                f"unknown design {self.design!r}; pick one of {', '.join(DESIGN_ORDER)}"
            )
        if self.cycles < 1:
            raise ValueError("cycles must be positive")

    def label(self) -> str:
        """Short human-readable identifier used in progress lines."""
        parts = [self.kind, self.design, self.traffic, f"s{self.seed}"]
        if self.kind in ("load", "chaos", "sensor_chaos", "soft_error") and self.rate:
            parts.append(f"r{self.rate:g}")
        if self.kind == "mode_error":
            parts.append(f"p{self.error_probability:g}")
        if self.error_scale != 1.0:
            parts.append(f"x{self.error_scale:g}")
        if self.fault_spec:
            parts.append(self.fault_spec)
        if self.sensor_spec:
            parts.append(self.sensor_spec)
        if self.soft_error_spec:
            parts.append(self.soft_error_spec)
        if self.artifact_hash:
            parts.append(f"a{self.artifact_hash[:8]}")
        return ":".join(parts)


@dataclass(frozen=True)
class SweepSpec:
    """Declarative grid: the cross product expanded by :meth:`expand`.

    Expansion order is deterministic — traffic (outer), error scale,
    rate / error probability, seed, design (inner) — so result lists
    line up across runs and ``--jobs`` settings.
    """

    config: SimulationConfig
    kind: str = "trace"
    designs: Tuple[str, ...] = DESIGN_ORDER
    traffics: Tuple[str, ...] = ("canneal",)
    seeds: Tuple[int, ...] = (0,)
    error_scales: Tuple[float, ...] = (1.0,)
    rates: Tuple[float, ...] = (0.0,)
    error_probabilities: Tuple[float, ...] = (0.0,)
    #: hard-fault campaign axis (chaos kinds only; "" = healthy baseline)
    fault_specs: Tuple[str, ...] = ("",)
    #: sensor-fault campaign axis (sensor_chaos kind only)
    sensor_specs: Tuple[str, ...] = ("",)
    #: soft-error campaign axis (soft_error kind only)
    soft_error_specs: Tuple[str, ...] = ("",)
    cycles: int = 3_000

    def __post_init__(self) -> None:
        if self.kind not in POINT_KINDS:
            raise ValueError(f"unknown sweep kind {self.kind!r}")
        for name in ("designs", "traffics", "seeds", "error_scales",
                     "fault_specs", "sensor_specs", "soft_error_specs"):
            if not getattr(self, name):
                raise ValueError(f"{name} cannot be empty")

    def expand(self) -> List[SweepPoint]:
        """The grid's jobs, in deterministic order."""
        points = []
        traffics = (",".join(self.traffics),) if self.kind == "suite" else self.traffics
        fault_specs = (
            self.fault_specs if self.kind in ("chaos", "sensor_chaos") else ("",)
        )
        sensor_specs = self.sensor_specs if self.kind == "sensor_chaos" else ("",)
        soft_error_specs = (
            self.soft_error_specs if self.kind == "soft_error" else ("",)
        )
        rated = ("load", "chaos", "sensor_chaos", "soft_error")
        for traffic in traffics:
            for scale in self.error_scales:
                for fault_spec in fault_specs:
                    for sensor_spec in sensor_specs:
                        for soft_error_spec in soft_error_specs:
                            for extra in self._extra_axis():
                                for seed in self.seeds:
                                    for design in self.designs:
                                        points.append(
                                            SweepPoint(
                                                kind=self.kind,
                                                design=design,
                                                traffic=traffic,
                                                seed=seed,
                                                cycles=self.cycles,
                                                error_scale=scale,
                                                rate=extra if self.kind in rated else 0.0,
                                                error_probability=(
                                                    extra
                                                    if self.kind == "mode_error"
                                                    else 0.0
                                                ),
                                                fault_spec=fault_spec,
                                                sensor_spec=sensor_spec,
                                                soft_error_spec=soft_error_spec,
                                            )
                                        )
        return points

    def _extra_axis(self) -> Tuple[float, ...]:
        if self.kind in ("load", "chaos", "sensor_chaos", "soft_error"):
            return self.rates
        if self.kind == "mode_error":
            return self.error_probabilities
        return (0.0,)

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        """JSON-able form (inverse of :meth:`from_dict`)."""
        out = dataclasses.asdict(self)
        out["config"] = dataclasses.asdict(self.config)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SweepSpec":
        """Build a spec from a plain dict (e.g. a JSON grid file)."""
        kwargs = dict(data)
        config = kwargs.pop("config", {})
        if not isinstance(config, SimulationConfig):
            config = dict(config)
            if "error_severity" in config:
                config["error_severity"] = tuple(config["error_severity"])
            config = SimulationConfig(**config)
        for name in ("designs", "traffics", "seeds", "error_scales",
                     "rates", "error_probabilities", "fault_specs",
                     "sensor_specs", "soft_error_specs"):
            if name in kwargs:
                kwargs[name] = tuple(kwargs[name])
        return cls(config=config, **kwargs)


# ----------------------------------------------------------------------
# Point evaluators (run inside worker processes — keep module-level)
# ----------------------------------------------------------------------
def _eval_trace(config: SimulationConfig, point: SweepPoint) -> Dict[str, object]:
    config = dataclasses.replace(config, error_scale=point.error_scale)
    policy = default_design_factories(point.seed)[point.design]()
    records = synthesize_benchmark_trace(point.traffic, config, point.cycles, point.seed)
    result = run_design_on_trace(
        policy, records, config, benchmark=point.traffic, seed=point.seed
    )
    return {"run": result.constructor_dict()}


def _eval_suite(config: SimulationConfig, point: SweepPoint) -> Dict[str, object]:
    """One design's row of the benchmark suite.

    The design is pre-trained once, snapshotted, and every benchmark in
    the row then runs a fresh clone of the frozen snapshot — matching
    ``run_parsec_suite`` and keeping online adaptation cell-local (the
    previous single-live-policy chain leaked learned state from each
    benchmark into the next, making results order-dependent).
    """
    config = dataclasses.replace(config, error_scale=point.error_scale)
    factory = default_design_factories(point.seed)[point.design]
    policy = factory()
    pretrain_policy(policy, config, seed=point.seed)
    snapshot = policy.to_state()
    suite = {}
    for benchmark in point.traffic.split(","):
        records = synthesize_benchmark_trace(benchmark, config, point.cycles, point.seed)
        result = run_design_on_trace(
            clone_policy(factory, snapshot), records, config,
            benchmark=benchmark, seed=point.seed, pretrained=True,
        )
        suite[benchmark] = result.constructor_dict()
    return {"suite": suite}


def _eval_campaign(config: SimulationConfig, point: SweepPoint) -> Dict[str, object]:
    """One campaign cell: a single (benchmark, design) measurement run
    cloned from a pretrained, frozen policy artifact.

    The artifact container is validated (magic, version, body CRC) and
    its content key checked against the point's ``artifact_hash`` before
    the state is loaded — a missing, torn, or mismatched artifact is an
    evaluator failure, which the supervisor retries and then
    quarantines instead of measuring garbage.
    """
    config = dataclasses.replace(config, error_scale=point.error_scale)
    factory = default_design_factories(point.seed)[point.design]
    policy = factory()
    if point.artifact_path:
        state, meta = load_policy_artifact(point.artifact_path)
        if point.artifact_hash and meta.get("key") != point.artifact_hash:
            raise ValueError(
                f"artifact {point.artifact_path} carries key "
                f"{meta.get('key')!r}; this cell expects {point.artifact_hash!r}"
            )
        policy = clone_policy(factory, state)
    elif policy.trainable:
        raise ValueError(
            f"campaign cell for trainable design {point.design!r} has no "
            "pretrained artifact; run it through repro.sim.campaign"
        )
    records = synthesize_benchmark_trace(point.traffic, config, point.cycles, point.seed)
    result = run_design_on_trace(
        policy, records, config,
        benchmark=point.traffic, seed=point.seed, pretrained=True,
    )
    return {"run": result.constructor_dict()}


def _eval_load(config: SimulationConfig, point: SweepPoint) -> Dict[str, object]:
    config = dataclasses.replace(config, error_scale=point.error_scale)
    policy = default_design_factories(point.seed)[point.design]()
    sim = Simulator(config, policy, seed=point.seed)
    if sim.policy.trainable:
        sim.pretrain()
    sim.policy.freeze()
    source = SyntheticTraffic(
        sim.network.topology,
        pattern=point.traffic,
        injection_rate=point.rate,
        packet_size=config.packet_size,
        flit_bits=config.flit_bits,
        rng=random.Random(point.seed + 9),
    )
    sim.run_cycles(source, point.cycles, learn=True)
    try:
        sim.run_until_drained(NullTraffic(), lambda: True, learn=True)
    except RuntimeError:
        return {
            "load": {"rate": point.rate, "latency": None,
                     "throughput": 0.0, "saturated": True},
        }
    stats = sim.network.stats
    return {
        "load": {"rate": point.rate, "latency": stats.mean_latency,
                 "throughput": stats.throughput, "saturated": False},
    }


def _eval_mode_error(config: SimulationConfig, point: SweepPoint) -> Dict[str, object]:
    mode = OperationMode(int(point.design[len("mode"):]))
    rng = random.Random(point.seed)
    net = Network(
        MeshTopology(config.width, config.height), rng=random.Random(point.seed + 1)
    )
    net.set_all_modes(mode)
    for _, model in net.channel_models():
        model.event_probability = point.error_probability
    nodes = net.topology.num_nodes
    created = 0
    while created < point.cycles or not net.quiescent:
        if created < point.cycles and net.now % 2 == 0:
            src, dst = rng.randrange(nodes), rng.randrange(nodes)
            if src != dst:
                net.inject(
                    Packet(
                        src, dst, config.packet_size, config.flit_bits, net.now,
                        payloads=[
                            rng.getrandbits(config.flit_bits)
                            for _ in range(config.packet_size)
                        ],
                    )
                )
                created += 1
        net.cycle()
        if net.now > 500_000:
            raise RuntimeError("network failed to drain")
    net.harvest_epoch_counters(1)
    stats = net.stats
    return {
        "stats": {
            "mean_latency": stats.mean_latency,
            "retransmission_events": stats.retransmission_events,
            "corrected_errors": stats.corrected_errors,
            "escaped_errors": stats.escaped_errors,
            "duplicate_flits": stats.duplicate_flits,
        },
    }


def _eval_chaos(
    config: SimulationConfig, point: SweepPoint, tracer=None
) -> Dict[str, object]:
    """Graceful-degradation run: one routing policy under a hard-fault
    campaign with open-loop uniform traffic.

    Invariant-watchdog trips do not fail the sweep — they come back as a
    structured ``diagnosis`` payload, because "this configuration
    deadlocks under this cut" *is* the measurement.

    ``tracer`` attaches an event tracer to the network (CLI
    ``chaos --trace``).  Traced runs execute in-process and bypass the
    result cache — a tracer cannot cross the worker-process boundary,
    and events are a side channel the cache key does not cover.
    """
    topology = MeshTopology(config.width, config.height)
    network = Network(
        topology,
        routing_fn=point.design,
        num_vcs=config.num_vcs,
        vc_depth=config.vc_depth,
        flit_bits=config.flit_bits,
        arq_capacity=config.arq_capacity,
        channel_latency=config.channel_latency,
        rng=random.Random(point.seed + 1),
        routing_seed=point.seed,
        watchdog_interval=config.watchdog_interval,
        deadlock_cycles=config.deadlock_cycles,
        max_packet_age=config.max_packet_age,
    )
    if tracer is not None:
        network.attach_tracer(tracer)
    model = HardFaultModel(network, HardFaultSchedule.parse(point.fault_spec))
    network.hard_faults = model
    rate = point.rate if point.rate > 0.0 else 0.1
    rng = random.Random(point.seed + 7)
    nodes = topology.num_nodes
    diagnosis = None
    message_id = 0
    try:
        for _ in range(point.cycles):
            if rng.random() < rate:
                src = rng.randrange(nodes)
                dst = rng.randrange(nodes)
                if src != dst:
                    network.inject(
                        Packet(
                            src, dst, config.packet_size, config.flit_bits,
                            network.now, message_id=message_id,
                        )
                    )
                    message_id += 1
            network.cycle()
        deadline = network.now + config.max_drain_cycles
        while not network.quiescent and network.now < deadline:
            network.cycle()
    except NoCInvariantError as exc:
        diagnosis = {
            "error": type(exc).__name__,
            "message": str(exc),
            "report": exc.report,
        }
    network.harvest_epoch_counters(0)
    stats = network.stats
    outstanding = sum(ni.outstanding_messages for ni in network.interfaces)
    return {
        "chaos": {
            "routing": point.design,
            "fault_spec": point.fault_spec,
            "applied": list(model.applied),
            "delivered_fraction": stats.delivered_fraction,
            "messages_created": stats.messages_created,
            "packets_delivered": stats.packets_delivered,
            "messages_dropped": stats.messages_dropped,
            "packets_dropped": stats.packets_dropped,
            "unreachable_drops": stats.unreachable_drops,
            "reroutes": stats.reroutes,
            "fault_recoveries": stats.fault_recoveries,
            "link_kills": stats.link_kills,
            "router_kills": stats.router_kills,
            "outstanding": outstanding,
            "pre_fault_latency": model.pre_fault_latency,
            "post_fault_latency": model.post_fault_latency,
            "diagnosis": diagnosis,
        },
    }


def _eval_sensor_chaos(
    config: SimulationConfig, point: SweepPoint, tracer=None
) -> Dict[str, object]:
    """Control-plane degradation run: one full closed-loop design under a
    sensor-fault campaign (and optionally a simultaneous hard-fault
    campaign via ``fault_spec``) with open-loop synthetic traffic.

    Unlike ``chaos`` (Network-only, no policy), this drives the complete
    Simulator — the sensor faults corrupt the observation path between
    ``observe_router`` and the policy, which is the thing under test.
    Invariant-watchdog trips during the measured window come back as a
    structured ``diagnosis``; with defenses disabled the corrupted
    telemetry may crash the policy, which surfaces as an evaluator
    failure (retry -> quarantine) — exactly the behavior the hardened
    path exists to prevent.
    """
    config = dataclasses.replace(
        config,
        error_scale=point.error_scale,
        fault_spec=point.fault_spec,
        sensor_spec=point.sensor_spec,
    )
    policy = default_design_factories(point.seed)[point.design]()
    sim = Simulator(config, policy, seed=point.seed, tracer=tracer)
    if sim.policy.trainable and config.pretrain_cycles > 0:
        sim.pretrain()
    sim.policy.freeze()
    if config.warmup_cycles > 0:
        sim.warmup()
    sim.begin_measurement()
    start = sim.network.now
    rate = point.rate if point.rate > 0.0 else 0.05
    source = SyntheticTraffic(
        sim.network.topology,
        pattern=point.traffic or "uniform",
        injection_rate=rate,
        packet_size=config.packet_size,
        flit_bits=config.flit_bits,
        rng=random.Random(point.seed + 7),
    )
    diagnosis = None
    try:
        sim.run(source, point.cycles, learn=True)
        deadline = sim.network.now + config.max_drain_cycles
        while not sim.network.quiescent and sim.network.now < deadline:
            sim._cycle()
            if sim.network.now % config.epoch_cycles == 0:
                sim._epoch_boundary(learn=True)
    except NoCInvariantError as exc:
        diagnosis = {
            "error": type(exc).__name__,
            "message": str(exc),
            "report": exc.report,
        }
    result = sim.finish_measurement(point.traffic or "uniform", sim.network.now - start)
    guard = sim.obs_guard
    outstanding = sum(ni.outstanding_messages for ni in sim.network.interfaces)
    return {
        "sensor_chaos": {
            "design": point.design,
            "sensor_spec": point.sensor_spec,
            "fault_spec": point.fault_spec,
            "defenses": bool(config.sensor_defenses),
            "delivered_fraction": result.delivered_fraction,
            "messages_created": result.messages_created,
            "packets_delivered": result.packets_delivered,
            "messages_dropped": result.messages_dropped,
            "mean_latency": result.mean_latency,
            "rejected_observations": result.rejected_observations,
            "sensor_holds": result.sensor_holds,
            "sensor_clamps": result.sensor_clamps,
            "sensor_defaults": int(sim.metrics.peek("sensor.defaults")),
            "debounced_switches": int(sim.metrics.peek("sensor.debounced_switches")),
            "injected": dict(sim.sensors.injected) if sim.sensors is not None else {},
            "quarantined_routers": sorted(guard.quarantined) if guard is not None else [],
            "safe_mode_entries": result.safe_mode_entries,
            "mode_switches": result.mode_switches,
            "outstanding": outstanding,
            "diagnosis": diagnosis,
        },
    }


def _eval_soft_error(
    config: SimulationConfig, point: SweepPoint, tracer=None
) -> Dict[str, object]:
    """Learning-state degradation run: one full closed-loop design under
    an SEU campaign flipping bits in the Q-table SRAM and the mode
    registers, with open-loop synthetic traffic.

    The thing under test is the SECDED + scrub + TMR defense layer:
    with ``ecc_protect`` the scrubber repairs single-bit upsets before
    they steer routing decisions, without it the corrupted Q-values and
    mode registers drive the mesh directly.  Invariant-watchdog trips
    during the measured window come back as a structured ``diagnosis``.
    """
    config = dataclasses.replace(
        config,
        error_scale=point.error_scale,
        fault_spec=point.fault_spec,
        soft_error_spec=point.soft_error_spec,
    )
    policy = default_design_factories(point.seed)[point.design]()
    sim = Simulator(config, policy, seed=point.seed, tracer=tracer)
    if sim.policy.trainable and config.pretrain_cycles > 0:
        sim.pretrain()
    sim.policy.freeze()
    if config.warmup_cycles > 0:
        sim.warmup()
    sim.begin_measurement()
    start = sim.network.now
    rate = point.rate if point.rate > 0.0 else 0.05
    source = SyntheticTraffic(
        sim.network.topology,
        pattern=point.traffic or "uniform",
        injection_rate=rate,
        packet_size=config.packet_size,
        flit_bits=config.flit_bits,
        rng=random.Random(point.seed + 7),
    )
    diagnosis = None
    try:
        sim.run(source, point.cycles, learn=True)
        deadline = sim.network.now + config.max_drain_cycles
        while not sim.network.quiescent and sim.network.now < deadline:
            sim._cycle()
            if sim.network.now % config.epoch_cycles == 0:
                sim._epoch_boundary(learn=True)
    except NoCInvariantError as exc:
        diagnosis = {
            "error": type(exc).__name__,
            "message": str(exc),
            "report": exc.report,
        }
    result = sim.finish_measurement(point.traffic or "uniform", sim.network.now - start)
    outstanding = sum(ni.outstanding_messages for ni in sim.network.interfaces)
    return {
        "soft_error": {
            "design": point.design,
            "soft_error_spec": point.soft_error_spec,
            "fault_spec": point.fault_spec,
            "ecc": bool(config.ecc_protect),
            "scrub_every": config.scrub_every,
            "delivered_fraction": result.delivered_fraction,
            "messages_created": result.messages_created,
            "packets_delivered": result.packets_delivered,
            "messages_dropped": result.messages_dropped,
            "mean_latency": result.mean_latency,
            "injected": (
                dict(sim.soft_errors.injected) if sim.soft_errors is not None else {}
            ),
            "scrubs": int(sim.metrics.peek("ecc.scrubs")),
            "corrected": int(sim.metrics.peek("ecc.corrected")),
            "detected": int(sim.metrics.peek("ecc.detected")),
            "quarantined_rows": int(sim.metrics.peek("ecc.quarantined_rows")),
            "mode_votes": int(sim.metrics.peek("ecc.mode_votes")),
            "words_single": int(sim.metrics.peek("softerror.words_single")),
            "words_multi": int(sim.metrics.peek("softerror.words_multi")),
            "max_abs_q": max(
                (
                    abs(value)
                    for storage in sim.policy.q_storages()
                    for row in storage.agent._table.values()
                    for value in row
                ),
                default=0.0,
            ),
            "safe_mode_entries": result.safe_mode_entries,
            "mode_switches": result.mode_switches,
            "outstanding": outstanding,
            "diagnosis": diagnosis,
        },
    }


_EVALUATORS = {
    "trace": _eval_trace,
    "load": _eval_load,
    "suite": _eval_suite,
    "mode_error": _eval_mode_error,
    "chaos": _eval_chaos,
    "sensor_chaos": _eval_sensor_chaos,
    "soft_error": _eval_soft_error,
    "campaign": _eval_campaign,
}


def run_sweep_point(config: SimulationConfig, point: SweepPoint) -> Dict[str, object]:
    """Evaluate one point; the single code path for serial AND pooled runs."""
    started = time.perf_counter()
    payload = _EVALUATORS[point.kind](config, point)
    payload["elapsed"] = time.perf_counter() - started
    return payload


def _supervised_worker(conn, config: SimulationConfig, point: SweepPoint) -> None:
    """Worker entry point: evaluate one point, report through the pipe.

    Sends ``("ok", payload)`` or ``("error", reason)``; a worker that
    dies before sending anything (OOM kill, segfault, SIGKILL) leaves
    the pipe at EOF, which the supervisor detects as a hard death.
    """
    try:
        payload = run_sweep_point(config, point)
    except BaseException as exc:  # noqa: BLE001 - must never leak upward
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:  # pragma: no cover - supervisor gone
            pass
        finally:
            conn.close()
        return
    try:
        conn.send(("ok", payload))
    finally:
        conn.close()


class _PendingTask:
    """Supervisor bookkeeping for one not-yet-completed point."""

    __slots__ = ("index", "key", "point", "attempts", "not_before")

    def __init__(self, index: int, key: str, point: SweepPoint) -> None:
        self.index = index
        self.key = key
        self.point = point
        self.attempts = 0
        #: monotonic time before which the task must not relaunch (backoff)
        self.not_before = 0.0


# ----------------------------------------------------------------------
# Cache
# ----------------------------------------------------------------------
def point_cache_key(config: SimulationConfig, point: SweepPoint) -> str:
    """Stable content hash of everything a point's result depends on.

    ``artifact_path`` is excluded: where an artifact lives is an
    execution detail, while WHAT it contains is covered by
    ``artifact_hash`` — so a relocated artifact directory replays from
    cache and a retrained artifact (new hash) re-simulates.
    """
    point_dict = dataclasses.asdict(point)
    point_dict.pop("artifact_path", None)
    fingerprint = {
        "schema": CACHE_SCHEMA,
        "config": dataclasses.asdict(config),
        "point": point_dict,
    }
    blob = json.dumps(fingerprint, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:24]


def _payload_crc(payload: Dict[str, object]) -> int:
    """CRC32 over the canonical (sorted, compact) payload JSON.

    Computed on the dumps->loads round trip so the checksum stored at
    write time matches what a reader recomputes from the parsed entry
    (tuples become lists, keys become strings) — the two serializations
    are then byte-identical.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    normalized = json.dumps(
        json.loads(canonical), sort_keys=True, separators=(",", ":")
    )
    return zlib.crc32(normalized.encode("utf-8")) & 0xFFFFFFFF


class SweepCache:
    """One JSON file per completed point under ``root``.

    Files are written atomically (uniquely-named temp + rename) so an
    interrupted sweep never leaves a truncated entry and two workers
    finishing the same key never trample each other's temp file; on
    resume, valid entries replay and only the missing points execute.

    :meth:`load` is a *validating* miss-on-anything-suspect reader: a
    truncated file, a non-JSON file, a wrong schema, a malformed entry
    shape, or a checksum mismatch all return None (cache miss) — the
    cache never raises and never replays a corrupt payload.
    """

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)

    def path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def load(self, key: str) -> Optional[Dict[str, object]]:
        path = self.path(key)
        try:
            with path.open() as handle:
                entry = json.load(handle)
        except (OSError, UnicodeDecodeError, json.JSONDecodeError):
            return None
        if not isinstance(entry, dict) or entry.get("schema") != CACHE_SCHEMA:
            return None
        payload = entry.get("payload")
        if not isinstance(payload, dict):
            return None
        try:
            if _payload_crc(payload) != entry.get("crc32"):
                return None
        except (TypeError, ValueError):
            return None
        return payload

    def store(self, key: str, point: SweepPoint, payload: Dict[str, object]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        entry = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "point": dataclasses.asdict(point),
            "crc32": _payload_crc(payload),
            "payload": payload,
        }
        # The temp name must be unique per writer: concurrent workers (or
        # two sweeps sharing a cache dir) finishing the same key would
        # otherwise write through the same ".tmp" path and race the
        # rename, publishing an interleaved file.
        tmp = self.root / f"{key}.{os.getpid()}.{uuid.uuid4().hex}.tmp"
        try:
            with tmp.open("w") as handle:
                json.dump(entry, handle, indent=2)
            os.replace(tmp, self.path(key))
        finally:
            if tmp.exists():  # pragma: no cover - only on a failed write
                tmp.unlink()


# ----------------------------------------------------------------------
# Results and progress
# ----------------------------------------------------------------------
@dataclass
class PointResult:
    """One point's outcome, decoded back into rich objects."""

    point: SweepPoint
    cached: bool
    elapsed: float
    run: Optional[RunResult] = None
    suite: Optional[Dict[str, RunResult]] = None
    load: Optional[Dict[str, float]] = None
    mode_stats: Optional[Dict[str, float]] = None
    chaos: Optional[Dict[str, object]] = None
    sensor: Optional[Dict[str, object]] = None
    soft_error: Optional[Dict[str, object]] = None


def _payload_to_result(
    point: SweepPoint, payload: Dict[str, object], cached: bool
) -> PointResult:
    result = PointResult(
        point=point, cached=cached, elapsed=float(payload.get("elapsed", 0.0))
    )
    if payload.get("run") is not None:
        result.run = RunResult.from_dict(payload["run"])
    if payload.get("suite") is not None:
        result.suite = {
            bench: RunResult.from_dict(data)
            for bench, data in payload["suite"].items()
        }
    if payload.get("load") is not None:
        load = dict(payload["load"])
        if load.get("saturated"):
            load["latency"] = float("inf")
        result.load = load
    if payload.get("stats") is not None:
        result.mode_stats = dict(payload["stats"])
    if payload.get("chaos") is not None:
        result.chaos = dict(payload["chaos"])
    if payload.get("sensor_chaos") is not None:
        result.sensor = dict(payload["sensor_chaos"])
    if payload.get("soft_error") is not None:
        result.soft_error = dict(payload["soft_error"])
    return result


@dataclass
class SweepProgress:
    """Structured progress snapshot handed to the reporter callback."""

    total: int
    done: int = 0
    cached: int = 0
    running: int = 0
    retried: int = 0
    quarantined: int = 0
    executed_seconds: List[float] = field(default_factory=list)
    jobs: int = 1
    current: Optional[str] = None

    @property
    def pending(self) -> int:
        return self.total - self.done

    def eta_seconds(self) -> Optional[float]:
        """Wall-clock estimate for the remaining points, or None before
        the first executed point lands."""
        if not self.executed_seconds or not self.pending:
            return None
        mean = sum(self.executed_seconds) / len(self.executed_seconds)
        return mean * self.pending / max(1, self.jobs)


def stderr_progress(progress: SweepProgress) -> None:
    """Default human-readable reporter: one status line per event."""
    eta = progress.eta_seconds()
    eta_text = f", eta ~{eta:.0f}s" if eta is not None else ""
    trouble = ""
    if progress.retried or progress.quarantined:
        trouble = (
            f", {progress.retried} retried, "
            f"{progress.quarantined} quarantined"
        )
    tail = f" [{progress.current}]" if progress.current else ""
    print(
        f"[sweep] {progress.done}/{progress.total} done "
        f"({progress.cached} cached, {progress.running} running"
        f"{trouble}{eta_text}){tail}",
        file=sys.stderr,
    )


@dataclass
class SweepReport:
    """Structured outcome of one :meth:`SweepRunner.run` invocation.

    ``quarantined`` lists the labels of points that kept failing after
    every retry (their result slots are None); ``retries`` counts retry
    *attempts* across all points, ``timeouts`` and ``worker_deaths``
    break down why workers were replaced.
    """

    total: int = 0
    completed: int = 0
    from_cache: int = 0
    executed: int = 0
    retries: int = 0
    timeouts: int = 0
    worker_deaths: int = 0
    quarantined: List[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def succeeded(self) -> bool:
        """True when every point produced a result."""
        return not self.quarantined

    def as_dict(self) -> Dict[str, object]:
        return {
            "total": self.total,
            "completed": self.completed,
            "from_cache": self.from_cache,
            "executed": self.executed,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "worker_deaths": self.worker_deaths,
            "quarantined": len(self.quarantined),
            "elapsed_seconds": self.elapsed_seconds,
        }


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
class SweepRunner:
    """Expand a spec, replay cached points, supervise the rest.

    ``jobs=1`` runs pending points serially in-process through the exact
    same evaluator the workers use, so results are bit-identical across
    job counts.  ``use_cache=False`` disables both lookup and storage;
    ``refresh=True`` skips lookup but stores fresh results.  After
    :meth:`run`, ``executed`` counts simulations actually performed
    (i.e. cache misses) and :attr:`report` holds the structured
    :class:`SweepReport`.

    Supervision knobs:

    ``point_timeout``
        Wall-clock seconds one point may run before its worker is killed
        and the point retried (None = no limit).  Only enforced on the
        parallel path — a serial run cannot preempt itself.
    ``max_retries``
        How many times a failing point (evaluator exception, timeout, or
        hard worker death) is relaunched before being *quarantined*: its
        result slot stays None and the sweep carries on, so one poison
        point cannot take down a thousand-point grid.
    ``retry_base_delay`` / ``retry_jitter``
        Exponential backoff between attempts:
        ``base * 2**(attempt-1) * (1 + jitter * u)`` with ``u`` drawn
        from a :class:`random.Random` seeded by (cache key, attempt) —
        deterministic per point, decorrelated across points.
    """

    def __init__(
        self,
        spec: SweepSpec,
        jobs: int = 1,
        cache_dir: Union[str, Path] = DEFAULT_CACHE_DIR,
        use_cache: bool = True,
        refresh: bool = False,
        progress: Optional[Callable[[SweepProgress], None]] = None,
        point_timeout: Optional[float] = None,
        max_retries: int = 2,
        retry_base_delay: float = 0.5,
        retry_jitter: float = 0.5,
        registry=None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        if point_timeout is not None and point_timeout <= 0:
            raise ValueError("point_timeout must be positive (or None)")
        if max_retries < 0:
            raise ValueError("max_retries cannot be negative")
        if retry_base_delay < 0 or retry_jitter < 0:
            raise ValueError("backoff parameters cannot be negative")
        self.spec = spec
        self.jobs = jobs
        self.cache = SweepCache(cache_dir) if use_cache else None
        self.refresh = refresh
        self.progress = progress
        self.point_timeout = point_timeout
        self.max_retries = max_retries
        self.retry_base_delay = retry_base_delay
        self.retry_jitter = retry_jitter
        self.executed = 0
        self.report: Optional[SweepReport] = None
        #: optional repro.obs MetricRegistry that absorbs the final
        #: SweepReport counts as ``sweep.*`` gauges after each run
        self.registry = registry

    # ------------------------------------------------------------------
    def run(self) -> List[Optional[PointResult]]:
        """Execute the grid; results are in spec expansion order.

        A quarantined point's slot is None — the merge helpers skip
        None, and :attr:`report` names every quarantined point.
        """
        started = time.monotonic()
        points = self.spec.expand()
        results: List[Optional[PointResult]] = [None] * len(points)
        state = SweepProgress(total=len(points), jobs=self.jobs)
        report = SweepReport(total=len(points))
        self.executed = 0
        self.report = report

        pending: List[_PendingTask] = []
        for index, point in enumerate(points):
            key = point_cache_key(self.spec.config, point)
            payload = (
                self.cache.load(key) if self.cache and not self.refresh else None
            )
            if payload is not None:
                results[index] = _payload_to_result(point, payload, cached=True)
                state.cached += 1
                state.done += 1
                report.from_cache += 1
                report.completed += 1
            else:
                pending.append(_PendingTask(index, key, point))
        self._report(state)

        if pending:
            if self.jobs == 1:
                self._run_serial(pending, results, state, report)
            else:
                self._run_supervised(pending, results, state, report)
        report.elapsed_seconds = time.monotonic() - started
        if self.registry is not None:
            self.registry.ingest("sweep", report.as_dict())
        return results

    # ------------------------------------------------------------------
    def _backoff_delay(self, key: str, attempt: int) -> float:
        """Seeded exponential backoff with jitter for retry ``attempt``."""
        rng = random.Random(zlib.crc32(key.encode("utf-8")) + attempt)
        return (
            self.retry_base_delay
            * (2.0 ** (attempt - 1))
            * (1.0 + self.retry_jitter * rng.random())
        )

    def _run_serial(self, pending, results, state, report) -> None:
        for task in pending:
            state.running = 1
            state.current = task.point.label()
            self._report(state)
            payload = None
            reason = ""
            while payload is None:
                try:
                    payload = run_sweep_point(self.spec.config, task.point)
                except Exception as exc:  # noqa: BLE001 - quarantine, not crash
                    task.attempts += 1
                    reason = f"{type(exc).__name__}: {exc}"
                    if task.attempts > self.max_retries:
                        break
                    report.retries += 1
                    state.retried += 1
                    delay = self._backoff_delay(task.key, task.attempts)
                    logger.warning(
                        "point %s failed (%s); retry %d/%d in %.2fs",
                        task.point.label(), reason,
                        task.attempts, self.max_retries, delay,
                    )
                    if delay > 0:
                        time.sleep(delay)
            state.running = 0
            if payload is None:
                self._quarantine(task, reason, report, state)
            else:
                self._finish(task.index, task.key, task.point, payload,
                             results, state, report)

    # ------------------------------------------------------------------
    def _run_supervised(self, pending, results, state, report) -> None:
        """Per-point worker processes under timeout/retry supervision."""
        ctx = multiprocessing.get_context()
        waiting = list(pending)
        active: Dict[object, List] = {}  # conn -> [task, process, deadline]
        try:
            while waiting or active:
                now = time.monotonic()
                launched = False
                while len(active) < self.jobs:
                    ready = [t for t in waiting if t.not_before <= now]
                    if not ready:
                        break
                    task = min(ready, key=lambda t: t.index)
                    waiting.remove(task)
                    parent, child = ctx.Pipe(duplex=False)
                    process = ctx.Process(
                        target=_supervised_worker,
                        args=(child, self.spec.config, task.point),
                        daemon=True,
                    )
                    process.start()
                    child.close()
                    deadline = (
                        now + self.point_timeout
                        if self.point_timeout is not None
                        else None
                    )
                    active[parent] = [task, process, deadline]
                    launched = True
                state.running = len(active)
                if launched:
                    self._report(state)

                if not active:
                    # Every remaining task is backing off; sleep until the
                    # earliest becomes launchable.
                    wake = min(t.not_before for t in waiting)
                    time.sleep(max(0.0, wake - time.monotonic()))
                    continue

                ready_conns = connection.wait(
                    list(active), timeout=self._wait_timeout(active, waiting)
                )
                for conn in ready_conns:
                    task, process, _deadline = active.pop(conn)
                    outcome, value = self._collect(conn, process)
                    state.running = len(active)
                    if outcome == "ok":
                        self._finish(task.index, task.key, task.point, value,
                                     results, state, report)
                    else:
                        if outcome == "death":
                            report.worker_deaths += 1
                        self._handle_failure(task, value, waiting, report, state)

                now = time.monotonic()
                for conn in list(active):
                    task, process, deadline = active[conn]
                    if deadline is not None and now >= deadline:
                        del active[conn]
                        self._kill(process)
                        conn.close()
                        report.timeouts += 1
                        state.running = len(active)
                        self._handle_failure(
                            task,
                            f"timed out after {self.point_timeout:g}s",
                            waiting, report, state,
                        )
        finally:
            for conn, (task, process, _deadline) in active.items():
                self._kill(process)
                conn.close()

    def _wait_timeout(self, active, waiting) -> Optional[float]:
        """How long :func:`connection.wait` may block: until the nearest
        worker deadline, or the nearest backoff expiry if a slot is free
        (a dead worker needs no timeout — its pipe hits EOF)."""
        now = time.monotonic()
        candidates = [
            deadline - now
            for _task, _process, deadline in active.values()
            if deadline is not None
        ]
        if len(active) < self.jobs and waiting:
            candidates.append(min(t.not_before for t in waiting) - now)
        if not candidates:
            return None
        return max(0.0, min(candidates))

    def _collect(self, conn, process):
        """Drain one finished worker; classify its outcome."""
        try:
            message = conn.recv()
        except (EOFError, OSError):
            message = None
        finally:
            conn.close()
        process.join(timeout=5.0)
        if process.is_alive():  # pragma: no cover - stuck after sending
            self._kill(process)
        if message is None:
            return "death", f"worker died (exitcode {process.exitcode})"
        status, value = message
        if status == "ok":
            return "ok", value
        return "error", value

    @staticmethod
    def _kill(process) -> None:
        if not process.is_alive():
            process.join(timeout=1.0)
            return
        process.terminate()
        process.join(timeout=2.0)
        if process.is_alive():  # pragma: no cover - terminate ignored
            process.kill()
            process.join(timeout=2.0)

    def _handle_failure(self, task, reason, waiting, report, state) -> None:
        task.attempts += 1
        if task.attempts > self.max_retries:
            self._quarantine(task, reason, report, state)
            return
        report.retries += 1
        state.retried += 1
        delay = self._backoff_delay(task.key, task.attempts)
        task.not_before = time.monotonic() + delay
        waiting.append(task)
        logger.warning(
            "point %s failed (%s); retry %d/%d in %.2fs",
            task.point.label(), reason, task.attempts, self.max_retries, delay,
        )
        self._report(state)

    def _quarantine(self, task, reason, report, state) -> None:
        label = task.point.label()
        report.quarantined.append(label)
        state.quarantined += 1
        state.done += 1
        state.current = label
        logger.error(
            "point %s quarantined after %d attempt(s): %s",
            label, task.attempts, reason,
        )
        self._report(state)

    # ------------------------------------------------------------------
    def _finish(self, index, key, point, payload, results, state, report) -> None:
        if self.cache:
            # Flush incrementally: a kill between points loses nothing.
            self.cache.store(key, point, payload)
        self.executed += 1
        report.executed += 1
        report.completed += 1
        state.executed_seconds.append(float(payload.get("elapsed", 0.0)))
        results[index] = _payload_to_result(point, payload, cached=False)
        state.done += 1
        state.current = point.label()
        self._report(state)

    def _report(self, state: SweepProgress) -> None:
        if self.progress is not None:
            self.progress(state)


# ----------------------------------------------------------------------
# Merging back into experiment.py shapes
# ----------------------------------------------------------------------
def merge_trace_grid(
    results: Sequence[PointResult],
) -> Dict[Tuple[str, float, int], Dict[str, RunResult]]:
    """Group trace-point results into (traffic, error_scale, seed) cells,
    each holding the per-design :class:`RunResult` map that
    ``experiment.compare_designs`` returns."""
    grid: Dict[Tuple[str, float, int], Dict[str, RunResult]] = {}
    for result in results:
        if result is None or result.run is None:
            continue
        cell = (result.point.traffic, result.point.error_scale, result.point.seed)
        grid.setdefault(cell, {})[result.point.design] = result.run
    return grid


def merge_suite(results: Sequence[PointResult]) -> Dict[str, Dict[str, RunResult]]:
    """Merge suite-point results into ``run_parsec_suite``'s
    {benchmark: {design: RunResult}} shape."""
    suite: Dict[str, Dict[str, RunResult]] = {}
    for result in results:
        if result is None or result.suite is None:
            continue
        for benchmark, run in result.suite.items():
            suite.setdefault(benchmark, {})[result.point.design] = run
    return suite


def normalized_tables(
    grid: Dict[Tuple[str, float, int], Dict[str, RunResult]],
    metrics: Dict[str, Callable[[RunResult], float]],
    baseline: str = "crc",
) -> Dict[Tuple[str, float, int], Dict[str, Dict[str, float]]]:
    """Per-cell normalized-to-baseline tables, via the same
    ``normalize_to_baseline`` the figures use."""
    return {
        cell: {
            name: normalize_to_baseline(designs, metric, baseline=baseline)
            for name, metric in metrics.items()
        }
        for cell, designs in grid.items()
    }
