"""Kernel throughput benchmarks: activity-driven vs naive cycle kernel.

The PR-4 performance work replaced the full-scan ``Network.cycle`` with
an activity-driven kernel (iterate only registered-active channels, NIs,
and routers; fast-forward fully idle spans in ``Network.run``).  This
module measures what that buys, honestly, on three workload shapes:

``idle``
    Sparse bursts separated by long silent spans — the common shape of
    control-epoch simulations (pre-training curricula, warm-up, drain
    tails).  Dominated by the fast-forward path.
``saturated``
    Open-loop uniform traffic at an offered load past the saturation
    knee, with a bounded outstanding-message cap so the run does not
    grow without limit.  Dominated by active-set iteration under load.
``chaos``
    Moderate uniform load under a hard-fault campaign (link and router
    kills plus an error burst) with adaptive routing — the stress shape
    of the graceful-degradation experiments.
``traced``
    Byte-for-byte the chaos scenario with a :class:`~repro.obs.trace.
    TraceBuffer` attached.  Its stats digest must equal chaos's — the
    observability layer's zero-cost-when-disabled *and* behaviour-
    neutral-when-enabled contract (DESIGN.md §12) — and the reported
    ``trace_overhead`` ratio shows what event capture costs.
``sensor``
    The full closed control loop (RL policy + observation guard) under
    a combined sensor-fault campaign — dropout, stuck-at, noise, and
    staleness — with mode-switch hysteresis enabled.  Unlike the other
    scenarios this drives the complete :class:`~repro.sim.simulator.
    Simulator`, so it proves the degraded-telemetry defenses (DESIGN.md
    §13) are kernel-identical: corruption draws, holds, and quarantines
    happen at epoch boundaries only, which both kernels execute alike.
``softerror``
    The full closed control loop under an SEU campaign flipping bits in
    the SECDED-protected Q-table SRAM and the TMR'd mode registers
    (DESIGN.md §14).  Injection and scrubbing happen at epoch
    boundaries only, so the digest — which folds in every injected
    flip, correction, detection, and quarantine — must be
    kernel-identical.

Each scenario runs on both kernels from identical seeds; the two runs
must agree on a stats digest (the bit-identical contract from
DESIGN.md §11) or the bench itself fails.  Speedups are the ratio of
measured cycles/second, which makes the *ratio* machine-independent
enough for a CI smoke check even though the absolute rates are not.

``python -m repro.cli bench`` is the entry point; ``--check`` compares
against a committed baseline (``BENCH_kernel.json``) and fails on a
speedup regression beyond the threshold or on any stats-digest drift
from a baseline entry at the same (quick, seed, mesh) point
(:func:`check_digests`).
"""

from __future__ import annotations

import random
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.faults.hardfaults import HardFaultModel, HardFaultSchedule
from repro.noc.network import Network
from repro.noc.packet import Packet
from repro.noc.topology import MeshTopology
from repro.obs import TraceBuffer

__all__ = [
    "SCENARIOS",
    "run_scenario",
    "run_bench",
    "check_regression",
    "check_digests",
    "format_report",
]

#: scenario name -> cycles at (default, --quick) scale
SCENARIOS: Dict[str, Tuple[int, int]] = {
    "idle": (150_000, 40_000),
    "saturated": (15_000, 4_000),
    "chaos": (20_000, 6_000),
    # Same cycles as chaos on purpose: run_bench() asserts their stats
    # digests are identical, proving tracing does not perturb the run.
    "traced": (20_000, 6_000),
    # Measured-window cycles of the closed-loop sensor-fault scenario
    # (pre-train/warm-up phases are on top and scale with --quick).
    "sensor": (20_000, 6_000),
    # Measured-window cycles of the closed-loop soft-error scenario
    # (same phase structure as sensor).
    "softerror": (20_000, 6_000),
}

#: payload schema version for BENCH_kernel.json
BENCH_VERSION = 1

_PACKET_SIZE = 4
_FLIT_BITS = 128


def _digest(net: Network) -> Dict[str, object]:
    """Result fingerprint both kernels must agree on (bit-identity)."""
    stats = net.stats
    return {
        "messages_created": stats.messages_created,
        "packets_delivered": stats.packets_delivered,
        "messages_dropped": stats.messages_dropped,
        "retransmission_events": stats.retransmission_events,
        "corrected_errors": stats.corrected_errors,
        "mean_latency": stats.mean_latency,
        "final_cycle": net.now,
    }


def _make_network(
    kernel: str,
    seed: int,
    width: int,
    height: int,
    routing: str = "xy",
    fault_spec: Optional[str] = None,
    error_probability: float = 0.0,
    relax_factor: float = 0.0,
) -> Network:
    net = Network(
        MeshTopology(width, height),
        routing_fn=routing,
        rng=random.Random(seed + 1),
        routing_seed=seed,
        kernel=kernel,
    )
    if fault_spec:
        net.hard_faults = HardFaultModel(net, HardFaultSchedule.parse(fault_spec))
    if error_probability > 0.0:
        for _, model in net.channel_models():
            model.event_probability = error_probability
            model.relax_factor = relax_factor
    return net


def _inject(net: Network, rng: random.Random, message_id: int) -> int:
    """Inject one uniform-random packet; returns the next message id."""
    nodes = net.topology.num_nodes
    src = rng.randrange(nodes)
    dst = rng.randrange(nodes)
    if src == dst:
        return message_id
    net.inject(
        Packet(src, dst, _PACKET_SIZE, _FLIT_BITS, net.now, message_id=message_id)
    )
    return message_id + 1


def _drain(net: Network, limit: int = 200_000) -> None:
    deadline = net.now + limit
    while not net.quiescent and net.now < deadline:
        net.cycle()


def _drive_idle(net: Network, cycles: int, rng: random.Random) -> None:
    """Short bursts separated by long idle spans (fast-forward food)."""
    burst_every = 2_000
    end = net.now + cycles
    message_id = 0
    while net.now < end:
        for _ in range(3):
            message_id = _inject(net, rng, message_id)
        net.run(min(burst_every, end - net.now))
    _drain(net)


def _drive_saturated(net: Network, cycles: int, rng: random.Random) -> None:
    """Offered load past the knee, outstanding-bounded so memory stays flat."""
    end = net.now + cycles
    message_id = 0
    nodes = net.topology.num_nodes
    cap = 16 * nodes  # enough in flight to keep every column loaded
    while net.now < end:
        if net.stats.outstanding_messages < cap:
            for _ in range(nodes // 4):
                if rng.random() < 0.5:
                    message_id = _inject(net, rng, message_id)
        net.cycle()
    _drain(net)


def _drive_chaos(net: Network, cycles: int, rng: random.Random) -> None:
    """Moderate load while the fault campaign cuts links and routers."""
    end = net.now + cycles
    message_id = 0
    while net.now < end:
        if rng.random() < 0.1:
            message_id = _inject(net, rng, message_id)
        net.cycle()
    _drain(net)


_DRIVERS: Dict[str, Callable[[Network, int, random.Random], None]] = {
    "idle": _drive_idle,
    "saturated": _drive_saturated,
    "chaos": _drive_chaos,
    "traced": _drive_chaos,
}


def _scenario_network(name: str, kernel: str, seed: int, width: int, height: int) -> Network:
    if name == "idle":
        return _make_network(
            kernel, seed, width, height, error_probability=0.002, relax_factor=0.5
        )
    if name == "saturated":
        return _make_network(
            kernel, seed, width, height, error_probability=0.01, relax_factor=0.5
        )
    if name in ("chaos", "traced"):
        # Kill an east link early, a router mid-run, and raise error rates
        # in a burst window — adaptive routing reroutes around the holes.
        spec = "link@2000:5E;router@8000:10;burst@4000+2000:0.05"
        net = _make_network(
            kernel, seed, width, height, routing="adaptive", fault_spec=spec
        )
        if name == "traced":
            net.attach_tracer(TraceBuffer())
        return net
    raise ValueError(f"unknown scenario {name!r}; pick one of {', '.join(SCENARIOS)}")


#: combined telemetry corruption for the ``sensor`` scenario: dropout,
#: one wedged temperature sensor, nack-rate noise, and a staleness window
_SENSOR_BENCH_SPEC = "drop@0.2:util;stuck@r5.temp=0.9;noise@0.05:nack;stale@r2+1500:4"


def _run_sensor_scenario(
    kernel: str, cycles: int, seed: int, width: int, height: int
) -> Dict[str, object]:
    """Closed-loop RL control under corrupted telemetry on one kernel.

    The other scenarios drive a bare :class:`Network`; the sensor faults
    and the observation guard live in the epoch loop, so this one builds
    the full :class:`Simulator`.  ``cycles`` is the measured injection
    window; the scaled pre-train and warm-up phases run on top.
    """
    from repro.core.rl_policy import RLControlPolicy
    from repro.sim.config import scaled_config
    from repro.sim.simulator import Simulator
    from repro.traffic import SyntheticTraffic

    config = scaled_config(
        width=width,
        height=height,
        epoch_cycles=250,
        pretrain_cycles=min(6_000, cycles),
        warmup_cycles=1_000,
        sensor_spec=_SENSOR_BENCH_SPEC,
        mode_hysteresis_epochs=2,
    )
    policy = RLControlPolicy(share_table=True, seed=seed)
    sim = Simulator(config, policy, seed=seed, kernel=kernel)
    start = time.perf_counter()
    sim.pretrain()
    policy.freeze()
    sim.warmup()
    source = SyntheticTraffic(
        sim.network.topology,
        pattern="uniform",
        injection_rate=0.05,
        packet_size=config.packet_size,
        flit_bits=config.flit_bits,
        rng=random.Random(seed + 97),
    )
    sim.run(source, cycles, learn=True)
    deadline = sim.network.now + config.max_drain_cycles
    while not sim.network.quiescent and sim.network.now < deadline:
        sim._cycle()
        if sim.network.now % config.epoch_cycles == 0:
            sim._epoch_boundary(learn=True)
    wall = time.perf_counter() - start
    executed = sim.network.now
    digest = _digest(sim.network)
    # Fold the control-plane defense tallies into the digest: the two
    # kernels must agree not only on traffic outcomes but on every
    # injected corruption, rejected observation, and quarantine.
    digest["sensor"] = {
        "injected": dict(sim.sensors.injected),
        "rejected": int(sim.metrics.peek("sensor.rejected_observations")),
        "holds": int(sim.metrics.peek("sensor.holds")),
        "clamps": int(sim.metrics.peek("sensor.clamps")),
        "debounced": int(sim.metrics.peek("sensor.debounced_switches")),
        "quarantined": sorted(sim.obs_guard.quarantined),
        "mode_switches": sum(r.mode_switches for r in sim.network.routers),
    }
    return {
        "kernel": sim.network.kernel,
        "cycles": executed,
        "wall_seconds": wall,
        "cycles_per_second": executed / wall if wall > 0 else 0.0,
        "digest": digest,
        "activity": sim.network.activity.counters(),
    }


#: combined SEU campaign for the ``softerror`` scenario: a continuous
#: per-bit upset rate, one mode-register flip, and one multi-bit burst
_SOFTERROR_BENCH_SPEC = "qtable@2e-5;mode@r3+2000;burst@3000:4"


def _run_softerror_scenario(
    kernel: str, cycles: int, seed: int, width: int, height: int
) -> Dict[str, object]:
    """Closed-loop RL control under SEUs in the learning state.

    Like ``sensor``, this drives the full :class:`Simulator`: injection
    and scrubbing live in the epoch loop, which both kernels execute
    identically.  The digest folds in the complete ECC ledger so a
    kernel that diverged in even one flip position fails loudly.
    """
    from repro.core.rl_policy import RLControlPolicy
    from repro.sim.config import scaled_config
    from repro.sim.simulator import Simulator
    from repro.traffic import SyntheticTraffic

    config = scaled_config(
        width=width,
        height=height,
        epoch_cycles=250,
        pretrain_cycles=min(6_000, cycles),
        warmup_cycles=1_000,
        soft_error_spec=_SOFTERROR_BENCH_SPEC,
    )
    policy = RLControlPolicy(share_table=True, seed=seed)
    sim = Simulator(config, policy, seed=seed, kernel=kernel)
    start = time.perf_counter()
    sim.pretrain()
    policy.freeze()
    sim.warmup()
    source = SyntheticTraffic(
        sim.network.topology,
        pattern="uniform",
        injection_rate=0.05,
        packet_size=config.packet_size,
        flit_bits=config.flit_bits,
        rng=random.Random(seed + 97),
    )
    sim.run(source, cycles, learn=True)
    deadline = sim.network.now + config.max_drain_cycles
    while not sim.network.quiescent and sim.network.now < deadline:
        sim._cycle()
        if sim.network.now % config.epoch_cycles == 0:
            sim._epoch_boundary(learn=True)
    wall = time.perf_counter() - start
    executed = sim.network.now
    digest = _digest(sim.network)
    # Fold the ECC ledger into the digest: the two kernels must agree
    # not only on traffic outcomes but on every injected flip and every
    # scrub correction/detection/quarantine.
    digest["ecc"] = {
        "injected": dict(sim.soft_errors.injected),
        "scrubs": int(sim.metrics.peek("ecc.scrubs")),
        "corrected": int(sim.metrics.peek("ecc.corrected")),
        "detected": int(sim.metrics.peek("ecc.detected")),
        "quarantined_rows": int(sim.metrics.peek("ecc.quarantined_rows")),
        "mode_votes": int(sim.metrics.peek("ecc.mode_votes")),
        "safe_mode_entries": int(sim.metrics.peek("ecc.safe_mode_entries")),
        "mode_switches": sum(r.mode_switches for r in sim.network.routers),
    }
    return {
        "kernel": sim.network.kernel,
        "cycles": executed,
        "wall_seconds": wall,
        "cycles_per_second": executed / wall if wall > 0 else 0.0,
        "digest": digest,
        "activity": sim.network.activity.counters(),
    }


def run_scenario(
    name: str,
    kernel: str,
    cycles: int,
    seed: int = 0,
    width: int = 4,
    height: int = 4,
) -> Dict[str, object]:
    """Run one scenario on one kernel; returns timing + digest + counters."""
    if name == "sensor":
        return _run_sensor_scenario(kernel, cycles, seed, width, height)
    if name == "softerror":
        return _run_softerror_scenario(kernel, cycles, seed, width, height)
    net = _scenario_network(name, kernel, seed, width, height)
    rng = random.Random(seed + 97)
    start = time.perf_counter()
    _DRIVERS[name](net, cycles, rng)
    wall = time.perf_counter() - start
    executed = net.now
    result: Dict[str, object] = {
        "kernel": net.kernel,
        "cycles": executed,
        "wall_seconds": wall,
        "cycles_per_second": executed / wall if wall > 0 else 0.0,
        "digest": _digest(net),
        "activity": net.activity.counters(),
    }
    if net.tracer is not None:
        result["trace"] = {
            "events": len(net.tracer),
            "dropped": net.tracer.dropped,
            "digest": net.tracer.digest(),
        }
    return result


def run_bench(
    quick: bool = False,
    seed: int = 0,
    width: int = 4,
    height: int = 4,
    scenarios: Optional[List[str]] = None,
) -> Dict[str, object]:
    """Run every scenario on both kernels; returns the BENCH payload.

    Raises ``RuntimeError`` if the two kernels disagree on any scenario's
    stats digest — a speedup measured against a wrong answer is noise —
    or (when both ``chaos`` and ``traced`` run) if attaching a tracer
    changed the chaos run's stats digest, which would mean observability
    is not behaviour-neutral.
    """
    names = list(scenarios) if scenarios else list(SCENARIOS)
    payload: Dict[str, object] = {
        "version": BENCH_VERSION,
        "quick": quick,
        "seed": seed,
        "mesh": [width, height],
        "scenarios": {},
        "speedups": {},
    }
    for name in names:
        cycles = SCENARIOS[name][1 if quick else 0]
        fast = run_scenario(name, "fast", cycles, seed, width, height)
        naive = run_scenario(name, "naive", cycles, seed, width, height)
        if fast["digest"] != naive["digest"]:
            raise RuntimeError(
                f"kernel divergence in scenario {name!r}: "
                f"fast={fast['digest']} naive={naive['digest']}"
            )
        if "trace" in fast and fast["trace"]["digest"] != naive["trace"]["digest"]:
            raise RuntimeError(
                f"trace divergence in scenario {name!r}: the two kernels "
                f"emitted different event streams "
                f"(fast={fast['trace']['digest'][:16]} "
                f"naive={naive['trace']['digest'][:16]})"
            )
        speedup = (
            fast["cycles_per_second"] / naive["cycles_per_second"]
            if naive["cycles_per_second"] > 0
            else 0.0
        )
        payload["scenarios"][name] = {
            "cycles": cycles,
            "fast": fast,
            "naive": naive,
            "speedup": speedup,
        }
        payload["speedups"][name] = speedup

    rows = payload["scenarios"]
    if "chaos" in rows and "traced" in rows:
        chaos_fast, traced_fast = rows["chaos"]["fast"], rows["traced"]["fast"]
        if chaos_fast["digest"] != traced_fast["digest"]:
            raise RuntimeError(
                "observability overhead check failed: the traced scenario's "
                f"stats digest {traced_fast['digest']} differs from the "
                f"untraced chaos run's {chaos_fast['digest']} — tracing "
                "must not perturb simulation behaviour"
            )
        # Wall-clock cost of event capture (>= ~1.0; timing-noisy, so it
        # is reported rather than gated — the digest equality above is
        # the hard contract).
        payload["trace_overhead"] = (
            chaos_fast["cycles_per_second"] / traced_fast["cycles_per_second"]
            if traced_fast["cycles_per_second"] > 0
            else 0.0
        )
    return payload


def check_regression(
    current: Dict[str, object],
    baseline: Dict[str, object],
    threshold: float = 0.25,
) -> List[str]:
    """Compare speedup ratios against a committed baseline.

    Returns human-readable failure strings (empty = pass).  Ratios, not
    absolute cycles/second, so a slower CI machine does not fail the
    check — only a change that erodes the fast kernel's relative
    advantage does.
    """
    failures = []
    base_speedups = baseline.get("speedups", {})
    for name, current_speedup in current.get("speedups", {}).items():
        base = base_speedups.get(name)
        if base is None or base <= 0:
            continue
        floor = base * (1.0 - threshold)
        if current_speedup < floor:
            failures.append(
                f"{name}: speedup {current_speedup:.2f}x fell below "
                f"{floor:.2f}x ({(1 - threshold) * 100:.0f}% of baseline {base:.2f}x)"
            )
    return failures


def check_digests(
    current: Dict[str, object],
    trajectory: Dict[str, object],
) -> List[str]:
    """Compare per-scenario stats digests against baseline entries.

    Scans every trajectory entry recorded at the same measurement point
    (``quick`` scale, seed, mesh) and fails if any scenario present in
    both runs produced a different stats digest at the same cycle count.
    Digests are pure simulation results — unlike cycles/second they are
    machine-independent, so any drift means the simulation's behaviour
    changed, not that the hardware did.

    Returns human-readable failure strings (empty = pass, including the
    vacuous pass when no entry matches the measurement point).
    """
    failures: List[str] = []
    point = (current.get("quick"), current.get("seed"), current.get("mesh"))
    for entry in trajectory.get("entries", []):
        if (entry.get("quick"), entry.get("seed"), entry.get("mesh")) != point:
            continue
        base_rows = entry.get("scenarios") or {}
        for name, row in (current.get("scenarios") or {}).items():
            base_row = base_rows.get(name)
            if base_row is None or base_row.get("cycles") != row.get("cycles"):
                continue
            base_digest = (base_row.get("fast") or {}).get("digest")
            digest = (row.get("fast") or {}).get("digest")
            if base_digest and digest != base_digest:
                label = entry.get("label", "(unlabelled)")
                failures.append(
                    f"{name}: stats digest drifted from baseline {label!r}: "
                    f"now {digest} was {base_digest}"
                )
    return failures


def format_report(payload: Dict[str, object]) -> str:
    """Fixed-width text table of the bench payload."""
    lines = [
        f"{'scenario':>10s} {'cycles':>9s} {'fast c/s':>12s} "
        f"{'naive c/s':>12s} {'speedup':>8s}"
    ]
    for name, row in payload["scenarios"].items():
        lines.append(
            f"{name:>10s} {row['cycles']:>9d} "
            f"{row['fast']['cycles_per_second']:>12.0f} "
            f"{row['naive']['cycles_per_second']:>12.0f} "
            f"{row['speedup']:>7.2f}x"
        )
        trace = row["fast"].get("trace")
        if trace is not None:
            lines.append(
                f"{'':>10s} tracing captured {trace['events']} event(s), "
                f"{trace['dropped']} dropped"
            )
    overhead = payload.get("trace_overhead")
    if overhead:
        lines.append(f"trace overhead (chaos vs traced, fast kernel): {overhead:.2f}x")
    return "\n".join(lines)
