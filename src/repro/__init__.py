"""repro — reproduction of "High-performance, Energy-efficient,
Fault-tolerant Network-on-Chip Design Using Reinforcement Learning"
(Wang, Louri, Karanth, Bunescu — DATE 2019).

Public API tour
---------------
The quickest route is the simulation harness::

    from repro import scaled_config, RLControlPolicy, Simulator
    from repro.sim import synthesize_benchmark_trace

    config = scaled_config(width=4, height=4)
    sim = Simulator(config, RLControlPolicy(share_table=True))
    sim.pretrain()
    trace = synthesize_benchmark_trace("ferret", config, cycles=5_000)
    result = sim.measure_trace(trace, "ferret")
    print(result.mean_latency, result.energy_efficiency)

Subpackages
-----------
``repro.core``
    The paper's contribution: the four fault-tolerant operation modes
    and the per-router Q-learning control policy.
``repro.noc``
    Cycle-level mesh NoC: 4-stage VC routers, credit flow control,
    ARQ/ECC links, pre-retransmission, timing-relaxed transfers.
``repro.coding``
    Real CRC and SECDED Hamming codes plus the ARQ window protocol.
``repro.faults``
    VARIUS-style timing-error model, HotSpot-style RC thermal grid,
    and the per-epoch channel fault injector.
``repro.power``
    ORION-style energy model and the 32 nm area model, calibrated to
    the paper's published anchors.
``repro.traffic``
    Synthetic patterns, trace files, and PARSEC-like trace synthesis.
``repro.baselines``
    Static CRC / ARQ+ECC policies and the decision-tree comparison
    point (with a from-scratch CART implementation).
``repro.sim``
    Config, the integrated closed-loop simulator, and the experiment
    runner that regenerates every figure of the paper.
"""

from repro.core import (
    ControlPolicy,
    OperationMode,
    QLearningAgent,
    RLControlPolicy,
    RouterObservation,
    compute_reward,
    observe_router,
)
from repro.noc import MeshTopology, Network, Packet
from repro.sim import (
    RunResult,
    SimulationConfig,
    Simulator,
    compare_designs,
    paper_config,
    run_parsec_suite,
    scaled_config,
)

__version__ = "1.0.0"

__all__ = [
    "ControlPolicy",
    "OperationMode",
    "QLearningAgent",
    "RLControlPolicy",
    "RouterObservation",
    "compute_reward",
    "observe_router",
    "MeshTopology",
    "Network",
    "Packet",
    "RunResult",
    "SimulationConfig",
    "Simulator",
    "compare_designs",
    "paper_config",
    "run_parsec_suite",
    "scaled_config",
    "__version__",
]
