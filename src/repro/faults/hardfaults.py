"""Hard-fault campaigns: permanent kills and transient bursts on a schedule.

The soft-error substrate (:mod:`repro.faults.varius`) models *parametric*
degradation — timing-error probabilities that rise with temperature.  This
module models the *catastrophic* end of the fault spectrum the
fault-tolerant NoC literature evaluates against: links and routers that
die outright, plus transient error bursts (particle strikes, voltage
droops) that temporarily inflate every channel's error probability.

A campaign is a :class:`HardFaultSchedule` — an ordered list of
:class:`HardFaultEvent` — applied to a live network by
:class:`HardFaultModel`.  Three properties matter for the sweep harness:

* **Determinism** — a schedule is a pure value: parsed from / formatted to
  a canonical spec string, and :meth:`HardFaultSchedule.sample` derives
  events from an explicit seed with arithmetic mixing only.  Identical
  (config, schedule) pairs therefore produce identical results in any
  process, which the on-disk sweep cache depends on.
* **Idempotence** — killing a dead link/router is a no-op, so schedules
  with overlapping events (a router kill implies its link kills) apply
  cleanly.
* **Observability** — the model records what it applied and snapshots the
  latency accumulator at the first fault so post-fault latency can be
  separated from the healthy baseline.

Spec grammar (one event per ``;``-separated clause)::

    link@<cycle>:<node><PORT>     e.g. link@500:5E   (kill 5 -> EAST at 500)
    router@<cycle>:<node>         e.g. router@800:7
    burst@<cycle>+<duration>:<p>  e.g. burst@300+200:0.2

Ports are the compass letters E/W/N/S.  The empty string is the healthy
baseline (no events).
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Tuple

from repro.faults.specs import format_spec, parse_spec
from repro.noc.topology import MeshTopology, Port

__all__ = [
    "HardFaultEvent",
    "HardFaultSchedule",
    "HardFaultModel",
    "parse_fault_spec",
]

_PORT_LETTERS = {
    "E": Port.EAST,
    "W": Port.WEST,
    "N": Port.NORTH,
    "S": Port.SOUTH,
}
_LETTER_OF_PORT = {int(v): k for k, v in _PORT_LETTERS.items()}


class HardFaultEvent:
    """One scheduled fault: a link kill, a router kill, or an error burst."""

    __slots__ = ("kind", "cycle", "node", "port", "duration", "probability")

    KINDS = ("link", "router", "burst")

    def __init__(
        self,
        kind: str,
        cycle: int,
        node: int = 0,
        port: Optional[Port] = None,
        duration: int = 0,
        probability: float = 0.0,
    ) -> None:
        if kind not in self.KINDS:
            raise ValueError(f"unknown fault kind {kind!r}")
        if cycle < 0:
            raise ValueError("fault cycle cannot be negative")
        if kind == "link" and port is None:
            raise ValueError("link faults need a port")
        if kind == "burst":
            if duration <= 0:
                raise ValueError("burst duration must be positive")
            if not 0.0 <= probability <= 1.0:
                raise ValueError("burst probability must be in [0, 1]")
        self.kind = kind
        self.cycle = cycle
        self.node = node
        self.port = port
        self.duration = duration
        self.probability = probability

    # ------------------------------------------------------------------
    def format(self) -> str:
        """Canonical spec clause (inverse of :func:`parse_fault_spec`)."""
        if self.kind == "link":
            return f"link@{self.cycle}:{self.node}{_LETTER_OF_PORT[int(self.port)]}"
        if self.kind == "router":
            return f"router@{self.cycle}:{self.node}"
        return f"burst@{self.cycle}+{self.duration}:{self.probability:g}"

    def sort_key(self) -> Tuple[int, str, int, int]:
        return (self.cycle, self.kind, self.node, int(self.port or 0))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HardFaultEvent):
            return NotImplemented
        return self.format() == other.format()

    def __hash__(self) -> int:
        return hash(self.format())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HardFaultEvent({self.format()!r})"


def _parse_fault_clause(kind: str, rest: str) -> HardFaultEvent:
    when, arg = rest.split(":", 1)
    if kind == "link":
        letter = arg[-1].upper()
        if letter not in _PORT_LETTERS:
            raise ValueError(
                f"bad port letter {letter!r} (expected one of "
                f"{''.join(sorted(_PORT_LETTERS))})"
            )
        node, port = int(arg[:-1]), _PORT_LETTERS[letter]
        return HardFaultEvent("link", int(when), node, port)
    if kind == "router":
        return HardFaultEvent("router", int(when), int(arg))
    if kind == "burst":
        cycle, duration = when.split("+", 1)
        return HardFaultEvent(
            "burst", int(cycle), duration=int(duration), probability=float(arg)
        )
    raise ValueError(f"unknown fault kind {kind!r}")


def parse_fault_spec(spec: str) -> List[HardFaultEvent]:
    """Parse a ``;``-separated spec string into events (sorted by cycle)."""
    return parse_spec(spec, "fault", _parse_fault_clause, HardFaultEvent.sort_key)


class HardFaultSchedule:
    """An ordered, deterministic campaign of hard-fault events."""

    __slots__ = ("events",)

    def __init__(self, events: Optional[List[HardFaultEvent]] = None) -> None:
        self.events = sorted(events or [], key=HardFaultEvent.sort_key)

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "HardFaultSchedule":
        return cls(parse_fault_spec(spec))

    def format(self) -> str:
        """Canonical spec string: ``parse(format())`` round-trips."""
        return format_spec(self.events, HardFaultEvent.sort_key)

    def __len__(self) -> int:
        return len(self.events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HardFaultSchedule):
            return NotImplemented
        return self.events == other.events

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HardFaultSchedule({self.format()!r})"

    # ------------------------------------------------------------------
    @classmethod
    def sample(
        cls,
        topology: MeshTopology,
        seed: int,
        link_rate: float = 0.0,
        router_rate: float = 0.0,
        horizon: int = 100_000,
        max_events: int = 8,
    ) -> "HardFaultSchedule":
        """Sample a campaign from per-cycle failure rates.

        Each directed link (in canonical ``topology.channels()`` order)
        and each router draws one geometric failure time from its own
        arithmetically-mixed seed, so the result is a pure function of
        ``(topology, seed, rates, horizon)`` — independent of process,
        interpreter hash randomization, and call order.
        """
        events: List[HardFaultEvent] = []
        if link_rate > 0.0:
            for index, spec in enumerate(topology.channels()):
                rng = random.Random(seed * 1_000_003 + index * 7_919 + 101)
                cycle = _geometric(rng, link_rate)
                if cycle is not None and cycle < horizon:
                    events.append(
                        HardFaultEvent("link", cycle, spec.src, Port(spec.src_port))
                    )
        if router_rate > 0.0:
            for node in range(topology.num_nodes):
                rng = random.Random(seed * 1_000_003 + node * 104_729 + 977)
                cycle = _geometric(rng, router_rate)
                if cycle is not None and cycle < horizon:
                    events.append(HardFaultEvent("router", cycle, node))
        events.sort(key=HardFaultEvent.sort_key)
        return cls(events[:max_events])


def _geometric(rng: random.Random, rate: float) -> Optional[int]:
    """First-success cycle of a per-cycle Bernoulli(rate) process."""
    if rate >= 1.0:
        return 0
    u = rng.random()
    if u <= 0.0:
        return None
    return int(math.log(u) / math.log(1.0 - rate))


class HardFaultModel:
    """Applies a :class:`HardFaultSchedule` to a live network.

    Install as ``network.hard_faults``; the network calls :meth:`tick`
    at the top of every cycle.  Burst events temporarily override the
    error probability of every alive channel and restore the fault
    substrate's value when they expire.
    """

    __slots__ = (
        "network",
        "schedule",
        "applied",
        "first_fault_cycle",
        "_pending",
        "_burst_restore",
        "_burst_until",
        "_latency_count_at_fault",
        "_latency_total_at_fault",
    )

    def __init__(self, network, schedule: HardFaultSchedule) -> None:
        self.network = network
        self.schedule = schedule
        #: events actually applied (spec clause, cycle) in order
        self.applied: List[Tuple[str, int]] = []
        self.first_fault_cycle: Optional[int] = None
        self._pending: List[HardFaultEvent] = list(schedule.events)
        self._burst_restore: Dict[Tuple[int, int], float] = {}
        self._burst_until: Optional[int] = None
        self._latency_count_at_fault = 0
        self._latency_total_at_fault = 0

    # ------------------------------------------------------------------
    def tick(self, now: int) -> None:
        if self._burst_until is not None and now >= self._burst_until:
            self._end_burst()
        while self._pending and self._pending[0].cycle <= now:
            event = self._pending.pop(0)
            self._apply(event, now)

    def next_event_cycle(self) -> Optional[int]:
        """Earliest cycle at which :meth:`tick` has any work to do.

        Lets the network's idle fast-forward jump over quiescent spans
        without skipping a scheduled kill or a burst expiry.  ``None``
        means the campaign is fully applied and no burst is active.
        """
        candidates = []
        if self._burst_until is not None:
            candidates.append(self._burst_until)
        if self._pending:
            candidates.append(self._pending[0].cycle)
        return min(candidates) if candidates else None

    def _apply(self, event: HardFaultEvent, now: int) -> None:
        if self.first_fault_cycle is None:
            self.first_fault_cycle = now
            latency = self.network.stats.latency
            self._latency_count_at_fault = latency.count
            self._latency_total_at_fault = latency.total
        if event.kind == "link":
            self.network.kill_link(event.node, event.port)
        elif event.kind == "router":
            self.network.kill_router(event.node)
        else:
            self._start_burst(event, now)
        self.applied.append((event.format(), now))
        # Campaign-level marker on top of the kill_* emissions: bursts
        # raise error probabilities without killing anything, so only
        # this event records them in the trace.
        tracer = self.network.tracer
        if tracer is not None:
            tracer.emit(now, "fault", "campaign_event", spec=event.format())

    # ------------------------------------------------------------------
    def _start_burst(self, event: HardFaultEvent, now: int) -> None:
        if self._burst_until is not None:
            self._end_burst()
        for key, channel in self.network.channels.items():
            if not channel.alive:
                continue
            model = channel.error_model
            self._burst_restore[key] = model.event_probability
            model.event_probability = min(
                1.0, max(model.event_probability, event.probability)
            )
        self._burst_until = now + event.duration

    def _end_burst(self) -> None:
        for key, probability in self._burst_restore.items():
            channel = self.network.channels.get(key)
            if channel is not None and channel.alive:
                channel.error_model.event_probability = probability
        self._burst_restore.clear()
        self._burst_until = None

    # ------------------------------------------------------------------
    @property
    def post_fault_latency(self) -> float:
        """Mean latency of packets delivered after the first fault."""
        latency = self.network.stats.latency
        count = latency.count - self._latency_count_at_fault
        if self.first_fault_cycle is None or count <= 0:
            return 0.0
        return (latency.total - self._latency_total_at_fault) / count

    @property
    def pre_fault_latency(self) -> float:
        """Mean latency of packets delivered before the first fault."""
        if self.first_fault_cycle is None:
            return self.network.stats.latency.mean
        if self._latency_count_at_fault == 0:
            return 0.0
        return self._latency_total_at_fault / self._latency_count_at_fault
