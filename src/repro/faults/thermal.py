"""HotSpot-style compact thermal model.

The paper feeds per-router activity into HotSpot [Huang et al., IEEE
TVLSI 2006] to obtain router temperatures, which in turn drive the VARIUS
timing-error probabilities.  This module implements the equivalent
compact RC network at the granularity the control loop needs:

* one thermal node per router tile;
* a vertical resistance from each tile through the heat spreader and
  sink to ambient;
* lateral resistances between adjacent tiles (heat spreading);
* one lumped capacitance per tile for transient behaviour, integrated
  with explicit Euler at each control epoch.

The defaults are calibrated so an idle router (~50 mW) sits near 50 C
and a saturated router (~0.5 W) approaches 95-100 C — the paper's
observed [50, 100] C operating range (Section IV-B).

The per-epoch coupling constant ``alpha = dt / (r_vertical * capacitance)``
defaults to an *accelerated* thermal time constant (a few control epochs)
so that scaled-down simulations still exercise the full power -> heat ->
error feedback loop; the physical silicon constant (milliseconds, i.e.
thousands of epochs) is selectable through ``capacitance``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

__all__ = ["ThermalGrid"]


class ThermalGrid:
    """RC thermal network over a ``width x height`` tile grid.

    Parameters
    ----------
    width, height:
        Grid dimensions (one tile per router).
    t_ambient:
        Heatsink/ambient temperature in degrees C.
    r_vertical:
        Tile-to-ambient thermal resistance (K/W).
    r_lateral:
        Tile-to-adjacent-tile thermal resistance (K/W).
    alpha:
        Fraction of the steady-state temperature step applied per
        :meth:`step` call — the discretized ``dt / (R_v * C)``.  Values
        in (0, 1]; 1.0 makes each step jump straight to equilibrium.
    """

    def __init__(
        self,
        width: int,
        height: int,
        t_ambient: float = 45.0,
        r_vertical: float = 100.0,
        r_lateral: float = 50.0,
        alpha: float = 0.25,
    ) -> None:
        if width < 1 or height < 1:
            raise ValueError("grid must be at least 1x1")
        if r_vertical <= 0 or r_lateral <= 0:
            raise ValueError("thermal resistances must be positive")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.width = width
        self.height = height
        self.n = width * height
        self.t_ambient = t_ambient
        self.r_vertical = r_vertical
        self.r_lateral = r_lateral
        self.alpha = alpha
        self.temperatures = np.full(self.n, t_ambient, dtype=float)
        self._conductance = self._build_conductance_matrix()

    # ------------------------------------------------------------------
    def _build_conductance_matrix(self) -> np.ndarray:
        """G such that steady state solves G @ (T - T_amb) = P."""
        g_v = 1.0 / self.r_vertical
        g_l = 1.0 / self.r_lateral
        g = np.zeros((self.n, self.n), dtype=float)
        for y in range(self.height):
            for x in range(self.width):
                node = y * self.width + x
                g[node, node] += g_v
                for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                    nx, ny = x + dx, y + dy
                    if 0 <= nx < self.width and 0 <= ny < self.height:
                        other = ny * self.width + nx
                        g[node, node] += g_l
                        g[node, other] -= g_l
        return g

    # ------------------------------------------------------------------
    def steady_state(self, power_watts: Sequence[float]) -> np.ndarray:
        """Equilibrium temperatures for a constant power vector."""
        p = np.asarray(power_watts, dtype=float)
        if p.shape != (self.n,):
            raise ValueError(f"expected {self.n} power values")
        if np.any(p < 0):
            raise ValueError("power cannot be negative")
        return self.t_ambient + np.linalg.solve(self._conductance, p)

    def step(self, power_watts: Sequence[float]) -> np.ndarray:
        """Advance one control epoch toward the new equilibrium.

        First-order relaxation: ``T += alpha * (T_eq(P) - T)``, the
        explicit-Euler discretization of the RC network with time step
        ``alpha * R_v * C``.  Returns the updated temperature vector.
        """
        target = self.steady_state(power_watts)
        self.temperatures += self.alpha * (target - self.temperatures)
        return self.temperatures.copy()

    def reset(self, temperature: Optional[float] = None) -> None:
        """Reset all tiles to ambient (or a given) temperature."""
        value = self.t_ambient if temperature is None else temperature
        self.temperatures = np.full(self.n, value, dtype=float)

    def as_list(self) -> List[float]:
        return self.temperatures.tolist()
