"""Sensor-fault campaigns: corrupting the *telemetry*, not the data plane.

:mod:`repro.faults.hardfaults` breaks the network itself; this module
breaks what the controller *sees*.  The DATE 2019 control loop drives
per-router mode selection from Table I telemetry (buffer occupancy, link
utilization, NACK rates, temperature), and a control plane that trusts a
stuck thermal diode or a dropped utilization register can thrash modes,
poison a Q-table, or crash discretization outright — the failure class
the self-healing NoC literature (FASHION, Dang et al.) says a resilient
controller must absorb.  The model sits on the observation path between
:func:`repro.core.state.observe_router` and
``ControlPolicy.select``/``learn`` and mutates the fresh
:class:`~repro.core.state.RouterObservation` in place, once per router
per control epoch.

Spec grammar (one rule per ``;``-separated clause)::

    stuck@r<N>.<field>=<v>   e.g. stuck@r3.temp=0.9   (sensor wedged at v)
    drop@<p>:<field>         e.g. drop@0.2:util       (reading lost, -> None)
    noise@<sigma>:<field>    e.g. noise@0.05:nack     (additive gaussian)
    stale@r<N>+<cycle>:<K>   e.g. stale@r7+400:8      (frozen for K epochs)

Fields name Table I feature groups: ``buf`` (occupied input VCs),
``util`` (input + output link utilization), ``nack`` (input + output
NACK rates), ``temp`` (local temperature), and ``all`` (every group, for
``drop``/``noise``).  ``stuck`` and ``stale`` are per-router; ``drop``
and ``noise`` afflict every router independently.  The empty string is
the healthy sensor bank (no rules).

Three properties mirror the hard-fault model's contract:

* **Determinism** — rules are pure values with a canonical
  ``parse``/``format`` round trip, and all randomness comes from one
  seeded :class:`random.Random` consumed in a fixed order (rules in
  canonical order, routers in id order, once per epoch), so a campaign
  is a pure function of (spec, seed) in any process and on either cycle
  kernel.
* **Resumability** — the model's whole mutable state (RNG, per-router
  last readings, staleness countdowns) pickles inside the simulator, so
  a killed-and-resumed run replays the exact same corruption stream.
* **Semantic layering** — within one epoch, noise is applied first, then
  dropout, then stuck-at (a wedged sensor does not jitter), then
  staleness (a frozen sensor replays its last *reported* — possibly
  already corrupted — reading).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.faults.specs import format_spec, parse_router_token, parse_spec

__all__ = [
    "SENSOR_FIELDS",
    "SensorFaultRule",
    "SensorFaultModel",
    "parse_sensor_spec",
    "format_sensor_spec",
]

#: field name -> RouterObservation attributes it covers
_FIELD_ATTRS: Dict[str, Tuple[str, ...]] = {
    "buf": ("occupied_vcs",),
    "util": ("input_utilization", "output_utilization"),
    "nack": ("input_nack_rate", "output_nack_rate"),
    "temp": ("temperature",),
}
_FIELD_ATTRS["all"] = tuple(
    attr for field in ("buf", "util", "nack", "temp") for attr in _FIELD_ATTRS[field]
)

SENSOR_FIELDS: Tuple[str, ...] = ("buf", "util", "nack", "temp", "all")

#: which fields each kind accepts (noise on the integer VC counts would
#: be ill-typed, and stuck/stale target one concrete sensor)
_STUCK_FIELDS = ("buf", "util", "nack", "temp")
_DROP_FIELDS = SENSOR_FIELDS
_NOISE_FIELDS = ("util", "nack", "temp", "all")

_KIND_ORDER = ("stuck", "drop", "noise", "stale")


class SensorFaultRule:
    """One telemetry corruption rule (see the module grammar)."""

    __slots__ = ("kind", "router", "field", "value", "probability", "sigma",
                 "cycle", "epochs")

    KINDS = _KIND_ORDER

    def __init__(
        self,
        kind: str,
        router: int = 0,
        field: str = "all",
        value: float = 0.0,
        probability: float = 0.0,
        sigma: float = 0.0,
        cycle: int = 0,
        epochs: int = 0,
    ) -> None:
        if kind not in self.KINDS:
            raise ValueError(f"unknown sensor fault kind {kind!r}")
        if router < 0:
            raise ValueError("router id cannot be negative")
        if kind == "stuck" and field not in _STUCK_FIELDS:
            raise ValueError(
                f"stuck field must be one of {', '.join(_STUCK_FIELDS)}, got {field!r}"
            )
        if kind == "drop":
            if field not in _DROP_FIELDS:
                raise ValueError(
                    f"drop field must be one of {', '.join(_DROP_FIELDS)}, got {field!r}"
                )
            if not 0.0 < probability <= 1.0:
                raise ValueError("drop probability must be in (0, 1]")
        if kind == "noise":
            if field not in _NOISE_FIELDS:
                raise ValueError(
                    f"noise field must be one of {', '.join(_NOISE_FIELDS)}, got {field!r}"
                )
            if not sigma > 0.0:
                raise ValueError("noise sigma must be positive")
        if kind == "stale":
            if cycle < 0:
                raise ValueError("stale onset cycle cannot be negative")
            if epochs <= 0:
                raise ValueError("stale duration must be at least one epoch")
        self.kind = kind
        self.router = router
        self.field = field
        self.value = value
        self.probability = probability
        self.sigma = sigma
        self.cycle = cycle
        self.epochs = epochs

    # ------------------------------------------------------------------
    def format(self) -> str:
        """Canonical spec clause (inverse of :func:`parse_sensor_spec`)."""
        if self.kind == "stuck":
            return f"stuck@r{self.router}.{self.field}={self.value:g}"
        if self.kind == "drop":
            return f"drop@{self.probability:g}:{self.field}"
        if self.kind == "noise":
            return f"noise@{self.sigma:g}:{self.field}"
        return f"stale@r{self.router}+{self.cycle}:{self.epochs}"

    def sort_key(self) -> Tuple[int, int, str, int]:
        return (_KIND_ORDER.index(self.kind), self.router, self.field, self.cycle)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SensorFaultRule):
            return NotImplemented
        return self.format() == other.format()

    def __hash__(self) -> int:
        return hash(self.format())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SensorFaultRule({self.format()!r})"


def _parse_sensor_clause(kind: str, rest: str) -> SensorFaultRule:
    if kind == "stuck":
        target, value = rest.split("=", 1)
        router_token, field = target.split(".", 1)
        return SensorFaultRule(
            "stuck",
            router=parse_router_token(router_token),
            field=field.strip(),
            value=float(value),
        )
    if kind == "drop":
        probability, field = rest.split(":", 1)
        return SensorFaultRule(
            "drop", probability=float(probability), field=field.strip()
        )
    if kind == "noise":
        sigma, field = rest.split(":", 1)
        return SensorFaultRule("noise", sigma=float(sigma), field=field.strip())
    if kind == "stale":
        target, epochs = rest.split(":", 1)
        router_token, cycle = target.split("+", 1)
        return SensorFaultRule(
            "stale",
            router=parse_router_token(router_token),
            cycle=int(cycle),
            epochs=int(epochs),
        )
    raise ValueError(f"unknown sensor fault kind {kind!r}")


def parse_sensor_spec(spec: str) -> List[SensorFaultRule]:
    """Parse a ``;``-separated spec string into rules (canonical order)."""
    return parse_spec(spec, "sensor", _parse_sensor_clause, SensorFaultRule.sort_key)


def format_sensor_spec(rules: Sequence[SensorFaultRule]) -> str:
    """Canonical spec string: ``parse(format(rules))`` round-trips."""
    return format_spec(rules, SensorFaultRule.sort_key)


def _snapshot(obs) -> Tuple:
    return (
        list(obs.occupied_vcs) if obs.occupied_vcs is not None else None,
        list(obs.input_utilization) if obs.input_utilization is not None else None,
        list(obs.output_utilization) if obs.output_utilization is not None else None,
        list(obs.input_nack_rate) if obs.input_nack_rate is not None else None,
        list(obs.output_nack_rate) if obs.output_nack_rate is not None else None,
        obs.temperature,
    )


def _restore(obs, snapshot: Tuple) -> None:
    (obs.occupied_vcs, obs.input_utilization, obs.output_utilization,
     obs.input_nack_rate, obs.output_nack_rate, obs.temperature) = (
        list(v) if isinstance(v, list) else v for v in snapshot
    )


class SensorFaultModel:
    """Applies a sensor-fault campaign to live observations.

    The simulator calls :meth:`corrupt` for every router at every epoch
    boundary, in router-id order — the fixed call pattern the seeded RNG
    stream depends on.  The whole object (RNG state included) pickles
    inside the simulator, so checkpointed runs resume bit-identically.
    """

    def __init__(
        self,
        rules: Sequence[SensorFaultRule],
        num_routers: int,
        seed: int = 0,
    ) -> None:
        if num_routers <= 0:
            raise ValueError("need at least one router")
        for rule in rules:
            if rule.kind in ("stuck", "stale") and rule.router >= num_routers:
                raise ValueError(
                    f"sensor rule {rule.format()!r} targets router {rule.router} "
                    f"but the mesh has only {num_routers} routers"
                )
        self.rules: List[SensorFaultRule] = sorted(rules, key=SensorFaultRule.sort_key)
        self.num_routers = num_routers
        self.rng = random.Random(seed)
        #: last *reported* (post-corruption) reading per router, the
        #: snapshot a newly-activating stale rule freezes and replays
        self._prev: Dict[int, Tuple] = {}
        #: per stale-rule index: held snapshot + remaining epochs
        self._stale: Dict[int, Dict[str, object]] = {}
        #: injections actually applied, as (kind, field) counts
        self.injected: Dict[str, int] = {}

    # ------------------------------------------------------------------
    @property
    def spec(self) -> str:
        return format_sensor_spec(self.rules)

    def _count(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1

    def corrupt(self, obs, now: int) -> List[Tuple[str, str]]:
        """Corrupt one observation in place; returns (kind, field) events.

        Must be called once per router per epoch, in router-id order:
        every ``noise`` rule draws a fixed number of gaussians and every
        ``drop`` rule draws one uniform per call, unconditionally, so the
        RNG stream's length never depends on what the faults did.
        """
        rng = self.rng
        events: List[Tuple[str, str]] = []
        router = obs.router_id
        # Noise first: a jittery sensor underneath any later corruption.
        for rule in self.rules:
            if rule.kind != "noise":
                continue
            for attr in _FIELD_ATTRS[rule.field]:
                current = getattr(obs, attr)
                if attr == "temperature":
                    setattr(obs, attr, current + rng.gauss(0.0, rule.sigma))
                else:
                    setattr(
                        obs, attr,
                        [el + rng.gauss(0.0, rule.sigma) for el in current],
                    )
            events.append(("noise", rule.field))
        # Dropout: the reading is simply gone this epoch.
        for rule in self.rules:
            if rule.kind != "drop":
                continue
            if rng.random() < rule.probability:
                for attr in _FIELD_ATTRS[rule.field]:
                    setattr(obs, attr, None)
                events.append(("drop", rule.field))
        # Stuck-at: the sensor is wedged; nothing else shows through.
        for rule in self.rules:
            if rule.kind != "stuck" or rule.router != router:
                continue
            for attr in _FIELD_ATTRS[rule.field]:
                if attr == "temperature":
                    obs.temperature = float(rule.value)
                elif attr == "occupied_vcs":
                    obs.occupied_vcs = [int(rule.value)] * len(obs.occupied_vcs or [0] * 5)
                else:
                    current = getattr(obs, attr)
                    setattr(
                        obs, attr,
                        [float(rule.value)] * len(current or [0.0] * 5),
                    )
            events.append(("stuck", rule.field))
        # Staleness: replay the last reported reading for K epochs.
        for index, rule in enumerate(self.rules):
            if rule.kind != "stale" or rule.router != router or now < rule.cycle:
                continue
            state = self._stale.get(index)
            if state is None:
                state = {
                    "held": self._prev.get(router) or _snapshot(obs),
                    "remaining": rule.epochs,
                }
                self._stale[index] = state
            if state["remaining"] <= 0:
                continue
            _restore(obs, state["held"])
            state["remaining"] -= 1
            events.append(("stale", "all"))
        self._prev[router] = _snapshot(obs)
        for kind, _field in events:
            self._count(kind)
        return events
