"""Shared plumbing for the ``;``-separated fault spec grammars.

Three fault planes (hard faults, sensor faults, soft errors) each expose
a tiny campaign grammar with the same mechanical shape:

* a spec string is a ``;``-separated list of clauses, each ``kind@rest``;
* whitespace-only clauses are skipped, so trailing ``;`` is harmless;
* any malformed clause raises a one-line ``ValueError`` naming the
  grammar and quoting the offending clause verbatim —
  ``bad <what> clause '<clause>': <why>`` — which the CLI surfaces
  unchanged before any simulation work starts;
* parsed rules/events sort into a canonical order so
  ``parse(format(...))`` round-trips and equal campaigns compare equal
  regardless of how the user ordered the clauses.

This module holds that plumbing once; the per-grammar modules
(:mod:`repro.faults.hardfaults`, :mod:`repro.faults.sensors`,
:mod:`repro.faults.softerrors`) keep only their kind-specific clause
handlers and validation.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, TypeVar

__all__ = [
    "format_spec",
    "parse_router_token",
    "parse_spec",
    "split_clauses",
]

T = TypeVar("T")


def split_clauses(spec: str) -> List[str]:
    """Split a spec string into stripped, non-empty clauses."""
    return [clause.strip() for clause in spec.split(";") if clause.strip()]


def parse_router_token(token: str) -> int:
    """Parse an ``r<N>`` router designator (shared by per-router rules)."""
    token = token.strip()
    if not token.startswith("r"):
        raise ValueError(f"router must be written 'r<id>', got {token!r}")
    return int(token[1:])


def parse_spec(
    spec: str,
    what: str,
    parse_clause: Callable[[str, str], T],
    sort_key: Callable[[T], object],
) -> List[T]:
    """Parse a spec string into canonically-sorted items.

    ``parse_clause(kind, rest)`` builds one item from a clause already
    split at its first ``@``; any ``KeyError``/``IndexError``/
    ``ValueError`` it (or the split) raises is rewrapped into the
    one-line ``bad {what} clause ...`` message with the original clause
    quoted, so every grammar reports errors identically.
    """
    items: List[T] = []
    for clause in split_clauses(spec):
        try:
            kind, rest = clause.split("@", 1)
            items.append(parse_clause(kind.strip(), rest))
        except (KeyError, IndexError, ValueError) as exc:
            raise ValueError(f"bad {what} clause {clause!r}: {exc}") from None
    items.sort(key=sort_key)
    return items


def format_spec(items: Sequence[T], sort_key: Callable[[T], object]) -> str:
    """Canonical spec string: sorted clauses joined by ``;``.

    Each item must expose a ``format()`` method returning its clause;
    ``parse_spec(format_spec(items))`` round-trips.
    """
    return ";".join(
        item.format() for item in sorted(items, key=sort_key)  # type: ignore[attr-defined]
    )
