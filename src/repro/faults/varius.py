"""VARIUS-style process-variation and timing-error model.

The paper derives per-link timing-error probabilities at runtime by
feeding router conditions (voltage, frequency, utilization, temperature)
through the VARIUS model [Sarangi et al., IEEE TSM 2008].  This module
re-implements the published mathematics at the abstraction the simulator
needs:

* each router has a *systematic* critical-path-delay multiplier drawn
  from a spatially-correlated Gaussian field (slow and fast regions of
  the die), plus i.i.d. *random* per-transfer delay noise;
* the mean critical-path delay grows with temperature (carrier-mobility
  degradation) and shrinks with supply voltage (alpha-power law);
* a timing error occurs when the sampled path delay exceeds the clock
  period, so the per-transfer error probability is the Gaussian tail
  ``Q((T_clk_eff - mean_delay) / sigma)``.

Mode 3's timing relaxation adds whole cycles to the effective clock
period seen by the transfer, which collapses the tail probability to
"near zero" exactly as Section III describes.

Default constants are calibrated so that (delays normalized to the clock
period): p ~ 2e-4 at 50 C, ~2e-3 at 62 C, ~2e-2 at 75 C, ~1.2e-1 at
90 C — a steep, VARIUS-like dependence spanning the paper's observed
[50, 100] C operating range, strong enough that the CRC-only design
visibly degrades on the hot benchmarks (the regime Figs 6-10 evaluate).
The core-power proxy deliberately excludes retransmission traffic, so
errors degrade a design's latency/energy without running away thermally.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence

__all__ = ["VariusParams", "VariusModel", "gaussian_tail"]


def gaussian_tail(z: float) -> float:
    """Upper-tail probability Q(z) of the standard normal."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))


class VariusParams:
    """Constants of the timing-error model (delays in clock-period units).

    Attributes
    ----------
    nominal_delay:
        Mean critical-path delay at ``t_ref`` and nominal voltage, as a
        fraction of the clock period.
    temp_coefficient:
        Fractional delay increase per degree C above ``t_ref``.
    sigma:
        Standard deviation of the random per-transfer delay component.
    sigma_systematic:
        Standard deviation of the per-router systematic multiplier
        (before spatial smoothing).
    smoothing_passes:
        Neighbour-averaging passes applied to the systematic field —
        more passes mean longer spatial correlation, as in VARIUS's
        correlated-variation maps.
    t_ref:
        Reference temperature in degrees C.
    v_nominal, v_threshold, alpha_power:
        Alpha-power-law voltage scaling of delay.
    """

    def __init__(
        self,
        nominal_delay: float = 0.893,
        temp_coefficient: float = 0.002,
        sigma: float = 0.03,
        sigma_systematic: float = 0.02,
        smoothing_passes: int = 2,
        t_ref: float = 50.0,
        v_nominal: float = 1.0,
        v_threshold: float = 0.30,
        alpha_power: float = 1.3,
    ) -> None:
        if not 0.0 < nominal_delay < 1.0:
            raise ValueError("nominal delay must be a fraction of the clock period")
        if sigma <= 0.0:
            raise ValueError("sigma must be positive")
        self.nominal_delay = nominal_delay
        self.temp_coefficient = temp_coefficient
        self.sigma = sigma
        self.sigma_systematic = sigma_systematic
        self.smoothing_passes = smoothing_passes
        self.t_ref = t_ref
        self.v_nominal = v_nominal
        self.v_threshold = v_threshold
        self.alpha_power = alpha_power


class VariusModel:
    """Per-die instance of the variation model for a ``width x height`` grid."""

    def __init__(
        self,
        width: int,
        height: int,
        params: Optional[VariusParams] = None,
        seed: int = 0,
    ) -> None:
        if width < 1 or height < 1:
            raise ValueError("grid must be at least 1x1")
        self.width = width
        self.height = height
        self.params = params if params is not None else VariusParams()
        self._systematic = self._build_systematic_field(random.Random(seed))

    # ------------------------------------------------------------------
    def _build_systematic_field(self, rng: random.Random) -> List[float]:
        p = self.params
        field = [rng.gauss(0.0, p.sigma_systematic) for _ in range(self.width * self.height)]
        for _ in range(p.smoothing_passes):
            smoothed = list(field)
            for y in range(self.height):
                for x in range(self.width):
                    node = y * self.width + x
                    total = field[node]
                    count = 1
                    for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                        nx, ny = x + dx, y + dy
                        if 0 <= nx < self.width and 0 <= ny < self.height:
                            total += field[ny * self.width + nx]
                            count += 1
                    smoothed[node] = total / count
            field = smoothed
        return [1.0 + v for v in field]

    # ------------------------------------------------------------------
    def systematic_multiplier(self, node: int) -> float:
        """The fixed process-variation delay multiplier of one router."""
        return self._systematic[node]

    def mean_delay(self, node: int, temperature: float, voltage: Optional[float] = None) -> float:
        """Mean critical-path delay (clock-period units) at runtime
        conditions."""
        p = self.params
        delay = p.nominal_delay * self._systematic[node]
        delay *= 1.0 + p.temp_coefficient * (temperature - p.t_ref)
        if voltage is not None and voltage != p.v_nominal:
            if voltage <= p.v_threshold:
                raise ValueError("supply voltage at or below threshold")
            nominal_drive = (p.v_nominal - p.v_threshold) ** p.alpha_power / p.v_nominal
            actual_drive = (voltage - p.v_threshold) ** p.alpha_power / voltage
            delay *= nominal_drive / actual_drive
        return delay

    def timing_error_probability(
        self,
        node: int,
        temperature: float,
        voltage: Optional[float] = None,
        relax_cycles: int = 0,
    ) -> float:
        """Per-transfer timing-error probability at the given conditions.

        ``relax_cycles`` extends the effective sampling period by whole
        cycles (mode 3's relaxed timing constraint).
        """
        if relax_cycles < 0:
            raise ValueError("relax_cycles cannot be negative")
        mean = self.mean_delay(node, temperature, voltage)
        margin = (1.0 + relax_cycles) - mean
        return gaussian_tail(margin / self.params.sigma)

    def error_probabilities(
        self,
        temperatures: Sequence[float],
        voltage: Optional[float] = None,
    ) -> List[float]:
        """Vector form of :meth:`timing_error_probability` for one epoch."""
        if len(temperatures) != self.width * self.height:
            raise ValueError("one temperature per grid node required")
        return [
            self.timing_error_probability(node, t, voltage)
            for node, t in enumerate(temperatures)
        ]
