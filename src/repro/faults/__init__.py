"""Fault substrate: process variation, thermal model, runtime injection.

Stand-ins for the paper's VARIUS (timing-error probability), HotSpot
(power -> temperature), and the Booksim error-injection modifications —
wired into the control loop by :mod:`repro.sim.simulator`.
"""

from repro.faults.hardfaults import (
    HardFaultEvent,
    HardFaultModel,
    HardFaultSchedule,
    parse_fault_spec,
)
from repro.faults.injector import FaultInjector
from repro.faults.sensors import (
    SensorFaultModel,
    SensorFaultRule,
    format_sensor_spec,
    parse_sensor_spec,
)
from repro.faults.softerrors import (
    SoftErrorModel,
    SoftErrorRule,
    format_soft_error_spec,
    parse_soft_error_spec,
)
from repro.faults.thermal import ThermalGrid
from repro.faults.varius import VariusModel, VariusParams, gaussian_tail

__all__ = [
    "FaultInjector",
    "HardFaultEvent",
    "HardFaultModel",
    "HardFaultSchedule",
    "SensorFaultModel",
    "SensorFaultRule",
    "SoftErrorModel",
    "SoftErrorRule",
    "ThermalGrid",
    "VariusModel",
    "VariusParams",
    "format_sensor_spec",
    "format_soft_error_spec",
    "gaussian_tail",
    "parse_fault_spec",
    "parse_sensor_spec",
    "parse_soft_error_spec",
]
