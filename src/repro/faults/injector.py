"""Runtime fault injection: binds VARIUS + thermal state to the channels.

Each control epoch, the simulator hands the injector the fresh per-router
temperature vector; the injector recomputes every channel's timing-error
event probability (from the *upstream* router's conditions — the channel
is driven by the sender's output stage, Section III's "channel i") and the
mode-3 relaxation factor, then writes them into the channel error models
where the NoC samples them at flit-delivery time.

``error_scale`` is an explicit knob for scaled-down experiments: it
multiplies every event probability so short runs accumulate enough error
events for stable statistics.  Benches document the value they use.
"""

from __future__ import annotations

import warnings
from typing import Dict, Optional, Sequence, Tuple

from repro.faults.varius import VariusModel
from repro.noc.network import Network
from repro.obs.metrics import Counter, MetricRegistry

__all__ = ["FaultInjector"]

#: Extra cycles of timing slack granted by mode 3 (matches the two
#: pre-transmission stall cycles of Section III).
RELAX_CYCLES = 2


class FaultInjector:
    """Keeps channel error models in sync with die conditions."""

    def __init__(
        self,
        network: Network,
        varius: VariusModel,
        voltage: Optional[float] = None,
        error_scale: float = 1.0,
        registry: Optional[MetricRegistry] = None,
    ) -> None:
        if error_scale < 0:
            raise ValueError("error_scale cannot be negative")
        if varius.width * varius.height != network.topology.num_nodes:
            raise ValueError("variation grid does not match the topology")
        self.network = network
        self.varius = varius
        self.voltage = voltage
        self.error_scale = error_scale
        #: last probabilities applied, keyed like network.channels
        self.current: Dict[Tuple[int, int], float] = {}
        # Refreshes where p * error_scale clipped at 1.0 — a saturated
        # probability means error_scale is too aggressive for the die
        # conditions and relative comparisons between channels are lost.
        # The tally lives in a registry counter (per-run, appears in
        # metric exports, resets with the registry) instead of bare
        # instance state; ``saturation_events`` stays as the public view.
        if registry is None:
            registry = MetricRegistry()
        self._saturation_counter: Counter = registry.counter(
            "injector.saturation_events"
        )

    @property
    def saturation_events(self) -> int:
        return self._saturation_counter.value

    def refresh(self, temperatures: Sequence[float]) -> None:
        """Recompute per-channel error probabilities for the next epoch."""
        if len(temperatures) != self.network.topology.num_nodes:
            raise ValueError("one temperature per router required")
        cache: Dict[int, Tuple[float, float]] = {}
        for (src, _port), model in self.network.channel_models():
            if src not in cache:
                p = self.varius.timing_error_probability(
                    src, temperatures[src], self.voltage
                )
                p_relaxed = self.varius.timing_error_probability(
                    src, temperatures[src], self.voltage, relax_cycles=RELAX_CYCLES
                )
                cache[src] = (p, p_relaxed)
            p, p_relaxed = cache[src]
            raw = p * self.error_scale
            if raw > 1.0:
                if self._saturation_counter.value == 0:
                    warnings.warn(
                        f"error probability saturated: p={p:g} * "
                        f"error_scale={self.error_scale:g} = {raw:g} > 1; "
                        "channel error rates are clipped and no longer "
                        "proportional to die conditions",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                self._saturation_counter.inc()
            # p_relaxed can exceed p in pathological corners of the VARIUS
            # fit; the relax factor is a probability multiplier and must
            # stay inside [0, 1].
            ratio = (p_relaxed / p) if p > 0.0 else 0.0
            # Routed through the model's setters so an unchanged epoch
            # keeps the skip-sampling countdowns (geometric gaps are
            # memoryless — no resample, no RNG draw, no extra work).
            model.set_probabilities(min(1.0, raw), min(1.0, max(0.0, ratio)))
            self.current[(src, _port)] = model.event_probability

    def set_uniform(self, probability: float, relax_factor: float = 0.0) -> None:
        """Bypass the physical models with a flat probability (testing)."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        for key, model in self.network.channel_models():
            model.event_probability = probability
            model.relax_factor = relax_factor
            self.current[key] = probability

    def mean_probability(self) -> float:
        """Average per-transfer error probability across all channels."""
        if not self.current:
            return 0.0
        return sum(self.current.values()) / len(self.current)
